// City explorer: an end-to-end exploration session over a persisted
// dataset, demonstrating the IO layer plus multi-keyword queries.
//
//  1. Generates the Vienna preset and saves it to disk (SaveDataset).
//  2. Loads it back (LoadDataset) — the path any real deployment with
//     external data would take.
//  3. Runs a multi-keyword k-SOI query ("food culture") and describes each
//     returned street with a 3-photo diversified summary.
//
// Usage: city_explorer [--scale=0.05] [--query="food culture"] [--k=5]

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/diversify/st_rel_div.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "datagen/dataset.h"
#include "eval/table_printer.h"
#include "text/tokenizer.h"

int main(int argc, char** argv) {
  using namespace soi;
  double scale = 0.05;
  std::string query_text = "food culture";
  int32_t k = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = ParseDouble(arg.substr(8)).ValueOrDie();
    } else if (arg.rfind("--query=", 0) == 0) {
      query_text = arg.substr(8);
    } else if (arg.rfind("--k=", 0) == 0) {
      k = static_cast<int32_t>(ParseInt64(arg.substr(4)).ValueOrDie());
    } else {
      std::cerr << "usage: city_explorer [--scale=] [--query=] [--k=]\n";
      return 2;
    }
  }

  // --- 1+2: persist and reload the dataset. ------------------------------
  std::cerr << "Generating Vienna (scale=" << scale << ")...\n";
  Dataset generated = GenerateCity(ViennaProfile(scale)).ValueOrDie();
  std::string prefix = "/tmp/soi_city_explorer_vienna";
  Status saved = SaveDataset(generated, prefix);
  if (!saved.ok()) {
    std::cerr << "save failed: " << saved.ToString() << "\n";
    return 1;
  }
  auto loaded = LoadDataset("Vienna", prefix);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  Dataset dataset = std::move(loaded).ValueOrDie();
  std::cerr << "Reloaded from " << prefix << ".{network,pois,photos}: "
            << dataset.network.num_segments() << " segments, "
            << dataset.pois.size() << " POIs, " << dataset.photos.size()
            << " photos\n";
  auto indexes = BuildIndexes(dataset, /*cell_size=*/0.0005);

  // --- 3: multi-keyword exploration. --------------------------------------
  KeywordSet keywords = LookupKeywords(query_text, dataset.vocabulary);
  if (keywords.empty()) {
    std::cerr << "no known keywords in query '" << query_text << "'\n";
    return 1;
  }
  SoiQuery query;
  query.keywords = keywords;
  query.k = k;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset.network, indexes->poi_grid,
                         indexes->global_index);
  SoiResult result = algorithm.TopK(query, maps);

  std::cout << "\nTop-" << k << " streets for \"" << query_text
            << "\" in Vienna:\n";
  DiversifyParams params;
  params.k = 3;
  params.rho = 0.0001;
  for (size_t i = 0; i < result.streets.size(); ++i) {
    const RankedStreet& entry = result.streets[i];
    std::cout << "\n#" << (i + 1) << " "
              << dataset.network.street(entry.street).name
              << " (interest " << FormatDouble(entry.interest, 1) << ")\n";
    StreetPhotos sp = ExtractStreetPhotos(dataset.network, entry.street,
                                          dataset.photos,
                                          indexes->photo_grid, query.eps);
    if (sp.size() < params.k) {
      std::cout << "   (only " << sp.size()
                << " photos nearby; no summary)\n";
      continue;
    }
    PhotoScorer scorer(sp, params.rho);
    PhotoGridIndex photo_index(params.rho / 2, sp.photos);
    CellBoundsCalculator cell_bounds(sp, photo_index);
    DiversifyResult summary = StRelDivSelect(scorer, cell_bounds, params);
    for (PhotoId local : summary.selected) {
      const Photo& photo = sp.photos.at(static_cast<size_t>(local));
      std::cout << "   photo @ (" << FormatDouble(photo.position.x, 5)
                << ", " << FormatDouble(photo.position.y, 5) << ") tags:";
      for (KeywordId tag : photo.keywords.ids()) {
        std::cout << " " << dataset.vocabulary.Name(tag);
      }
      std::cout << "\n";
    }
  }
  // Clean up the temp files.
  std::remove((prefix + ".network").c_str());
  std::remove((prefix + ".pois").c_str());
  std::remove((prefix + ".photos").c_str());
  return 0;
}
