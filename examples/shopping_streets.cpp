// Shopping streets of Berlin — the paper's motivating scenario
// (Section 5.1.1, Table 2 / Figure 2).
//
// Generates the Berlin preset, runs the k-SOI query for "shop"
// (k=10, eps=0.0005 ~ 55 m), and prints the ranked streets annotated with
// whether each appears in the planted ground truth and the two derived
// "authoritative web source" lists, like the paper's Table 2 discussion.
//
// Usage: shopping_streets [--scale=0.1] [--keyword=shop] [--k=10]

#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "common/string_util.h"
#include "core/soi_algorithm.h"
#include "datagen/dataset.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

int main(int argc, char** argv) {
  using namespace soi;
  double scale = 0.1;
  std::string keyword = "shop";
  int32_t k = 10;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = ParseDouble(arg.substr(8)).ValueOrDie();
    } else if (arg.rfind("--keyword=", 0) == 0) {
      keyword = arg.substr(10);
    } else if (arg.rfind("--k=", 0) == 0) {
      k = static_cast<int32_t>(ParseInt64(arg.substr(4)).ValueOrDie());
    } else {
      std::cerr << "usage: shopping_streets [--scale=] [--keyword=] "
                   "[--k=]\n";
      return 2;
    }
  }

  std::cerr << "Generating Berlin (scale=" << scale << ")...\n";
  Dataset dataset = GenerateCity(BerlinProfile(scale)).ValueOrDie();
  auto indexes = BuildIndexes(dataset, /*cell_size=*/0.0005);

  KeywordId keyword_id = dataset.vocabulary.Find(keyword);
  if (keyword_id == kInvalidKeyword) {
    std::cerr << "keyword '" << keyword << "' is unknown in this dataset\n";
    return 1;
  }

  SoiQuery query;
  query.keywords = KeywordSet({keyword_id});
  query.k = k;
  query.eps = 0.0005;  // ~55 m, the paper's setting.
  EpsAugmentedMaps maps(indexes->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset.network, indexes->poi_grid,
                         indexes->global_index);
  SoiResult result = algorithm.TopK(query, maps);

  const CategoryGroundTruth* truth = dataset.ground_truth.Find(keyword);
  std::set<StreetId> planted;
  std::set<StreetId> source1;
  std::set<StreetId> source2;
  if (truth != nullptr) {
    planted.insert(truth->hotspots.begin(), truth->hotspots.end());
    source1.insert(truth->web_sources[0].begin(),
                   truth->web_sources[0].end());
    source2.insert(truth->web_sources[1].begin(),
                   truth->web_sources[1].end());
  }

  std::cout << "\nTop-" << k << " Streets of Interest for \"" << keyword
            << "\" in Berlin\n\n";
  TablePrinter table({"Rank", "Street", "Interest", "Length (deg)",
                      "Planted", "Src#1", "Src#2"});
  for (size_t i = 0; i < result.streets.size(); ++i) {
    const RankedStreet& entry = result.streets[i];
    const Street& street = dataset.network.street(entry.street);
    table.AddRow({std::to_string(i + 1), street.name,
                  FormatDouble(entry.interest, 1),
                  FormatDouble(street.length, 5),
                  planted.count(entry.street) ? "yes" : "",
                  source1.count(entry.street) ? "yes" : "",
                  source2.count(entry.street) ? "yes" : ""});
  }
  table.Print(&std::cout);

  if (truth != nullptr) {
    std::cout << "\nrecall@" << k << " vs web source #1: "
              << FormatDouble(
                     RecallAtK(result.streets, truth->web_sources[0], k), 2)
              << ", vs web source #2: "
              << FormatDouble(
                     RecallAtK(result.streets, truth->web_sources[1], k), 2)
              << "\n";
  }
  std::cout << "\nQuery stats: " << result.stats.iterations
            << " iterations, " << result.stats.cells_popped
            << " cells popped, " << result.stats.segments_seen
            << " segments seen (of " << dataset.network.num_segments()
            << "), total "
            << FormatMillis(result.stats.TotalSeconds()) << "\n";
  return 0;
}
