// Photo description of a Street of Interest — the paper's Figure 3 /
// Section 5.1.2 scenario.
//
// Finds the top "shop" street of the London preset (the synthetic "Oxford
// Street"), then prints the 3-photo summaries selected by S_Rel, T_Rel,
// and ST_Rel+Div side by side, illustrating why pure relevance picks
// near-duplicates (the HMV effect / one demonstration) and the combined
// criterion yields a varied summary.
//
// Usage: photo_summary [--scale=0.1] [--photos=3]

#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/diversify/variants.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "datagen/dataset.h"
#include "eval/table_printer.h"

namespace {

void PrintSummary(const soi::Dataset& dataset,
                  const soi::StreetPhotos& sp,
                  const soi::PhotoScorer& scorer,
                  const std::vector<soi::PhotoId>& selected,
                  const std::string& title) {
  std::cout << "\n" << title << ":\n";
  for (soi::PhotoId local : selected) {
    const soi::Photo& photo = sp.photos.at(static_cast<size_t>(local));
    std::cout << "  (" << soi::FormatDouble(photo.position.x, 5) << ", "
              << soi::FormatDouble(photo.position.y, 5) << ")  srel="
              << soi::FormatDouble(scorer.SpatialRel(local), 3)
              << " trel=" << soi::FormatDouble(scorer.TextualRel(local), 3)
              << "  tags:";
    for (soi::KeywordId tag : photo.keywords.ids()) {
      std::cout << " " << dataset.vocabulary.Name(tag);
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soi;
  double scale = 0.1;
  int32_t num_photos = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = ParseDouble(arg.substr(8)).ValueOrDie();
    } else if (arg.rfind("--photos=", 0) == 0) {
      num_photos =
          static_cast<int32_t>(ParseInt64(arg.substr(9)).ValueOrDie());
    } else {
      std::cerr << "usage: photo_summary [--scale=] [--photos=]\n";
      return 2;
    }
  }

  std::cerr << "Generating London (scale=" << scale << ")...\n";
  Dataset dataset = GenerateCity(LondonProfile(scale)).ValueOrDie();
  auto indexes = BuildIndexes(dataset, /*cell_size=*/0.0005);

  // The most interesting shopping street (the paper's Oxford Street).
  SoiQuery query;
  query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
  query.k = 1;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset.network, indexes->poi_grid,
                         indexes->global_index);
  StreetId top = algorithm.TopK(query, maps).streets.at(0).street;

  StreetPhotos sp = ExtractStreetPhotos(dataset.network, top,
                                        dataset.photos, indexes->photo_grid,
                                        query.eps);
  std::cout << "Top shopping street: \"" << dataset.network.street(top).name
            << "\" with " << sp.size() << " nearby photos\n";

  DiversifyParams params;
  params.k = num_photos;
  params.lambda = 0.5;
  params.w = 0.5;
  params.rho = 0.0001;
  PhotoScorer scorer(sp, params.rho);

  for (SelectionMethod method :
       {SelectionMethod::kSRel, SelectionMethod::kTRel,
        SelectionMethod::kStRelDiv}) {
    DiversifyResult result = SelectWithMethod(scorer, method, params);
    PrintSummary(dataset, sp, scorer, result.selected,
                 SelectionMethodName(method) + " summary (Figure 3 style)");
    std::cout << "  objective F (lambda=w=0.5): "
              << FormatDouble(scorer.Objective(result.selected, params), 4)
              << "\n";
  }
  std::cout << "\nNote how S_Rel clusters on the densest photo spot and "
               "T_Rel on the dominant tag\ntheme, while ST_Rel+Div mixes "
               "locations and topics.\n";
  return 0;
}
