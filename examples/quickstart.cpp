// Quickstart: the smallest end-to-end use of libsoi's public API.
//
//  1. Build a road network with NetworkBuilder.
//  2. Attach POIs and photos.
//  3. Build the offline indices.
//  4. Ask for the top-k Streets of Interest for a keyword (Problem 1).
//  5. Describe the winner with a diversified photo summary (Problem 2).
//
// Everything is hand-placed so the expected outcome is obvious: the cafes
// cluster on Riverside Lane, so it must win the "cafe" query.

#include <iostream>

#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "grid/global_inverted_index.h"
#include "grid/point_grid.h"
#include "network/network_builder.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

int main() {
  using namespace soi;

  // --- 1. A tiny road network: two streets crossing. --------------------
  NetworkBuilder builder;
  VertexId west = builder.AddVertex({0.000, 0.002});
  VertexId mid = builder.AddVertex({0.005, 0.002});
  VertexId east = builder.AddVertex({0.010, 0.002});
  VertexId south = builder.AddVertex({0.005, 0.000});
  VertexId north = builder.AddVertex({0.005, 0.004});
  SOI_CHECK(builder.AddStreet("Riverside Lane", {west, mid, east}).ok());
  SOI_CHECK(builder.AddStreet("Market Street", {south, north}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();

  // --- 2. POIs: three cafes on Riverside Lane, one elsewhere. -----------
  Vocabulary vocabulary;
  KeywordId cafe = vocabulary.Intern("cafe");
  KeywordId bank = vocabulary.Intern("bank");
  std::vector<Poi> pois;
  auto add_poi = [&](double x, double y, KeywordId keyword) {
    pois.push_back(Poi{Point{x, y}, KeywordSet({keyword})});
  };
  add_poi(0.001, 0.0022, cafe);
  add_poi(0.002, 0.0018, cafe);
  add_poi(0.003, 0.0021, cafe);
  add_poi(0.005, 0.0035, bank);

  // --- 3. Offline indices (shared grid geometry). -----------------------
  double cell_size = 0.0005;
  Box bounds = network.bounds().Expanded(0.001);
  GridGeometry geometry(bounds, cell_size);
  PoiGridIndex poi_grid(bounds, cell_size, pois);
  GlobalInvertedIndex global_index(poi_grid);
  SegmentCellIndex segment_cells(network, geometry);

  // --- 4. Top-1 Street of Interest for "cafe". --------------------------
  SoiQuery query;
  query.keywords = KeywordSet({cafe});
  query.k = 1;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(segment_cells, query.eps);
  SoiAlgorithm algorithm(network, poi_grid, global_index);
  SoiResult result = algorithm.TopK(query, maps);
  const RankedStreet& winner = result.streets.at(0);
  std::cout << "Top street for \"cafe\": "
            << network.street(winner.street).name
            << " (interest " << winner.interest << ")\n";

  // --- 5. Describe it with 2 diverse photos. ----------------------------
  std::vector<Photo> photos;
  auto add_photo = [&](double x, double y, const char* tags) {
    Photo photo;
    photo.position = Point{x, y};
    photo.keywords = TokenizeToKeywords(tags, &vocabulary);
    photos.push_back(std::move(photo));
  };
  add_photo(0.0012, 0.0021, "cafe latte morning");
  add_photo(0.0013, 0.0021, "cafe latte morning");  // Near-duplicate.
  add_photo(0.0030, 0.0019, "streetart mural");
  add_photo(0.0080, 0.0022, "river bridge sunset");

  std::vector<Point> photo_positions;
  for (const Photo& photo : photos) {
    photo_positions.push_back(photo.position);
  }
  PointGrid<PhotoId> photo_grid(geometry, photo_positions);
  StreetPhotos sp = ExtractStreetPhotos(network, winner.street, photos,
                                        photo_grid, query.eps);
  DiversifyParams params;
  params.k = 2;
  params.rho = 0.0002;
  PhotoScorer scorer(sp, params.rho);
  PhotoGridIndex photo_index(params.rho / 2, sp.photos);
  CellBoundsCalculator cell_bounds(sp, photo_index);
  DiversifyResult summary = StRelDivSelect(scorer, cell_bounds, params);

  std::cout << "Photo summary of "
            << network.street(winner.street).name << ":\n";
  for (PhotoId local : summary.selected) {
    const Photo& photo = sp.photos.at(static_cast<size_t>(local));
    std::cout << "  photo at (" << photo.position.x << ", "
              << photo.position.y << ") tags:";
    for (KeywordId tag : photo.keywords.ids()) {
      std::cout << " " << vocabulary.Name(tag);
    }
    std::cout << "\n";
  }
  std::cout << "Done. (The summary avoids the near-duplicate cafe shots.)\n";
  return 0;
}
