// Walking tour — the paper's future-work extension: "provide route
// recommendations based on the discovered streets of interest".
//
// Finds the top-k food streets of the Vienna preset, then plans a walking
// tour that starts at the most interesting street and greedily hops to
// the nearest unvisited one over the road network, printing the visiting
// order, connecting walks, and total distances.
//
// Usage: walking_tour [--scale=0.05] [--keyword=food] [--k=5]

#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/route_recommender.h"
#include "core/soi_algorithm.h"
#include "datagen/dataset.h"
#include "eval/table_printer.h"
#include "network/shortest_path.h"

int main(int argc, char** argv) {
  using namespace soi;
  double scale = 0.05;
  std::string keyword = "food";
  int32_t k = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = ParseDouble(arg.substr(8)).ValueOrDie();
    } else if (arg.rfind("--keyword=", 0) == 0) {
      keyword = arg.substr(10);
    } else if (arg.rfind("--k=", 0) == 0) {
      k = static_cast<int32_t>(ParseInt64(arg.substr(4)).ValueOrDie());
    } else {
      std::cerr << "usage: walking_tour [--scale=] [--keyword=] [--k=]\n";
      return 2;
    }
  }

  std::cerr << "Generating Vienna (scale=" << scale << ")...\n";
  Dataset dataset = GenerateCity(ViennaProfile(scale)).ValueOrDie();
  auto indexes = BuildIndexes(dataset, /*cell_size=*/0.0005);

  KeywordId keyword_id = dataset.vocabulary.Find(keyword);
  if (keyword_id == kInvalidKeyword) {
    std::cerr << "unknown keyword '" << keyword << "'\n";
    return 1;
  }
  SoiQuery query;
  query.keywords = KeywordSet({keyword_id});
  query.k = k;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset.network, indexes->poi_grid,
                         indexes->global_index);
  SoiResult result = algorithm.TopK(query, maps);

  ShortestPathEngine engine(dataset.network);
  RouteRecommender recommender(dataset.network, engine);
  RecommendedRoute route = recommender.PlanTour(result.streets);

  constexpr double kMetersPerDegree = 111000.0;
  std::cout << "\nWalking tour of the top-" << k << " \"" << keyword
            << "\" streets in Vienna:\n\n";
  TablePrinter table({"Stop", "Street", "Street length (m)",
                      "Walk from previous (m)"});
  for (size_t i = 0; i < route.street_order.size(); ++i) {
    const Street& street = dataset.network.street(route.street_order[i]);
    double walk =
        i == 0 ? 0.0 : route.legs[i - 1].path.length * kMetersPerDegree;
    table.AddRow({std::to_string(i + 1), street.name,
                  FormatDouble(street.length * kMetersPerDegree, 0),
                  FormatDouble(walk, 0)});
  }
  table.Print(&std::cout);
  std::cout << "\nTotal: "
            << FormatDouble(route.street_length * kMetersPerDegree, 0)
            << " m of streets of interest + "
            << FormatDouble(route.connecting_length * kMetersPerDegree, 0)
            << " m of connecting walks = "
            << FormatDouble(route.TotalLength() * kMetersPerDegree, 0)
            << " m\n";
  if (!route.unreachable.empty()) {
    std::cout << "Unreachable (different network component):";
    for (StreetId id : route.unreachable) {
      std::cout << " \"" << dataset.network.street(id).name << "\"";
    }
    std::cout << "\n";
  }
  return 0;
}
