#ifndef SOI_TESTS_TEST_UTIL_H_
#define SOI_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "datagen/city_profile.h"
#include "network/network_builder.h"
#include "network/road_network.h"
#include "objects/photo.h"
#include "objects/poi.h"
#include "text/vocabulary.h"

namespace soi {
namespace testing_util {

/// A straight grid network with `rows` x `cols` intersections spaced
/// `spacing` apart starting at `origin`; every row/column is one street of
/// (cols-1)/(rows-1) segments.
inline RoadNetwork MakeGridNetwork(int32_t rows, int32_t cols,
                                   double spacing,
                                   Point origin = Point{0.0, 0.0}) {
  NetworkBuilder builder;
  std::vector<VertexId> ids(static_cast<size_t>(rows) * cols);
  for (int32_t i = 0; i < rows; ++i) {
    for (int32_t j = 0; j < cols; ++j) {
      ids[static_cast<size_t>(i) * cols + j] = builder.AddVertex(
          Point{origin.x + j * spacing, origin.y + i * spacing});
    }
  }
  // Street names are built with operator+= instead of
  // `"H" + std::to_string(i)`: GCC 12 emits a false-positive
  // -Wrestrict diagnostic (GCC PR105651) when the
  // operator+(const char*, string&&) overload is inlined at -O3, and
  // the default build treats it as an error.
  for (int32_t i = 0; i < rows; ++i) {
    std::vector<VertexId> path;
    for (int32_t j = 0; j < cols; ++j) {
      path.push_back(ids[static_cast<size_t>(i) * cols + j]);
    }
    std::string name = "H";
    name += std::to_string(i);
    SOI_CHECK(builder.AddStreet(name, path).ok());
  }
  for (int32_t j = 0; j < cols; ++j) {
    std::vector<VertexId> path;
    for (int32_t i = 0; i < rows; ++i) {
      path.push_back(ids[static_cast<size_t>(i) * cols + j]);
    }
    std::string name = "V";
    name += std::to_string(j);
    SOI_CHECK(builder.AddStreet(name, path).ok());
  }
  auto network = std::move(builder).Build();
  SOI_CHECK(network.ok());
  return std::move(network).ValueOrDie();
}

/// `n` POIs uniform in `bounds`, each with 1-3 keywords drawn from a
/// `vocab_size`-word vocabulary (Zipf-skewed, interned as "kw<i>").
inline std::vector<Poi> RandomPois(const Box& bounds, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary, Rng* rng) {
  std::vector<KeywordId> words;
  for (int32_t i = 0; i < vocab_size; ++i) {
    words.push_back(vocabulary->Intern("kw" + std::to_string(i)));
  }
  ZipfSampler sampler(words.size(), 0.8);
  std::vector<Poi> pois;
  pois.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Poi poi;
    poi.position = Point{rng->UniformDouble(bounds.min.x, bounds.max.x),
                         rng->UniformDouble(bounds.min.y, bounds.max.y)};
    std::vector<KeywordId> ids;
    int64_t count = rng->UniformInt(1, 3);
    for (int64_t c = 0; c < count; ++c) {
      ids.push_back(words[sampler.Sample(rng)]);
    }
    poi.keywords = KeywordSet(std::move(ids));
    pois.push_back(std::move(poi));
  }
  return pois;
}

/// `n` photos uniform in `bounds` with 1-5 Zipf keywords; a third of them
/// are concentrated around the box center to create density contrast.
inline std::vector<Photo> RandomPhotos(const Box& bounds, int64_t n,
                                       int32_t vocab_size,
                                       Vocabulary* vocabulary, Rng* rng) {
  std::vector<KeywordId> words;
  for (int32_t i = 0; i < vocab_size; ++i) {
    words.push_back(vocabulary->Intern("pw" + std::to_string(i)));
  }
  ZipfSampler sampler(words.size(), 1.0);
  Point center{(bounds.min.x + bounds.max.x) / 2,
               (bounds.min.y + bounds.max.y) / 2};
  std::vector<Photo> photos;
  photos.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Photo photo;
    if (i % 3 == 0) {
      photo.position =
          Point{center.x + rng->Normal(0, bounds.Width() / 20),
                center.y + rng->Normal(0, bounds.Height() / 20)};
    } else {
      photo.position =
          Point{rng->UniformDouble(bounds.min.x, bounds.max.x),
                rng->UniformDouble(bounds.min.y, bounds.max.y)};
    }
    std::vector<KeywordId> ids;
    int64_t count = rng->UniformInt(1, 5);
    for (int64_t c = 0; c < count; ++c) {
      ids.push_back(words[sampler.Sample(rng)]);
    }
    photo.keywords = KeywordSet(std::move(ids));
    photos.push_back(std::move(photo));
  }
  return photos;
}

/// A down-scaled city profile that generates in milliseconds; used by the
/// property-test sweeps.
inline CityProfile TinyCityProfile(uint64_t seed) {
  CityProfile profile;
  profile.name = "Tinytown";
  profile.seed = seed;
  profile.bbox = Box::FromCorners(Point{10.0, 50.0}, Point{10.04, 50.02});
  profile.target_segments = 260;
  profile.target_pois = 4000;
  profile.target_photos = 1500;
  profile.num_arterials = 2;
  profile.categories = {
      {"shop", 0.05, 4, 0.5},
      {"food", 0.08, 3, 0.4},
      {"museum", 0.02, 2, 0.5},
      {"office", 0.20, 0, 0.0},
  };
  profile.noise_vocabulary = 120;
  profile.num_photo_street_clusters = 4;
  profile.num_photo_events = 3;
  return profile;
}

}  // namespace testing_util
}  // namespace soi

#endif  // SOI_TESTS_TEST_UTIL_H_
