#include <sstream>

#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "network/network_io.h"
#include "network/network_stats.h"
#include "network/road_network.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(NetworkBuilderTest, BuildsSimpleStreet) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  VertexId c = builder.AddVertex({1, 1});
  auto street = builder.AddStreet("Main Street", {a, b, c});
  ASSERT_TRUE(street.ok());
  auto network = std::move(builder).Build();
  ASSERT_TRUE(network.ok());
  const RoadNetwork& net = network.ValueOrDie();
  EXPECT_EQ(net.num_vertices(), 3);
  EXPECT_EQ(net.num_segments(), 2);
  EXPECT_EQ(net.num_streets(), 1);
  EXPECT_DOUBLE_EQ(net.street(0).length, 2.0);
  EXPECT_EQ(net.segment(0).street, 0);
  EXPECT_EQ(net.segment(1).street, 0);
  EXPECT_DOUBLE_EQ(net.segment(0).length, 1.0);
}

TEST(NetworkBuilderTest, RejectsShortPath) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  EXPECT_FALSE(builder.AddStreet("X", {a}).ok());
  EXPECT_FALSE(builder.AddStreet("X", {}).ok());
}

TEST(NetworkBuilderTest, RejectsUnknownVertex) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  EXPECT_FALSE(builder.AddStreet("X", {a, 17}).ok());
  EXPECT_FALSE(builder.AddStreet("X", {a, -1}).ok());
}

TEST(NetworkBuilderTest, RejectsRepeatedVertex) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  EXPECT_FALSE(builder.AddStreet("Loop", {a, b, a}).ok());
}

TEST(NetworkBuilderTest, RejectsZeroLengthSegment) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0, 0});
  EXPECT_FALSE(builder.AddStreet("Zero", {a, b}).ok());
}

TEST(NetworkBuilderTest, FailedAddStreetLeavesNetworkUnchanged) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  VertexId dup = builder.AddVertex({1, 0});
  EXPECT_FALSE(builder.AddStreet("Bad", {b, dup}).ok());
  ASSERT_TRUE(builder.AddStreet("Good", {a, b}).ok());
  auto network = std::move(builder).Build();
  ASSERT_TRUE(network.ok());
  EXPECT_EQ(network.ValueOrDie().num_segments(), 1);
  EXPECT_EQ(network.ValueOrDie().num_streets(), 1);
}

TEST(NetworkBuilderTest, EmptyNetworkFailsBuild) {
  NetworkBuilder builder;
  builder.AddVertex({0, 0});
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(RoadNetworkTest, GridShape) {
  RoadNetwork net = testing_util::MakeGridNetwork(3, 4, 1.0);
  EXPECT_EQ(net.num_vertices(), 12);
  EXPECT_EQ(net.num_segments(), 3 * 3 + 4 * 2);
  EXPECT_EQ(net.num_streets(), 7);
  // Every segment belongs to exactly one street and every street's
  // segments point back at it.
  std::vector<int> ownership(static_cast<size_t>(net.num_segments()), 0);
  for (StreetId s = 0; s < net.num_streets(); ++s) {
    for (SegmentId l : net.street(s).segments) {
      EXPECT_EQ(net.segment(l).street, s);
      ++ownership[static_cast<size_t>(l)];
    }
  }
  for (int count : ownership) EXPECT_EQ(count, 1);
}

TEST(RoadNetworkTest, Bounds) {
  RoadNetwork net = testing_util::MakeGridNetwork(2, 2, 2.0,
                                                  Point{10.0, 20.0});
  EXPECT_EQ(net.bounds().min, (Point{10.0, 20.0}));
  EXPECT_EQ(net.bounds().max, (Point{12.0, 22.0}));
}

TEST(RoadNetworkTest, StreetBoundsAndDistance) {
  RoadNetwork net = testing_util::MakeGridNetwork(3, 3, 1.0);
  // Street 0 is the horizontal row y = 0 from (0,0) to (2,0).
  Box bounds = net.StreetBounds(0);
  EXPECT_EQ(bounds.min, (Point{0, 0}));
  EXPECT_EQ(bounds.max, (Point{2, 0}));
  EXPECT_DOUBLE_EQ(net.StreetDistanceTo(0, Point{1, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(net.StreetDistanceTo(0, Point{-1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(net.StreetDistanceTo(0, Point{1.5, 0}), 0.0);
}

TEST(RoadNetworkTest, FindStreetsByName) {
  RoadNetwork net = testing_util::MakeGridNetwork(2, 3, 1.0);
  std::vector<StreetId> found = net.FindStreetsByName("H1");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(net.street(found[0]).name, "H1");
  EXPECT_TRUE(net.FindStreetsByName("Nonexistent").empty());
}

TEST(NetworkStatsTest, ComputesExtremes) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.5, 0});
  VertexId c = builder.AddVertex({3.5, 0});
  ASSERT_TRUE(builder.AddStreet("S", {a, b, c}).ok());
  RoadNetwork net = std::move(builder).Build().ValueOrDie();
  NetworkStats stats = ComputeNetworkStats(net);
  EXPECT_EQ(stats.num_segments, 2);
  EXPECT_EQ(stats.num_streets, 1);
  EXPECT_DOUBLE_EQ(stats.min_segment_length, 0.5);
  EXPECT_DOUBLE_EQ(stats.max_segment_length, 3.0);
  EXPECT_DOUBLE_EQ(stats.total_length, 3.5);
  EXPECT_DOUBLE_EQ(stats.mean_segment_length, 1.75);
  EXPECT_FALSE(NetworkStatsToString(stats).empty());
}

TEST(NetworkIoTest, RoundTrip) {
  RoadNetwork original = testing_util::MakeGridNetwork(3, 4, 0.001,
                                                       Point{13.3, 52.5});
  std::stringstream stream;
  ASSERT_TRUE(WriteNetwork(original, &stream).ok());
  auto loaded = ReadNetwork(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RoadNetwork& net = loaded.ValueOrDie();
  ASSERT_EQ(net.num_vertices(), original.num_vertices());
  ASSERT_EQ(net.num_segments(), original.num_segments());
  ASSERT_EQ(net.num_streets(), original.num_streets());
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_EQ(net.vertex(v).position, original.vertex(v).position);
  }
  for (SegmentId l = 0; l < net.num_segments(); ++l) {
    EXPECT_EQ(net.segment(l).from, original.segment(l).from);
    EXPECT_EQ(net.segment(l).to, original.segment(l).to);
    EXPECT_EQ(net.segment(l).street, original.segment(l).street);
  }
  for (StreetId s = 0; s < net.num_streets(); ++s) {
    EXPECT_EQ(net.street(s).name, original.street(s).name);
    EXPECT_EQ(net.street(s).segments, original.street(s).segments);
  }
}

TEST(NetworkIoTest, StreetNamesWithSpacesSurvive) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  ASSERT_TRUE(builder.AddStreet("Neue Schoenhauser Strasse", {a, b}).ok());
  RoadNetwork net = std::move(builder).Build().ValueOrDie();
  std::stringstream stream;
  ASSERT_TRUE(WriteNetwork(net, &stream).ok());
  auto loaded = ReadNetwork(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().street(0).name,
            "Neue Schoenhauser Strasse");
}

TEST(NetworkIoTest, RejectsMissingHeader) {
  std::stringstream stream("V\t0\t0\n");
  EXPECT_FALSE(ReadNetwork(&stream).ok());
}

TEST(NetworkIoTest, RejectsMalformedLines) {
  {
    std::stringstream stream("# soi-network v1\nV\t1\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
  {
    std::stringstream stream("# soi-network v1\nV\t0\t0\nQ\tx\ty\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
  {
    std::stringstream stream("# soi-network v1\nV\t0\tzero\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
}

TEST(NetworkIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadNetworkFromFile("/nonexistent/net.txt").ok());
}

}  // namespace
}  // namespace soi
