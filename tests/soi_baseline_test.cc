#include <vector>

#include "common/random.h"
#include "core/interest.h"
#include "core/soi_baseline.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

struct Fixture {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  SegmentCellIndex segment_cells;

  Fixture(uint64_t seed, double cell_size, int64_t num_pois)
      : network(testing_util::MakeGridNetwork(4, 4, 0.01)),
        pois(MakePois(seed, num_pois, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), cell_size),
        grid(geometry.bounds(), cell_size, pois),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    // Spread POIs a little beyond the network so border segments see them.
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.034, 0.034});
    return testing_util::RandomPois(box, n, 8, vocabulary, &rng);
  }
};

TEST(SoiBaselineTest, SegmentMassMatchesBruteForce) {
  Fixture fx(1, 0.0035, 400);
  SoiBaseline baseline(fx.network, fx.grid);
  for (double eps : {0.0008, 0.003, 0.01}) {
    EpsAugmentedMaps maps(fx.segment_cells, eps);
    KeywordSet query({0, 2});
    for (SegmentId id = 0; id < fx.network.num_segments(); ++id) {
      int64_t expected = BruteForceSegmentMass(
          fx.network.segment(id).geometry, fx.pois, query, eps);
      EXPECT_EQ(baseline.SegmentMass(id, query, maps), expected)
          << "segment " << id << " eps " << eps;
    }
  }
}

TEST(SoiBaselineTest, AllSegmentInterestsMatchDefinition) {
  Fixture fx(2, 0.004, 300);
  SoiBaseline baseline(fx.network, fx.grid);
  double eps = 0.002;
  EpsAugmentedMaps maps(fx.segment_cells, eps);
  SoiQuery query;
  query.keywords = KeywordSet({1});
  query.eps = eps;
  std::vector<double> interests = baseline.AllSegmentInterests(query, maps);
  ASSERT_EQ(interests.size(),
            static_cast<size_t>(fx.network.num_segments()));
  for (SegmentId id = 0; id < fx.network.num_segments(); ++id) {
    int64_t mass = BruteForceSegmentMass(fx.network.segment(id).geometry,
                                         fx.pois, query.keywords, eps);
    EXPECT_DOUBLE_EQ(
        interests[static_cast<size_t>(id)],
        SegmentInterest(mass, fx.network.segment(id).length, eps));
  }
}

TEST(SoiBaselineTest, TopKOrderedAndSized) {
  Fixture fx(3, 0.0035, 500);
  SoiBaseline baseline(fx.network, fx.grid);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.eps = 0.002;
  query.k = 5;
  EpsAugmentedMaps maps(fx.segment_cells, query.eps);
  SoiResult result = baseline.TopK(query, maps);
  ASSERT_EQ(result.streets.size(), 5u);
  for (size_t i = 1; i < result.streets.size(); ++i) {
    EXPECT_GE(result.streets[i - 1].interest, result.streets[i].interest);
  }
  // best_segment belongs to the street and attains the interest.
  for (const RankedStreet& entry : result.streets) {
    EXPECT_EQ(fx.network.segment(entry.best_segment).street, entry.street);
    int64_t mass = BruteForceSegmentMass(
        fx.network.segment(entry.best_segment).geometry, fx.pois,
        query.keywords, query.eps);
    EXPECT_DOUBLE_EQ(
        entry.interest,
        SegmentInterest(mass, fx.network.segment(entry.best_segment).length,
                        query.eps));
  }
}

TEST(SoiBaselineTest, KLargerThanStreetsReturnsAll) {
  Fixture fx(4, 0.004, 100);
  SoiBaseline baseline(fx.network, fx.grid);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.eps = 0.002;
  query.k = 1000;
  EpsAugmentedMaps maps(fx.segment_cells, query.eps);
  SoiResult result = baseline.TopK(query, maps);
  EXPECT_EQ(result.streets.size(),
            static_cast<size_t>(fx.network.num_streets()));
}

TEST(RankStreetsTest, TieBreaksByStreetId) {
  RoadNetwork network = testing_util::MakeGridNetwork(2, 3, 1.0);
  std::vector<double> interests(
      static_cast<size_t>(network.num_segments()), 1.0);
  std::vector<RankedStreet> ranked = RankStreets(network, interests, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].street, 0);
  EXPECT_EQ(ranked[1].street, 1);
  EXPECT_EQ(ranked[2].street, 2);
}

TEST(RankStreetsTest, StreetInterestIsMaxOverSegments) {
  RoadNetwork network = testing_util::MakeGridNetwork(2, 3, 1.0);
  std::vector<double> interests(
      static_cast<size_t>(network.num_segments()), 0.0);
  // Street 0 (first horizontal row) has segments 0 and 1.
  interests[0] = 0.5;
  interests[1] = 2.5;
  std::vector<RankedStreet> ranked = RankStreets(network, interests, 1);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].street, 0);
  EXPECT_DOUBLE_EQ(ranked[0].interest, 2.5);
  EXPECT_EQ(ranked[0].best_segment, 1);
}

}  // namespace
}  // namespace soi
