#include <set>
#include <vector>

#include "core/route_recommender.h"
#include "datagen/street_grid_generator.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "network/shortest_path.h"
#include "test_util.h"

namespace soi {
namespace {

std::vector<RankedStreet> Ranked(std::vector<StreetId> ids) {
  std::vector<RankedStreet> ranked;
  double interest = 100.0;
  for (StreetId id : ids) {
    ranked.push_back(RankedStreet{id, interest, 0});
    interest -= 1.0;
  }
  return ranked;
}

TEST(RouteRecommenderTest, VisitsEveryStreetOnce) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 4, 1.0);
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  std::vector<StreetId> wanted = {0, 3, 5, 7};
  RecommendedRoute route = recommender.PlanTour(Ranked(wanted));
  EXPECT_TRUE(route.unreachable.empty());
  std::set<StreetId> visited(route.street_order.begin(),
                             route.street_order.end());
  EXPECT_EQ(visited, std::set<StreetId>(wanted.begin(), wanted.end()));
  EXPECT_EQ(route.street_order.size(), wanted.size());
  EXPECT_EQ(route.legs.size(), wanted.size() - 1);
  EXPECT_EQ(route.street_order.front(), 0);  // Starts at the top rank.
}

TEST(RouteRecommenderTest, LegsConnectConsecutiveStreets) {
  RoadNetwork network = testing_util::MakeGridNetwork(5, 5, 0.5);
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  RecommendedRoute route = recommender.PlanTour(Ranked({1, 4, 8, 2, 9}));
  ASSERT_EQ(route.legs.size(), route.street_order.size() - 1);
  double total_leg_length = 0.0;
  for (size_t i = 0; i < route.legs.size(); ++i) {
    const RouteLeg& leg = route.legs[i];
    EXPECT_EQ(leg.from_street, route.street_order[i]);
    EXPECT_EQ(leg.to_street, route.street_order[i + 1]);
    total_leg_length += leg.path.length;
    // The leg ends at one endpoint of the street it enters.
    const Street& entered = network.street(leg.to_street);
    VertexId front = network.segment(entered.segments.front()).from;
    VertexId back = network.segment(entered.segments.back()).to;
    VertexId arrived = leg.path.vertices.back();
    EXPECT_TRUE(arrived == front || arrived == back);
  }
  EXPECT_NEAR(route.connecting_length, total_leg_length, 1e-12);
  double street_length = 0.0;
  for (StreetId id : route.street_order) {
    street_length += network.street(id).length;
  }
  EXPECT_NEAR(route.street_length, street_length, 1e-12);
  EXPECT_NEAR(route.TotalLength(),
              route.street_length + route.connecting_length, 1e-12);
}

TEST(RouteRecommenderTest, DeduplicatesInput) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 1.0);
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  RecommendedRoute route = recommender.PlanTour(Ranked({2, 2, 4, 2, 4}));
  EXPECT_EQ(route.street_order.size(), 2u);
}

TEST(RouteRecommenderTest, SingleStreetTour) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 1.0);
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  RecommendedRoute route = recommender.PlanTour(Ranked({3}));
  EXPECT_EQ(route.street_order, (std::vector<StreetId>{3}));
  EXPECT_TRUE(route.legs.empty());
  EXPECT_DOUBLE_EQ(route.connecting_length, 0.0);
  EXPECT_DOUBLE_EQ(route.street_length, network.street(3).length);
}

TEST(RouteRecommenderTest, ReportsUnreachableStreets) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  VertexId c = builder.AddVertex({2, 0});
  VertexId island1 = builder.AddVertex({50, 50});
  VertexId island2 = builder.AddVertex({51, 50});
  SOI_CHECK(builder.AddStreet("Main A", {a, b}).ok());
  SOI_CHECK(builder.AddStreet("Main B", {b, c}).ok());
  SOI_CHECK(builder.AddStreet("Island", {island1, island2}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  RecommendedRoute route = recommender.PlanTour(Ranked({0, 2, 1}));
  EXPECT_EQ(route.street_order, (std::vector<StreetId>{0, 1}));
  EXPECT_EQ(route.unreachable, (std::vector<StreetId>{2}));
}

TEST(RouteRecommenderTest, GreedyPicksNearestNext) {
  // Grid rows: street 0 at y=0, street 1 at y=1, street 2 at y=2. From
  // street 0 the nearest is street 1, then street 2.
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 1.0);
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  RecommendedRoute route = recommender.PlanTour(Ranked({0, 2, 1}));
  EXPECT_EQ(route.street_order, (std::vector<StreetId>{0, 1, 2}));
}

TEST(RouteRecommenderTest, WorksOnGeneratedCity) {
  CityProfile profile = testing_util::TinyCityProfile(77);
  Rng rng(profile.seed);
  auto network_result = GenerateStreetGrid(profile, &rng);
  ASSERT_TRUE(network_result.ok());
  const RoadNetwork& network = network_result.ValueOrDie();
  ShortestPathEngine engine(network);
  RouteRecommender recommender(network, engine);
  // Tour the first 8 streets (grid streets are mutually reachable;
  // arterials may not be).
  std::vector<StreetId> wanted;
  for (StreetId id = 0; id < 8; ++id) wanted.push_back(id);
  RecommendedRoute route = recommender.PlanTour(Ranked(wanted));
  EXPECT_EQ(route.street_order.size() + route.unreachable.size(),
            wanted.size());
  EXPECT_GT(route.street_order.size(), 1u);
  EXPECT_GT(route.TotalLength(), 0.0);
}

}  // namespace
}  // namespace soi
