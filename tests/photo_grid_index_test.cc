#include <algorithm>
#include <limits>

#include "common/random.h"
#include "grid/photo_grid_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

std::vector<Photo> MakePhotos(uint64_t seed, int64_t n) {
  Vocabulary vocabulary;
  Rng rng(seed);
  return testing_util::RandomPhotos(
      Box::FromCorners(Point{0, 0}, Point{0.01, 0.01}), n, 15, &vocabulary,
      &rng);
}

TEST(PhotoGridIndexTest, BucketsAllPhotos) {
  std::vector<Photo> photos = MakePhotos(1, 300);
  PhotoGridIndex index(0.0005, photos);
  int64_t total = 0;
  for (CellId cell : index.non_empty_cells()) {
    total += index.NumPhotosInCell(cell);
  }
  EXPECT_EQ(total, 300);
  // non_empty_cells is ascending and unique.
  for (size_t i = 1; i < index.non_empty_cells().size(); ++i) {
    EXPECT_LT(index.non_empty_cells()[i - 1], index.non_empty_cells()[i]);
  }
}

TEST(PhotoGridIndexTest, CellAggregatesAreConsistent) {
  std::vector<Photo> photos = MakePhotos(2, 250);
  PhotoGridIndex index(0.0007, photos);
  for (CellId cell : index.non_empty_cells()) {
    const PhotoGridIndex::Cell* bucket = index.FindCell(cell);
    ASSERT_NE(bucket, nullptr);
    int64_t psi_min = std::numeric_limits<int64_t>::max();
    int64_t psi_max = 0;
    std::set<KeywordId> keywords;
    for (PhotoId id : bucket->photos) {
      const KeywordSet& tags = photos[static_cast<size_t>(id)].keywords;
      psi_min = std::min(psi_min, tags.size());
      psi_max = std::max(psi_max, tags.size());
      for (KeywordId keyword : tags.ids()) keywords.insert(keyword);
    }
    EXPECT_EQ(bucket->psi_min, psi_min);
    EXPECT_EQ(bucket->psi_max, psi_max);
    EXPECT_EQ(bucket->keywords.size(),
              static_cast<int64_t>(keywords.size()));
    for (KeywordId keyword : keywords) {
      EXPECT_TRUE(bucket->keywords.Contains(keyword));
    }
    // Postings cover exactly the cell's photos carrying the keyword.
    for (const auto& [keyword, postings] : bucket->postings) {
      for (PhotoId id : postings) {
        EXPECT_TRUE(
            photos[static_cast<size_t>(id)].keywords.Contains(keyword));
      }
    }
  }
}

TEST(PhotoGridIndexTest, NeighborhoodCountSumsBlock) {
  // Place photos deterministically in known cells.
  std::vector<Photo> photos;
  auto add = [&](double x, double y) {
    Photo photo;
    photo.position = Point{x, y};
    photo.keywords = KeywordSet({1});
    photos.push_back(photo);
  };
  // Grid with cell size 1; bounds [0,5]x[0,5].
  add(0.5, 0.5);  // Cell (0,0).
  add(1.5, 0.5);  // Cell (1,0).
  add(2.5, 0.5);  // Cell (2,0).
  add(4.5, 4.5);  // Cell (4,4).
  add(4.6, 4.4);  // Cell (4,4).
  PhotoGridIndex index(1.0, photos);
  const GridGeometry& geometry = index.geometry();
  CellId origin = geometry.CellOf(Point{0.5, 0.5});
  // Radius 0: only own cell.
  EXPECT_EQ(index.NeighborhoodCount(origin, 0), 1);
  // Radius 2 from (0,0): covers (0..2, 0..2) -> 3 photos.
  EXPECT_EQ(index.NeighborhoodCount(origin, 2), 3);
  // Radius 2 from (4,4) clips at the grid edge: 2 photos.
  EXPECT_EQ(index.NeighborhoodCount(geometry.CellOf(Point{4.5, 4.5}), 2), 2);
}

TEST(PhotoGridIndexTest, NeighborhoodCountMatchesBruteForce) {
  std::vector<Photo> photos = MakePhotos(3, 400);
  PhotoGridIndex index(0.0004, photos);
  const GridGeometry& geometry = index.geometry();
  for (CellId cell : index.non_empty_cells()) {
    CellCoord center = geometry.ToCoord(cell);
    int64_t expected = 0;
    for (CellId other : index.non_empty_cells()) {
      CellCoord coord = geometry.ToCoord(other);
      if (std::abs(coord.ix - center.ix) <= 2 &&
          std::abs(coord.iy - center.iy) <= 2) {
        expected += index.NumPhotosInCell(other);
      }
    }
    EXPECT_EQ(index.NeighborhoodCount(cell, 2), expected);
  }
}

TEST(PhotoGridIndexTest, SinglePhoto) {
  std::vector<Photo> photos(1);
  photos[0].position = Point{1, 1};
  photos[0].keywords = KeywordSet({2, 3});
  PhotoGridIndex index(0.5, photos);
  EXPECT_EQ(index.non_empty_cells().size(), 1u);
  const PhotoGridIndex::Cell* cell =
      index.FindCell(index.non_empty_cells()[0]);
  EXPECT_EQ(cell->psi_min, 2);
  EXPECT_EQ(cell->psi_max, 2);
}

}  // namespace
}  // namespace soi
