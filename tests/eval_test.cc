#include <sstream>

#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gtest/gtest.h"

namespace soi {
namespace {

std::vector<RankedStreet> Ranked(std::vector<StreetId> streets) {
  std::vector<RankedStreet> ranked;
  double interest = 100.0;
  for (StreetId street : streets) {
    ranked.push_back(RankedStreet{street, interest, 0});
    interest -= 1.0;
  }
  return ranked;
}

TEST(MetricsTest, RecallAtK) {
  std::vector<RankedStreet> ranked = Ranked({5, 3, 8, 1, 9});
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 3, 7}, 5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 3, 7}, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 3, 7}, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 3, 8, 1, 9}, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1}, 5), 0.0);
}

TEST(MetricsTest, PrecisionAtK) {
  std::vector<RankedStreet> ranked = Ranked({5, 3, 8, 1});
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {5, 8}, 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {5, 8}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {5, 8}, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {}, 4), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {5}, 0), 0.0);
  // k beyond the ranking is clipped to its size.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {5, 3, 8, 1}, 100), 1.0);
}

TEST(MetricsTest, NormalizeByMax) {
  std::vector<double> normalized = NormalizeByMax({1.0, 4.0, 2.0});
  EXPECT_DOUBLE_EQ(normalized[0], 0.25);
  EXPECT_DOUBLE_EQ(normalized[1], 1.0);
  EXPECT_DOUBLE_EQ(normalized[2], 0.5);
  EXPECT_EQ(NormalizeByMax({0.0, 0.0}), (std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(NormalizeByMax({}).empty());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "London", "Berlin"});
  table.AddRow({"S_Rel", "0.831", "0.726"});
  table.AddRow({"ST_Rel+Div", "1.000", "1.000"});
  std::ostringstream os;
  table.Print(&os);
  std::string out = os.str();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("ST_Rel+Div"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header and two rows plus separator = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterDeathTest, RejectsRowOfWrongArity) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "cells");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.98177, 3), "0.982");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormatTest, FormatMillis) {
  EXPECT_EQ(FormatMillis(0.0123), "12.3 ms");
  EXPECT_EQ(FormatMillis(0.0012), "1.20 ms");
}

}  // namespace
}  // namespace soi
