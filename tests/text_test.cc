#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "text/keyword_set.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace soi {
namespace {

// --- Vocabulary ---------------------------------------------------------------

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocabulary;
  KeywordId a = vocabulary.Intern("shop");
  KeywordId b = vocabulary.Intern("food");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocabulary.Intern("shop"), a);
  EXPECT_EQ(vocabulary.size(), 2);
}

TEST(VocabularyTest, FindWithoutIntern) {
  Vocabulary vocabulary;
  vocabulary.Intern("shop");
  EXPECT_NE(vocabulary.Find("shop"), kInvalidKeyword);
  EXPECT_EQ(vocabulary.Find("museum"), kInvalidKeyword);
}

TEST(VocabularyTest, NameRoundTrip) {
  Vocabulary vocabulary;
  KeywordId id = vocabulary.Intern("religion");
  EXPECT_EQ(vocabulary.Name(id), "religion");
}

TEST(VocabularyTest, IdsAreDense) {
  Vocabulary vocabulary;
  for (int i = 0; i < 100; ++i) {
    // operator+= instead of `"w" + std::to_string(i)`: GCC 12's inliner
    // trips a false-positive -Werror=restrict (GCC PR105651) on the
    // operator+(const char*, string&&) overload at -O3.
    std::string word = "w";
    word += std::to_string(i);
    EXPECT_EQ(vocabulary.Intern(word), i);
  }
}

// --- KeywordSet ---------------------------------------------------------------

TEST(KeywordSetTest, SortsAndDedupes) {
  KeywordSet set({5, 1, 3, 1, 5});
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.ids(), (std::vector<KeywordId>{1, 3, 5}));
}

TEST(KeywordSetTest, Contains) {
  KeywordSet set({2, 4, 6});
  EXPECT_TRUE(set.Contains(4));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_FALSE(KeywordSet().Contains(0));
}

TEST(KeywordSetTest, IntersectsAny) {
  KeywordSet a({1, 3, 5});
  KeywordSet b({2, 5, 9});
  KeywordSet c({0, 2, 4});
  EXPECT_TRUE(a.IntersectsAny(b));
  EXPECT_FALSE(a.IntersectsAny(c));
  EXPECT_FALSE(a.IntersectsAny(KeywordSet()));
}

TEST(KeywordSetTest, IntersectionAndUnionSizes) {
  KeywordSet a({1, 2, 3, 4});
  KeywordSet b({3, 4, 5});
  EXPECT_EQ(a.IntersectionSize(b), 2);
  EXPECT_EQ(a.UnionSize(b), 5);
  EXPECT_EQ(a.IntersectionSize(KeywordSet()), 0);
  EXPECT_EQ(a.UnionSize(KeywordSet()), 4);
}

TEST(KeywordSetTest, JaccardDistance) {
  KeywordSet a({1, 2});
  KeywordSet b({2, 3});
  EXPECT_DOUBLE_EQ(a.JaccardDistance(b), 1.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.JaccardDistance(a), 0.0);
  EXPECT_DOUBLE_EQ(KeywordSet().JaccardDistance(KeywordSet()), 0.0);
  EXPECT_DOUBLE_EQ(a.JaccardDistance(KeywordSet()), 1.0);
}

// Property sweep: merge-based set ops agree with a naive implementation.
class KeywordSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeywordSetPropertyTest, MatchesNaive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KeywordId> av;
    std::vector<KeywordId> bv;
    int64_t na = rng.UniformInt(0, 12);
    int64_t nb = rng.UniformInt(0, 12);
    for (int64_t i = 0; i < na; ++i) {
      av.push_back(static_cast<KeywordId>(rng.UniformInt(0, 15)));
    }
    for (int64_t i = 0; i < nb; ++i) {
      bv.push_back(static_cast<KeywordId>(rng.UniformInt(0, 15)));
    }
    KeywordSet a(av);
    KeywordSet b(bv);
    int64_t naive_inter = 0;
    for (KeywordId id : a.ids()) {
      if (b.Contains(id)) ++naive_inter;
    }
    EXPECT_EQ(a.IntersectionSize(b), naive_inter);
    EXPECT_EQ(a.UnionSize(b), a.size() + b.size() - naive_inter);
    EXPECT_EQ(a.IntersectsAny(b), naive_inter > 0);
    // Symmetry.
    EXPECT_EQ(a.IntersectionSize(b), b.IntersectionSize(a));
    EXPECT_DOUBLE_EQ(a.JaccardDistance(b), b.JaccardDistance(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeywordSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- TermVector ---------------------------------------------------------------

TEST(TermVectorTest, AddAndGet) {
  TermVector terms;
  terms.Add(3, 2.0);
  terms.Add(3, 1.0);
  terms.Add(7);
  EXPECT_DOUBLE_EQ(terms.Get(3), 3.0);
  EXPECT_DOUBLE_EQ(terms.Get(7), 1.0);
  EXPECT_DOUBLE_EQ(terms.Get(99), 0.0);
  EXPECT_DOUBLE_EQ(terms.L1Norm(), 4.0);
  EXPECT_EQ(terms.NumTerms(), 2);
}

TEST(TermVectorTest, ZeroWeightIsIgnored) {
  TermVector terms;
  terms.Add(1, 0.0);
  EXPECT_EQ(terms.NumTerms(), 0);
  EXPECT_DOUBLE_EQ(terms.L1Norm(), 0.0);
}

TEST(TermVectorTest, AddAllAndWeightOf) {
  TermVector terms;
  terms.AddAll(KeywordSet({1, 2}));
  terms.AddAll(KeywordSet({2, 3}));
  EXPECT_DOUBLE_EQ(terms.Get(2), 2.0);
  EXPECT_DOUBLE_EQ(terms.WeightOf(KeywordSet({1, 2})), 3.0);
  EXPECT_DOUBLE_EQ(terms.WeightOf(KeywordSet({5})), 0.0);
  EXPECT_DOUBLE_EQ(terms.L1Norm(), 4.0);
}

// --- Tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  std::vector<std::string> tokens = Tokenize("Oxford Str., LONDON-2016!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"oxford", "str", "london",
                                              "2016"}));
}

TEST(TokenizerTest, EmptyText) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize(" ,;- ").empty());
}

TEST(TokenizerTest, TokenizeToKeywordsInterns) {
  Vocabulary vocabulary;
  KeywordSet set = TokenizeToKeywords("shop Shop SHOPPING", &vocabulary);
  EXPECT_EQ(set.size(), 2);  // "shop" deduped, "shopping" distinct.
  EXPECT_TRUE(set.Contains(vocabulary.Find("shop")));
  EXPECT_TRUE(set.Contains(vocabulary.Find("shopping")));
}

TEST(TokenizerTest, LookupKeywordsDropsUnknown) {
  Vocabulary vocabulary;
  vocabulary.Intern("food");
  KeywordSet set = LookupKeywords("food museum", vocabulary);
  EXPECT_EQ(set.size(), 1);
  EXPECT_EQ(vocabulary.size(), 1);  // Lookup must not intern.
}

}  // namespace
}  // namespace soi
