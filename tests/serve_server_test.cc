// End-to-end tests of the soid serving front-end (DESIGN.md "Serving &
// overload"): wire answers bit-identical to direct engine calls, typed
// errors for every failure class, explicit backpressure under queue
// pressure, wire-deadline edges (expired at admission, firing
// mid-evaluation), slow-client eviction, and the graceful-drain state
// machine (including a real SIGTERM through the shared signal watcher).

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_util.h"
#include "common/signal_watch.h"
#include "core/query_engine.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/net.h"
#include "serve/server.h"
#include "test_util.h"

namespace soi {
namespace serve {
namespace {

// A self-contained SOI instance (mirrors the engine_robustness fixture).
struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  explicit Instance(uint64_t seed = 7, double cell_size = 0.002,
                    int64_t num_pois = 400, int32_t vocab_size = 12)
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(seed, num_pois, vocab_size, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), cell_size),
        grid(geometry.bounds(), cell_size, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, n, vocab_size, vocabulary, &rng);
  }
};

SoiQuery MakeQuery(int32_t k = 5, double eps = 0.002) {
  SoiQuery query;
  query.keywords = KeywordSet({0, 1});
  query.k = k;
  query.eps = eps;
  return query;
}

/// One served instance: engine + started server + client factory.
class ServerFixture {
 public:
  explicit ServerFixture(SoidServerOptions options = {},
                         int engine_threads = 2) {
    QueryEngineOptions engine_options;
    engine_options.num_threads = engine_threads;
    engine_ = std::make_unique<QueryEngine>(
        instance_.network, instance_.grid, instance_.global_index,
        instance_.segment_cells, engine_options);
    server_ = std::make_unique<SoidServer>(engine_.get(), options);
    Status started = server_->Start();
    SOI_CHECK(started.ok()) << started.ToString();
  }

  ~ServerFixture() {
    if (server_->state() != SoidServer::State::kStopped) {
      server_->RequestDrain();
      (void)server_->Wait();
    }
  }

  SoidClient MakeClient(int max_attempts = 1) const {
    SoidClientOptions options;
    options.port = server_->port();
    options.max_attempts = max_attempts;
    options.io_timeout_seconds = 10.0;
    return SoidClient(options);
  }

  Instance& instance() { return instance_; }
  QueryEngine& engine() { return *engine_; }
  SoidServer& server() { return *server_; }

 private:
  Instance instance_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<SoidServer> server_;
};

void ExpectBitIdentical(const std::vector<RankedStreet>& got,
                        const std::vector<RankedStreet>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].street, want[i].street);
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].interest),
              std::bit_cast<uint64_t>(want[i].interest));
    EXPECT_EQ(got[i].best_segment, want[i].best_segment);
  }
}

TEST(ServeServerTest, AnswersMatchDirectEngineCallBitExactly) {
  ServerFixture fixture;
  SoidClient client = fixture.MakeClient();
  for (int32_t k : {1, 5, 50}) {
    SoiQuery query = MakeQuery(k);
    Result<QueryResponse> served = client.Query(query);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    Result<SoiResult> direct = fixture.engine().TryRun(query);
    ASSERT_TRUE(direct.ok());
    ExpectBitIdentical(served.ValueOrDie().streets,
                       direct.ValueOrDie().streets);
  }
  EXPECT_EQ(fixture.server().stats().responses_ok, 3);
}

TEST(ServeServerTest, InvalidQueryGetsTypedErrorAndConnectionSurvives) {
  ServerFixture fixture;
  SoidClient client = fixture.MakeClient();
  SoiQuery bad = MakeQuery();
  bad.k = 0;
  Result<QueryResponse> rejected = client.Query(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // Identical Status to the direct engine call.
  Result<SoiResult> direct = fixture.engine().TryRun(bad);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), rejected.status().code());
  // A semantically invalid (but well-framed) query does not cost the
  // connection.
  EXPECT_TRUE(client.Query(MakeQuery()).ok());
  EXPECT_EQ(client.stats().reconnects, 1);
}

// Wire-deadline edge 1: a budget that is already spent is shed at
// admission with kDeadlineExceeded, before any engine work runs.
TEST(ServeServerTest, ExpiredDeadlineShedsAtAdmissionBeforeEngineWork) {
  ServerFixture fixture;
  // The proof that the engine never ran: its query counter. (The full
  // metrics dump also carries soi.serve.* admission counters, which the
  // shed itself legitimately bumps.) Returns -1 when observability is
  // compiled out (obs-off build) and the counter does not exist.
  auto engine_queries = [&fixture] {
    const std::string json = fixture.engine().MetricsJson();
    const std::string key = "\"soi.query.count\": ";
    size_t at = json.find(key);
    if (at == std::string::npos) return int64_t{-1};
    return static_cast<int64_t>(std::strtoll(
        json.c_str() + at + key.size(), nullptr, 10));
  };
  const int64_t queries_before = engine_queries();
  const bool have_counter = queries_before >= 0;
  SoidClient client = fixture.MakeClient();
  Result<QueryResponse> shed = client.Query(MakeQuery(), -1.0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  SoidServer::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.expired_at_admission, 1);
  // The engine never saw the query: its run counter did not move.
  if (have_counter) {
    EXPECT_EQ(engine_queries(), queries_before);
  }
  // The connection survives — late requests are an error, not an offense.
  EXPECT_TRUE(client.Query(MakeQuery()).ok());
  if (have_counter) {
    EXPECT_EQ(engine_queries(), queries_before + 1);
  }
}

// Wire-deadline edge 2: a deadline that fires mid-evaluation surfaces as
// a well-formed kDeadlineExceeded error frame. The engine checks its
// token per filtering iteration / refinement segment, so a small enough
// budget always fires mid-run; halve until it does.
TEST(ServeServerTest, MidEvaluationDeadlineYieldsWellFormedErrorFrame) {
  ServerFixture fixture;
  SoidClient client = fixture.MakeClient();
  SoiQuery query = MakeQuery(50, 0.004);  // the slowest query we have
  double budget = 0.01;
  for (int attempt = 0; attempt < 40; ++attempt) {
    Result<QueryResponse> result = client.Query(query, budget);
    if (!result.ok()) {
      // Typed, well-formed, and specifically the deadline taxonomy entry
      // (admission shed and mid-run expiry share it by design).
      ASSERT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status().ToString();
      EXPECT_FALSE(result.status().message().empty());
      // The stream stays usable after a deadline error.
      EXPECT_TRUE(client.Query(MakeQuery()).ok());
      return;
    }
    budget /= 4.0;
  }
  FAIL() << "deadline never fired; queries too fast to race";
}

TEST(ServeServerTest, QueueFullShedsWithResourceExhausted) {
  SoidServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  ServerFixture fixture(options);
  // Pipeline many queries on one raw connection: the reader enqueues far
  // faster than the single worker drains, so the 1-deep queue must shed.
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(30.0, 30.0).ok());
  constexpr int kBurst = 200;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest request;
    request.request_id = static_cast<uint64_t>(i) + 1;
    request.query = MakeQuery(50, 0.004);
    burst += EncodeQueryFrame(request);
  }
  ASSERT_TRUE(socket.SendAll(burst).ok());
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string header_bytes;
    bool clean_eof = false;
    ASSERT_TRUE(socket
                    .RecvExact(kFrameHeaderBytes, &header_bytes, &clean_eof)
                    .ok());
    ASSERT_FALSE(clean_eof);
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes, &header).ok());
    std::string payload;
    if (header.payload_bytes > 0) {
      ASSERT_TRUE(
          socket.RecvExact(header.payload_bytes, &payload, &clean_eof).ok());
      ASSERT_FALSE(clean_eof);
    }
    if (header.type == FrameType::kResult) {
      QueryResponse response;
      ASSERT_TRUE(DecodeResultPayload(payload, &response).ok());
      ++ok;
    } else {
      ASSERT_EQ(header.type, FrameType::kError);
      ErrorResponse error;
      ASSERT_TRUE(DecodeErrorPayload(payload, &error).ok());
      // Backpressure is the only legal failure here, and it is typed.
      ASSERT_EQ(error.status.code(), StatusCode::kResourceExhausted)
          << error.status.ToString();
      ++shed;
    }
  }
  // Every request got exactly one response; under a 1-deep queue the
  // burst must have shed at least once, and sheds are counted.
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(shed, 1);
  EXPECT_GE(ok, 1);  // the valve sheds excess, it does not starve
  SoidServer::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.shed_queue_full, shed);
  EXPECT_EQ(stats.responses_ok, ok);
}

TEST(ServeServerTest, MalformedFrameGetsTypedErrorThenClose) {
  ServerFixture fixture;
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(5.0, 5.0).ok());
  // 12 bytes of garbage: a "header" with the wrong magic.
  ASSERT_TRUE(socket.SendAll(std::string(kFrameHeaderBytes, 'x')).ok());
  std::string header_bytes;
  bool clean_eof = false;
  ASSERT_TRUE(
      socket.RecvExact(kFrameHeaderBytes, &header_bytes, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes, &header).ok());
  ASSERT_EQ(header.type, FrameType::kError);
  std::string payload;
  ASSERT_TRUE(
      socket.RecvExact(header.payload_bytes, &payload, &clean_eof).ok());
  ErrorResponse error;
  ASSERT_TRUE(DecodeErrorPayload(payload, &error).ok());
  EXPECT_EQ(error.request_id, 0u);  // connection-scoped error
  EXPECT_EQ(error.status.code(), StatusCode::kInvalidArgument);
  // Fail closed: the connection is then closed.
  std::string rest;
  Status eof = socket.RecvExact(1, &rest, &clean_eof);
  EXPECT_TRUE(eof.ok() && clean_eof) << eof.ToString();
  EXPECT_EQ(fixture.server().stats().bad_frames, 1);
}

TEST(ServeServerTest, SlowClientStallingMidFrameIsEvicted) {
  SoidServerOptions options;
  options.read_timeout_seconds = 0.2;
  ServerFixture fixture(options);
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(5.0, 5.0).ok());
  // Send a valid query frame's first half, then stall.
  std::string frame = EncodeQueryFrame({1, MakeQuery(), false, 0.0});
  ASSERT_TRUE(socket.SendAll(frame.substr(0, frame.size() / 2)).ok());
  // The server must cut us off rather than pin its reader forever.
  std::string out;
  bool clean_eof = false;
  Status status = socket.RecvExact(1, &out, &clean_eof);
  EXPECT_TRUE(clean_eof || !status.ok());
  EXPECT_EQ(fixture.server().stats().evicted_slow, 1);
}

TEST(ServeServerTest, IdleConnectionIsNotEvicted) {
  SoidServerOptions options;
  options.read_timeout_seconds = 0.1;
  ServerFixture fixture(options);
  SoidClient client = fixture.MakeClient();
  ASSERT_TRUE(client.Query(MakeQuery()).ok());
  // Idle (no frame in progress) for several read timeouts: the
  // connection must survive — only mid-frame stalls are eviction-worthy.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(client.Query(MakeQuery()).ok());
  EXPECT_EQ(client.stats().reconnects, 1);
  EXPECT_EQ(fixture.server().stats().evicted_slow, 0);
}

TEST(ServeServerTest, ConnectionCapRejectsWithTypedError) {
  SoidServerOptions options;
  options.max_connections = 1;
  ServerFixture fixture(options);
  SoidClient first = fixture.MakeClient();
  ASSERT_TRUE(first.Query(MakeQuery()).ok());  // occupies the one slot
  SoidClient second = fixture.MakeClient();
  Result<QueryResponse> rejected = second.Query(MakeQuery());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fixture.server().stats().connections_rejected, 1);
}

TEST(ServeServerTest, GracefulDrainFinishesInFlightAndFlushesState) {
  std::string state_path = ::testing::TempDir() + "soid_drain_state.json";
  (void)std::remove(state_path.c_str());
  SoidServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 256;
  options.drain_deadline_seconds = 30.0;
  options.drain_state_path = state_path;
  ServerFixture fixture(options);
  // Pipeline a burst, then immediately drain: every admitted request
  // must still be answered.
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(30.0, 30.0).ok());
  constexpr int kBurst = 32;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += EncodeQueryFrame(
        {static_cast<uint64_t>(i) + 1, MakeQuery(10, 0.003), false, 0.0});
  }
  ASSERT_TRUE(socket.SendAll(burst).ok());
  fixture.server().RequestDrain();
  Status drained = fixture.server().Wait();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(fixture.server().state(), SoidServer::State::kStopped);

  // No new connections after drain began.
  Result<Socket> late = Socket::Connect("127.0.0.1",
                                        fixture.server().port(), 0.5);
  EXPECT_FALSE(late.ok());

  // Every request seen was answered — evaluated if it was read before
  // the drain transition, rejected with a typed kUnavailable frame if it
  // raced in after (the burst may be cut short at the first rejection,
  // but nothing read is ever silently dropped).
  SoidServer::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.responses_ok + stats.responses_error, stats.requests);
  EXPECT_EQ(stats.drain_cancelled, 0);

  // The drain flushed a valid obs state file.
  std::ifstream file(state_path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  EXPECT_TRUE(ValidateJson(content.str()).ok());
  (void)std::remove(state_path.c_str());
}

// The drain race: a request accepted by the kernel (sent, buffered, or
// even mid-frame on the wire) before the drain transition but read by
// the server after kServing -> kDraining must get a typed kUnavailable
// error frame — not the silently dropped connection the old
// half-close-on-drain design produced when it discarded buffered
// inbound bytes.
TEST(ServeServerTest, RequestRacingDrainGetsTypedUnavailableNotSilentDrop) {
  SoidServerOptions options;
  options.drain_deadline_seconds = 30.0;
  ServerFixture fixture(options);
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(30.0, 30.0).ok());

  // Frame 1 establishes the connection and is answered normally.
  ASSERT_TRUE(socket.SendAll(EncodeQueryFrame({1, MakeQuery(), false, 0.0}))
                  .ok());
  auto read_frame = [&socket](FrameHeader* header, std::string* payload) {
    std::string header_bytes;
    bool clean_eof = false;
    Status status =
        socket.RecvExact(kFrameHeaderBytes, &header_bytes, &clean_eof);
    if (!status.ok() || clean_eof) return false;
    if (!DecodeFrameHeader(header_bytes, header).ok()) return false;
    payload->clear();
    if (header->payload_bytes > 0 &&
        (!socket.RecvExact(header->payload_bytes, payload, &clean_eof)
              .ok() ||
         clean_eof)) {
      return false;
    }
    return true;
  };
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(read_frame(&header, &payload));
  ASSERT_EQ(header.type, FrameType::kResult);

  // Frame 2 races the drain: its first byte is on the wire before the
  // transition, the rest arrives only after the server is draining.
  std::string frame = EncodeQueryFrame({2, MakeQuery(), false, 0.0});
  ASSERT_TRUE(socket.SendAll(frame.substr(0, 1)).ok());
  fixture.server().RequestDrain();
  std::thread waiter([&fixture] {
    Status drained = fixture.server().Wait();
    EXPECT_TRUE(drained.ok()) << drained.ToString();
  });
  // draining_reads_ is published before the kDraining state, so once the
  // state reads kDraining the frame below is guaranteed to hit the
  // drain-rejection path.
  while (fixture.server().state() != SoidServer::State::kDraining) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(socket.SendAll(frame.substr(1)).ok());

  // The answer must be a typed kUnavailable error frame for request 2 —
  // an EOF here is the silent drop this test exists to forbid.
  ASSERT_TRUE(read_frame(&header, &payload))
      << "connection dropped without a typed drain rejection";
  ASSERT_EQ(header.type, FrameType::kError);
  ErrorResponse error;
  ASSERT_TRUE(DecodeErrorPayload(payload, &error).ok());
  EXPECT_EQ(error.request_id, 2u);
  EXPECT_EQ(error.status.code(), StatusCode::kUnavailable)
      << error.status.ToString();
  // After the typed answer the connection closes.
  std::string rest;
  bool clean_eof = false;
  Status eof = socket.RecvExact(1, &rest, &clean_eof);
  EXPECT_TRUE(clean_eof || !eof.ok());
  waiter.join();
  SoidServer::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.rejected_draining, 1);
  EXPECT_EQ(stats.responses_ok, 1);
  EXPECT_EQ(stats.responses_ok + stats.responses_error, stats.requests);
}

TEST(ServeServerTest, DrainDeadlineCancelsQueuedWorkWithTypedErrors) {
  SoidServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 256;
  options.drain_deadline_seconds = 0.0;  // cancel immediately
  ServerFixture fixture(options);
  Result<Socket> raw = Socket::Connect("127.0.0.1",
                                       fixture.server().port(), 5.0);
  ASSERT_TRUE(raw.ok());
  Socket socket = std::move(raw).ValueOrDie();
  ASSERT_TRUE(socket.SetIoTimeouts(30.0, 30.0).ok());
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += EncodeQueryFrame(
        {static_cast<uint64_t>(i) + 1, MakeQuery(50, 0.004), false, 0.0});
  }
  ASSERT_TRUE(socket.SendAll(burst).ok());
  // Read responses concurrently so the server is never write-blocked.
  std::atomic<int> ok{0};
  std::atomic<int> cancelled{0};
  std::atomic<int> other{0};
  std::thread reader([&] {
    while (true) {
      std::string header_bytes;
      bool clean_eof = false;
      if (!socket.RecvExact(kFrameHeaderBytes, &header_bytes, &clean_eof)
               .ok() ||
          clean_eof) {
        return;
      }
      FrameHeader header;
      if (!DecodeFrameHeader(header_bytes, &header).ok()) return;
      std::string payload;
      if (header.payload_bytes > 0 &&
          (!socket.RecvExact(header.payload_bytes, &payload, &clean_eof)
                .ok() ||
           clean_eof)) {
        return;
      }
      if (header.type == FrameType::kResult) {
        ++ok;
      } else if (header.type == FrameType::kError) {
        ErrorResponse error;
        if (DecodeErrorPayload(payload, &error).ok() &&
            (error.status.code() == StatusCode::kCancelled ||
             error.status.code() == StatusCode::kDeadlineExceeded)) {
          ++cancelled;
        } else {
          ++other;
        }
      }
    }
  });
  // Give the reader thread a moment to admit some of the burst, then
  // drain with a zero budget: queued work must be answered kCancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture.server().RequestDrain();
  Status drained = fixture.server().Wait();
  reader.join();
  SoidServer::Stats stats = fixture.server().stats();
  // Everything admitted was answered — ok, or typed cancellation.
  EXPECT_EQ(ok + cancelled + other, stats.requests);
  EXPECT_EQ(other, 0);
  if (stats.drain_cancelled > 0) {
    // The zero budget actually cancelled work, and Wait reported it.
    EXPECT_EQ(drained.code(), StatusCode::kDeadlineExceeded);
    EXPECT_GE(cancelled.load(), 1);
  }
}

// The SIGTERM path end to end, through the shared signal-watch mask:
// process-directed SIGTERM -> watcher -> RequestDrain -> Wait returns.
// The watcher is installed BEFORE the server exists so every server and
// engine thread inherits the blocked mask — a thread created earlier
// could otherwise swallow the signal in the no-op disposition
// (common/signal_watch.h "call early in main()" contract, exercised
// for real here).
std::atomic<SoidServer*> sigterm_target{nullptr};

TEST(ServeServerTest, SigtermTriggersGracefulDrain) {
  ASSERT_TRUE(WatchSignal(SIGTERM,
                          [] {
                            SoidServer* server = sigterm_target.load();
                            if (server != nullptr) server->RequestDrain();
                          })
                  .ok());
  ServerFixture fixture;
  sigterm_target.store(&fixture.server());
  // The convenience installer rides the same per-signal slot, so a
  // second claim on SIGTERM is refused rather than racing.
  EXPECT_EQ(InstallSigtermDrain(&fixture.server()).code(),
            StatusCode::kAlreadyExists);
  SoidClient client = fixture.MakeClient();
  ASSERT_TRUE(client.Query(MakeQuery()).ok());
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  Status drained = fixture.server().Wait();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(fixture.server().state(), SoidServer::State::kStopped);
  sigterm_target.store(nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace soi
