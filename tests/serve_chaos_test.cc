// Chaos soak of the soid serving front-end (the acceptance gate of
// DESIGN.md "Serving & overload"): concurrent client traffic against a
// live server while deterministic faults fire at every serve.* site
// (accept/read/write/enqueue) and inside the engine (refinement
// finalization, eps-cache builds). The invariants, asserted under the
// default, tsan, and fault (+ASan) presets:
//
//   1. zero crashes — every failure is absorbed or surfaced as Status;
//   2. typed errors only — clients observe codes from the documented
//      taxonomy, never garbage frames or silent drops;
//   3. bit-identical answers — every successful response equals the
//      direct QueryEngine::TryRun answer for that query, bit for bit,
//      faults or not.
//
// Under -DSOI_FAULT_INJECTION=ON the soak also asserts the serve.*
// sites actually fired; elsewhere it degrades to a pure concurrency
// soak (same traffic, no injected faults).

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/query_engine.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/server.h"
#include "test_util.h"

namespace soi {
namespace serve {
namespace {

struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  Instance()
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(11, 400, 12, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), 0.002),
        grid(geometry.bounds(), 0.002, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, n, vocab_size, vocabulary, &rng);
  }
};

/// The soak's query pool: a deterministic mix of eps / k / keyword
/// shapes, cycled by every client thread.
std::vector<SoiQuery> MakeQueryPool() {
  std::vector<SoiQuery> pool;
  for (double eps : {0.001, 0.002, 0.004}) {
    for (int32_t k : {1, 5, 50}) {
      for (const std::vector<KeywordId>& ids :
           {std::vector<KeywordId>{0}, std::vector<KeywordId>{0, 1},
            std::vector<KeywordId>{2, 3, 5}}) {
        SoiQuery query;
        query.keywords = KeywordSet(ids);
        query.k = k;
        query.eps = eps;
        pool.push_back(std::move(query));
      }
    }
  }
  return pool;
}

bool BitIdentical(const std::vector<RankedStreet>& got,
                  const std::vector<RankedStreet>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].street != want[i].street ||
        std::bit_cast<uint64_t>(got[i].interest) !=
            std::bit_cast<uint64_t>(want[i].interest) ||
        got[i].best_segment != want[i].best_segment) {
      return false;
    }
  }
  return true;
}

/// Codes a client may legitimately observe during the soak. Transport
/// kIOError appears when an injected accept/read/write fault (or an
/// eviction) kills a connection mid-exchange and retries run out.
bool IsAllowedFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:  // typed drain rejection
      return true;
    default:
      return false;
  }
}

TEST(ServeChaosTest, SoakWithFaultsYieldsTypedErrorsAndBitIdenticalAnswers) {
  Instance instance;
  // The reference engine computes ground truth with no faults armed and
  // no serving stack in the way.
  QueryEngineOptions reference_options;
  reference_options.num_threads = 2;
  QueryEngine reference(instance.network, instance.grid,
                        instance.global_index, instance.segment_cells,
                        reference_options);
  std::vector<SoiQuery> pool = MakeQueryPool();
  std::vector<Result<SoiResult>> truth;
  truth.reserve(pool.size());
  for (const SoiQuery& query : pool) {
    truth.push_back(reference.TryRun(query));
    ASSERT_TRUE(truth.back().ok());
  }

  QueryEngineOptions engine_options;
  engine_options.num_threads = 4;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, engine_options);
  SoidServerOptions server_options;
  server_options.num_workers = 4;
  server_options.queue_capacity = 16;
  server_options.drain_deadline_seconds = 30.0;
  SoidServer server(&engine, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Arm the chaos: every serve.* site plus the engine's refinement and
  // cache-build sites, firing with low deterministic probability for the
  // whole soak (count=0 -> unlimited).
  std::vector<std::unique_ptr<fault::ScopedFault>> armed;
  if (fault::kEnabled) {
    auto arm = [&armed](const char* site, double probability,
                        uint64_t seed) {
      armed.push_back(std::make_unique<fault::ScopedFault>(
          site, fault::FaultPlan{.count = 0,
                                 .probability = probability,
                                 .seed = seed}));
    };
    arm("serve.accept", 0.05, 101);
    arm("serve.read", 0.01, 102);
    arm("serve.write", 0.01, 103);
    arm("serve.enqueue", 0.02, 104);
    arm("soi.refine.finalize", 0.005, 105);
    arm("cache.build_maps", 0.02, 106);
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 60;
  std::atomic<int64_t> ok_answers{0};
  std::atomic<int64_t> typed_failures{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> untyped_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SoidClientOptions client_options;
      client_options.port = server.port();
      client_options.max_attempts = 6;
      client_options.initial_backoff_seconds = 0.002;
      client_options.io_timeout_seconds = 30.0;
      SoidClient client(client_options);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t pick = static_cast<size_t>(c * 31 + i) % pool.size();
        Result<QueryResponse> result = client.Query(pool[pick]);
        if (result.ok()) {
          if (BitIdentical(result.ValueOrDie().streets,
                           truth[pick].ValueOrDie().streets)) {
            ++ok_answers;
          } else {
            ++mismatches;
          }
        } else if (IsAllowedFailure(result.status().code())) {
          ++typed_failures;
        } else {
          ++untyped_failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Disarm before drain so teardown is not itself chaos.
  armed.clear();
  server.RequestDrain();
  Status drained = server.Wait();
  EXPECT_TRUE(drained.ok() ||
              drained.code() == StatusCode::kDeadlineExceeded)
      << drained.ToString();

  // Invariant 3: every successful response was bit-identical.
  EXPECT_EQ(mismatches.load(), 0);
  // Invariant 2: every failure was typed from the documented taxonomy.
  EXPECT_EQ(untyped_failures.load(), 0);
  // The soak did real work: with retries, the overwhelming majority of
  // queries must succeed even under fault fire.
  EXPECT_EQ(ok_answers.load() + typed_failures.load(),
            int64_t{kClients} * kQueriesPerClient);
  EXPECT_GT(ok_answers.load(), int64_t{kClients} * kQueriesPerClient / 2);

  if (fault::kEnabled) {
    // The chaos actually happened: every serve.* site was exercised.
    fault::Registry& registry = fault::Registry::Global();
    EXPECT_GT(registry.HitCount("serve.accept"), 0);
    EXPECT_GT(registry.HitCount("serve.read"), 0);
    EXPECT_GT(registry.HitCount("serve.write"), 0);
    EXPECT_GT(registry.HitCount("serve.enqueue"), 0);
    int64_t serve_fires = registry.FireCount("serve.accept") +
                          registry.FireCount("serve.read") +
                          registry.FireCount("serve.write") +
                          registry.FireCount("serve.enqueue");
    EXPECT_GT(serve_fires, 0);
    EXPECT_EQ(server.stats().faults_injected, serve_fires);
  }
  // Invariant 1 (zero crashes) is the test reaching this line — under
  // ASan/TSan in the fault and tsan presets respectively.
}

}  // namespace
}  // namespace serve
}  // namespace soi
