#include <set>
#include <vector>

#include "common/random.h"
#include "grid/poi_grid_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

Box TestBox() { return Box::FromCorners(Point{0, 0}, Point{1, 1}); }

TEST(PoiGridIndexTest, BucketsAllPois) {
  Vocabulary vocabulary;
  Rng rng(1);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 500, 20, &vocabulary, &rng);
  PoiGridIndex index(TestBox(), 0.1, pois);
  int64_t total = 0;
  for (CellId cell : index.NonEmptyCells()) {
    total += index.NumPoisInCell(cell);
    // Every POI listed in the cell really falls in the cell's box.
    for (PoiId id : index.FindCell(cell)->pois) {
      EXPECT_TRUE(index.geometry().CellBox(cell).Contains(
          pois[static_cast<size_t>(id)].position));
    }
  }
  EXPECT_EQ(total, 500);
}

TEST(PoiGridIndexTest, PostingListsSortedAndComplete) {
  Vocabulary vocabulary;
  Rng rng(2);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 300, 10, &vocabulary, &rng);
  PoiGridIndex index(TestBox(), 0.25, pois);
  for (CellId cell : index.NonEmptyCells()) {
    const PoiGridIndex::Cell* bucket = index.FindCell(cell);
    ASSERT_NE(bucket, nullptr);
    // Each posting list is ascending and its POIs carry the keyword.
    for (const auto& [keyword, postings] : bucket->postings) {
      for (size_t i = 0; i < postings.size(); ++i) {
        if (i > 0) {
          EXPECT_LT(postings[i - 1], postings[i]);
        }
        EXPECT_TRUE(pois[static_cast<size_t>(postings[i])]
                        .keywords.Contains(keyword));
      }
    }
    // Every (poi, keyword) pair in the cell appears in a posting list.
    for (PoiId id : bucket->pois) {
      for (KeywordId keyword :
           pois[static_cast<size_t>(id)].keywords.ids()) {
        auto it = bucket->postings.find(keyword);
        ASSERT_NE(it, bucket->postings.end());
        EXPECT_TRUE(std::binary_search(it->second.begin(), it->second.end(),
                                       id));
      }
    }
  }
}

TEST(PoiGridIndexTest, FindCellReturnsNullForEmptyCell) {
  std::vector<Poi> pois(1);
  pois[0].position = Point{0.05, 0.05};
  pois[0].keywords = KeywordSet({1});
  PoiGridIndex index(TestBox(), 0.1, pois);
  EXPECT_NE(index.FindCell(index.geometry().CellOf(Point{0.05, 0.05})),
            nullptr);
  EXPECT_EQ(index.FindCell(index.geometry().CellOf(Point{0.95, 0.95})),
            nullptr);
  EXPECT_EQ(index.NumPoisInCell(index.geometry().CellOf(Point{0.95, 0.95})),
            0);
  EXPECT_EQ(index.FindPostings(index.geometry().CellOf(Point{0.95, 0.95}),
                               1),
            nullptr);
}

// Multi-keyword merge: a POI carrying several query keywords must be
// reported exactly once.
TEST(PoiGridIndexTest, MergeCountsEachPoiOnce) {
  std::vector<Poi> pois(4);
  for (auto& poi : pois) poi.position = Point{0.5, 0.5};  // Same cell.
  pois[0].keywords = KeywordSet({1, 2});    // Matches both query keywords.
  pois[1].keywords = KeywordSet({1});
  pois[2].keywords = KeywordSet({2});
  pois[3].keywords = KeywordSet({3});       // Irrelevant.
  PoiGridIndex index(TestBox(), 1.0, pois);
  CellId cell = index.geometry().CellOf(Point{0.5, 0.5});
  KeywordSet query({1, 2});
  EXPECT_EQ(index.CountRelevantInCell(cell, query), 3);

  std::vector<PoiId> seen;
  index.ForEachRelevantInCell(cell, query,
                              [&](PoiId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<PoiId>{0, 1, 2}));  // Ascending, unique.
}

class PoiGridRelevanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoiGridRelevanceProperty, CountMatchesBruteForcePerCell) {
  Vocabulary vocabulary;
  Rng rng(GetParam());
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 400, 8, &vocabulary, &rng);
  PoiGridIndex index(TestBox(), 0.15, pois);
  for (int trial = 0; trial < 10; ++trial) {
    // Random 1-3 keyword query.
    std::vector<KeywordId> q;
    int64_t nq = rng.UniformInt(1, 3);
    for (int64_t i = 0; i < nq; ++i) {
      q.push_back(static_cast<KeywordId>(rng.UniformInt(0, 7)));
    }
    KeywordSet query(q);
    for (CellId cell : index.NonEmptyCells()) {
      int64_t expected = 0;
      for (PoiId id : index.FindCell(cell)->pois) {
        if (pois[static_cast<size_t>(id)].IsRelevantTo(query)) ++expected;
      }
      EXPECT_EQ(index.CountRelevantInCell(cell, query), expected);
    }
    // Empty cells yield zero.
    EXPECT_EQ(index.CountRelevantInCell(-1 + index.geometry().num_cells(),
                                        query) >= 0,
              true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoiGridRelevanceProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(PoiGridIndexTest, EmptyQueryMatchesNothing) {
  Vocabulary vocabulary;
  Rng rng(3);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 50, 5, &vocabulary, &rng);
  PoiGridIndex index(TestBox(), 0.2, pois);
  for (CellId cell : index.NonEmptyCells()) {
    EXPECT_EQ(index.CountRelevantInCell(cell, KeywordSet()), 0);
  }
}

}  // namespace
}  // namespace soi
