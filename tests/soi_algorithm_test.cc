#include <algorithm>
#include <vector>

#include "common/random.h"
#include "core/soi_algorithm.h"
#include "core/soi_baseline.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

// A self-contained SOI test instance: network, POIs, and all indices.
struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  Instance(uint64_t seed, double cell_size, int64_t num_pois,
           int32_t vocab_size)
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(seed, num_pois, vocab_size, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), cell_size),
        grid(geometry.bounds(), cell_size, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    std::vector<Poi> pois =
        testing_util::RandomPois(box, n, vocab_size, vocabulary, &rng);
    // Add a dense cluster so there is a clear winner street (like a real
    // shopping street), exercising early termination.
    for (int i = 0; i < n / 5; ++i) {
      Poi poi;
      poi.position = Point{0.02 + rng.Normal(0, 0.0004),
                           0.01 + rng.UniformDouble(0, 0.01)};
      poi.keywords = KeywordSet({0, static_cast<KeywordId>(
                                        rng.UniformInt(0, vocab_size - 1))});
      pois.push_back(std::move(poi));
    }
    return pois;
  }
};

// Exact per-street interests via the baseline's full scan.
std::vector<RankedStreet> ExactTopK(const Instance& instance,
                                    const SoiQuery& query,
                                    const EpsAugmentedMaps& maps) {
  SoiBaseline baseline(instance.network, instance.grid);
  std::vector<double> interests =
      baseline.AllSegmentInterests(query, maps);
  return RankStreets(instance.network, interests, query.k);
}

void ExpectValidTopK(const Instance& instance, const SoiQuery& query,
                     const EpsAugmentedMaps& maps,
                     const SoiResult& result) {
  SoiBaseline baseline(instance.network, instance.grid);
  std::vector<double> interests =
      baseline.AllSegmentInterests(query, maps);
  std::vector<RankedStreet> expected =
      RankStreets(instance.network, interests,
                  static_cast<int32_t>(instance.network.num_streets()));
  // Exact interest per street, for validating reported values.
  std::vector<double> street_exact(
      static_cast<size_t>(instance.network.num_streets()), 0.0);
  for (const RankedStreet& entry : expected) {
    street_exact[static_cast<size_t>(entry.street)] = entry.interest;
  }

  ASSERT_EQ(result.streets.size(),
            std::min<size_t>(static_cast<size_t>(query.k),
                             static_cast<size_t>(
                                 instance.network.num_streets())));
  // Reported interests are exact and ordered.
  for (size_t i = 0; i < result.streets.size(); ++i) {
    const RankedStreet& entry = result.streets[i];
    EXPECT_DOUBLE_EQ(entry.interest,
                     street_exact[static_cast<size_t>(entry.street)])
        << "street " << entry.street;
    if (i > 0) {
      EXPECT_GE(result.streets[i - 1].interest, entry.interest);
    }
  }
  // The interest multiset equals the true top-k multiset (Problem 1 allows
  // any tie resolution at the boundary).
  std::vector<double> got;
  std::vector<double> want;
  for (const RankedStreet& entry : result.streets) {
    got.push_back(entry.interest);
  }
  for (size_t i = 0; i < result.streets.size(); ++i) {
    want.push_back(expected[i].interest);
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "rank " << i;
  }
}

class SoiEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t,
                                                 SourceListStrategy, bool>> {
};

TEST_P(SoiEquivalence, MatchesBaselineAcrossQueries) {
  auto [seed, strategy, pruned] = GetParam();
  Instance instance(seed, /*cell_size=*/0.003, /*num_pois=*/600,
                    /*vocab_size=*/8);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiAlgorithmOptions options;
  options.strategy = strategy;
  options.pruned_refinement = pruned;
  Rng rng(seed * 977 + 1);
  for (double eps : {0.0008, 0.002, 0.005}) {
    EpsAugmentedMaps maps(instance.segment_cells, eps);
    for (int32_t k : {1, 3, 10}) {
      for (int32_t nq : {1, 2, 4}) {
        SoiQuery query;
        std::vector<KeywordId> q;
        for (int32_t i = 0; i < nq; ++i) {
          q.push_back(static_cast<KeywordId>(rng.UniformInt(0, 7)));
        }
        query.keywords = KeywordSet(q);
        query.k = k;
        query.eps = eps;
        SoiResult result = algorithm.TopK(query, maps, options);
        ExpectValidTopK(instance, query, maps, result);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoiEquivalence,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
        ::testing::Values(SourceListStrategy::kAlternateCellsSegments,
                          SourceListStrategy::kRoundRobin,
                          SourceListStrategy::kCellsFirst),
        ::testing::Bool()));

// Different grid cell sizes must not affect the answer.
TEST(SoiAlgorithmTest, CellSizeIndependence) {
  std::vector<std::vector<double>> interest_sets;
  for (double cell_size : {0.0015, 0.003, 0.008}) {
    Instance instance(7, cell_size, 500, 6);
    SoiAlgorithm algorithm(instance.network, instance.grid,
                           instance.global_index);
    EpsAugmentedMaps maps(instance.segment_cells, 0.002);
    SoiQuery query;
    query.keywords = KeywordSet({0, 1});
    query.k = 8;
    query.eps = 0.002;
    SoiResult result = algorithm.TopK(query, maps);
    std::vector<double> interests;
    for (const RankedStreet& entry : result.streets) {
      interests.push_back(entry.interest);
    }
    interest_sets.push_back(interests);
  }
  for (size_t i = 1; i < interest_sets.size(); ++i) {
    ASSERT_EQ(interest_sets[i].size(), interest_sets[0].size());
    for (size_t j = 0; j < interest_sets[0].size(); ++j) {
      EXPECT_DOUBLE_EQ(interest_sets[i][j], interest_sets[0][j]);
    }
  }
}

// The unseen upper bound must dominate the true interest of every unseen
// segment at every filtering iteration (Lemma 1, second case).
TEST(SoiAlgorithmTest, UpperBoundIsSoundThroughoutFiltering) {
  Instance instance(11, 0.003, 500, 6);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.k = 5;
  query.eps = 0.002;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiBaseline baseline(instance.network, instance.grid);
  std::vector<double> exact = baseline.AllSegmentInterests(query, maps);

  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiAlgorithmOptions options;
  int64_t snapshots = 0;
  options.observer = [&](const SoiAlgorithmOptions::FilterSnapshot& snap) {
    ++snapshots;
    double max_unseen = 0.0;
    for (SegmentId id = 0; id < instance.network.num_segments(); ++id) {
      if (!(*snap.segment_seen)[static_cast<size_t>(id)]) {
        max_unseen =
            std::max(max_unseen, exact[static_cast<size_t>(id)]);
      }
    }
    EXPECT_GE(snap.upper_bound, max_unseen * (1 - 1e-12));
  };
  SoiResult result = algorithm.TopK(query, maps, options);
  EXPECT_GT(snapshots, 0);
  ExpectValidTopK(instance, query, maps, result);
}

// LB_k must never exceed the true k-th best street interest.
TEST(SoiAlgorithmTest, LowerBoundIsSound) {
  Instance instance(13, 0.003, 500, 6);
  SoiQuery query;
  query.keywords = KeywordSet({1, 2});
  query.k = 4;
  query.eps = 0.002;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  std::vector<RankedStreet> exact_topk = ExactTopK(instance, query, maps);
  double kth = exact_topk.back().interest;

  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiAlgorithmOptions options;
  options.observer = [&](const SoiAlgorithmOptions::FilterSnapshot& snap) {
    EXPECT_LE(snap.lower_bound, kth * (1 + 1e-12) + 1e-300);
  };
  algorithm.TopK(query, maps, options);
}

TEST(SoiAlgorithmTest, EmptyMatchQueryReturnsZeroInterest) {
  Instance instance(17, 0.003, 200, 5);
  Vocabulary& vocab = instance.vocabulary;
  KeywordId unused_keyword = vocab.Intern("keyword-with-no-pois");
  SoiQuery query;
  query.keywords = KeywordSet({unused_keyword});
  query.k = 3;
  query.eps = 0.002;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiResult result = algorithm.TopK(query, maps);
  ASSERT_EQ(result.streets.size(), 3u);
  for (const RankedStreet& entry : result.streets) {
    EXPECT_DOUBLE_EQ(entry.interest, 0.0);
  }
  // Nothing should have been examined: SL1 is empty, so UB = 0 instantly.
  EXPECT_EQ(result.stats.cells_popped, 0);
}

TEST(SoiAlgorithmTest, StatsAreCoherent) {
  Instance instance(19, 0.003, 600, 6);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.k = 5;
  query.eps = 0.002;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiResult result = algorithm.TopK(query, maps);
  const SoiQueryStats& stats = result.stats;
  EXPECT_GT(stats.iterations, 0);
  EXPECT_EQ(stats.iterations, stats.cells_popped + stats.segments_popped);
  EXPECT_LE(stats.segments_seen, instance.network.num_segments());
  EXPECT_GE(stats.list_construction_seconds, 0.0);
  EXPECT_GE(stats.filtering_seconds, 0.0);
  EXPECT_GE(stats.refinement_seconds, 0.0);
  EXPECT_GE(stats.final_upper_bound, 0.0);
  EXPECT_GE(stats.final_lower_bound, 0.0);
  // Termination condition reached (there are more streets than k here).
  EXPECT_LE(stats.final_upper_bound,
            stats.final_lower_bound * (1 + 1e-12) + 1e-300);
}

// The filter phase should terminate before exhausting the lists when a few
// streets dominate (the raison d'etre of the algorithm).
TEST(SoiAlgorithmTest, PrunesWorkOnSkewedData) {
  Instance instance(23, 0.003, 1000, 6);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.k = 1;
  query.eps = 0.0015;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiResult result = algorithm.TopK(query, maps);
  EXPECT_LT(result.stats.segments_seen, instance.network.num_segments());
}

TEST(SoiAlgorithmDeathTest, RejectsMismatchedEps) {
  Instance instance(29, 0.003, 100, 5);
  EpsAugmentedMaps maps(instance.segment_cells, 0.001);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.eps = 0.002;  // != maps.eps()
  EXPECT_DEATH(algorithm.TopK(query, maps), "eps");
}

}  // namespace
}  // namespace soi
