#include <vector>

#include "common/random.h"
#include "core/diversify/cell_bounds.h"
#include "core/diversify/objective.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

// Random street worlds; for every photo, the exact value of each mmr
// component must lie within its cell's bounds (Section 4.2.2).
struct BoundsFixture {
  RoadNetwork network;
  std::vector<Photo> photos;
  StreetPhotos sp;
  double rho;

  BoundsFixture(uint64_t seed, int64_t n, double rho_in) : rho(rho_in) {
    NetworkBuilder builder;
    VertexId a = builder.AddVertex({0, 0});
    VertexId b = builder.AddVertex({0.01, 0});
    VertexId c = builder.AddVertex({0.02, 0.002});
    SOI_CHECK(builder.AddStreet("S", {a, b, c}).ok());
    network = std::move(builder).Build().ValueOrDie();
    Vocabulary vocabulary;
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.001, -0.002}, Point{0.021, 0.004});
    photos = testing_util::RandomPhotos(box, n, 14, &vocabulary, &rng);
    sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.003);
    SOI_CHECK(sp.size() > 20) << "need a meaningful photo set";
  }
};

class CellBoundsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CellBoundsProperty, AllComponentBoundsContainExactValues) {
  BoundsFixture fx(GetParam(), 400, /*rho=*/0.0004);
  PhotoScorer scorer(fx.sp, fx.rho);
  PhotoGridIndex index(fx.rho / 2, fx.sp.photos);
  CellBoundsCalculator bounds(fx.sp, index);
  Rng rng(GetParam() * 31 + 7);
  constexpr double kTol = 1e-12;

  for (CellId cell : index.non_empty_cells()) {
    Bounds srel = bounds.SpatialRel(cell);
    Bounds trel = bounds.TextualRel(cell);
    EXPECT_LE(srel.lower, srel.upper + kTol);
    EXPECT_LE(trel.lower, trel.upper + kTol);
    for (PhotoId r : index.FindCell(cell)->photos) {
      EXPECT_GE(scorer.SpatialRel(r), srel.lower - kTol);
      EXPECT_LE(scorer.SpatialRel(r), srel.upper + kTol);
      EXPECT_GE(scorer.TextualRel(r), trel.lower - kTol);
      EXPECT_LE(scorer.TextualRel(r), trel.upper + kTol);
    }
    // Diversity bounds against random reference photos.
    for (int trial = 0; trial < 5; ++trial) {
      PhotoId ref =
          static_cast<PhotoId>(rng.UniformInt(0, fx.sp.size() - 1));
      Bounds sdiv = bounds.SpatialDiv(cell, ref);
      Bounds tdiv = bounds.TextualDiv(cell, ref);
      for (PhotoId r : index.FindCell(cell)->photos) {
        EXPECT_GE(scorer.SpatialDiv(r, ref), sdiv.lower - kTol);
        EXPECT_LE(scorer.SpatialDiv(r, ref), sdiv.upper + kTol);
        EXPECT_GE(scorer.TextualDiv(r, ref), tdiv.lower - kTol)
            << "cell " << cell << " ref " << ref << " photo " << r;
        EXPECT_LE(scorer.TextualDiv(r, ref), tdiv.upper + kTol)
            << "cell " << cell << " ref " << ref << " photo " << r;
      }
    }
  }
}

TEST_P(CellBoundsProperty, MmrBoundsContainExactMmr) {
  BoundsFixture fx(GetParam() + 100, 300, /*rho=*/0.0005);
  PhotoScorer scorer(fx.sp, fx.rho);
  PhotoGridIndex index(fx.rho / 2, fx.sp.photos);
  CellBoundsCalculator bounds(fx.sp, index);
  Rng rng(GetParam() * 17 + 3);
  constexpr double kTol = 1e-12;

  for (int trial = 0; trial < 6; ++trial) {
    DiversifyParams params;
    params.k = static_cast<int32_t>(rng.UniformInt(2, 8));
    params.lambda = rng.UniformDouble();
    params.w = rng.UniformDouble();
    params.rho = fx.rho;
    // A random already-selected set.
    std::vector<PhotoId> selected;
    int64_t ns = rng.UniformInt(0, 4);
    for (int64_t i = 0; i < ns; ++i) {
      selected.push_back(
          static_cast<PhotoId>(rng.UniformInt(0, fx.sp.size() - 1)));
    }
    for (CellId cell : index.non_empty_cells()) {
      Bounds mmr = bounds.Mmr(cell, selected, params);
      for (PhotoId r : index.FindCell(cell)->photos) {
        double exact = scorer.Mmr(r, selected, params);
        EXPECT_GE(exact, mmr.lower - kTol);
        EXPECT_LE(exact, mmr.upper + kTol);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellBoundsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Hand-checkable textual diversity bound cases (Equations 17-18).
TEST(CellBoundsTest, TextualDivHandCases) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();

  std::vector<Photo> photos(3);
  photos[0].position = Point{0.001, 0.0};
  photos[0].keywords = KeywordSet({1, 2});      // In cell A.
  photos[1].position = Point{0.0011, 0.0};
  photos[1].keywords = KeywordSet({2, 3, 4});   // Same cell A.
  photos[2].position = Point{0.009, 0.0};
  photos[2].keywords = KeywordSet({1});         // Reference photo, cell B.
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.01);
  ASSERT_EQ(sp.size(), 3);

  PhotoGridIndex index(0.002, sp.photos);
  CellBoundsCalculator bounds(sp, index);
  CellId cell_a = index.geometry().CellOf(photos[0].position);
  // Cell A: c.Psi = {1,2,3,4}, psi_min=2, psi_max=3.
  // Reference Psi_r = {1}: inter=1 < psi_min=2
  //   lower = 1 - 1/(1 + 2 - 1) = 0.5
  // foreign = 3 >= psi_min -> upper = 1.
  Bounds tdiv = bounds.TextualDiv(cell_a, /*r=*/2);
  EXPECT_DOUBLE_EQ(tdiv.lower, 0.5);
  EXPECT_DOUBLE_EQ(tdiv.upper, 1.0);
  // Exact values: J(photo0,{1}) = 1 - 1/2 = 0.5; J(photo1,{1}) = 1.
  PhotoScorer scorer(sp, 0.004);
  EXPECT_DOUBLE_EQ(scorer.TextualDiv(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(scorer.TextualDiv(1, 2), 1.0);
}

TEST(CellBoundsTest, SpatialRelLowerIsOwnCellShare) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  std::vector<Photo> photos(4);
  for (int i = 0; i < 4; ++i) {
    photos[static_cast<size_t>(i)].keywords = KeywordSet({1});
  }
  photos[0].position = Point{0.0001, 0.0};
  photos[1].position = Point{0.00015, 0.0};  // Same tiny cell as photo 0.
  photos[2].position = Point{0.005, 0.0};
  photos[3].position = Point{0.009, 0.0};
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.01);
  PhotoGridIndex index(0.0005, sp.photos);
  CellBoundsCalculator bounds(sp, index);
  CellId cell = index.geometry().CellOf(photos[0].position);
  EXPECT_DOUBLE_EQ(bounds.SpatialRel(cell).lower, 2.0 / 4.0);
}

}  // namespace
}  // namespace soi
