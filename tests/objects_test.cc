#include <sstream>

#include "gtest/gtest.h"
#include "objects/object_io.h"
#include "objects/photo.h"
#include "objects/poi.h"
#include "text/vocabulary.h"

namespace soi {
namespace {

TEST(PoiTest, RelevancePredicate) {
  Poi poi;
  poi.keywords = KeywordSet({1, 5});
  EXPECT_TRUE(poi.IsRelevantTo(KeywordSet({5, 9})));
  EXPECT_FALSE(poi.IsRelevantTo(KeywordSet({2, 9})));
  EXPECT_FALSE(poi.IsRelevantTo(KeywordSet()));
}

TEST(PoiTest, CountRelevant) {
  std::vector<Poi> pois(4);
  pois[0].keywords = KeywordSet({1});
  pois[1].keywords = KeywordSet({2});
  pois[2].keywords = KeywordSet({1, 2});
  pois[3].keywords = KeywordSet({3});
  EXPECT_EQ(CountRelevantPois(pois, KeywordSet({1, 2})), 3);
  EXPECT_EQ(CountRelevantPois(pois, KeywordSet({3})), 1);
  EXPECT_EQ(CountRelevantPois(pois, KeywordSet({9})), 0);
}

TEST(ObjectIoTest, PoiRoundTrip) {
  Vocabulary vocabulary;
  std::vector<Poi> pois(3);
  pois[0].position = Point{-0.137, 51.51401};
  pois[0].keywords = KeywordSet({vocabulary.Intern("shop"),
                                 vocabulary.Intern("fashion")});
  pois[1].position = Point{0.001, 51.5};
  pois[1].keywords = KeywordSet({vocabulary.Intern("food")});
  pois[2].position = Point{0.25, 51.49};
  pois[2].keywords = KeywordSet();  // No keywords.

  std::stringstream stream;
  ASSERT_TRUE(WritePois(pois, vocabulary, &stream).ok());

  Vocabulary fresh;
  auto loaded = ReadPois(&stream, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<Poi>& out = loaded.ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].position, pois[0].position);
  EXPECT_EQ(out[2].position, pois[2].position);
  EXPECT_TRUE(out[0].keywords.Contains(fresh.Find("shop")));
  EXPECT_TRUE(out[0].keywords.Contains(fresh.Find("fashion")));
  EXPECT_EQ(out[0].keywords.size(), 2);
  EXPECT_TRUE(out[2].keywords.empty());
}

TEST(ObjectIoTest, PhotoRoundTrip) {
  Vocabulary vocabulary;
  std::vector<Photo> photos(2);
  photos[0].position = Point{13.4, 52.52};
  photos[0].keywords = KeywordSet({vocabulary.Intern("protest"),
                                   vocabulary.Intern("crowd")});
  photos[1].position = Point{13.41, 52.53};
  photos[1].keywords = KeywordSet({vocabulary.Intern("hmv")});
  std::stringstream stream;
  ASSERT_TRUE(WritePhotos(photos, vocabulary, &stream).ok());
  Vocabulary fresh;
  auto loaded = ReadPhotos(&stream, &fresh);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.ValueOrDie().size(), 2u);
  EXPECT_EQ(loaded.ValueOrDie()[1].position, photos[1].position);
  EXPECT_TRUE(loaded.ValueOrDie()[1].keywords.Contains(fresh.Find("hmv")));
}

TEST(ObjectIoTest, CoordinatesRoundTripExactly) {
  Vocabulary vocabulary;
  std::vector<Poi> pois(1);
  pois[0].position = Point{0.1 + 0.2, 1.0 / 3.0};  // Non-representable sums.
  std::stringstream stream;
  ASSERT_TRUE(WritePois(pois, vocabulary, &stream).ok());
  Vocabulary fresh;
  auto loaded = ReadPois(&stream, &fresh);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie()[0].position.x, pois[0].position.x);
  EXPECT_EQ(loaded.ValueOrDie()[0].position.y, pois[0].position.y);
}

TEST(ObjectIoTest, RejectsReservedCharacterInKeyword) {
  Vocabulary vocabulary;
  std::vector<Poi> pois(1);
  pois[0].keywords = KeywordSet({vocabulary.Intern("bad;keyword")});
  std::stringstream stream;
  EXPECT_FALSE(WritePois(pois, vocabulary, &stream).ok());
}

TEST(ObjectIoTest, RejectsMissingHeaderAndMalformedLines) {
  Vocabulary vocabulary;
  {
    std::stringstream stream("1\t2\tx\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
  {
    std::stringstream stream("# soi-objects v1\n1\t2\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
  {
    std::stringstream stream("# soi-objects v1\nx\t2\tshop\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
  {
    // Empty keyword between semicolons.
    std::stringstream stream("# soi-objects v1\n1\t2\tshop;;food\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
}

TEST(ObjectIoTest, MissingFileFails) {
  Vocabulary vocabulary;
  EXPECT_FALSE(ReadPoisFromFile("/nonexistent/pois.txt", &vocabulary).ok());
  EXPECT_FALSE(
      ReadPhotosFromFile("/nonexistent/photos.txt", &vocabulary).ok());
}

}  // namespace
}  // namespace soi
