#include <cmath>

#include "common/random.h"
#include "core/interest.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(InterestTest, AreaFormula) {
  // 2 * eps * len + pi * eps^2 (Definition 2).
  EXPECT_DOUBLE_EQ(SegmentNeighborhoodArea(10.0, 0.5),
                   2 * 0.5 * 10.0 + M_PI * 0.25);
  // Zero-length segment still has the disk area.
  EXPECT_DOUBLE_EQ(SegmentNeighborhoodArea(0.0, 2.0), M_PI * 4.0);
}

TEST(InterestTest, InterestScalesWithMassAndLength) {
  double eps = 0.001;
  EXPECT_DOUBLE_EQ(SegmentInterest(0, 1.0, eps), 0.0);
  EXPECT_GT(SegmentInterest(10, 1.0, eps), SegmentInterest(5, 1.0, eps));
  // Same mass on a shorter segment means higher density.
  EXPECT_GT(SegmentInterest(5, 0.5, eps), SegmentInterest(5, 1.0, eps));
  EXPECT_DOUBLE_EQ(SegmentInterest(7, 3.0, eps),
                   7.0 / SegmentNeighborhoodArea(3.0, eps));
}

TEST(InterestTest, BruteForceMassCountsOnlyRelevantAndNear) {
  Segment segment{Point{0, 0}, Point{1, 0}};
  std::vector<Poi> pois(5);
  pois[0].position = Point{0.5, 0.05};   // Near, relevant.
  pois[0].keywords = KeywordSet({1});
  pois[1].position = Point{0.5, 0.05};   // Near, irrelevant.
  pois[1].keywords = KeywordSet({2});
  pois[2].position = Point{0.5, 0.5};    // Far, relevant.
  pois[2].keywords = KeywordSet({1});
  pois[3].position = Point{1.1, 0.0};    // Past the endpoint at 0.1.
  pois[3].keywords = KeywordSet({1});
  pois[4].position = Point{0.0, -0.1};   // 0.1 below endpoint a.
  pois[4].keywords = KeywordSet({1, 2});
  KeywordSet query({1});
  // eps of 0.12 (not exactly 0.1: distance-equal-eps sits on a floating-
  // point boundary) captures pois 0, 3, and 4.
  EXPECT_EQ(BruteForceSegmentMass(segment, pois, query, 0.12), 3);
  EXPECT_EQ(BruteForceSegmentMass(segment, pois, query, 0.04), 0);
  EXPECT_EQ(BruteForceSegmentMass(segment, pois, query, 1.0), 4);
  EXPECT_EQ(BruteForceSegmentMass(segment, pois, KeywordSet({9}), 1.0), 0);
}

TEST(InterestTest, MassIsMonotoneInEps) {
  Vocabulary vocabulary;
  Rng rng(5);
  Box box = Box::FromCorners(Point{0, 0}, Point{1, 1});
  std::vector<Poi> pois =
      testing_util::RandomPois(box, 200, 5, &vocabulary, &rng);
  Segment segment{Point{0.2, 0.5}, Point{0.8, 0.5}};
  KeywordSet query({0, 1});
  int64_t last = 0;
  for (double eps : {0.01, 0.05, 0.1, 0.3, 1.0}) {
    int64_t mass = BruteForceSegmentMass(segment, pois, query, eps);
    EXPECT_GE(mass, last);
    last = mass;
  }
  EXPECT_EQ(last, CountRelevantPois(pois, query));  // eps=1 covers the box.
}

}  // namespace
}  // namespace soi
