// Guard for the SOI_DEADLOCK_DETECT=OFF path (the default build).
//
// Unlike obs_compile_out_test — which force-defines the disabled macro
// in its own TU, something the obs ABI contract explicitly supports —
// the deadlock instrumentation *changes soi::Mutex's layout* when ON, so
// mixing modes across TUs would be an ODR violation. This test instead
// builds in whatever mode the preset selected and asserts the mode's
// contract from the outside:
//
//   OFF: soi::Mutex is layout-identical to std::mutex, a name/rank
//        constructor argument is ignored, and nothing ever registers in
//        the global graph — i.e. the detector costs nothing when it is
//        compiled out.
//   ON:  the same constructor registers a node and lock/unlock feed the
//        graph.
//
// Running under both the default and `deadlock` presets (tools/check.sh
// covers both) checks both halves of the contract.

#include <mutex>
#include <string>

#include "analysis/lock_graph.h"
#include "common/mutex.h"
#include "gtest/gtest.h"

namespace soi {
namespace {

TEST(DeadlockCompileOutTest, EnabledFlagMatchesBuildDefine) {
#ifdef SOI_DEADLOCK_DETECT_ENABLED
  EXPECT_TRUE(lock_graph::kEnabled);
#else
  EXPECT_FALSE(lock_graph::kEnabled);
#endif
}

TEST(DeadlockCompileOutTest, MutexLayoutMatchesBuildMode) {
  if (lock_graph::kEnabled) {
    // The instrumented mutex carries its lock-class node pointer.
    EXPECT_GT(sizeof(Mutex), sizeof(std::mutex));
  } else {
    // Compiled out: exactly a std::mutex, nothing else.
    EXPECT_EQ(sizeof(Mutex), sizeof(std::mutex));
  }
}

TEST(DeadlockCompileOutTest, NamedMutexRegistersOnlyWhenEnabled) {
  const char* const kProbe = "test.compile_out.probe";
  Mutex mutex(kProbe, lock_graph::kRankLeaf);
  {
    MutexLock lock(mutex);
  }
  bool found = false;
  lock_graph::GraphSnapshot snapshot =
      lock_graph::LockGraph::Global().Snapshot();
  for (const lock_graph::NodeSnapshot& node : snapshot.nodes) {
    if (node.name == kProbe) found = true;
  }
  EXPECT_EQ(found, lock_graph::kEnabled);
}

TEST(DeadlockCompileOutTest, DisabledBuildGlobalGraphStaysEmpty) {
  if (lock_graph::kEnabled) {
    GTEST_SKIP() << "only meaningful with the detector compiled out";
  }
  // Even after this binary constructed named library mutexes (gtest
  // setup, the probe above), the OFF build must have registered nothing
  // and recorded nothing: zero per-lock overhead, zero global state.
  lock_graph::GraphSnapshot snapshot =
      lock_graph::LockGraph::Global().Snapshot();
  EXPECT_TRUE(snapshot.nodes.empty());
  EXPECT_TRUE(snapshot.edges.empty());
  EXPECT_TRUE(snapshot.violations.empty());
}

}  // namespace
}  // namespace soi
