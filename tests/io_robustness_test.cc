// Failure-injection tests for the IO layer: corrupted, truncated, and
// adversarial inputs must produce a clean error Status (never a crash or
// a silently wrong dataset), and the new optional trailing fields (POI
// weight, photo visual descriptor) must round-trip.

#include <sstream>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/dataset.h"
#include "gtest/gtest.h"
#include "network/network_io.h"
#include "objects/object_io.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(IoRobustnessTest, PhotoVisualDescriptorRoundTrip) {
  Vocabulary vocabulary;
  std::vector<Photo> photos(3);
  photos[0].position = Point{1, 2};
  photos[0].keywords = KeywordSet({vocabulary.Intern("sunset")});
  photos[0].visual = {0.25f, 0.5f, 0.75f};
  photos[1].position = Point{3, 4};
  photos[1].keywords = KeywordSet({vocabulary.Intern("crowd")});
  // photos[1] has no descriptor.
  photos[2].position = Point{5, 6};
  photos[2].keywords = KeywordSet({vocabulary.Intern("rain")});
  photos[2].visual = {1.0f, 0.0f, 0.125f};

  std::stringstream stream;
  ASSERT_TRUE(WritePhotos(photos, vocabulary, &stream).ok());
  Vocabulary fresh;
  auto loaded = ReadPhotos(&stream, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<Photo>& out = loaded.ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].visual, photos[0].visual);
  EXPECT_TRUE(out[1].visual.empty());
  EXPECT_EQ(out[2].visual, photos[2].visual);
}

TEST(IoRobustnessTest, MalformedVisualDescriptorFails) {
  Vocabulary vocabulary;
  {
    std::stringstream stream("# soi-objects v1\n1\t2\tcrowd\t0.5|oops\n");
    EXPECT_FALSE(ReadPhotos(&stream, &vocabulary).ok());
  }
  {
    std::stringstream stream("# soi-objects v1\n1\t2\tcrowd\t0.5||0.5\n");
    EXPECT_FALSE(ReadPhotos(&stream, &vocabulary).ok());
  }
}

TEST(IoRobustnessTest, GeneratedDatasetSurvivesFullRoundTripWithExtras) {
  CityProfile profile = testing_util::TinyCityProfile(55);
  profile.target_pois = 300;
  profile.target_photos = 150;
  Dataset original = GenerateCity(profile).ValueOrDie();
  // Attach non-unit weights so the POI extra field is exercised too.
  Rng rng(5);
  for (Poi& poi : original.pois) {
    if (rng.Bernoulli(0.3)) poi.weight = 2.0;
  }
  std::string prefix = ::testing::TempDir() + "/roundtrip_extras";
  ASSERT_TRUE(SaveDataset(original, prefix).ok());
  auto loaded = LoadDataset("Tinytown", prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& dataset = loaded.ValueOrDie();
  ASSERT_EQ(dataset.pois.size(), original.pois.size());
  ASSERT_EQ(dataset.photos.size(), original.photos.size());
  for (size_t i = 0; i < original.pois.size(); ++i) {
    EXPECT_DOUBLE_EQ(dataset.pois[i].weight, original.pois[i].weight);
  }
  for (size_t i = 0; i < original.photos.size(); ++i) {
    EXPECT_EQ(dataset.photos[i].visual, original.photos[i].visual);
  }
}

// Corrupting any single line of a serialized artifact must yield either a
// clean parse error or a successfully parsed (possibly different) object
// set — never a crash. Line-level corruption, not byte-level, since the
// format is line-oriented.
class CorruptionTest : public ::testing::TestWithParam<uint64_t> {};

std::string CorruptOneLine(const std::string& text, Rng* rng) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty()) return text;
  size_t victim = static_cast<size_t>(rng->UniformInt(lines.size()));
  switch (rng->UniformInt(uint64_t{4})) {
    case 0:  // Truncate the line.
      lines[victim] = lines[victim].substr(0, lines[victim].size() / 2);
      break;
    case 1:  // Replace a random character.
      if (!lines[victim].empty()) {
        lines[victim][static_cast<size_t>(
            rng->UniformInt(lines[victim].size()))] =
            static_cast<char>('!' + rng->UniformInt(uint64_t{90}));
      }
      break;
    case 2:  // Duplicate the line.
      lines.insert(lines.begin() + static_cast<int64_t>(victim),
                   lines[victim]);
      break;
    default:  // Delete the line.
      lines.erase(lines.begin() + static_cast<int64_t>(victim));
      break;
  }
  return Join(lines, "\n");
}

TEST_P(CorruptionTest, CorruptedNetworkNeverCrashes) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 4, 0.01);
  std::stringstream stream;
  ASSERT_TRUE(WriteNetwork(network, &stream).ok());
  std::string text = stream.str();
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream corrupted(CorruptOneLine(text, &rng));
    auto result = ReadNetwork(&corrupted);
    // Either a clean error or a structurally valid network.
    if (result.ok()) {
      const RoadNetwork& net = result.ValueOrDie();
      for (StreetId s = 0; s < net.num_streets(); ++s) {
        for (SegmentId l : net.street(s).segments) {
          EXPECT_EQ(net.segment(l).street, s);
        }
      }
    }
  }
}

TEST_P(CorruptionTest, CorruptedPoisNeverCrash) {
  Vocabulary vocabulary;
  Rng data_rng(GetParam() * 3 + 1);
  std::vector<Poi> pois = testing_util::RandomPois(
      Box::FromCorners(Point{0, 0}, Point{1, 1}), 50, 8, &vocabulary,
      &data_rng);
  pois[0].weight = 2.5;
  std::stringstream stream;
  ASSERT_TRUE(WritePois(pois, vocabulary, &stream).ok());
  std::string text = stream.str();
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream corrupted(CorruptOneLine(text, &rng));
    Vocabulary fresh;
    auto result = ReadPois(&corrupted, &fresh);
    if (result.ok()) {
      for (const Poi& poi : result.ValueOrDie()) {
        EXPECT_GE(poi.weight, 0.0);
      }
    }
  }
}

TEST_P(CorruptionTest, CorruptedPhotosNeverCrash) {
  Vocabulary vocabulary;
  Rng data_rng(GetParam() * 7 + 2);
  std::vector<Photo> photos = testing_util::RandomPhotos(
      Box::FromCorners(Point{0, 0}, Point{1, 1}), 50, 8, &vocabulary,
      &data_rng);
  photos[0].visual = {0.5f, 0.25f};
  std::stringstream stream;
  ASSERT_TRUE(WritePhotos(photos, vocabulary, &stream).ok());
  std::string text = stream.str();
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::stringstream corrupted(CorruptOneLine(text, &rng));
    Vocabulary fresh;
    auto result = ReadPhotos(&corrupted, &fresh);
    (void)result;  // Either outcome is fine; crashing is not.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Targeted malformed inputs (beyond the randomized corruption above):
// each must surface as a clean error Status, never a SOI_CHECK abort or a
// silently wrong dataset.
TEST(IoRobustnessTest, TruncatedNetworkLinesFailCleanly) {
  // Vertex line missing a coordinate.
  {
    std::stringstream stream("# soi-network v1\nV\t0.5\nS\tMain\t0;1\n");
    auto result = ReadNetwork(&stream);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
  // Street line missing its vertex path.
  {
    std::stringstream stream(
        "# soi-network v1\nV\t0\t0\nV\t1\t0\nS\tMain\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
  // Vertex path cut mid-number leaves a trailing empty field.
  {
    std::stringstream stream(
        "# soi-network v1\nV\t0\t0\nV\t1\t0\nS\tMain\t0;\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
}

TEST(IoRobustnessTest, OutOfRangeVertexIdsFailCleanly) {
  const std::string prefix = "# soi-network v1\nV\t0\t0\nV\t1\t0\n";
  // Unknown (but in-range) vertex id.
  {
    std::stringstream stream(prefix + "S\tMain\t0;7\n");
    auto result = ReadNetwork(&stream);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // Negative vertex id.
  {
    std::stringstream stream(prefix + "S\tMain\t0;-1\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
  // 2^32 wraps to 0 under a naive int32 cast — it must be rejected, not
  // silently reattached to vertex 0.
  {
    std::stringstream stream(prefix + "S\tMain\t0;4294967296\n");
    auto result = ReadNetwork(&stream);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST(IoRobustnessTest, DuplicateSegmentsInStreetPathFailCleanly) {
  const std::string prefix =
      "# soi-network v1\nV\t0\t0\nV\t1\t0\nV\t1\t1\n";
  // Revisiting a vertex duplicates a segment: streets are simple paths.
  {
    std::stringstream stream(prefix + "S\tLoop\t0;1;0\n");
    auto result = ReadNetwork(&stream);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // Immediate repetition (a zero-length segment) is rejected too.
  {
    std::stringstream stream(prefix + "S\tStutter\t0;1;1;2\n");
    EXPECT_FALSE(ReadNetwork(&stream).ok());
  }
}

TEST(IoRobustnessTest, NonFiniteInputsFailCleanly) {
  // Infinite vertex coordinates pass strtod but would poison the
  // network bounds (and every grid geometry built from them).
  {
    std::stringstream stream(
        "# soi-network v1\nV\tinf\t0\nV\t1\t0\nS\tMain\t0;1\n");
    auto result = ReadNetwork(&stream);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
  Vocabulary vocabulary;
  // Infinite object coordinates.
  {
    std::stringstream stream("# soi-objects v1\n-inf\t2\tshop\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
  // Infinite POI weight.
  {
    std::stringstream stream("# soi-objects v1\n1\t2\tshop\tinf\n");
    EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
  }
}

TEST(IoRobustnessTest, DuplicateVerticesFailCleanly) {
  // Two vertices at the bit-identical position: the ids are implicit
  // (line order), so a duplicated vertex line is input corruption that
  // used to be silently accepted.
  std::stringstream stream(
      "# soi-network v1\nV\t0\t0\nV\t1\t0\nV\t0\t0\n"
      "S\tMain\t0;1\nS\tSide\t1;2\n");
  auto result = ReadNetwork(&stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("duplicate vertex"),
            std::string::npos)
      << result.status().ToString();
}

TEST(IoRobustnessTest, DuplicateSegmentsAcrossStreetsFailCleanly) {
  // Two streets covering the same undirected edge (0,1) — once forward,
  // once reversed — duplicate the segment.
  std::stringstream stream(
      "# soi-network v1\nV\t0\t0\nV\t1\t0\nV\t1\t1\n"
      "S\tMain\t0;1;2\nS\tBack\t1;0\n");
  auto result = ReadNetwork(&stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("duplicate segment"),
            std::string::npos)
      << result.status().ToString();
}

TEST(IoRobustnessTest, DuplicatePoisFailCleanly) {
  Vocabulary vocabulary;
  // Bit-identical position + keywords + weight: a duplicated record.
  {
    std::stringstream stream(
        "# soi-objects v1\n1\t2\tshop\n3\t4\tfood\n1\t2\tshop\n");
    auto result = ReadPois(&stream, &vocabulary);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().ToString().find("duplicate POI"),
              std::string::npos)
        << result.status().ToString();
  }
  // Same position but different keywords or weight is two distinct POIs
  // (co-located businesses), not a duplicate.
  {
    std::stringstream stream(
        "# soi-objects v1\n1\t2\tshop\n1\t2\tfood\n1\t2\tshop\t2\n");
    EXPECT_TRUE(ReadPois(&stream, &vocabulary).ok());
  }
}

TEST(IoRobustnessTest, DuplicatePhotosFailCleanly) {
  Vocabulary vocabulary;
  {
    std::stringstream stream(
        "# soi-objects v1\n1\t2\tcrowd\t0.5|0.25\n1\t2\tcrowd\t0.5|0.25\n");
    auto result = ReadPhotos(&stream, &vocabulary);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().ToString().find("duplicate photo"),
              std::string::npos)
        << result.status().ToString();
  }
  // A different visual descriptor distinguishes the records.
  {
    std::stringstream stream(
        "# soi-objects v1\n1\t2\tcrowd\t0.5|0.25\n1\t2\tcrowd\t0.5|0.5\n");
    EXPECT_TRUE(ReadPhotos(&stream, &vocabulary).ok());
  }
}

TEST(IoRobustnessTest, EmptyStreamFailsCleanly) {
  std::stringstream empty;
  Vocabulary vocabulary;
  EXPECT_FALSE(ReadNetwork(&empty).ok());
  std::stringstream empty2;
  EXPECT_FALSE(ReadPois(&empty2, &vocabulary).ok());
}

TEST(IoRobustnessTest, HeaderOnlyStreamsYieldEmptyCollections) {
  Vocabulary vocabulary;
  std::stringstream pois_only("# soi-objects v1\n");
  auto pois = ReadPois(&pois_only, &vocabulary);
  ASSERT_TRUE(pois.ok());
  EXPECT_TRUE(pois.ValueOrDie().empty());
  // A header-only network is an error: a network needs segments.
  std::stringstream net_only("# soi-network v1\n");
  EXPECT_FALSE(ReadNetwork(&net_only).ok());
}

}  // namespace
}  // namespace soi
