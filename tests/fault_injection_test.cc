// Tests for the deterministic fault-injection registry (DESIGN.md
// "Failure model"). The Registry compiles in every configuration; the
// SOI_FAULT_POINT macro itself only fires under -DSOI_FAULT_INJECTION=ON
// (the `fault` preset), so macro-behavior tests branch on fault::kEnabled.

#include "common/fault_injection.h"

#include <vector>

#include "gtest/gtest.h"

namespace soi {
namespace fault {
namespace {

// Every test starts from a clean registry; the registry is process-global.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().Reset(); }
  void TearDown() override { Registry::Global().Reset(); }
};

TEST_F(FaultRegistryTest, UnarmedSiteCountsHitsButNeverFires) {
  Registry& registry = Registry::Global();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(registry.Hit("some.site"));
  }
  EXPECT_EQ(registry.HitCount("some.site"), 5);
  EXPECT_EQ(registry.FireCount("some.site"), 0);
  EXPECT_EQ(registry.HitCount("never.hit"), 0);
}

TEST_F(FaultRegistryTest, DefaultPlanFiresExactlyOnceOnTheNextHit) {
  Registry& registry = Registry::Global();
  registry.Arm("site", FaultPlan{});
  EXPECT_TRUE(registry.Hit("site"));
  EXPECT_FALSE(registry.Hit("site"));  // count = 1 exhausted
  EXPECT_FALSE(registry.Hit("site"));
  EXPECT_EQ(registry.HitCount("site"), 3);
  EXPECT_EQ(registry.FireCount("site"), 1);
}

TEST_F(FaultRegistryTest, AfterSkipsLeadingHits) {
  Registry& registry = Registry::Global();
  FaultPlan plan;
  plan.after = 2;
  plan.count = 2;
  registry.Arm("site", plan);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(registry.Hit("site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false,
                                      false}));
}

TEST_F(FaultRegistryTest, CountZeroMeansUnlimited) {
  Registry& registry = Registry::Global();
  FaultPlan plan;
  plan.count = 0;
  registry.Arm("site", plan);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(registry.Hit("site"));
  EXPECT_EQ(registry.FireCount("site"), 10);
}

TEST_F(FaultRegistryTest, ProbabilisticPlanIsDeterministicInHitIndex) {
  Registry& registry = Registry::Global();
  FaultPlan plan;
  plan.count = 0;
  plan.probability = 0.5;
  plan.seed = 1234;

  registry.Arm("site", plan);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(registry.Hit("site"));

  registry.Arm("site", plan);  // re-arming resets the counters
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(registry.Hit("site"));

  EXPECT_EQ(first, second);
  int64_t fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  // A fair-ish coin over 200 draws: not degenerate either way.
  EXPECT_GT(fires, 50);
  EXPECT_LT(fires, 150);

  // A different seed gives a different (still deterministic) pattern.
  plan.seed = 99;
  registry.Arm("site", plan);
  std::vector<bool> other;
  for (int i = 0; i < 200; ++i) other.push_back(registry.Hit("site"));
  EXPECT_NE(first, other);
}

TEST_F(FaultRegistryTest, DisarmStopsFiringButKeepsCounters) {
  Registry& registry = Registry::Global();
  FaultPlan plan;
  plan.count = 0;
  registry.Arm("site", plan);
  EXPECT_TRUE(registry.Hit("site"));
  registry.Disarm("site");
  EXPECT_FALSE(registry.Hit("site"));
  EXPECT_EQ(registry.HitCount("site"), 2);
  EXPECT_EQ(registry.FireCount("site"), 1);
  registry.Reset();
  EXPECT_EQ(registry.HitCount("site"), 0);
  EXPECT_EQ(registry.FireCount("site"), 0);
}

TEST_F(FaultRegistryTest, ScopedFaultDisarmsOnScopeExit) {
  Registry& registry = Registry::Global();
  {
    ScopedFault armed("site", FaultPlan{.count = 0});
    EXPECT_TRUE(registry.Hit("site"));
  }
  EXPECT_FALSE(registry.Hit("site"));
}

TEST_F(FaultRegistryTest, ArmReplacesThePreviousPlan) {
  Registry& registry = Registry::Global();
  FaultPlan never;
  never.after = 1000000;
  registry.Arm("site", never);
  EXPECT_FALSE(registry.Hit("site"));
  registry.Arm("site", FaultPlan{});  // fire on next hit
  EXPECT_TRUE(registry.Hit("site"));
}

TEST_F(FaultRegistryTest, FaultPointMacroMatchesBuildConfiguration) {
  Registry& registry = Registry::Global();
  registry.Arm("macro.site", FaultPlan{.count = 0});
  if (kEnabled) {
    // The macro consults the registry and throws on fire.
    bool threw = false;
    try {
      SOI_FAULT_POINT("macro.site");
    } catch (const FaultInjectedError& e) {
      threw = true;
      EXPECT_EQ(e.site(), "macro.site");
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(registry.HitCount("macro.site"), 1);
  } else {
    // Compiled out: no hit recorded, nothing thrown.
    SOI_FAULT_POINT("macro.site");
    EXPECT_EQ(registry.HitCount("macro.site"), 0);
  }
}

}  // namespace
}  // namespace fault
}  // namespace soi
