// The observability determinism contract (DESIGN.md "Observability"):
// instrumentation must never change results. The fully instrumented
// engine path — metrics armed, trace recording active — must return
// bit-identical answers to the plain sequential algorithm. Because this
// test passes in both build modes (the full suite runs under
// SOI_OBSERVABILITY=OFF too), it transitively proves the instrumented
// and compiled-out builds agree with each other.

#include <vector>

#include "common/random.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/query_engine.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "obs/obs.h"
#include "test_util.h"

namespace soi {
namespace {

struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  explicit Instance(uint64_t seed)
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(seed, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), 0.003),
        grid(geometry.bounds(), 0.003, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, 500, 8, vocabulary, &rng);
  }
};

std::vector<SoiQuery> MakeQueries() {
  std::vector<SoiQuery> queries;
  for (double eps : {0.0008, 0.002}) {
    for (int32_t k : {3, 8}) {
      for (KeywordId kw : {KeywordId{0}, KeywordId{3}}) {
        SoiQuery query;
        query.keywords = KeywordSet({kw, KeywordId{5}});
        query.k = k;
        query.eps = eps;
        queries.push_back(query);
      }
    }
  }
  return queries;
}

void ExpectIdentical(const SoiResult& got, const SoiResult& want) {
  ASSERT_EQ(got.streets.size(), want.streets.size());
  for (size_t i = 0; i < got.streets.size(); ++i) {
    EXPECT_EQ(got.streets[i].street, want.streets[i].street) << "rank " << i;
    EXPECT_EQ(got.streets[i].interest, want.streets[i].interest)
        << "rank " << i;
    EXPECT_EQ(got.streets[i].best_segment, want.streets[i].best_segment)
        << "rank " << i;
  }
  EXPECT_EQ(got.stats.iterations, want.stats.iterations);
  EXPECT_EQ(got.stats.segments_seen, want.stats.segments_seen);
  EXPECT_EQ(got.stats.poi_distance_checks, want.stats.poi_distance_checks);
}

TEST(ObsDeterminismTest, InstrumentedEngineMatchesPlainSequential) {
  Instance instance(21);
  std::vector<SoiQuery> queries = MakeQueries();

  // Reference: the plain sequential path, metrics quiet, tracing off.
  SoiAlgorithm sequential(instance.network, instance.grid,
                          instance.global_index);
  std::vector<SoiResult> expected;
  for (const SoiQuery& query : queries) {
    EpsAugmentedMaps maps(instance.segment_cells, query.eps);
    expected.push_back(sequential.TopK(query, maps));
  }

  // Everything armed: trace recording active across the whole batch and
  // the registry live, on the threaded engine path.
  obs::TraceRecorder::Global().Start();
  QueryEngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  std::vector<SoiResult> got = engine.RunBatch(queries);
  obs::TraceRecorder::Global().Stop();

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ExpectIdentical(got[i], expected[i]);
  }

  // Sanity on the instrumentation itself, in the mode where it exists:
  // the batch must have produced spans and query counts.
  if (obs::kEnabled) {
    EXPECT_FALSE(obs::TraceRecorder::Global().Collect().empty());
    EXPECT_GE(obs::Registry::Global().Snapshot().CounterOr0(
                  "soi.query.count"),
              static_cast<int64_t>(queries.size()));
  } else {
    EXPECT_TRUE(obs::TraceRecorder::Global().Collect().empty());
    EXPECT_EQ(
        obs::Registry::Global().Snapshot().CounterOr0("soi.query.count"),
        0);
  }
}

TEST(ObsDeterminismTest, InstrumentedDiversificationMatchesBaseline) {
  // StRelDivSelect is instrumented (spans + counters); GreedyBaselineSelect
  // is the reference implementation it must match selection-for-selection
  // with tracing active.
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.015, 0.001});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  Vocabulary vocabulary;
  Rng rng(77);
  Box box = Box::FromCorners(Point{-0.001, -0.003}, Point{0.016, 0.004});
  std::vector<Photo> photos =
      testing_util::RandomPhotos(box, 300, 12, &vocabulary, &rng);
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.0035);
  ASSERT_GT(sp.size(), 20);

  DiversifyParams params;
  params.k = 10;
  params.lambda = 0.5;
  params.w = 0.5;
  params.rho = 0.0005;
  PhotoScorer scorer(sp, params.rho);
  PhotoGridIndex index(params.rho / 2, sp.photos);
  CellBoundsCalculator bounds(sp, index);

  obs::TraceRecorder::Global().Start();
  DiversifyResult fast = StRelDivSelect(scorer, bounds, params);
  obs::TraceRecorder::Global().Stop();
  DiversifyResult slow = GreedyBaselineSelect(scorer, params);
  EXPECT_EQ(fast.selected, slow.selected);
}

}  // namespace
}  // namespace soi
