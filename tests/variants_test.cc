#include <vector>

#include "common/random.h"
#include "core/diversify/variants.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

StreetPhotos MakeWorld(uint64_t seed) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.02, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  Vocabulary vocabulary;
  Rng rng(seed);
  std::vector<Photo> photos = testing_util::RandomPhotos(
      Box::FromCorners(Point{0, -0.002}, Point{0.02, 0.002}), 300, 15,
      &vocabulary, &rng);
  return ExtractStreetPhotosBruteForce(network, 0, photos, 0.0025);
}

TEST(VariantsTest, NamesMatchPaper) {
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kSRel), "S_Rel");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kSDiv), "S_Div");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kSRelDiv), "S_Rel+Div");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kTRel), "T_Rel");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kTDiv), "T_Div");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kTRelDiv), "T_Rel+Div");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kStRel), "ST_Rel");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kStDiv), "ST_Div");
  EXPECT_EQ(SelectionMethodName(SelectionMethod::kStRelDiv), "ST_Rel+Div");
  EXPECT_EQ(AllSelectionMethods().size(), 9u);
}

TEST(VariantsTest, ParamsMapping) {
  DiversifyParams base;
  base.k = 7;
  base.lambda = 0.5;
  base.w = 0.5;
  base.rho = 0.001;

  DiversifyParams p = SelectionMethodParams(SelectionMethod::kSRel, base);
  EXPECT_DOUBLE_EQ(p.w, 1.0);
  EXPECT_DOUBLE_EQ(p.lambda, 0.0);
  EXPECT_EQ(p.k, 7);
  EXPECT_DOUBLE_EQ(p.rho, 0.001);

  p = SelectionMethodParams(SelectionMethod::kTDiv, base);
  EXPECT_DOUBLE_EQ(p.w, 0.0);
  EXPECT_DOUBLE_EQ(p.lambda, 1.0);

  p = SelectionMethodParams(SelectionMethod::kStRelDiv, base);
  EXPECT_DOUBLE_EQ(p.w, 0.5);
  EXPECT_DOUBLE_EQ(p.lambda, 0.5);

  p = SelectionMethodParams(SelectionMethod::kSRelDiv, base);
  EXPECT_DOUBLE_EQ(p.w, 1.0);
  EXPECT_DOUBLE_EQ(p.lambda, 0.5);

  p = SelectionMethodParams(SelectionMethod::kStRel, base);
  EXPECT_DOUBLE_EQ(p.w, 0.5);
  EXPECT_DOUBLE_EQ(p.lambda, 0.0);
}

TEST(VariantsTest, SRelPicksDensestPhotos) {
  StreetPhotos sp = MakeWorld(1);
  DiversifyParams base;
  base.k = 3;
  base.rho = 0.0005;
  PhotoScorer scorer(sp, base.rho);
  DiversifyResult result =
      SelectWithMethod(scorer, SelectionMethod::kSRel, base);
  ASSERT_EQ(result.selected.size(), 3u);
  double max_rel = 0.0;
  for (PhotoId r = 0; r < sp.size(); ++r) {
    max_rel = std::max(max_rel, scorer.SpatialRel(r));
  }
  EXPECT_DOUBLE_EQ(scorer.SpatialRel(result.selected[0]), max_rel);
}

TEST(VariantsTest, TRelPicksTopTextualRelevance) {
  StreetPhotos sp = MakeWorld(2);
  DiversifyParams base;
  base.k = 3;
  base.rho = 0.0005;
  PhotoScorer scorer(sp, base.rho);
  DiversifyResult result =
      SelectWithMethod(scorer, SelectionMethod::kTRel, base);
  double max_rel = 0.0;
  for (PhotoId r = 0; r < sp.size(); ++r) {
    max_rel = std::max(max_rel, scorer.TextualRel(r));
  }
  EXPECT_DOUBLE_EQ(scorer.TextualRel(result.selected[0]), max_rel);
}

// The full method should win (or tie) under the full objective — the
// Table 3 claim. Greedy is heuristic, so allow a tiny epsilon of slack.
class VariantsDominance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VariantsDominance, StRelDivScoresBestUnderFullObjective) {
  StreetPhotos sp = MakeWorld(GetParam());
  DiversifyParams base;
  base.k = 3;
  base.lambda = 0.5;
  base.w = 0.5;
  base.rho = 0.0005;
  PhotoScorer scorer(sp, base.rho);
  double full_score = 0.0;
  std::vector<double> scores;
  for (SelectionMethod method : AllSelectionMethods()) {
    DiversifyResult result = SelectWithMethod(scorer, method, base);
    double score = scorer.Objective(result.selected, base);
    scores.push_back(score);
    if (method == SelectionMethod::kStRelDiv) full_score = score;
  }
  // Greedy is a heuristic: a restricted variant can occasionally edge it
  // out by a few percent, so allow 5% slack (the paper's Table 3 margins
  // are far larger in the other direction).
  for (double score : scores) {
    EXPECT_LE(score, full_score * 1.05 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VariantsDominance,
                         ::testing::Values(3, 4, 5, 6));

TEST(VariantsTest, PureDivVariantsAreDeterministic) {
  StreetPhotos sp = MakeWorld(7);
  DiversifyParams base;
  base.k = 4;
  base.rho = 0.0005;
  PhotoScorer scorer(sp, base.rho);
  DiversifyResult a = SelectWithMethod(scorer, SelectionMethod::kSDiv, base);
  DiversifyResult b = SelectWithMethod(scorer, SelectionMethod::kSDiv, base);
  EXPECT_EQ(a.selected, b.selected);
  // First pick of a pure-div run ties at zero and resolves to photo 0.
  EXPECT_EQ(a.selected[0], 0);
}

}  // namespace
}  // namespace soi
