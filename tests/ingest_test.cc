// Property tests of the incremental-update subsystem (DESIGN.md
// "Ingest & epochs"): after ANY interleaving of update batches and
// compactions, queries over a pinned current epoch must be bit-identical
// to the same queries over indexes cold-rebuilt from the live dataset on
// the world's fixed geometry — the correctness bar of src/ingest. The
// suite also pins the RCU reader guarantees (old pins survive later
// epochs and compactions untouched), whole-batch validation atomicity,
// the background compactor, and the versioned snapshot round-trip of a
// compacted world.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/query_engine.h"
#include "core/soi_algorithm.h"
#include "datagen/dataset.h"
#include "grid/live_poi_view.h"
#include "gtest/gtest.h"
#include "ingest/live_world.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace soi {
namespace ingest {
namespace {

constexpr double kCellSize = 0.002;
constexpr int32_t kPoiVocab = 12;

/// The box RandomPois draws from; inserts stay inside it so they are
/// always within the world's fixed geometry.
Box PoiBox() {
  return Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
}

Dataset MakeDataset(uint64_t seed, int64_t num_pois, int64_t num_photos) {
  Dataset dataset;
  dataset.name = "ingest-fixture";
  dataset.network = testing_util::MakeGridNetwork(5, 5, 0.01);
  Rng rng(seed);
  dataset.pois = testing_util::RandomPois(PoiBox(), num_pois, kPoiVocab,
                                          &dataset.vocabulary, &rng);
  dataset.photos = testing_util::RandomPhotos(PoiBox(), num_photos, 8,
                                              &dataset.vocabulary, &rng);
  return dataset;
}

/// The query mix every bit-identity check runs: eps / k / keyword shapes
/// covering single-keyword, overlapping, and multi-keyword queries over
/// the kw0..kw11 POI vocabulary.
std::vector<SoiQuery> MakeQueryPool() {
  std::vector<SoiQuery> pool;
  for (double eps : {0.001, 0.002, 0.004}) {
    for (int32_t k : {1, 5, 50}) {
      for (const std::vector<KeywordId>& ids :
           {std::vector<KeywordId>{0}, std::vector<KeywordId>{0, 1},
            std::vector<KeywordId>{2, 3, 5}}) {
        SoiQuery query;
        query.keywords = KeywordSet(ids);
        query.k = k;
        query.eps = eps;
        pool.push_back(std::move(query));
      }
    }
  }
  return pool;
}

void ExpectBitIdentical(const std::vector<RankedStreet>& got,
                        const std::vector<RankedStreet>& want,
                        const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].street, want[i].street) << what << " rank " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(got[i].interest),
              std::bit_cast<uint64_t>(want[i].interest))
        << what << " rank " << i;
    EXPECT_EQ(got[i].best_segment, want[i].best_segment)
        << what << " rank " << i;
  }
}

/// Runs the whole pool through `live` (epoch-pinned reads) and through a
/// cold rebuild of the world's current live dataset on the same fixed
/// geometry, and asserts every ranking is bit-identical — the ingest
/// correctness bar.
void ExpectMatchesColdRebuild(const LiveWorld& world, QueryEngine* live,
                              const std::vector<SoiQuery>& pool,
                              const char* what) {
  Dataset dataset = world.MaterializeLiveDataset();
  PoiGridIndex grid(world.geometry().bounds(), kCellSize, dataset.pois);
  GlobalInvertedIndex global(grid);
  // The network and segment<->cell maps are immutable for the world's
  // lifetime, so the base ones are exactly what a cold rebuild derives.
  QueryEngine cold(world.base_dataset().network, grid, global,
                   world.base_indexes().segment_cells);
  for (size_t q = 0; q < pool.size(); ++q) {
    Result<SoiResult> got = live->TryRun(pool[q]);
    Result<SoiResult> want = cold.TryRun(pool[q]);
    ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << what << ": " << want.status().ToString();
    ExpectBitIdentical(got.ValueOrDie().streets,
                       want.ValueOrDie().streets, what);
  }
}

/// A live-reading engine over the world's stable base indexes.
std::unique_ptr<QueryEngine> MakeLiveEngine(const LiveWorld& world,
                                            int num_threads = 1) {
  QueryEngineOptions options;
  options.num_threads = num_threads;
  options.epoch_source = &world;
  return std::make_unique<QueryEngine>(
      world.base_dataset().network, world.base_indexes().poi_grid,
      world.base_indexes().global_index,
      world.base_indexes().segment_cells, options);
}

/// An insert inside `bounds` (the world's fixed geometry, which covers
/// the realized dataset — not the sampling box, which may overhang it),
/// pulled in by a small margin so edge rounding cannot escape.
Poi RandomInsert(Rng* rng, const Box& bounds) {
  double mx = bounds.Width() * 0.01;
  double my = bounds.Height() * 0.01;
  Poi poi;
  poi.position =
      Point{rng->UniformDouble(bounds.min.x + mx, bounds.max.x - mx),
            rng->UniformDouble(bounds.min.y + my, bounds.max.y - my)};
  std::vector<KeywordId> ids;
  int64_t count = rng->UniformInt(1, 3);
  for (int64_t c = 0; c < count; ++c) {
    ids.push_back(static_cast<KeywordId>(rng->UniformInt(0, kPoiVocab - 1)));
  }
  poi.keywords = KeywordSet(std::move(ids));
  poi.weight = rng->UniformDouble(0.5, 2.0);
  return poi;
}

TEST(IngestTest, EpochZeroIsBitIdenticalToTheStaticPath) {
  LiveWorld world(MakeDataset(21, 400, 60), kCellSize);
  EXPECT_EQ(world.epoch(), 0u);
  EXPECT_EQ(world.num_live_pois(), 400);
  EXPECT_EQ(world.num_live_photos(), 60);

  std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->epoch, 0u);
  EXPECT_EQ(pin->overlay, nullptr);
  EXPECT_EQ(pin->grid, &world.base_indexes().poi_grid);

  std::unique_ptr<QueryEngine> live = MakeLiveEngine(world);
  ExpectMatchesColdRebuild(world, live.get(), MakeQueryPool(), "epoch 0");
}

TEST(IngestTest, InsertsAndDeletesBecomeVisibleAndOldPinsDoNot) {
  LiveWorld world(MakeDataset(22, 300, 40), kCellSize);
  std::unique_ptr<QueryEngine> live = MakeLiveEngine(world);
  std::vector<SoiQuery> pool = MakeQueryPool();

  // Pin epoch 0 before any mutation; it must stay frozen below.
  std::shared_ptr<const PoiEpochSnapshot> old_pin = world.Pin();
  Result<SoiResult> before = live->TryRun(pool[4]);
  ASSERT_TRUE(before.ok());

  Rng rng(97);
  UpdateBatch batch;
  for (int i = 0; i < 25; ++i) {
    batch.poi_inserts.push_back(
        RandomInsert(&rng, world.geometry().bounds()));
  }
  for (PoiId id : {3, 17, 42, 118, 250}) batch.poi_deletes.push_back(id);
  Status applied = world.ApplyBatch(batch);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(world.epoch(), 1u);
  EXPECT_EQ(world.num_live_pois(), 300 + 25 - 5);
  EXPECT_EQ(world.applied_ops(), 30u);

  // The new epoch serves the mutated world, bit-identically to a cold
  // rebuild of it.
  ExpectMatchesColdRebuild(world, live.get(), pool, "after batch");

  // The old pin still reads epoch 0: same state, bit for bit.
  EXPECT_EQ(old_pin->epoch, 0u);
  EXPECT_EQ(old_pin->overlay, nullptr);
  LivePoiView old_view = old_pin->View();
  SoiAlgorithmOptions view_options;
  view_options.live_view = &old_view;
  SoiAlgorithm algorithm(world.base_dataset().network,
                         world.base_indexes().poi_grid,
                         world.base_indexes().global_index);
  EpsAugmentedMaps maps(world.base_indexes().segment_cells, pool[4].eps);
  Result<SoiResult> frozen = algorithm.TryTopK(pool[4], maps, view_options);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  ExpectBitIdentical(frozen.ValueOrDie().streets,
                     before.ValueOrDie().streets, "old pin");
}

TEST(IngestTest, InvalidBatchesAreRejectedWholeWithNoEpochChange) {
  LiveWorld world(MakeDataset(23, 200, 20), kCellSize);
  Rng rng(5);
  uint64_t epoch = world.epoch();
  int64_t live_pois = world.num_live_pois();
  uint64_t applied = world.applied_ops();

  auto expect_rejected = [&](const UpdateBatch& batch, const char* what) {
    Status status = world.ApplyBatch(batch);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << what;
    EXPECT_EQ(world.epoch(), epoch) << what;
    EXPECT_EQ(world.num_live_pois(), live_pois) << what;
    EXPECT_EQ(world.applied_ops(), applied) << what;
  };

  {
    // A good insert riding with an out-of-bounds one: whole batch dies.
    UpdateBatch batch;
    batch.poi_inserts.push_back(
        RandomInsert(&rng, world.geometry().bounds()));
    Poi outside = RandomInsert(&rng, world.geometry().bounds());
    outside.position = Point{9.0, 9.0};
    batch.poi_inserts.push_back(outside);
    expect_rejected(batch, "out of bounds");
  }
  {
    UpdateBatch batch;
    Poi nan_pos = RandomInsert(&rng, world.geometry().bounds());
    nan_pos.position.x = std::numeric_limits<double>::quiet_NaN();
    batch.poi_inserts.push_back(nan_pos);
    expect_rejected(batch, "NaN position");
  }
  {
    UpdateBatch batch;
    Poi bad_weight = RandomInsert(&rng, world.geometry().bounds());
    bad_weight.weight = 0.0;
    batch.poi_inserts.push_back(bad_weight);
    expect_rejected(batch, "non-positive weight");
  }
  {
    UpdateBatch batch;
    Poi no_keywords = RandomInsert(&rng, world.geometry().bounds());
    no_keywords.keywords = KeywordSet();
    batch.poi_inserts.push_back(no_keywords);
    expect_rejected(batch, "empty keywords");
  }
  {
    UpdateBatch batch;
    Poi bad_keyword = RandomInsert(&rng, world.geometry().bounds());
    bad_keyword.keywords = KeywordSet({static_cast<KeywordId>(
        world.base_dataset().vocabulary.size() + 5)});
    batch.poi_inserts.push_back(bad_keyword);
    expect_rejected(batch, "out-of-vocabulary keyword");
  }
  {
    UpdateBatch batch;
    batch.poi_deletes = {5, 5};
    expect_rejected(batch, "duplicate delete");
  }
  {
    UpdateBatch batch;
    batch.poi_deletes = {100000};
    expect_rejected(batch, "unknown delete id");
  }
  {
    // Deleting a dead POI: kill id 7 for real first.
    UpdateBatch kill;
    kill.poi_deletes = {7};
    ASSERT_TRUE(world.ApplyBatch(kill).ok());
    epoch = world.epoch();
    live_pois = world.num_live_pois();
    applied = world.applied_ops();
    UpdateBatch batch;
    batch.poi_deletes = {7};
    expect_rejected(batch, "already-deleted id");
  }
  {
    UpdateBatch batch;
    batch.photo_deletes = {100000};
    expect_rejected(batch, "unknown photo delete id");
  }

  // An empty batch is a no-op OK, not a new epoch.
  EXPECT_TRUE(world.ApplyBatch(UpdateBatch{}).ok());
  EXPECT_EQ(world.epoch(), epoch);
}

TEST(IngestTest, SequentialBatchesStayBitIdenticalThroughCompaction) {
  LiveWorld world(MakeDataset(24, 350, 50), kCellSize);
  std::unique_ptr<QueryEngine> live = MakeLiveEngine(world);
  std::vector<SoiQuery> pool = MakeQueryPool();
  Rng rng(4242);

  // Local mirror of the live-id space: alive ids, and the next id an
  // insert receives. Compaction renumbers densely in live-id order.
  std::vector<PoiId> alive(350);
  for (size_t i = 0; i < alive.size(); ++i) {
    alive[i] = static_cast<PoiId>(i);
  }
  PoiId next_id = 350;

  for (int step = 0; step < 8; ++step) {
    UpdateBatch batch;
    int64_t inserts = rng.UniformInt(0, 12);
    for (int64_t i = 0; i < inserts; ++i) {
      batch.poi_inserts.push_back(
          RandomInsert(&rng, world.geometry().bounds()));
    }
    int64_t deletes = rng.UniformInt(0, 6);
    for (int64_t d = 0; d < deletes && !alive.empty(); ++d) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      batch.poi_deletes.push_back(alive[pick]);
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    }
    if (rng.UniformInt(0, 3) == 0) {
      Photo photo;
      photo.position = Point{0.01, 0.01};
      batch.photo_inserts.push_back(std::move(photo));
    }
    ASSERT_TRUE(world.ApplyBatch(batch).ok()) << "step " << step;
    for (size_t i = 0; i < batch.poi_inserts.size(); ++i) {
      alive.push_back(next_id++);
    }
    ASSERT_EQ(world.num_live_pois(),
              static_cast<int64_t>(alive.size()));

    ExpectMatchesColdRebuild(world, live.get(), pool,
                             ("step " + std::to_string(step)).c_str());

    if (step == 3 || step == 6) {
      ASSERT_TRUE(world.Compact().ok());
      EXPECT_EQ(world.Pin()->overlay, nullptr);
      // Ids renumber densely; the next insert continues from the top.
      for (size_t i = 0; i < alive.size(); ++i) {
        alive[i] = static_cast<PoiId>(i);
      }
      next_id = static_cast<PoiId>(alive.size());
      ExpectMatchesColdRebuild(world, live.get(), pool, "post-compact");
    }
  }
}

TEST(IngestTest, PinnedSnapshotSurvivesCompactionAndReclamation) {
  LiveWorld world(MakeDataset(25, 250, 30), kCellSize);
  Rng rng(77);
  UpdateBatch batch;
  for (int i = 0; i < 10; ++i) {
    batch.poi_inserts.push_back(
        RandomInsert(&rng, world.geometry().bounds()));
  }
  batch.poi_deletes = {1, 2, 3};
  ASSERT_TRUE(world.ApplyBatch(batch).ok());

  // Pin the overlay epoch, then compact twice (the second republish
  // reclaims retired holders); the pinned view must stay fully valid.
  std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
  ASSERT_NE(pin->overlay, nullptr);
  uint64_t pinned_epoch = pin->epoch;

  ASSERT_TRUE(world.Compact().ok());
  UpdateBatch more;
  more.poi_inserts.push_back(RandomInsert(&rng, world.geometry().bounds()));
  ASSERT_TRUE(world.ApplyBatch(more).ok());
  ASSERT_TRUE(world.Compact().ok());

  EXPECT_EQ(pin->epoch, pinned_epoch);
  LivePoiView view = pin->View();
  // Walk every cell of the pinned epoch through the overlay merge; this
  // dereferences the overlay's replacement cells and the base arena.
  int64_t live_total = 0;
  for (CellId cell = 0; cell < world.geometry().num_cells(); ++cell) {
    live_total += view.NumPoisInCell(cell);
  }
  EXPECT_EQ(live_total, 250 + 10 - 3);
}

TEST(IngestTest, RandomizedInterleavingMatchesColdRebuildAtTheEnd) {
  LiveWorld world(MakeDataset(26, 400, 50), kCellSize);
  std::unique_ptr<QueryEngine> live = MakeLiveEngine(world, 2);
  std::vector<SoiQuery> pool = MakeQueryPool();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> applied_batches{0};
  std::atomic<int64_t> query_failures{0};

  // Two writers race random batches; deletes may collide with each
  // other (or with compaction renumbering), which must surface as
  // whole-batch kInvalidArgument — never a partial application.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&world, &applied_batches, w] {
      Rng rng(1000 + static_cast<uint64_t>(w));
      for (int step = 0; step < 30; ++step) {
        UpdateBatch batch;
        int64_t inserts = rng.UniformInt(1, 6);
        for (int64_t i = 0; i < inserts; ++i) {
          batch.poi_inserts.push_back(
              RandomInsert(&rng, world.geometry().bounds()));
        }
        if (rng.UniformInt(0, 1) == 0) {
          batch.poi_deletes.push_back(
              static_cast<PoiId>(rng.UniformInt(0, 399)));
        }
        Status status = world.ApplyBatch(batch);
        ASSERT_TRUE(status.ok() ||
                    status.code() == StatusCode::kInvalidArgument)
            << status.ToString();
        if (status.ok()) ++applied_batches;
      }
    });
  }
  // One compactor thread folding mid-flight.
  std::thread compactor([&world, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(world.Compact().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Reader threads hammer the live engine; epochs change under them but
  // every query must still succeed (pinned-epoch consistency).
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&live, &pool, &stop, &query_failures, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        Result<SoiResult> result = live->TryRun(pool[i++ % pool.size()]);
        if (!result.ok()) ++query_failures;
      }
    });
  }

  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  compactor.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(applied_batches.load(), 0);
  EXPECT_EQ(query_failures.load(), 0);

  // The final state — after the dust settles and one more fold — is
  // bit-identical to a cold rebuild of the final dataset.
  ASSERT_TRUE(world.Compact().ok());
  ExpectMatchesColdRebuild(world, live.get(), pool, "final state");
  Dataset final_dataset = world.MaterializeLiveDataset();
  EXPECT_EQ(static_cast<int64_t>(final_dataset.pois.size()),
            world.num_live_pois());
  EXPECT_EQ(static_cast<int64_t>(final_dataset.photos.size()),
            world.num_live_photos());
}

TEST(IngestTest, BackgroundCompactorFoldsAfterTheOpThreshold) {
  LiveWorldOptions options;
  options.auto_compact_ops = 4;
  LiveWorld world(MakeDataset(27, 200, 20), kCellSize, options);
  Rng rng(31);

  UpdateBatch batch;
  for (int i = 0; i < 5; ++i) {
    batch.poi_inserts.push_back(
        RandomInsert(&rng, world.geometry().bounds()));
  }
  ASSERT_TRUE(world.ApplyBatch(batch).ok());

  // The compactor wakes on the threshold and republishes a null-overlay
  // epoch; poll with a generous deadline.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
    if (pin->overlay == nullptr && pin->epoch >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
  EXPECT_EQ(pin->overlay, nullptr);
  EXPECT_GE(pin->epoch, 2u);
  EXPECT_EQ(world.num_live_pois(), 205);
}

TEST(IngestTest, SaveRoundTripsThroughTheVersionedSnapshotFormat) {
  LiveWorld world(MakeDataset(28, 300, 40), kCellSize);
  std::unique_ptr<QueryEngine> live = MakeLiveEngine(world);
  std::vector<SoiQuery> pool = MakeQueryPool();
  Rng rng(88);

  UpdateBatch batch;
  for (int i = 0; i < 15; ++i) {
    batch.poi_inserts.push_back(
        RandomInsert(&rng, world.geometry().bounds()));
  }
  batch.poi_deletes = {10, 20, 30};
  Photo photo;
  photo.position = Point{0.02, 0.02};
  batch.photo_inserts.push_back(std::move(photo));
  batch.photo_deletes = {5};
  ASSERT_TRUE(world.ApplyBatch(batch).ok());

  std::string path = ::testing::TempDir() + "/soi_ingest_test.snap";
  ASSERT_TRUE(world.Save(path).ok());

  // Save compacts first, so the file records the post-fold epoch.
  Result<SnapshotInfo> info = InspectSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info.ValueOrDie().ingest_epoch, world.epoch());
  EXPECT_EQ(info.ValueOrDie().ingest_applied_ops, world.applied_ops());
  EXPECT_EQ(info.ValueOrDie().num_pois,
            static_cast<uint64_t>(world.num_live_pois()));
  EXPECT_EQ(info.ValueOrDie().num_photos,
            static_cast<uint64_t>(world.num_live_photos()));

  Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedSnapshot& snap = loaded.ValueOrDie();
  EXPECT_EQ(snap.ingest_epoch, world.epoch());
  EXPECT_EQ(snap.ingest_applied_ops, world.applied_ops());

  // The restored dataset is the live dataset, id for id.
  Dataset materialized = world.MaterializeLiveDataset();
  ASSERT_EQ(snap.dataset->pois.size(), materialized.pois.size());
  for (size_t i = 0; i < materialized.pois.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(snap.dataset->pois[i].position.x),
              std::bit_cast<uint64_t>(materialized.pois[i].position.x));
    ASSERT_EQ(std::bit_cast<uint64_t>(snap.dataset->pois[i].weight),
              std::bit_cast<uint64_t>(materialized.pois[i].weight));
    ASSERT_EQ(snap.dataset->pois[i].keywords.ids(),
              materialized.pois[i].keywords.ids());
  }
  ASSERT_EQ(snap.dataset->photos.size(), materialized.photos.size());

  // An engine warm-started over the restored indexes answers the pool
  // bit-identically to the live world.
  QueryEngine restored(snap.dataset->network, snap.indexes->poi_grid,
                       snap.indexes->global_index,
                       snap.indexes->segment_cells);
  for (const SoiQuery& query : pool) {
    Result<SoiResult> got = restored.TryRun(query);
    Result<SoiResult> want = live->TryRun(query);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectBitIdentical(got.ValueOrDie().streets,
                       want.ValueOrDie().streets, "restored snapshot");
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ingest
}  // namespace soi
