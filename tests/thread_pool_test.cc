#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace soi {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    ParallelFor(&pool, 0, 1000, [&](int64_t i) {
      ++hits[static_cast<size_t>(i)];
    });
    for (const auto& h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, ParallelForWithNullPoolRunsInline) {
  std::vector<int> out(100, 0);
  ParallelFor(nullptr, 0, 100, [&](int64_t i) {
    out[static_cast<size_t>(i)] = static_cast<int>(i) * 2;
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * 2);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 0, 0, [&](int64_t) { ++calls; });
  ParallelFor(&pool, 5, 5, [&](int64_t) { ++calls; });
  ParallelFor(&pool, 10, 3, [&](int64_t) { ++calls; });
  ParallelForChunks(&pool, 7, 7, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForChunks(&pool, 10, 110, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.push_back({lo, hi});
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(chunks.size(), 3u);
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 110);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 100,
                  [&](int64_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // Every chunk still ran to completion and the pool is reusable.
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 0, 100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, PropagatesExceptionFromCallerChunkToo) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 0, 10,
                           [&](int64_t i) {
                             if (i == 0) throw std::logic_error("first");
                           }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<int64_t> sums(8, 0);
  ParallelFor(&pool, 0, 8, [&](int64_t i) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested loop must degrade to the sequential path (same pool or
    // any other), so plain non-atomic accumulation is safe.
    ParallelFor(&pool, 0, 100, [&](int64_t j) {
      sums[static_cast<size_t>(i)] += j;
    });
  });
  for (int64_t s : sums) EXPECT_EQ(s, 99 * 100 / 2);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ParallelSortMatchesStdSort) {
  Rng rng(42);
  std::vector<int64_t> values(50000);
  for (auto& v : values) v = static_cast<int64_t>(rng.UniformInt(
      static_cast<uint64_t>(10000)));
  auto cmp = [](int64_t a, int64_t b) { return a < b; };
  std::vector<int64_t> expected = values;
  std::sort(expected.begin(), expected.end(), cmp);
  for (int threads : {1, 2, 3, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> got = values;
    ParallelSort(&pool, got.begin(), got.end(), cmp);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

// An injected chunk-dispatch fault must behave exactly like a thrown
// chunk body: siblings run to completion, the error reaches the caller,
// and the pool (and its queue-depth gauge) are left clean. Runs fully
// only under the `fault` preset; elsewhere it checks the happy path.
TEST(ThreadPoolTest, InjectedChunkFaultDoesNotTakeDownSiblingsOrPool) {
  fault::Registry::Global().Reset();
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  auto count_all = [&](int64_t i) { ++hits[static_cast<size_t>(i)]; };

  {
    // Fire on the second chunk dispatched, once.
    fault::FaultPlan plan;
    plan.after = 1;
    fault::ScopedFault armed("pool.run_chunk", plan);
    if (fault::kEnabled) {
      EXPECT_THROW(ParallelFor(&pool, 0, 64, count_all),
                   fault::FaultInjectedError);
      // Exactly one chunk was lost; the sibling chunks all completed.
      int64_t done = 0;
      for (const auto& h : hits) done += h;
      EXPECT_LT(done, 64);
      EXPECT_GE(done, 64 - (64 / 4 + 1));
      EXPECT_EQ(fault::Registry::Global().FireCount("pool.run_chunk"), 1);
    } else {
      ParallelFor(&pool, 0, 64, count_all);
      for (const auto& h : hits) EXPECT_EQ(h, 1);
    }
  }

  // The pool is not wedged: a follow-up loop covers every index.
  for (auto& h : hits) h = 0;
  ParallelFor(&pool, 0, 64, count_all);
  for (const auto& h : hits) EXPECT_EQ(h, 1);

#if SOI_OBS_ENABLED
  // All queued tasks were drained, faulted or not.
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  for (const obs::MetricsSnapshot::GaugeValue& gauge : snapshot.gauges) {
    if (gauge.name == "soi.pool.queue_depth") {
      EXPECT_EQ(gauge.value, 0);
    }
  }
#endif
}

TEST(ThreadPoolTest, ParallelSortSmallRangeFallsBack) {
  ThreadPool pool(4);
  std::vector<int> values = {5, 3, 9, 1};
  ParallelSort(&pool, values.begin(), values.end(),
               [](int a, int b) { return a < b; });
  EXPECT_EQ(values, (std::vector<int>{1, 3, 5, 9}));
}

}  // namespace
}  // namespace soi
