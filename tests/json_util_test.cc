// ValidateJson: strict RFC 8259 acceptance and rejection. The validator
// guards the introspection artifacts (SOI_STATE*.json, BENCH_*.json), so
// the rejection cases matter as much as the acceptance ones — a lax
// validator would wave broken dumps through `soi_obs check`.

#include "common/json_util.h"

#include <string>

#include "gtest/gtest.h"

namespace soi {
namespace {

TEST(ValidateJsonTest, AcceptsCanonicalDocuments) {
  const char* kValid[] = {
      "{}",
      "[]",
      "null",
      "true",
      "false",
      "0",
      "-0.5e10",
      "1e-3",
      "\"\"",
      "\"escape \\\" \\\\ \\/ \\b \\f \\n \\r \\t \\u00e9\"",
      "[1, 2.5, -3, \"x\", null, true, [\"nested\"], {\"k\": []}]",
      "{\"a\": {\"b\": {\"c\": [1, {\"d\": null}]}}}",
      "  {\"padded\"  :  1 }  ",
  };
  for (const char* text : kValid) {
    EXPECT_TRUE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, RejectsMalformedDocuments) {
  const char* kInvalid[] = {
      "",
      "   ",
      "{",
      "}",
      "[1,]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a: 1}",
      "{'a': 1}",
      "[1 2]",
      "01",
      "1.",
      ".5",
      "+1",
      "1e",
      "--1",
      "tru",
      "nul",
      "True",
      "\"unterminated",
      "\"bad escape \\x\"",
      "\"bad unicode \\u12g4\"",
      "\"control \x01 char\"",
      "{} extra",
      "[1] [2]",
      "{\"dup\": 1,}",
  };
  for (const char* text : kInvalid) {
    EXPECT_FALSE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, ErrorCarriesByteOffset) {
  Status status = ValidateJson("{\"a\": 1,}");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("at byte"), std::string::npos)
      << status.ToString();
}

TEST(ValidateJsonTest, RejectsRunawayNesting) {
  // Depth guard: 300 nested arrays exceed the validator's limit; a
  // malicious or corrupted dump cannot blow the stack.
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(ValidateJson(deep).ok());
  std::string fine(100, '[');
  fine += std::string(100, ']');
  EXPECT_TRUE(ValidateJson(fine).ok());
}

}  // namespace
}  // namespace soi
