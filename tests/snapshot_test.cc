// Snapshot round-trip property tests (DESIGN.md "Persistence & warm
// start"): a preset city saved and restored must serve bit-identical
// k-SOI rankings AND diversified photo summaries through the warm-start
// path, and structurally damaged snapshots (truncation, bit flips, bad
// magic, unsupported version) must fail with typed errors — never a
// crash. The injected-fault cases run fully under the `fault` preset and
// degrade to happy-path checks elsewhere.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/query_engine.h"
#include "core/street_photos.h"
#include "datagen/dataset.h"
#include "gtest/gtest.h"
#include "snapshot/byte_io.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace soi {
namespace {

constexpr double kCellSize = 0.0005;
constexpr double kEps = 0.0005;

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityProfile profile = testing_util::TinyCityProfile(7);
    dataset_ = new Dataset(GenerateCity(profile).ValueOrDie());
    indexes_ = BuildIndexes(*dataset_, kCellSize).release();
    eps_maps_ = new EpsAugmentedMaps(indexes_->segment_cells, kEps);
  }

  static void TearDownTestSuite() {
    delete eps_maps_;
    delete indexes_;
    delete dataset_;
    eps_maps_ = nullptr;
    indexes_ = nullptr;
    dataset_ = nullptr;
  }

  static std::string Encode() {
    SnapshotContents contents;
    contents.dataset = dataset_;
    contents.indexes = indexes_;
    contents.eps_maps.push_back(eps_maps_);
    std::ostringstream out;
    Status saved = SaveSnapshot(contents, &out);
    SOI_CHECK(saved.ok()) << saved.ToString();
    return std::move(out).str();
  }

  static Result<LoadedSnapshot> Decode(const std::string& bytes) {
    std::istringstream in(bytes);
    return LoadSnapshot(&in);
  }

  static Dataset* dataset_;
  static DatasetIndexes* indexes_;
  static EpsAugmentedMaps* eps_maps_;
};

Dataset* SnapshotTest::dataset_ = nullptr;
DatasetIndexes* SnapshotTest::indexes_ = nullptr;
EpsAugmentedMaps* SnapshotTest::eps_maps_ = nullptr;

SoiQuery MakeQuery(const Dataset& dataset, int32_t k) {
  SoiQuery query;
  query.keywords = KeywordSet({dataset.vocabulary.Find("shop"),
                               dataset.vocabulary.Find("food")});
  query.k = k;
  query.eps = kEps;
  return query;
}

TEST_F(SnapshotTest, RoundTripRestoresTheDatasetExactly) {
  Result<LoadedSnapshot> loaded = Decode(Encode());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedSnapshot& snap = loaded.ValueOrDie();

  EXPECT_EQ(snap.dataset->name, dataset_->name);
  EXPECT_EQ(snap.dataset->vocabulary.size(), dataset_->vocabulary.size());
  ASSERT_EQ(snap.dataset->network.num_vertices(),
            dataset_->network.num_vertices());
  ASSERT_EQ(snap.dataset->network.num_segments(),
            dataset_->network.num_segments());
  ASSERT_EQ(snap.dataset->network.num_streets(),
            dataset_->network.num_streets());
  ASSERT_EQ(snap.dataset->pois.size(), dataset_->pois.size());
  ASSERT_EQ(snap.dataset->photos.size(), dataset_->photos.size());

  // Bit-exact spot checks of the payloads the format must round-trip.
  for (size_t i = 0; i < dataset_->pois.size(); ++i) {
    ASSERT_EQ(snap.dataset->pois[i].position.x,
              dataset_->pois[i].position.x);
    ASSERT_EQ(snap.dataset->pois[i].weight, dataset_->pois[i].weight);
    ASSERT_EQ(snap.dataset->pois[i].keywords.ids(),
              dataset_->pois[i].keywords.ids());
  }
  for (int64_t v = 0; v < dataset_->network.num_vertices(); ++v) {
    ASSERT_EQ(
        snap.dataset->network.vertices()[static_cast<size_t>(v)].position.x,
        dataset_->network.vertices()[static_cast<size_t>(v)].position.x);
  }

  // The restored geometry is the one a fresh BuildIndexes would derive.
  EXPECT_EQ(snap.indexes->geometry.bounds().min.x,
            ComputeDatasetBounds(*dataset_).min.x);
  EXPECT_EQ(snap.indexes->geometry.num_cells(),
            indexes_->geometry.num_cells());

  // Segment/cell maps and the restored eps maps are bit-identical.
  for (SegmentId s = 0; s < dataset_->network.num_segments(); ++s) {
    ASSERT_EQ(snap.indexes->segment_cells.SegmentCells(s),
              indexes_->segment_cells.SegmentCells(s));
  }
  ASSERT_EQ(snap.eps_maps.size(), 1u);
  EXPECT_EQ(snap.eps_maps[0]->eps(), kEps);
  for (SegmentId s = 0; s < dataset_->network.num_segments(); ++s) {
    ASSERT_EQ(snap.eps_maps[0]->SegmentCells(s),
              eps_maps_->SegmentCells(s));
  }
}

// Byte-format regression for the flat-CSR index layout: decoding a
// snapshot and re-encoding the loaded contents reproduces the original
// bytes exactly. A layout change that shifted the on-disk format (or a
// lossy CSR decode) would break the fixed point; "SOISNAP1" files keep
// loading with no format bump.
TEST_F(SnapshotTest, ReEncodingALoadedSnapshotIsByteIdentical) {
  std::string bytes = Encode();
  Result<LoadedSnapshot> loaded = Decode(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedSnapshot& snap = loaded.ValueOrDie();

  SnapshotContents contents;
  contents.dataset = snap.dataset.get();
  contents.indexes = snap.indexes.get();
  for (const std::shared_ptr<const EpsAugmentedMaps>& maps : snap.eps_maps) {
    contents.eps_maps.push_back(maps.get());
  }
  std::ostringstream out;
  Status saved = SaveSnapshot(contents, &out);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  EXPECT_EQ(std::move(out).str(), bytes);
}

TEST_F(SnapshotTest, WarmStartServesBitIdenticalTopK) {
  Result<LoadedSnapshot> loaded = Decode(Encode());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedSnapshot& snap = loaded.ValueOrDie();

  QueryEngineOptions options;
  QueryEngine fresh(dataset_->network, indexes_->poi_grid,
                    indexes_->global_index, indexes_->segment_cells,
                    options);
  QueryEngine warm(snap.dataset->network, snap.indexes->poi_grid,
                   snap.indexes->global_index, snap.indexes->segment_cells,
                   options, snap.eps_maps);

  for (int32_t k : {1, 5, 20}) {
    SoiQuery query = MakeQuery(*dataset_, k);
    SoiResult want = fresh.Run(query);
    SoiResult got = warm.Run(query);
    ASSERT_EQ(got.streets.size(), want.streets.size());
    for (size_t r = 0; r < got.streets.size(); ++r) {
      EXPECT_EQ(got.streets[r].street, want.streets[r].street);
      EXPECT_EQ(got.streets[r].interest, want.streets[r].interest);
      EXPECT_EQ(got.streets[r].best_segment, want.streets[r].best_segment);
    }
  }
  // Every warm query hit the preloaded maps; nothing was rebuilt.
  EXPECT_EQ(warm.cache_stats().misses, 0);
  EXPECT_GT(warm.cache_stats().hits, 0);
}

TEST_F(SnapshotTest, WarmStartServesBitIdenticalDiversification) {
  Result<LoadedSnapshot> loaded = Decode(Encode());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedSnapshot& snap = loaded.ValueOrDie();

  // Describe the fresh pipeline's top street from both pipelines; the
  // diversified summaries must match photo-for-photo.
  SoiQuery query = MakeQuery(*dataset_, 1);
  QueryEngine fresh(dataset_->network, indexes_->poi_grid,
                    indexes_->global_index, indexes_->segment_cells, {});
  StreetId top = fresh.Run(query).streets.at(0).street;

  DiversifyParams params;
  params.k = 5;
  params.rho = 0.0001;
  auto summarize = [&](const Dataset& dataset,
                       const DatasetIndexes& indexes) {
    StreetPhotos sp = ExtractStreetPhotos(dataset.network, top,
                                          dataset.photos,
                                          indexes.photo_grid, query.eps);
    PhotoScorer scorer(sp, params.rho);
    PhotoGridIndex index(params.rho / 2, sp.photos);
    CellBoundsCalculator cell_bounds(sp, index);
    return StRelDivSelect(scorer, cell_bounds, params).selected;
  };
  std::vector<PhotoId> want = summarize(*dataset_, *indexes_);
  std::vector<PhotoId> got = summarize(*snap.dataset, *snap.indexes);
  EXPECT_EQ(got, want);
  EXPECT_FALSE(want.empty());
}

TEST_F(SnapshotTest, InspectReportsSectionsAndCounts) {
  std::string bytes = Encode();
  std::istringstream in(bytes);
  Result<SnapshotInfo> info = InspectSnapshot(&in);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info.ValueOrDie().dataset_name, dataset_->name);
  EXPECT_EQ(info.ValueOrDie().num_pois, dataset_->pois.size());
  EXPECT_EQ(info.ValueOrDie().total_bytes, bytes.size());
  ASSERT_EQ(info.ValueOrDie().sections.size(), 9u);
  EXPECT_EQ(info.ValueOrDie().sections.front().name, "meta");
  ASSERT_EQ(info.ValueOrDie().eps_values.size(), 1u);
  EXPECT_EQ(info.ValueOrDie().eps_values[0], kEps);
}

TEST_F(SnapshotTest, FileRoundTripMatchesStreamRoundTrip) {
  std::string path = ::testing::TempDir() + "/soi_snapshot_test.snap";
  SnapshotContents contents;
  contents.dataset = dataset_;
  contents.indexes = indexes_;
  contents.eps_maps.push_back(eps_maps_);
  ASSERT_TRUE(SaveSnapshotToFile(contents, path).ok());
  Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().dataset->pois.size(),
            dataset_->pois.size());
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, BadMagicFailsTyped) {
  std::string bytes = Encode();
  bytes[0] = 'X';
  Result<LoadedSnapshot> loaded = Decode(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, UnsupportedVersionFailsTyped) {
  std::string bytes = Encode();
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  Result<LoadedSnapshot> loaded = Decode(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, IngestMetaFieldsRoundTripThroughSaveLoadInspect) {
  SnapshotContents contents;
  contents.dataset = dataset_;
  contents.indexes = indexes_;
  contents.ingest_epoch = 7;
  contents.ingest_applied_ops = 42;
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(contents, &out).ok());
  std::string bytes = std::move(out).str();

  Result<LoadedSnapshot> loaded = Decode(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().ingest_epoch, 7u);
  EXPECT_EQ(loaded.ValueOrDie().ingest_applied_ops, 42u);

  std::istringstream in(bytes);
  Result<SnapshotInfo> info = InspectSnapshot(&in);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info.ValueOrDie().ingest_epoch, 7u);
  EXPECT_EQ(info.ValueOrDie().ingest_applied_ops, 42u);
}

/// Rewrites a current-version snapshot into a byte-exact v1 file: patch
/// the header version and strip the meta section's 16 trailing ingest
/// bytes (re-CRC'd). Returns the original bytes' meta payload length via
/// `meta_len` for the negative variant below.
std::string RewriteAsVersionOne(std::string bytes, bool strip_ingest) {
  // Header: magic(8) + version u32 + section count u32.
  bytes[8] = 1;
  bytes[9] = 0;
  bytes[10] = 0;
  bytes[11] = 0;
  if (!strip_ingest) return bytes;
  // The meta section leads at offset 16: u32 id, u64 bytes, u32 crc.
  ByteReader r(std::string_view(bytes).substr(16, 16));
  uint32_t id = 0;
  uint64_t len = 0;
  SOI_CHECK(r.ReadU32(&id).ok() && id == 1);
  SOI_CHECK(r.ReadU64(&len).ok() && len >= 16);
  std::string v1_meta = bytes.substr(32, static_cast<size_t>(len) - 16);
  ByteWriter header;
  header.PutU32(id);
  header.PutU64(v1_meta.size());
  header.PutU32(Crc32(v1_meta));
  return bytes.substr(0, 16) + header.data() + v1_meta +
         bytes.substr(32 + static_cast<size_t>(len));
}

TEST_F(SnapshotTest, VersionOneFilesStillLoadWithZeroIngestFields) {
  std::string v1 = RewriteAsVersionOne(Encode(), /*strip_ingest=*/true);
  Result<LoadedSnapshot> loaded = Decode(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().ingest_epoch, 0u);
  EXPECT_EQ(loaded.ValueOrDie().ingest_applied_ops, 0u);
  EXPECT_EQ(loaded.ValueOrDie().dataset->pois.size(),
            dataset_->pois.size());

  std::istringstream in(v1);
  Result<SnapshotInfo> info = InspectSnapshot(&in);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().format_version, 1u);
  EXPECT_EQ(info.ValueOrDie().ingest_epoch, 0u);
}

TEST_F(SnapshotTest, VersionOneMetaWithTrailingBytesFailsTyped) {
  // A "v1" file whose meta still carries the v2 trailing fields is
  // corruption under the strict per-version length check — never a
  // silent partial decode.
  std::string bad = RewriteAsVersionOne(Encode(), /*strip_ingest=*/false);
  Result<LoadedSnapshot> loaded = Decode(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().ToString().find("trailing"),
            std::string::npos);
}

TEST_F(SnapshotTest, EveryTruncationFailsTyped) {
  std::string bytes = Encode();
  // Every prefix is invalid; probe a spread of lengths (every byte would
  // make the test quadratic in snapshot size).
  for (size_t len = 0; len < bytes.size();
       len += 1 + bytes.size() / 257) {
    Result<LoadedSnapshot> loaded = Decode(bytes.substr(0, len));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError) << len;
  }
}

TEST_F(SnapshotTest, BitFlipsFailTyped) {
  const std::string bytes = Encode();
  // Flip one bit at a spread of offsets past the header (header damage
  // is covered above). CRC catches payload flips; section-header flips
  // surface as bad ids/sizes/CRCs. Either way: a typed error or — for
  // flips in ignored positions — a clean load, never a crash.
  for (size_t pos = 16; pos < bytes.size();
       pos += 1 + bytes.size() / 131) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    Result<LoadedSnapshot> loaded = Decode(damaged);
    if (!loaded.ok()) {
      StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kIOError ||
                  code == StatusCode::kInvalidArgument)
          << "flip at " << pos << ": " << loaded.status().ToString();
    }
  }
}

TEST_F(SnapshotTest, PayloadCorruptionUnderValidCrcFailsTyped) {
  // Re-CRC a corrupted section so damage reaches the decoders: zero a
  // byte inside the network section's payload, then fix up its header
  // CRC. The decoder-level validation must still reject it.
  std::string bytes = Encode();
  size_t pos = 16;  // first section header
  std::vector<std::pair<size_t, size_t>> sections;  // header pos, size
  while (pos + 16 <= bytes.size()) {
    ByteReader r(std::string_view(bytes).substr(pos, 16));
    uint32_t id = 0;
    uint64_t size = 0;
    ASSERT_TRUE(r.ReadU32(&id).ok());
    ASSERT_TRUE(r.ReadU64(&size).ok());
    sections.emplace_back(pos, static_cast<size_t>(size));
    pos += 16 + static_cast<size_t>(size);
  }
  ASSERT_EQ(sections.size(), 9u);
  // Section 2 (index) is the network; corrupt a vertex id deep inside.
  auto [header_pos, size] = sections[2];
  size_t payload_pos = header_pos + 16;
  bytes[payload_pos + size - 2] = static_cast<char>(0xff);
  uint32_t crc = Crc32(std::string_view(bytes).substr(payload_pos, size));
  ByteWriter w;
  w.PutU32(crc);
  for (int i = 0; i < 4; ++i) bytes[header_pos + 12 + i] = w.data()[i];

  Result<LoadedSnapshot> loaded = Decode(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, WriteFaultSurfacesAsInternal) {
  SnapshotContents contents;
  contents.dataset = dataset_;
  contents.indexes = indexes_;
  fault::ScopedFault armed("snapshot.write_section", fault::FaultPlan{});
  std::ostringstream out;
  Status saved = SaveSnapshot(contents, &out);
  if (fault::kEnabled) {
    ASSERT_FALSE(saved.ok());
    EXPECT_EQ(saved.code(), StatusCode::kInternal);
  } else {
    EXPECT_TRUE(saved.ok());
  }
}

TEST_F(SnapshotTest, ReadFaultSurfacesAsInternalAndRetrySucceeds) {
  std::string bytes = Encode();
  {
    fault::ScopedFault armed("snapshot.read_section",
                             fault::FaultPlan{.after = 3});
    Result<LoadedSnapshot> loaded = Decode(bytes);
    if (fault::kEnabled) {
      ASSERT_FALSE(loaded.ok());
      EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
    } else {
      EXPECT_TRUE(loaded.ok());
    }
  }
  // Disarmed, the same bytes load cleanly — the failure was injected,
  // not sticky.
  EXPECT_TRUE(Decode(bytes).ok());
}

}  // namespace
}  // namespace soi
