#include "core/query_engine.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/soi_algorithm.h"
#include "gtest/gtest.h"
#include "obs/obs.h"
#include "test_util.h"

namespace soi {
namespace {

// A self-contained SOI instance (mirrors the soi_algorithm_test fixture).
struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  Instance(uint64_t seed, double cell_size, int64_t num_pois,
           int32_t vocab_size)
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(seed, num_pois, vocab_size, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), cell_size),
        grid(geometry.bounds(), cell_size, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, n, vocab_size, vocabulary, &rng);
  }
};

// A mixed batch with repeated eps values (so the cache sees hits), varied
// keywords, and varied k.
std::vector<SoiQuery> MakeBatch(uint64_t seed, int count) {
  Rng rng(seed);
  const double eps_values[] = {0.0008, 0.002, 0.005};
  std::vector<SoiQuery> batch;
  for (int i = 0; i < count; ++i) {
    SoiQuery query;
    std::vector<KeywordId> keywords;
    int64_t nq = rng.UniformInt(1, 3);
    for (int64_t j = 0; j < nq; ++j) {
      keywords.push_back(static_cast<KeywordId>(rng.UniformInt(0, 7)));
    }
    query.keywords = KeywordSet(keywords);
    query.k = static_cast<int32_t>(rng.UniformInt(1, 10));
    query.eps = eps_values[rng.UniformInt(static_cast<uint64_t>(3))];
    batch.push_back(query);
  }
  return batch;
}

// Bit-identical comparison of two results: answer streets (ids, exact
// interest bits, best segment) and every thread-invariant stat. Timings
// are wall-clock and excluded.
void ExpectIdenticalResults(const SoiResult& got, const SoiResult& want,
                            const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(got.streets.size(), want.streets.size());
  for (size_t i = 0; i < got.streets.size(); ++i) {
    EXPECT_EQ(got.streets[i].street, want.streets[i].street) << "rank " << i;
    EXPECT_EQ(got.streets[i].interest, want.streets[i].interest)
        << "rank " << i;
    EXPECT_EQ(got.streets[i].best_segment, want.streets[i].best_segment)
        << "rank " << i;
  }
  EXPECT_EQ(got.stats.iterations, want.stats.iterations);
  EXPECT_EQ(got.stats.cells_popped, want.stats.cells_popped);
  EXPECT_EQ(got.stats.segments_popped, want.stats.segments_popped);
  EXPECT_EQ(got.stats.segments_seen, want.stats.segments_seen);
  EXPECT_EQ(got.stats.segments_finalized_in_refinement,
            want.stats.segments_finalized_in_refinement);
  EXPECT_EQ(got.stats.poi_distance_checks, want.stats.poi_distance_checks);
  EXPECT_EQ(got.stats.final_upper_bound, want.stats.final_upper_bound);
  EXPECT_EQ(got.stats.final_lower_bound, want.stats.final_lower_bound);
}

TEST(QueryEngineTest, RunBatchIsBitIdenticalToSequentialAtAnyThreadCount) {
  Instance instance(3, /*cell_size=*/0.003, /*num_pois=*/600,
                    /*vocab_size=*/8);
  std::vector<SoiQuery> batch = MakeBatch(17, 24);

  // The reference path: fresh sequential maps + sequential TopK per query.
  SoiAlgorithm sequential(instance.network, instance.grid,
                          instance.global_index);
  std::vector<SoiResult> expected;
  for (const SoiQuery& query : batch) {
    EpsAugmentedMaps maps(instance.segment_cells, query.eps);
    expected.push_back(sequential.TopK(query, maps));
  }

  for (int threads : {1, 2, 4}) {
    QueryEngineOptions options;
    options.num_threads = threads;
    QueryEngine engine(instance.network, instance.grid,
                       instance.global_index, instance.segment_cells,
                       options);
    std::vector<SoiResult> got = engine.RunBatch(batch);
    ASSERT_EQ(got.size(), expected.size());
    std::string label = "threads=" + std::to_string(threads);
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectIdenticalResults(got[i], expected[i],
                             (label + " query=" + std::to_string(i)).c_str());
    }
  }
}

TEST(QueryEngineTest, ParallelEpsAugmentationIsIdenticalToSequential) {
  Instance instance(5, 0.003, 400, 6);
  ThreadPool pool(4);
  for (double eps : {0.0, 0.0008, 0.003}) {
    EpsAugmentedMaps sequential(instance.segment_cells, eps);
    EpsAugmentedMaps parallel(instance.segment_cells, eps, &pool);
    for (SegmentId id = 0; id < instance.network.num_segments(); ++id) {
      EXPECT_EQ(parallel.SegmentCells(id), sequential.SegmentCells(id))
          << "segment " << id;
    }
    for (CellId cell = 0; cell < instance.geometry.num_cells(); ++cell) {
      EXPECT_EQ(parallel.CellSegments(cell), sequential.CellSegments(cell))
          << "cell " << cell;
    }
  }
}

TEST(QueryEngineTest, ParallelSegmentCellIndexIsIdenticalToSequential) {
  RoadNetwork network = testing_util::MakeGridNetwork(6, 6, 0.01);
  GridGeometry geometry(network.bounds().Expanded(0.005), 0.002);
  ThreadPool pool(4);
  SegmentCellIndex sequential(network, geometry);
  SegmentCellIndex parallel(network, geometry, &pool);
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    EXPECT_EQ(parallel.SegmentCells(id), sequential.SegmentCells(id));
  }
  for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
    EXPECT_EQ(parallel.CellSegments(cell), sequential.CellSegments(cell));
  }
}

TEST(QueryEngineTest, CacheMemoizesPerEps) {
  Instance instance(7, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  auto a = engine.GetMaps(0.001);
  auto b = engine.GetMaps(0.001);
  auto c = engine.GetMaps(0.002);
  EXPECT_EQ(a.get(), b.get());  // same memoized maps object
  EXPECT_NE(a.get(), c.get());
  QueryEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(QueryEngineTest, CacheEvictsLeastRecentlyUsedAtCapacity) {
  Instance instance(9, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.eps_cache_capacity = 2;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  auto a = engine.GetMaps(0.001);  // miss
  engine.GetMaps(0.002);           // miss
  engine.GetMaps(0.001);           // hit; 0.002 becomes LRU
  engine.GetMaps(0.003);           // miss, evicts 0.002
  EXPECT_EQ(engine.cache_stats().evictions, 1);
  auto a2 = engine.GetMaps(0.001);  // still cached
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_EQ(engine.cache_stats().hits, 2);
  engine.GetMaps(0.002);  // was evicted: a fresh miss
  EXPECT_EQ(engine.cache_stats().misses, 4);
  // The evicted shared_ptr handed out earlier remains valid for holders.
  EXPECT_EQ(a->eps(), 0.001);
}

// Regression test for in-flight eviction: at capacity 1, an insert for a
// second eps used to evict the entry whose build was still running,
// detaching the shared future concurrent same-eps requesters join on and
// forcing duplicate builds. In-flight entries are now exempt. The
// build_observer hook makes the race deterministic: the first build is
// held in flight while the eviction pressure and the concurrent same-eps
// request happen.
TEST(QueryEngineTest, EvictionExemptsInFlightBuilds) {
  Instance instance(13, 0.003, 300, 6);
  constexpr double kHotEps = 0.001;
  constexpr double kPressureEps = 0.002;

  std::mutex mutex;
  std::condition_variable cv;
  bool hot_started = false;
  bool release_hot = false;
  std::atomic<int> hot_builds{0};

  QueryEngineOptions options;
  options.num_threads = 1;
  options.eps_cache_capacity = 1;
  options.build_observer = [&](double eps) {
    if (eps != kHotEps) return;
    hot_builds.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    hot_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_hot; });
  };
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  std::thread builder([&] { engine.GetMaps(kHotEps); });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return hot_started; });
  }
  // The hot build is in flight and the cache is at capacity. This insert
  // must NOT evict it (the cache briefly exceeds capacity instead).
  engine.GetMaps(kPressureEps);

  // A concurrent same-eps request must join the in-flight build (a hit),
  // not start a second one.
  std::thread joiner([&] { engine.GetMaps(kHotEps); });
  while (engine.cache_stats().hits < 1) {
    std::this_thread::yield();
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    release_hot = true;
    cv.notify_all();
  }
  builder.join();
  joiner.join();

  EXPECT_EQ(hot_builds.load(), 1)
      << "in-flight entry was evicted and rebuilt";
  EXPECT_EQ(engine.cache_stats().evictions, 0);
  // Completed entries are evictable again: a third eps now evicts the
  // LRU completed one.
  engine.GetMaps(0.003);
  EXPECT_GE(engine.cache_stats().evictions, 1);
}

// The non-deterministic companion: hammer one eps from many threads at
// capacity 1 with occasional distinct-eps eviction pressure. Every hot
// rebuild requires its completed entry to have been evicted by a
// pressure insert first, so hot builds are bounded by pressure builds +
// 1; evicting in-flight builds breaks that bound (and used to).
TEST(QueryEngineTest, HammeringOneEpsAtCapacityOneNeverDuplicatesBuilds) {
  Instance instance(15, 0.003, 200, 6);
  constexpr double kHotEps = 0.001;
  std::atomic<int> hot_builds{0};
  std::atomic<int> pressure_builds{0};

  QueryEngineOptions options;
  options.num_threads = 1;
  options.eps_cache_capacity = 1;
  options.build_observer = [&](double eps) {
    (eps == kHotEps ? hot_builds : pressure_builds).fetch_add(1);
  };
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        if (t == 0 && i % 5 == 4) {
          // Eviction pressure: a distinct eps per round so it always
          // misses and inserts over the hot entry's slot.
          auto maps = engine.GetMaps(0.002 + i * 0.0001);
          ASSERT_NE(maps, nullptr);
        } else {
          auto maps = engine.GetMaps(kHotEps);
          ASSERT_NE(maps, nullptr);
          EXPECT_EQ(maps->eps(), kHotEps);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_LE(hot_builds.load(), pressure_builds.load() + 1)
      << "more hot rebuilds than eviction pressure can explain: an "
         "in-flight build was evicted";
}

TEST(QueryEngineTest, WarmStartSeedsTheCacheWithoutCountingMisses) {
  Instance instance(17, 0.003, 300, 6);
  auto a = std::make_shared<const EpsAugmentedMaps>(instance.segment_cells,
                                                    0.001);
  auto b = std::make_shared<const EpsAugmentedMaps>(instance.segment_cells,
                                                    0.002);
  QueryEngineOptions options;
  options.eps_cache_capacity = 2;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options, {a, b});

  EXPECT_EQ(engine.cache_size(), 2u);
  EXPECT_EQ(engine.cache_stats().hits, 0);
  EXPECT_EQ(engine.cache_stats().misses, 0);

  // Both eps serve from the seeded maps (the identical objects).
  EXPECT_EQ(engine.GetMaps(0.001).get(), a.get());
  EXPECT_EQ(engine.GetMaps(0.002).get(), b.get());
  EXPECT_EQ(engine.cache_stats().hits, 2);
  EXPECT_EQ(engine.cache_stats().misses, 0);

  // Seeded entries participate in LRU like any completed entry.
  engine.GetMaps(0.001);            // 0.002 becomes LRU
  engine.GetMaps(0.003);            // evicts 0.002
  EXPECT_EQ(engine.cache_stats().evictions, 1);
  EXPECT_EQ(engine.GetMaps(0.001).get(), a.get());
}

// Pins the warm-start eviction order deterministically: untouched
// pre-seeded entries are evictable in seeding (insertion) order — the
// first-seeded map is the LRU entry the first capacity miss pushes out,
// while later seeds and any subsequently-touched entries survive.
TEST(QueryEngineTest, WarmStartSeedsEvictInInsertionOrderWhenUntouched) {
  Instance instance(35, 0.003, 300, 6);
  auto a = std::make_shared<const EpsAugmentedMaps>(instance.segment_cells,
                                                    0.001);
  auto b = std::make_shared<const EpsAugmentedMaps>(instance.segment_cells,
                                                    0.002);
  auto c = std::make_shared<const EpsAugmentedMaps>(instance.segment_cells,
                                                    0.003);
  QueryEngineOptions options;
  options.eps_cache_capacity = 3;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options, {a, b, c});
  EXPECT_EQ(engine.cache_size(), 3u);

  // One capacity miss with every seed untouched: exactly the
  // first-seeded entry (a) is evicted.
  engine.GetMaps(0.004);
  EXPECT_EQ(engine.cache_stats().evictions, 1);
  EXPECT_EQ(engine.GetMaps(0.002).get(), b.get());
  EXPECT_EQ(engine.GetMaps(0.003).get(), c.get());
  // a is gone: the same eps now rebuilds a fresh object (a second
  // eviction — of the now-LRU 0.004 entry — makes room).
  EXPECT_NE(engine.GetMaps(0.001).get(), a.get());
  EXPECT_EQ(engine.cache_stats().evictions, 2);
  // The evicted seed handed out at construction stays valid for holders.
  EXPECT_EQ(a->eps(), 0.001);
}

TEST(QueryEngineTest, WarmStartServesBitIdenticalToColdEngine) {
  Instance instance(19, 0.003, 400, 6);
  std::vector<SoiQuery> batch = MakeBatch(29, 12);
  auto preloaded = std::make_shared<const EpsAugmentedMaps>(
      instance.segment_cells, 0.0008);

  QueryEngineOptions options;
  options.num_threads = 2;
  QueryEngine cold(instance.network, instance.grid, instance.global_index,
                   instance.segment_cells, options);
  QueryEngine warm(instance.network, instance.grid, instance.global_index,
                   instance.segment_cells, options, {preloaded});
  std::vector<SoiResult> want = cold.RunBatch(batch);
  std::vector<SoiResult> got = warm.RunBatch(batch);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectIdenticalResults(got[i], want[i], "warm-vs-cold");
  }
}

TEST(QueryEngineTest, BatchCoalescesDuplicatesBitIdentically) {
  Instance instance(21, 0.003, 400, 8);
  // Three distinct queries, each duplicated (the third twice more), in an
  // interleaved order.
  std::vector<SoiQuery> unique_queries = MakeBatch(31, 3);
  std::vector<SoiQuery> batch = {
      unique_queries[0], unique_queries[1], unique_queries[0],
      unique_queries[2], unique_queries[2], unique_queries[1],
      unique_queries[2]};

  // Per-query reference through a separate engine (no batch, nothing to
  // coalesce).
  QueryEngineOptions options;
  options.num_threads = 2;
  QueryEngine reference_engine(instance.network, instance.grid,
                               instance.global_index,
                               instance.segment_cells, options);
  std::vector<SoiResult> expected;
  for (const SoiQuery& query : batch) {
    expected.push_back(reference_engine.Run(query));
  }

  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  std::vector<Result<SoiResult>> got = engine.TryRunBatch(batch);
  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().Since(before);
  ASSERT_EQ(got.size(), batch.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << "query " << i;
    ExpectIdenticalResults(got[i].ValueOrDie(), expected[i],
                           ("query=" + std::to_string(i)).c_str());
  }
  if (obs::kEnabled) {
    // 7 entries, 3 unique: 4 coalesced duplicates.
    EXPECT_EQ(delta.CounterOr0("soi.engine.batch_coalesced"), 4);
  }
}

// Regression test for coalesced-group admission: a coalesced duplicate
// used to ride its leader's single in-flight slot, so a batch of N
// identical queries only charged 1 against max_inflight_queries —
// letting a bounded engine evaluate unbounded logical load. Admission is
// now per logical query: each duplicate claims its own slot (in input
// order) for the duration of the shared evaluation, and members beyond
// the bound are shed individually with kResourceExhausted while the
// admitted ones still share one evaluation.
TEST(QueryEngineTest, CoalescedGroupsChargeAdmissionPerLogicalQuery) {
  Instance instance(33, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 2;
  options.max_inflight_queries = 3;
  std::atomic<int> builds{0};
  options.build_observer = [&](double) { builds.fetch_add(1); };
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  SoiQuery query;
  query.keywords = KeywordSet({0, 1});
  query.k = 5;
  query.eps = 0.002;

  // Exactly at the bound: all three logical queries fit, nothing is
  // shed, and the group still evaluates (and builds) only once.
  std::vector<SoiQuery> at_bound(3, query);
  std::vector<Result<SoiResult>> got = engine.TryRunBatch(at_bound);
  ASSERT_EQ(got.size(), 3u);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << "query " << i << ": "
                             << got[i].status().ToString();
  }
  EXPECT_EQ(builds.load(), 1);
  SoiResult want = got[0].ValueOrDie();

  // Above the bound: the first three members (input order) are admitted
  // and share the evaluation; the fourth and fifth are shed with the
  // typed admission error — not silently admitted for free.
  std::vector<SoiQuery> over_bound(5, query);
  got = engine.TryRunBatch(over_bound);
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(got[i].ok()) << "query " << i << ": "
                             << got[i].status().ToString();
    ExpectIdenticalResults(got[i].ValueOrDie(), want,
                           ("admitted=" + std::to_string(i)).c_str());
  }
  for (size_t i = 3; i < 5; ++i) {
    ASSERT_FALSE(got[i].ok()) << "query " << i;
    EXPECT_EQ(got[i].status().code(), StatusCode::kResourceExhausted)
        << "query " << i;
  }
  // The shared evaluation served from the warm cache: still one build.
  EXPECT_EQ(builds.load(), 1);
}

TEST(QueryEngineTest, PerQueryTokensDisableCoalescing) {
  Instance instance(23, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  // Two identical queries with independent tokens, the second already
  // fired: were they coalesced onto one evaluation, the fired token
  // could not produce its per-query kCancelled.
  std::vector<SoiQuery> batch = MakeBatch(41, 1);
  batch.push_back(batch.front());
  std::vector<CancellationToken> cancels = {
      CancellationToken::Cancellable(), CancellationToken::Cancellable()};
  cancels[1].Cancel();
  std::vector<Result<SoiResult>> got = engine.TryRunBatch(batch, cancels);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].ok());
  ASSERT_FALSE(got[1].ok());
  EXPECT_EQ(got[1].status().code(), StatusCode::kCancelled);
}

TEST(QueryEngineTest, ConcurrentWarmCacheHitsServeOneMapsObject) {
  Instance instance(27, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  SoiQuery query = MakeBatch(51, 1).front();
  SoiResult expected = engine.Run(query);  // warms the cache (one miss)

  // Hammer the warm entry from many threads: every lookup must resolve
  // on the contention-free snapshot path against the one cached maps
  // object (no rebuilds — miss count stays 1), bit-identically.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::shared_ptr<const EpsAugmentedMaps> maps = engine.GetMaps(query.eps);
  std::vector<std::thread> workers;
  std::vector<Status> failures(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto got_maps = engine.TryGetMaps(query.eps);
        if (!got_maps.ok()) {
          failures[static_cast<size_t>(t)] = got_maps.status();
          return;
        }
        if (got_maps.ValueOrDie().get() != maps.get()) {
          failures[static_cast<size_t>(t)] =
              Status::Internal("hit returned a different maps object");
          return;
        }
        auto result = engine.TryRun(query);
        if (!result.ok()) {
          failures[static_cast<size_t>(t)] = result.status();
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const Status& status : failures) EXPECT_TRUE(status.ok());
  QueryEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_GE(stats.hits, kThreads * kPerThread);
  ExpectIdenticalResults(engine.Run(query), expected, "after hammering");
}

TEST(QueryEngineTest, SingleRunMatchesBatch) {
  Instance instance(11, 0.003, 400, 6);
  std::vector<SoiQuery> batch = MakeBatch(23, 6);
  QueryEngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  std::vector<SoiResult> batched = engine.RunBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    SoiResult single = engine.Run(batch[i]);
    ExpectIdenticalResults(single, batched[i], "single-vs-batch");
  }
}

}  // namespace
}  // namespace soi
