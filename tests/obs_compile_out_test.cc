// Guards the SOI_OBSERVABILITY=OFF path inside the default build: this
// translation unit is compiled with SOI_OBSERVABILITY_DISABLED (see
// tests/CMakeLists.txt) while linking against the regular library, which
// the obs layering contract explicitly supports — the obs classes are
// compiled unconditionally with identical layouts in both modes, only
// the macros change meaning. Every SOI_OBS_* macro here must expand to
// nothing: no registry writes, no spans, no evaluation of arguments'
// side effects beyond normal C++ (the macros never evaluate them).

#ifndef SOI_OBSERVABILITY_DISABLED
#error "obs_compile_out_test must be compiled with SOI_OBSERVABILITY_DISABLED"
#endif

#include <string>

#include "gtest/gtest.h"
#include "obs/obs.h"

namespace soi {
namespace obs {
namespace {

static_assert(SOI_OBS_ENABLED == 0,
              "SOI_OBSERVABILITY_DISABLED must force SOI_OBS_ENABLED to 0");
static_assert(!kEnabled, "kEnabled must be false in a disabled TU");

TEST(ObsCompileOutTest, MacrosDoNotTouchTheRegistry) {
  const std::string name = "compile_out.should_never_exist";
  SOI_OBS_COUNTER_ADD("compile_out.should_never_exist", 1);
  SOI_OBS_GAUGE_SET("compile_out.should_never_exist.g", 42);
  SOI_OBS_GAUGE_ADD("compile_out.should_never_exist.g", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("compile_out.should_never_exist.h", 0.5);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.CounterOr0(name), 0);
  for (const MetricsSnapshot::CounterValue& counter : snap.counters) {
    EXPECT_NE(counter.name, name);
  }
  for (const MetricsSnapshot::GaugeValue& gauge : snap.gauges) {
    EXPECT_NE(gauge.name, name + ".g");
  }
  EXPECT_EQ(snap.FindHistogram(name + ".h"), nullptr);
}

TEST(ObsCompileOutTest, TraceSpanMacroRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    SOI_TRACE_SPAN("compile_out.span");
  }
  recorder.Stop();
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(ObsCompileOutTest, FlightRecorderMacrosAreNoops) {
  FlightRecorder& recorder = FlightRecorder::Global();
  uint64_t baseline = recorder.last_query_id();
  // Disabled TU: no id is allocated and nothing is recorded.
  uint64_t id = SOI_OBS_NEXT_QUERY_ID();
  EXPECT_EQ(id, 0u);
  QueryRecord record;
  record.query_id = 12345;
  record.total_seconds = 9.9;
  SOI_OBS_FLIGHT_RECORD(record);
  SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("compile_out.should_never_exist.e",
                                     0.5, 42);
  EXPECT_EQ(recorder.last_query_id(), baseline);
  EXPECT_EQ(recorder.Snap().Find(12345), nullptr);
  EXPECT_EQ(Registry::Global().Snapshot().FindHistogram(
                "compile_out.should_never_exist.e"),
            nullptr);
}

TEST(ObsCompileOutTest, ClassApiStillLinksAndWorks) {
  // The classes themselves stay functional in a disabled TU (exporters
  // and tests may use them directly); only the macro layer is disabled.
  Registry registry;
  registry.GetCounter("direct")->Add(3);
  EXPECT_EQ(registry.Snapshot().CounterOr0("direct"), 3);

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    ScopedSpan span("direct.span");
  }
  recorder.Stop();
  ASSERT_EQ(recorder.Collect().size(), 1u);
  EXPECT_STREQ(recorder.Collect()[0].name, "direct.span");

  // The flight recorder class is likewise fully functional when driven
  // directly — identical layout and behavior in both modes.
  FlightRecorder flights(/*recent_per_shard=*/4, /*slowest_capacity=*/2);
  QueryRecord record;
  record.query_id = flights.NextQueryId();
  record.total_seconds = 0.25;
  flights.Record(record);
  FlightRecorder::Snapshot snap = flights.Snap();
  ASSERT_EQ(snap.recent.size(), 1u);
  EXPECT_EQ(snap.recent[0].query_id, 1u);
  ASSERT_EQ(snap.slowest.size(), 1u);
  EXPECT_NE(snap.Find(1), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace soi
