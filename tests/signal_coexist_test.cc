// Signal-thread coexistence regression (the hazard: two subsystems each
// rolling their own sigaction/pthread_sigmask setup can race or clobber
// each other, and a worker thread with an unblocked signal can swallow a
// process-directed delivery in a no-op disposition). Both production
// hooks — obs::InstallSignalDump's SIGUSR1 dump and soid's SIGTERM
// drain — go through the one shared common/signal_watch.h helper, and
// this test runs both in one process: each signal lands in its own
// watcher, exactly once per kill, even with unrelated worker threads
// running.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include "common/json_util.h"
#include "common/signal_watch.h"
#include "gtest/gtest.h"
#include "obs/dump.h"
#include "obs/obs.h"

namespace soi {
namespace {

bool WaitFor(const std::function<bool()>& predicate, double seconds) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(SignalCoexistTest, DumpAndDrainHooksCoexistInOneProcess) {
  const std::string state_path =
      ::testing::TempDir() + "signal_coexist_state.json";
  (void)std::remove(state_path.c_str());

  // Both production hooks, through the one shared mask helper. Install
  // them FIRST, before any worker thread, per the signal_watch contract.
  std::atomic<int> drains{0};
  ASSERT_TRUE(obs::InstallSignalDump(state_path).ok());
  ASSERT_TRUE(WatchSignal(SIGTERM, [&drains] { ++drains; }).ok());

  // Claiming an already-watched signal is refused, not silently stacked:
  // exactly one owner per signal.
  EXPECT_EQ(WatchSignal(SIGTERM, [] {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(obs::InstallSignalDump(state_path).code(),
            StatusCode::kAlreadyExists);

  // Unrelated worker threads (created after install, so they inherit the
  // blocked mask): process-directed signals must never land in them.
  std::atomic<bool> stop_workers{false};
  std::atomic<int64_t> work{0};
  std::thread worker_a([&] {
    while (!stop_workers.load()) {
      ++work;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread worker_b([&] {
    while (!stop_workers.load()) {
      ++work;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // SIGUSR1 -> the dump watcher writes the state file.
  SOI_OBS_COUNTER_ADD("soi.test.signal_coexist", 1);
  ASSERT_EQ(::kill(::getpid(), SIGUSR1), 0);
  ASSERT_TRUE(WaitFor(
      [&] { return std::ifstream(state_path).good(); }, 10.0))
      << "SIGUSR1 dump never materialized";

  // SIGTERM -> the drain watcher fires; the dump hook is unaffected.
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  ASSERT_TRUE(WaitFor([&] { return drains.load() == 1; }, 10.0))
      << "SIGTERM watcher never fired";

  // A second round on both signals: the watchers are persistent, not
  // one-shot, and still independent.
  (void)std::remove(state_path.c_str());
  ASSERT_EQ(::kill(::getpid(), SIGUSR1), 0);
  ASSERT_TRUE(WaitFor(
      [&] { return std::ifstream(state_path).good(); }, 10.0));
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  ASSERT_TRUE(WaitFor([&] { return drains.load() == 2; }, 10.0));

  stop_workers.store(true);
  worker_a.join();
  worker_b.join();

  // The dumped state settles into valid JSON (the same artifact soid's
  // drain flushes). Polled, because the watcher writes asynchronously
  // and existence alone could catch a file mid-write.
  EXPECT_TRUE(WaitFor(
      [&] {
        std::ifstream file(state_path);
        if (!file.good()) return false;
        std::ostringstream content;
        content << file.rdbuf();
        return ValidateJson(content.str()).ok();
      },
      10.0))
      << "state file never became valid JSON";
  EXPECT_GT(work.load(), 0);
  (void)std::remove(state_path.c_str());
}

}  // namespace
}  // namespace soi
