// The flat-CSR index layout: CsrArray/Span unit behavior, and the
// determinism contract of the CSR index builds — the serving arenas must
// be bit-identical for every thread count and to a nested-vector
// reference build.

#include <sstream>
#include <vector>

#include "common/csr.h"
#include "common/random.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "grid/global_inverted_index.h"
#include "grid/segment_cell_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(CsrArrayTest, FromRowsRoundTrips) {
  std::vector<std::vector<int>> rows = {{1, 2, 3}, {}, {7}, {}, {9, 10}};
  CsrArray<int> csr = CsrArray<int>::FromRows(rows);
  ASSERT_EQ(csr.num_rows(), 5);
  EXPECT_EQ(csr.num_values(), 6);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(csr.Row(static_cast<int64_t>(i)), rows[i]) << "row " << i;
    EXPECT_EQ(csr.RowSize(static_cast<int64_t>(i)),
              static_cast<int64_t>(rows[i].size()));
  }
}

TEST(CsrArrayTest, StreamingBuilderMatchesFromRows) {
  std::vector<std::vector<int>> rows = {{4, 5}, {}, {6}};
  CsrArray<int> streamed;
  for (const std::vector<int>& row : rows) {
    for (int v : row) streamed.PushValue(v);
    streamed.FinishRow();
  }
  EXPECT_EQ(streamed, CsrArray<int>::FromRows(rows));
}

TEST(CsrArrayTest, AppendAllRebasesOffsets) {
  CsrArray<int> a = CsrArray<int>::FromRows({{1}, {2, 3}});
  CsrArray<int> b = CsrArray<int>::FromRows({{}, {4}});
  CsrArray<int> merged;
  merged.AppendAll(a);
  merged.AppendAll(b);
  EXPECT_EQ(merged, CsrArray<int>::FromRows({{1}, {2, 3}, {}, {4}}));
}

TEST(CsrArrayTest, FromRowCountsAllocatesZeroedRows) {
  CsrArray<int> csr = CsrArray<int>::FromRowCounts({2, 0, 3});
  ASSERT_EQ(csr.num_rows(), 3);
  EXPECT_EQ(csr.RowSize(0), 2);
  EXPECT_EQ(csr.RowSize(1), 0);
  EXPECT_EQ(csr.RowSize(2), 3);
  for (int v : csr.Row(2)) EXPECT_EQ(v, 0);
  csr.mutable_row(2)[1] = 42;
  EXPECT_EQ(csr.Row(2)[1], 42);
}

TEST(SpanTest, ComparesAndPrints) {
  std::vector<int> values = {1, 2, 3};
  Span<int> span(values);
  EXPECT_EQ(span, values);
  EXPECT_EQ(values, span);
  EXPECT_NE(span, std::vector<int>({1, 2}));
  std::ostringstream out;
  out << span;
  EXPECT_EQ(out.str(), "[1, 2, 3]");
}

GridGeometry GeometryFor(const RoadNetwork& network, double cell_size) {
  return GridGeometry(network.bounds().Expanded(cell_size), cell_size);
}

// The CSR arenas of the base maps are bit-identical for thread counts
// {1, 2, 8} — offsets and values alike, not merely set-equal rows.
TEST(CsrLayoutDeterminismTest, SegmentCellIndexIdenticalAcrossThreads) {
  RoadNetwork network = testing_util::MakeGridNetwork(5, 6, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.004);
  SegmentCellIndex reference(network, geometry, /*pool=*/nullptr);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    SegmentCellIndex parallel(network, geometry, &pool);
    EXPECT_EQ(parallel.segment_cells(), reference.segment_cells())
        << threads << " threads";
    for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
      ASSERT_EQ(parallel.CellSegments(cell), reference.CellSegments(cell))
          << "cell " << cell << ", " << threads << " threads";
    }
  }
}

TEST(CsrLayoutDeterminismTest, EpsMapsIdenticalAcrossThreads) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 5, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.0035);
  SegmentCellIndex base(network, geometry);
  EpsAugmentedMaps reference(base, 0.006, /*pool=*/nullptr);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    EpsAugmentedMaps parallel(base, 0.006, &pool);
    EXPECT_EQ(parallel.segment_cells(), reference.segment_cells())
        << threads << " threads";
    for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
      ASSERT_EQ(parallel.CellSegments(cell), reference.CellSegments(cell))
          << "cell " << cell << ", " << threads << " threads";
    }
  }
}

// The CSR build equals a nested-vector reference build: collecting each
// segment's span back into vectors and flattening through FromRows must
// reproduce the arena exactly.
TEST(CsrLayoutDeterminismTest, ArenaMatchesNestedVectorReference) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 4, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.005);
  SegmentCellIndex index(network, geometry);
  std::vector<std::vector<CellId>> nested(
      static_cast<size_t>(network.num_segments()));
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    nested[static_cast<size_t>(id)] = index.SegmentCells(id).ToVector();
  }
  EXPECT_EQ(index.segment_cells(), CsrArray<CellId>::FromRows(nested));
}

// The snapshot adoption constructor over the serving arena reproduces the
// fresh build bit-identically (the warm-start path's core claim).
TEST(CsrLayoutDeterminismTest, AdoptionCtorsReproduceFreshBuild) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 5, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.004);
  SegmentCellIndex fresh(network, geometry);
  SegmentCellIndex adopted(network, geometry,
                           CsrArray<CellId>(fresh.segment_cells()));
  EXPECT_EQ(adopted.segment_cells(), fresh.segment_cells());
  for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
    ASSERT_EQ(adopted.CellSegments(cell), fresh.CellSegments(cell));
  }

  EpsAugmentedMaps fresh_eps(fresh, 0.005);
  EpsAugmentedMaps adopted_eps(fresh, 0.005,
                               CsrArray<CellId>(fresh_eps.segment_cells()));
  EXPECT_EQ(adopted_eps.segment_cells(), fresh_eps.segment_cells());
  for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
    ASSERT_EQ(adopted_eps.CellSegments(cell), fresh_eps.CellSegments(cell));
  }
}

// The dense KeywordId-indexed global index: the adoption constructor over
// the serving arena preserves every list and the non-empty count, and the
// query-time aggregation is identical through both.
TEST(CsrLayoutDeterminismTest, GlobalIndexAdoptionPreservesLists) {
  Vocabulary vocabulary;
  Rng rng(7);
  std::vector<Poi> pois = testing_util::RandomPois(
      Box::FromCorners(Point{0, 0}, Point{1, 1}), 400, 10, &vocabulary,
      &rng);
  PoiGridIndex grid(Box::FromCorners(Point{0, 0}, Point{1, 1}), 0.2, pois);
  GlobalInvertedIndex fresh(grid);
  GlobalInvertedIndex adopted(CsrArray<GlobalInvertedIndex::Entry>(
      fresh.lists()));
  EXPECT_EQ(adopted.num_keywords(), fresh.num_keywords());
  EXPECT_EQ(adopted.lists(), fresh.lists());
  KeywordSet query({0, 1, 2});
  EXPECT_EQ(fresh.BuildQueryCellList(query, grid),
            adopted.BuildQueryCellList(query, grid));
}

}  // namespace
}  // namespace soi
