#include <vector>

#include "common/random.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/objective.h"
#include "core/diversify/st_rel_div.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

// ST_Rel+Div must select exactly the same photo sequence as the greedy
// baseline, for any parameters — it is an exact algorithm, only faster.
struct Fixture {
  RoadNetwork network;
  std::vector<Photo> photos;
  StreetPhotos sp;

  explicit Fixture(uint64_t seed, int64_t n = 500) {
    NetworkBuilder builder;
    VertexId a = builder.AddVertex({0, 0});
    VertexId b = builder.AddVertex({0.015, 0.001});
    VertexId c = builder.AddVertex({0.03, 0.0});
    SOI_CHECK(builder.AddStreet("S", {a, b, c}).ok());
    network = std::move(builder).Build().ValueOrDie();
    Vocabulary vocabulary;
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.001, -0.003}, Point{0.031, 0.004});
    photos = testing_util::RandomPhotos(box, n, 18, &vocabulary, &rng);
    sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.0035);
    SOI_CHECK(sp.size() > 50);
  }
};

class StRelDivEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, double>> {
};

TEST_P(StRelDivEquivalence, SelectsSameSequenceAsBaseline) {
  auto [seed, lambda, w] = GetParam();
  Fixture fx(seed);
  DiversifyParams params;
  params.lambda = lambda;
  params.w = w;
  params.rho = 0.0005;
  for (int32_t k : {1, 5, 15}) {
    params.k = k;
    PhotoScorer scorer(fx.sp, params.rho);
    PhotoGridIndex index(params.rho / 2, fx.sp.photos);
    CellBoundsCalculator bounds(fx.sp, index);
    DiversifyResult baseline = GreedyBaselineSelect(scorer, params);
    DiversifyResult fast = StRelDivSelect(scorer, bounds, params);
    EXPECT_EQ(fast.selected, baseline.selected)
        << "k=" << k << " lambda=" << lambda << " w=" << w;
    // The whole point: strictly fewer exact mmr evaluations.
    EXPECT_LE(fast.stats.mmr_evaluations, baseline.stats.mmr_evaluations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StRelDivEquivalence,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(0.0, 0.5, 1.0)));

TEST(StRelDivTest, KLargerThanPhotosSelectsAll) {
  Fixture fx(9, 80);
  DiversifyParams params;
  params.k = 10000;
  params.rho = 0.0005;
  PhotoScorer scorer(fx.sp, params.rho);
  PhotoGridIndex index(params.rho / 2, fx.sp.photos);
  CellBoundsCalculator bounds(fx.sp, index);
  DiversifyResult fast = StRelDivSelect(scorer, bounds, params);
  EXPECT_EQ(static_cast<int64_t>(fast.selected.size()), fx.sp.size());
  // All distinct.
  std::set<PhotoId> unique(fast.selected.begin(), fast.selected.end());
  EXPECT_EQ(unique.size(), fast.selected.size());
}

TEST(StRelDivTest, PrunesCellsOnClusteredData) {
  Fixture fx(11, 800);
  DiversifyParams params;
  params.k = 10;
  params.rho = 0.0004;
  PhotoScorer scorer(fx.sp, params.rho);
  PhotoGridIndex index(params.rho / 2, fx.sp.photos);
  CellBoundsCalculator bounds(fx.sp, index);
  DiversifyResult fast = StRelDivSelect(scorer, bounds, params);
  EXPECT_GT(fast.stats.cells_pruned, 0);
  EXPECT_GT(fast.stats.cells_refined, 0);
}

TEST(GreedyBaselineTest, FirstPickMaximizesRelevanceWhenLambdaZero) {
  Fixture fx(13, 200);
  DiversifyParams params;
  params.k = 3;
  params.lambda = 0.0;
  params.w = 0.5;
  params.rho = 0.0005;
  PhotoScorer scorer(fx.sp, params.rho);
  DiversifyResult result = GreedyBaselineSelect(scorer, params);
  ASSERT_EQ(result.selected.size(), 3u);
  // With lambda=0 mmr is selection-independent: the result must be the
  // top-3 photos by Rel (ties by id).
  std::vector<PhotoId> all(static_cast<size_t>(fx.sp.size()));
  for (PhotoId r = 0; r < fx.sp.size(); ++r) all[static_cast<size_t>(r)] = r;
  std::stable_sort(all.begin(), all.end(), [&](PhotoId x, PhotoId y) {
    return scorer.Rel(x, params.w) > scorer.Rel(y, params.w);
  });
  EXPECT_EQ(result.selected[0], all[0]);
  // Remaining two are the next best by value (order within equal values is
  // by id for both).
  std::set<PhotoId> expected(all.begin(), all.begin() + 3);
  std::set<PhotoId> got(result.selected.begin(), result.selected.end());
  EXPECT_EQ(got, expected);
}

TEST(GreedyBaselineTest, SelectionsAreDistinct) {
  Fixture fx(17, 150);
  DiversifyParams params;
  params.k = 20;
  params.rho = 0.0005;
  PhotoScorer scorer(fx.sp, params.rho);
  DiversifyResult result = GreedyBaselineSelect(scorer, params);
  std::set<PhotoId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
}

// Selecting with near-duplicate photos (the HMV effect): with diversity
// enabled, the summary must not be all duplicates.
TEST(DiversifyTest, DiversityAvoidsNearDuplicates) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  std::vector<Photo> photos;
  // 30 near-duplicates at one hotspot with identical tags.
  Rng rng(19);
  for (int i = 0; i < 30; ++i) {
    Photo photo;
    photo.position = Point{0.002 + rng.Normal(0, 0.00002),
                           rng.Normal(0, 0.00002)};
    photo.keywords = KeywordSet({1, 2, 3});
    photos.push_back(photo);
  }
  // 5 scattered distinct photos.
  for (int i = 0; i < 5; ++i) {
    Photo photo;
    photo.position = Point{0.004 + 0.001 * i, 0.0005};
    photo.keywords = KeywordSet({static_cast<KeywordId>(10 + i)});
    photos.push_back(photo);
  }
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.002);
  ASSERT_EQ(sp.size(), 35);
  DiversifyParams params;
  params.k = 3;
  params.rho = 0.0002;

  // Pure spatial relevance: picks only hotspot duplicates.
  params.lambda = 0.0;
  params.w = 1.0;
  PhotoScorer scorer(sp, params.rho);
  DiversifyResult rel_only = GreedyBaselineSelect(scorer, params);
  int rel_dupes = 0;
  for (PhotoId r : rel_only.selected) {
    if (r < 30) ++rel_dupes;
  }
  EXPECT_EQ(rel_dupes, 3);

  // Diversity-leaning rel+div: must include at least one non-duplicate
  // (the duplicates have zero pairwise diversity, so a second duplicate
  // contributes nothing to the diversity term).
  params.lambda = 0.8;
  params.w = 0.5;
  DiversifyResult balanced = GreedyBaselineSelect(scorer, params);
  int distinct = 0;
  for (PhotoId r : balanced.selected) {
    if (r >= 30) ++distinct;
  }
  EXPECT_GE(distinct, 1);
}

}  // namespace
}  // namespace soi
