#ifndef SOI_TESTS_LINT_FIXTURES_GOOD_HEADER_H_
#define SOI_TESTS_LINT_FIXTURES_GOOD_HEADER_H_

// Fixture: fully self-contained counterpart of bad_header.h.

#include <vector>

inline std::vector<int> MakeInts() { return {1, 2, 3}; }

#endif  // SOI_TESTS_LINT_FIXTURES_GOOD_HEADER_H_
