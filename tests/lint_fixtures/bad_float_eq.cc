// Fixture: exactly one `float-eq` violation (raw == on a double
// literal). The string and comment below must NOT fire: "x == 1.5".
bool Matches(double x) {
  const char* label = "x == 2.5";  // == 3.5 in a comment is also inert
  (void)label;
  return x == 1.5;
}
