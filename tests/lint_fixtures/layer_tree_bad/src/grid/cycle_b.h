// Fixture: the other half of the include cycle.
#ifndef FIXTURE_GRID_CYCLE_B_H_
#define FIXTURE_GRID_CYCLE_B_H_
#include "grid/cycle_a.h"
#endif  // FIXTURE_GRID_CYCLE_B_H_
