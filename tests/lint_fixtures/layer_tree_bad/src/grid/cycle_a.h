// Fixture: one half of a same-layer include cycle.
#ifndef FIXTURE_GRID_CYCLE_A_H_
#define FIXTURE_GRID_CYCLE_A_H_
#include "grid/cycle_b.h"
#endif  // FIXTURE_GRID_CYCLE_A_H_
