// Fixture: the synthetic core -> serve inversion the layering audit
// must reject (serve sits on top of core in the declared DAG).
#include "serve/api.h"

namespace fixture {
ServeApi MakeApi() { return ServeApi{}; }
}  // namespace fixture
