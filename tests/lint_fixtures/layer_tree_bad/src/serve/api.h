// Fixture: top-layer header a lower layer must never include.
#ifndef FIXTURE_SERVE_API_H_
#define FIXTURE_SERVE_API_H_
namespace fixture {
struct ServeApi {};
}  // namespace fixture
#endif  // FIXTURE_SERVE_API_H_
