// Fixture: exactly one `io-stream` violation through the extended
// surface (std::clog diagnostics, not just cout/cerr/printf). Library
// diagnostics belong in metrics, the flight recorder, or a Status.
#include <iostream>

void Whisper() { std::clog << "debug: cache rebuilt\n"; }
