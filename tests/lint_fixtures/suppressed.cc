// Fixture: one violation of each text rule, every one suppressed with
// the inline marker — soi-lint must report nothing for this file.
#include <iostream>
#include <memory>
#include <random>

int AmbientDraw() {
  std::random_device device;  // soi-lint: determinism (fixture)
  return static_cast<int>(device());
}

bool Matches(double x) {
  return x == 1.5;  // soi-lint: float-eq (fixture)
}

void Shout() {
  // soi-lint: io-stream (fixture, marker on the line above)
  std::cout << "hello\n";
}

int* Leak() {
  return new int(42);  // soi-lint: naked-new (fixture)
}

void FireAndForget(int fd, const char* buf, long (*send)(int, const char*)) {
  (void)buf;
  send(fd, "x");  // soi-lint: unchecked-io (fixture)
}
