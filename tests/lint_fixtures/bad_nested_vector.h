// Fixture: exactly one `nested-vector` violation (a nested-vector data
// member in a grid-index header). The flat CSR-style members below must
// NOT fire.
#ifndef SOI_TESTS_LINT_FIXTURES_BAD_NESTED_VECTOR_H_
#define SOI_TESTS_LINT_FIXTURES_BAD_NESTED_VECTOR_H_

#include <vector>

struct BadNestedVector {
  std::vector<std::vector<int>> rows;
  std::vector<int> offsets;
  std::vector<int> values;
};

#endif  // SOI_TESTS_LINT_FIXTURES_BAD_NESTED_VECTOR_H_
