// Fixture: a nested vector staged in a .cc build path. The
// `nested-vector` rule applies to headers only (RULE_FILE_GLOB), so
// this file must lint clean under every rule.
#include <vector>

std::vector<int> Flatten(const std::vector<std::vector<int>>& rows) {
  std::vector<int> out;
  for (const auto& row : rows) {
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}
