// Fixture: exactly one `io-stream` violation (library writes to a
// standard stream).
#include <iostream>

void Shout() { std::cout << "hello\n"; }
