// Fixture: exactly one `unchecked-io` violation (a send whose return
// value is discarded on its own statement). The checked forms below —
// assignment, condition, continuation — must NOT fire.
#include <sys/socket.h>
#include <unistd.h>

void LeakShortWrite(int fd, const char* buf) {
  send(fd, buf, 4, 0);
}

long CheckedSend(int fd, const char* buf) { return ::send(fd, buf, 4, 0); }

bool CheckedRecv(int fd, char* buf) {
  long n =
      ::recv(fd, buf, 4, 0);
  if (::read(fd, buf, 1) < 0) return false;
  return n == 4;
}
