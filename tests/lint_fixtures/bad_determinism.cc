// Fixture: exactly one `determinism` violation (ambient RNG).
#include <random>

int AmbientDraw() {
  std::random_device device;
  return static_cast<int>(device());
}
