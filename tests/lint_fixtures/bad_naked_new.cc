// Fixture: exactly one `naked-new` violation (ownership not taken on
// the same statement). The wrapped forms below must NOT fire.
#include <memory>

int* Leak() { return new int(42); }

std::unique_ptr<int> Owned() { return std::unique_ptr<int>(new int(7)); }

void ResetOwned(std::unique_ptr<int>* p) { p->reset(new int(9)); }
