#ifndef SOI_TESTS_LINT_FIXTURES_BAD_HEADER_H_
#define SOI_TESTS_LINT_FIXTURES_BAD_HEADER_H_

// Fixture: not self-contained — uses std::vector without including
// <vector>, so the generated single-include TU fails to compile.

inline std::vector<int> MakeInts() { return {1, 2, 3}; }

#endif  // SOI_TESTS_LINT_FIXTURES_BAD_HEADER_H_
