// Fixture: raw std:: synchronization primitive outside common/mutex.h.
#include <mutex>

namespace fixture {
std::mutex g_raw_mutex;  // line 5: the planted lock-hygiene violation

void Touch() { g_raw_mutex.lock(); }
}  // namespace fixture
