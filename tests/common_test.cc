#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace soi {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad eps");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad eps");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, UnavailableIsTypedForDrainRejections) {
  // The code a draining soid answers raced-in requests with (see
  // serve/server.h): retryable-elsewhere, distinct from kCancelled.
  Status status = Status::Unavailable("server draining");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.ToString(), "Unavailable: server draining");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable),
               "Unavailable");
}

TEST(StatusTest, StatusCodeToStringIsExhaustive) {
  // Every enumerator in [0, kNumStatusCodes) maps to a distinct,
  // meaningful name. Adding a code without a string trips this at
  // runtime (the new value falls through to the "Unknown" fallback),
  // and the static_assert in status.cc plus -Wswitch make forgetting to
  // bump kNumStatusCodes or the switch a compile error.
  std::set<std::string> names;
  for (int raw = 0; raw < kNumStatusCodes; ++raw) {
    StatusCode code = static_cast<StatusCode>(raw);
    std::string name = StatusCodeToString(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "Unknown") << "unmapped code " << raw;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumStatusCodes))
      << "duplicate code names";
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "Deadline exceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
  // Out-of-range values hit the fallback instead of invoking UB.
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(999)), "Unknown");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(result).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagatingHelper() {
  SOI_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kIOError);
}

Result<int> ProducingHelper(bool fail) {
  if (fail) return Status::OutOfRange("no");
  return 7;
}

Result<int> AssigningHelper(bool fail) {
  SOI_ASSIGN_OR_RETURN(int value, ProducingHelper(fail));
  return value + 1;
}

TEST(ResultTest, AssignOrReturn) {
  EXPECT_EQ(AssigningHelper(false).ValueOrDie(), 8);
  EXPECT_EQ(AssigningHelper(true).status().code(), StatusCode::kOutOfRange);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ SOI_CHECK(1 == 2) << "context " << 42; }, "SOI_CHECK");
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next32() != b.Next32()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(uint64_t{10}))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // Within 10% relative.
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// --- ZipfSampler -------------------------------------------------------------

TEST(ZipfTest, Theta0IsUniform) {
  Rng rng(29);
  ZipfSampler sampler(4, 0.0);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 4, kDraws / 50);
  }
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(31);
  ZipfSampler sampler(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[9] * 3);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(37);
  ZipfSampler sampler(5, 2.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(sampler.Sample(&rng), 5u);
  }
}

// --- string_util --------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> fields = Split("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(StringUtilTest, SplitEmptyYieldsOneField) {
  EXPECT_EQ(Split("", ';').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("OxFoRd STR."), "oxford str.");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "; "), "a; b; c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e-3 ").ValueOrDie(), -1e-3);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
}

TEST(StringUtilTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
}

TEST(StringUtilTest, ParseInt64RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("ten").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTripsExactly) {
  // The shared round-trippable formatter (error messages, JSON output):
  // parsing the formatted string must recover the identical bits. Sweep
  // values where the default %.6g collapses distinct doubles.
  const double values[] = {0.0,
                           1.0,
                           -1.0,
                           0.1,
                           1.0 / 3.0,
                           0.0005,
                           0.00049999999999999999,
                           1e-300,
                           1.7976931348623157e308,
                           3.141592653589793,
                           std::nextafter(0.0005, 1.0)};
  for (double value : values) {
    std::string text = FormatDouble(value);
    Result<double> reparsed = ParseDouble(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    EXPECT_EQ(reparsed.ValueOrDie(), value) << text;
  }
  // Adjacent doubles format to distinct strings (the bug this replaces:
  // std::to_string's fixed 6 decimals collapsed distinct eps values).
  EXPECT_NE(FormatDouble(0.0005), FormatDouble(std::nextafter(0.0005, 1.0)));
}

TEST(StringUtilTest, FormatDoublePrefersShortForms) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-2.0), "-2");
}

TEST(StringUtilTest, FormatDoubleHandlesNonFinite) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

// A pathological WaitFor timeout (NaN from a 0/0 deadline computation, a
// negative remainder from an already-elapsed deadline, or ±inf) must
// report an immediate timeout instead of reaching the duration cast,
// where NaN converts to an arbitrary tick count and an out-of-range
// double is undefined behavior. "Immediate" is asserted with a generous
// bound so a loaded CI machine cannot flake the test.
TEST(CondVarTest, WaitForClampsPathologicalTimeouts) {
  Mutex mutex;
  CondVar cv;
  const double pathological[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -1.0,
      0.0,
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(),
  };
  for (double seconds : pathological) {
    SCOPED_TRACE(seconds);
    MutexLock lock(mutex);
    auto start = std::chrono::steady_clock::now();
    bool notified = cv.WaitFor(mutex, seconds);
    auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(notified);
    EXPECT_LT(elapsed, std::chrono::seconds(5));
  }
}

TEST(CondVarTest, WaitForStillWaitsForRealTimeouts) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.NotifyOne();
  });
  bool notified = false;
  {
    MutexLock lock(mutex);
    while (!ready) {
      // Looped like every production caller: a spurious wakeup or a
      // timeout both re-check the predicate.
      notified = cv.WaitFor(mutex, 30.0);
      if (!notified && !ready) break;
    }
  }
  notifier.join();
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace soi
