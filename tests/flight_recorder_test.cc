// Flight-recorder correctness: ring retention, slowest-reservoir
// ordering, exact accounting under concurrent appenders (run with
// SOI_SANITIZE=thread to verify the sharded paths are race-free), and
// snapshot consistency while writers are active. Uses local FlightRecorder
// instances so tests do not interfere with the process-global recorder.

#include "obs/flight_recorder.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace soi {
namespace obs {
namespace {

QueryRecord MakeRecord(uint64_t query_id, double total_seconds) {
  QueryRecord record;
  record.query_id = query_id;
  record.total_seconds = total_seconds;
  record.psi_size = 2;
  record.k = 10;
  record.eps = 0.0005;
  return record;
}

TEST(FlightRecorderTest, NextQueryIdIsMonotoneFromOne) {
  FlightRecorder recorder;
  EXPECT_EQ(recorder.last_query_id(), 0u);
  EXPECT_EQ(recorder.NextQueryId(), 1u);
  EXPECT_EQ(recorder.NextQueryId(), 2u);
  EXPECT_EQ(recorder.last_query_id(), 2u);
}

TEST(FlightRecorderTest, RecordsAppearInSnapshot) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(recorder.NextQueryId(), 0.010));
  recorder.Record(MakeRecord(recorder.NextQueryId(), 0.020));
  FlightRecorder::Snapshot snap = recorder.Snap();
  ASSERT_EQ(snap.recent.size(), 2u);
  EXPECT_EQ(snap.total_recorded, 2);
  EXPECT_EQ(snap.dropped, 0);
  // Recent records sort by query id ascending.
  EXPECT_EQ(snap.recent[0].query_id, 1u);
  EXPECT_EQ(snap.recent[1].query_id, 2u);
  EXPECT_EQ(snap.last_query_id, 2u);
}

TEST(FlightRecorderTest, FindResolvesRecentAndSlowest) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(recorder.NextQueryId(), 0.010));
  FlightRecorder::Snapshot snap = recorder.Snap();
  const QueryRecord* found = snap.Find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->total_seconds, 0.010);
  EXPECT_EQ(snap.Find(999), nullptr);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  // Single-threaded, so every record lands in one shard's ring of
  // capacity 4: ids 1..10 leave exactly the last 4.
  FlightRecorder recorder(/*recent_per_shard=*/4, /*slowest_capacity=*/0);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeRecord(recorder.NextQueryId(), 0.001));
  }
  FlightRecorder::Snapshot snap = recorder.Snap();
  ASSERT_EQ(snap.recent.size(), 4u);
  EXPECT_EQ(snap.recent[0].query_id, 7u);
  EXPECT_EQ(snap.recent[3].query_id, 10u);
  EXPECT_EQ(snap.total_recorded, 10);
  EXPECT_EQ(snap.dropped, 6);
}

TEST(FlightRecorderTest, SlowestReservoirKeepsTheSlowest) {
  FlightRecorder recorder(/*recent_per_shard=*/2, /*slowest_capacity=*/3);
  // Latencies 1ms..10ms in an order that exercises both admission paths
  // (floor unset, then floor risen past the fast ones).
  const double kSeconds[] = {0.004, 0.001, 0.010, 0.002, 0.007,
                             0.003, 0.009, 0.005, 0.006, 0.008};
  for (double seconds : kSeconds) {
    recorder.Record(MakeRecord(recorder.NextQueryId(), seconds));
  }
  FlightRecorder::Snapshot snap = recorder.Snap();
  ASSERT_EQ(snap.slowest.size(), 3u);
  // Slowest first: 10ms, 9ms, 8ms survived; everything faster evicted,
  // even records long since rotated out of the recent ring.
  EXPECT_DOUBLE_EQ(snap.slowest[0].total_seconds, 0.010);
  EXPECT_DOUBLE_EQ(snap.slowest[1].total_seconds, 0.009);
  EXPECT_DOUBLE_EQ(snap.slowest[2].total_seconds, 0.008);
  // The 10ms record (id 3) fell out of the tiny recent ring but stays
  // resolvable through the reservoir.
  EXPECT_NE(snap.Find(3), nullptr);
}

TEST(FlightRecorderTest, ConcurrentAppendLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  // Rings large enough that nothing is dropped even if every thread
  // lands in the same shard.
  FlightRecorder recorder(/*recent_per_shard=*/kThreads * kPerThread,
                          /*slowest_capacity=*/16);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t id = recorder.NextQueryId();
        recorder.Record(
            MakeRecord(id, static_cast<double>(id) * 1e-6));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  FlightRecorder::Snapshot snap = recorder.Snap();
  // Exact accounting: every append retained, every id unique.
  EXPECT_EQ(snap.total_recorded, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.dropped, 0);
  ASSERT_EQ(snap.recent.size(), size_t{kThreads} * kPerThread);
  std::set<uint64_t> ids;
  for (const QueryRecord& record : snap.recent) ids.insert(record.query_id);
  EXPECT_EQ(ids.size(), size_t{kThreads} * kPerThread);
  // The reservoir holds exactly the 16 largest latencies (ids are the
  // latencies here), slowest first.
  ASSERT_EQ(snap.slowest.size(), 16u);
  uint64_t expected = uint64_t{kThreads} * kPerThread;
  for (const QueryRecord& record : snap.slowest) {
    EXPECT_EQ(record.query_id, expected);
    --expected;
  }
}

TEST(FlightRecorderTest, SnapshotIsConsistentUnderConcurrentAppend) {
  FlightRecorder recorder(/*recent_per_shard=*/64, /*slowest_capacity=*/8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t id = recorder.NextQueryId();
        recorder.Record(MakeRecord(id, static_cast<double>(id % 97) * 1e-5));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    FlightRecorder::Snapshot snap = recorder.Snap();
    // Internal consistency of every mid-flight snapshot: sorted recent,
    // no duplicate ids, sorted reservoir, sane accounting.
    for (size_t r = 1; r < snap.recent.size(); ++r) {
      EXPECT_LT(snap.recent[r - 1].query_id, snap.recent[r].query_id);
    }
    for (size_t r = 1; r < snap.slowest.size(); ++r) {
      EXPECT_GE(snap.slowest[r - 1].total_seconds,
                snap.slowest[r].total_seconds);
    }
    EXPECT_GE(snap.total_recorded,
              static_cast<int64_t>(snap.recent.size()));
    EXPECT_EQ(snap.total_recorded - snap.dropped,
              static_cast<int64_t>(snap.recent.size()));
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(FlightRecorderTest, ResetClearsEverything) {
  FlightRecorder recorder(/*recent_per_shard=*/8, /*slowest_capacity=*/4);
  for (int i = 0; i < 20; ++i) {
    recorder.Record(MakeRecord(recorder.NextQueryId(), 0.001 * (i + 1)));
  }
  recorder.Reset();
  FlightRecorder::Snapshot snap = recorder.Snap();
  EXPECT_TRUE(snap.recent.empty());
  EXPECT_TRUE(snap.slowest.empty());
  EXPECT_EQ(snap.total_recorded, 0);
  EXPECT_EQ(snap.dropped, 0);
  // The reservoir floor must re-open after Reset: a now-fast record is
  // admitted again.
  recorder.Record(MakeRecord(recorder.NextQueryId(), 1e-9));
  EXPECT_EQ(recorder.Snap().slowest.size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace soi
