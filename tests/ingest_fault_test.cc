// Fault-injection gate of the ingest publish protocol: a failed
// ApplyBatch ("ingest.apply_delta") or compaction ("ingest.compact")
// must publish NOTHING — the epoch, the live counters, the overlay, and
// every pinned reader stay exactly as they were, and the next attempt
// succeeds from clean state. Runs armed under the `fault` preset
// (-DSOI_FAULT_INJECTION=ON); elsewhere the same scenarios degrade to
// happy-path checks, so the test is present in every suite.

#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/status.h"
#include "datagen/dataset.h"
#include "grid/live_poi_view.h"
#include "gtest/gtest.h"
#include "ingest/live_world.h"
#include "test_util.h"

namespace soi {
namespace ingest {
namespace {

constexpr double kCellSize = 0.002;

Dataset MakeDataset(uint64_t seed) {
  Dataset dataset;
  dataset.name = "ingest-fault-fixture";
  dataset.network = testing_util::MakeGridNetwork(4, 4, 0.01);
  Rng rng(seed);
  Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.034, 0.034});
  dataset.pois =
      testing_util::RandomPois(box, 150, 10, &dataset.vocabulary, &rng);
  dataset.photos =
      testing_util::RandomPhotos(box, 20, 6, &dataset.vocabulary, &rng);
  return dataset;
}

UpdateBatch MakeBatch(uint64_t seed) {
  Rng rng(seed);
  Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.034, 0.034});
  UpdateBatch batch;
  for (int i = 0; i < 8; ++i) {
    Poi poi;
    poi.position = Point{rng.UniformDouble(box.min.x, box.max.x),
                         rng.UniformDouble(box.min.y, box.max.y)};
    poi.keywords = KeywordSet(
        {static_cast<KeywordId>(rng.UniformInt(0, 9))});
    poi.weight = rng.UniformDouble(0.5, 2.0);
    batch.poi_inserts.push_back(std::move(poi));
  }
  batch.poi_deletes.push_back(static_cast<PoiId>(seed % 150));
  return batch;
}

TEST(IngestFaultTest, FailedApplyPublishesNothingAndRetrySucceeds) {
  LiveWorld world(MakeDataset(41), kCellSize);
  std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
  const uint64_t epoch = world.epoch();
  const int64_t live_pois = world.num_live_pois();
  const uint64_t applied = world.applied_ops();

  if (fault::kEnabled) {
    fault::ScopedFault armed("ingest.apply_delta",
                             fault::FaultPlan{.count = 1});
    Status status = world.ApplyBatch(MakeBatch(1));
    EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
    EXPECT_GT(fault::Registry::Global().FireCount("ingest.apply_delta"),
              0);
    // Nothing was published: epoch, counters, and the pinned reader's
    // snapshot are untouched.
    EXPECT_EQ(world.epoch(), epoch);
    EXPECT_EQ(world.num_live_pois(), live_pois);
    EXPECT_EQ(world.applied_ops(), applied);
    EXPECT_EQ(world.Pin()->epoch, epoch);
    EXPECT_EQ(pin->epoch, epoch);
  }

  // With the fault disarmed (or in non-fault builds) the same batch
  // applies cleanly from the unpoisoned state.
  ASSERT_TRUE(world.ApplyBatch(MakeBatch(1)).ok());
  EXPECT_EQ(world.epoch(), epoch + 1);
  EXPECT_EQ(world.num_live_pois(), live_pois + 8 - 1);
  EXPECT_EQ(world.applied_ops(), applied + 9);
}

TEST(IngestFaultTest, FailedCompactionKeepsTheOverlayForRetry) {
  LiveWorld world(MakeDataset(42), kCellSize);
  ASSERT_TRUE(world.ApplyBatch(MakeBatch(2)).ok());
  const uint64_t epoch = world.epoch();
  const int64_t live_pois = world.num_live_pois();
  ASSERT_NE(world.Pin()->overlay, nullptr);

  if (fault::kEnabled) {
    fault::ScopedFault armed("ingest.compact",
                             fault::FaultPlan{.count = 1});
    Status status = world.Compact();
    EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
    EXPECT_GT(fault::Registry::Global().FireCount("ingest.compact"), 0);
    // The failed fold published nothing: readers stay on the overlay
    // epoch and the overlay remains intact for the retry.
    std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
    EXPECT_EQ(pin->epoch, epoch);
    EXPECT_NE(pin->overlay, nullptr);
    EXPECT_EQ(world.num_live_pois(), live_pois);
  }

  // Retry after disarm folds cleanly.
  ASSERT_TRUE(world.Compact().ok());
  std::shared_ptr<const PoiEpochSnapshot> pin = world.Pin();
  EXPECT_EQ(pin->epoch, epoch + 1);
  EXPECT_EQ(pin->overlay, nullptr);
  EXPECT_EQ(world.num_live_pois(), live_pois);
  EXPECT_EQ(static_cast<int64_t>(pin->grid->pois().size()), live_pois);
}

}  // namespace
}  // namespace ingest
}  // namespace soi
