// Wire-protocol unit tests (DESIGN.md "Serving & overload"): every frame
// type must round-trip bit-exactly, and every class of garbage — wrong
// magic, future version, reserved bits, unknown types, oversized or
// trailing payloads, out-of-range enum values — must decode to a typed
// kInvalidArgument, never a crash or an unbounded allocation.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "serve/protocol.h"
#include "snapshot/byte_io.h"

namespace soi {
namespace serve {
namespace {

QueryRequest MakeRequest() {
  QueryRequest request;
  request.request_id = 42;
  request.query.keywords = KeywordSet({3, 1, 7});
  request.query.k = 5;
  request.query.eps = 0.0007;
  request.has_deadline = true;
  request.deadline_seconds = 1.5;
  return request;
}

/// Splits an encoded frame into (header, payload) and checks the header.
void SplitFrame(const std::string& frame, FrameType want_type,
                FrameHeader* header, std::string* payload) {
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  Status decoded =
      DecodeFrameHeader(frame.substr(0, kFrameHeaderBytes), header);
  ASSERT_TRUE(decoded.ok()) << decoded.ToString();
  EXPECT_EQ(header->type, want_type);
  *payload = frame.substr(kFrameHeaderBytes);
  ASSERT_EQ(payload->size(), header->payload_bytes);
}

TEST(ServeProtocolTest, QueryFrameRoundTrips) {
  QueryRequest request = MakeRequest();
  std::string frame = EncodeQueryFrame(request);
  FrameHeader header;
  std::string payload;
  SplitFrame(frame, FrameType::kQuery, &header, &payload);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.query.keywords.ids(), request.query.keywords.ids());
  EXPECT_EQ(decoded.query.k, request.query.k);
  EXPECT_EQ(decoded.query.eps, request.query.eps);
  EXPECT_TRUE(decoded.has_deadline);
  EXPECT_EQ(decoded.deadline_seconds, request.deadline_seconds);
}

TEST(ServeProtocolTest, ResultFrameRoundTripsBitExactly) {
  QueryResponse response;
  response.request_id = 7;
  // Interests exercise the doubles-as-bit-patterns path: a subnormal, a
  // negative zero, and an ordinary value must all survive verbatim.
  response.streets.push_back({11, 0.123456789012345678, 3});
  response.streets.push_back({-1, -0.0, -1});
  response.streets.push_back({2, std::numeric_limits<double>::denorm_min(), 0});
  std::string frame = EncodeResultFrame(response);
  FrameHeader header;
  std::string payload;
  SplitFrame(frame, FrameType::kResult, &header, &payload);
  QueryResponse decoded;
  ASSERT_TRUE(DecodeResultPayload(payload, &decoded).ok());
  ASSERT_EQ(decoded.streets.size(), response.streets.size());
  for (size_t i = 0; i < decoded.streets.size(); ++i) {
    EXPECT_EQ(decoded.streets[i].street, response.streets[i].street);
    // Bit-level comparison, not ==: -0.0 and NaN-adjacent patterns must
    // survive the wire exactly.
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded.streets[i].interest),
              std::bit_cast<uint64_t>(response.streets[i].interest));
    EXPECT_EQ(decoded.streets[i].best_segment,
              response.streets[i].best_segment);
  }
}

TEST(ServeProtocolTest, ErrorFrameRoundTrips) {
  ErrorResponse error;
  error.request_id = 9;
  error.status = Status::ResourceExhausted("queue full");
  std::string frame = EncodeErrorFrame(error);
  FrameHeader header;
  std::string payload;
  SplitFrame(frame, FrameType::kError, &header, &payload);
  ErrorResponse decoded;
  ASSERT_TRUE(DecodeErrorPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, error.request_id);
  EXPECT_EQ(decoded.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.status.message(), "queue full");
}

std::string ValidHeaderBytes() {
  return EncodeQueryFrame(MakeRequest()).substr(0, kFrameHeaderBytes);
}

TEST(ServeProtocolTest, HeaderRejectsBadMagic) {
  std::string header = ValidHeaderBytes();
  header[0] ^= 0x01;
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(header, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HeaderRejectsFutureVersion) {
  std::string header = ValidHeaderBytes();
  header[4] = static_cast<char>(kProtocolVersion + 1);
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(header, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HeaderRejectsReservedBits) {
  std::string header = ValidHeaderBytes();
  header[6] = 1;
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(header, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HeaderRejectsUnknownType) {
  std::string header = ValidHeaderBytes();
  header[5] = 77;
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(header, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HeaderRejectsOversizedPayload) {
  // A hostile length prefix must be rejected before anyone allocates.
  ByteWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(FrameType::kQuery));
  w.PutU8(0);
  w.PutU8(0);
  w.PutU32(kMaxFramePayloadBytes + 1);
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(w.TakeData(), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, HeaderRejectsWrongLength) {
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader("short", &out).code(),
            StatusCode::kInvalidArgument);
  std::string long_header = ValidHeaderBytes() + "x";
  EXPECT_EQ(DecodeFrameHeader(long_header, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, QueryPayloadRejectsTruncationAndTrailingBytes) {
  std::string payload =
      EncodeQueryFrame(MakeRequest()).substr(kFrameHeaderBytes);
  QueryRequest out;
  EXPECT_EQ(
      DecodeQueryPayload(payload.substr(0, payload.size() - 1), &out).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeQueryPayload(payload + "x", &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, QueryPayloadRejectsKeywordCountAboveCap) {
  // Claim 2^16+1 keywords but supply none: the cap check must fire
  // before any reserve.
  ByteWriter w;
  w.PutU64(1);
  w.PutU8(0);
  w.PutDouble(0.0);
  w.PutI32(10);
  w.PutDouble(0.0005);
  w.PutU32(kMaxQueryKeywords + 1);
  QueryRequest out;
  EXPECT_EQ(DecodeQueryPayload(w.TakeData(), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, QueryPayloadRejectsNonFiniteDeadline) {
  QueryRequest request = MakeRequest();
  request.deadline_seconds = std::nan("");
  std::string payload =
      EncodeQueryFrame(request).substr(kFrameHeaderBytes);
  QueryRequest out;
  EXPECT_EQ(DecodeQueryPayload(payload, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, QueryPayloadAcceptsNonPositiveDeadline) {
  // "Already expired" is valid on the wire — the server sheds it at
  // admission, the decoder must not.
  QueryRequest request = MakeRequest();
  request.deadline_seconds = -3.0;
  std::string payload =
      EncodeQueryFrame(request).substr(kFrameHeaderBytes);
  QueryRequest out;
  ASSERT_TRUE(DecodeQueryPayload(payload, &out).ok());
  EXPECT_EQ(out.deadline_seconds, -3.0);
}

TEST(ServeProtocolTest, ResultPayloadRejectsStreetCountAboveCap) {
  ByteWriter w;
  w.PutU64(1);
  w.PutU32(kMaxResultStreets + 1);
  QueryResponse out;
  EXPECT_EQ(DecodeResultPayload(w.TakeData(), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, ErrorPayloadRejectsUnknownCodeAndOkStatus) {
  ErrorResponse out;
  {
    ByteWriter w;
    w.PutU64(1);
    w.PutU32(250);  // no such StatusCode
    w.PutString("??");
    EXPECT_EQ(DecodeErrorPayload(w.TakeData(), &out).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ByteWriter w;
    w.PutU64(1);
    w.PutU32(static_cast<uint32_t>(StatusCode::kOk));
    w.PutString("not an error");
    EXPECT_EQ(DecodeErrorPayload(w.TakeData(), &out).code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace serve
}  // namespace soi
