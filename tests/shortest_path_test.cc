#include <algorithm>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "network/shortest_path.h"
#include "test_util.h"

namespace soi {
namespace {

// Floyd-Warshall oracle over the (undirected) network.
std::vector<std::vector<double>> AllPairsOracle(const RoadNetwork& network) {
  size_t n = static_cast<size_t>(network.num_vertices());
  std::vector<std::vector<double>> dist(
      n, std::vector<double>(n, ShortestPathEngine::kUnreachable));
  for (size_t i = 0; i < n; ++i) dist[i][i] = 0.0;
  for (const NetworkSegment& segment : network.segments()) {
    size_t a = static_cast<size_t>(segment.from);
    size_t b = static_cast<size_t>(segment.to);
    dist[a][b] = std::min(dist[a][b], segment.length);
    dist[b][a] = std::min(dist[b][a], segment.length);
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  return dist;
}

TEST(ShortestPathTest, DistancesMatchFloydWarshallOnGrid) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 5, 1.0);
  ShortestPathEngine engine(network);
  auto oracle = AllPairsOracle(network);
  for (VertexId source = 0; source < network.num_vertices(); ++source) {
    std::vector<double> distances = engine.DistancesFrom(source);
    for (VertexId target = 0; target < network.num_vertices(); ++target) {
      EXPECT_NEAR(distances[static_cast<size_t>(target)],
                  oracle[static_cast<size_t>(source)]
                        [static_cast<size_t>(target)],
                  1e-12)
          << source << " -> " << target;
    }
  }
}

TEST(ShortestPathTest, PathIsConsistentWalk) {
  RoadNetwork network = testing_util::MakeGridNetwork(5, 5, 0.7);
  ShortestPathEngine engine(network);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    VertexId from = static_cast<VertexId>(
        rng.UniformInt(0, network.num_vertices() - 1));
    VertexId to = static_cast<VertexId>(
        rng.UniformInt(0, network.num_vertices() - 1));
    auto result = engine.FindPath(from, to);
    ASSERT_TRUE(result.ok());
    const NetworkPath& path = result.ValueOrDie();
    ASSERT_FALSE(path.vertices.empty());
    EXPECT_EQ(path.vertices.front(), from);
    EXPECT_EQ(path.vertices.back(), to);
    ASSERT_EQ(path.segments.size() + 1, path.vertices.size());
    double length = 0.0;
    for (size_t i = 0; i < path.segments.size(); ++i) {
      const NetworkSegment& segment = network.segment(path.segments[i]);
      VertexId a = path.vertices[i];
      VertexId b = path.vertices[i + 1];
      // The segment joins consecutive path vertices (either direction).
      EXPECT_TRUE((segment.from == a && segment.to == b) ||
                  (segment.from == b && segment.to == a));
      length += segment.length;
    }
    EXPECT_NEAR(length, path.length, 1e-12);
    // Matches the distance map.
    EXPECT_NEAR(engine.DistancesFrom(from)[static_cast<size_t>(to)],
                path.length, 1e-12);
  }
}

TEST(ShortestPathTest, TrivialPath) {
  RoadNetwork network = testing_util::MakeGridNetwork(2, 2, 1.0);
  ShortestPathEngine engine(network);
  auto path = engine.FindPath(0, 0);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path.ValueOrDie().length, 0.0);
  EXPECT_EQ(path.ValueOrDie().vertices, (std::vector<VertexId>{0}));
  EXPECT_TRUE(path.ValueOrDie().segments.empty());
}

RoadNetwork TwoComponentNetwork() {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  VertexId c = builder.AddVertex({10, 10});
  VertexId d = builder.AddVertex({11, 10});
  SOI_CHECK(builder.AddStreet("Main", {a, b}).ok());
  SOI_CHECK(builder.AddStreet("Island", {c, d}).ok());
  return std::move(builder).Build().ValueOrDie();
}

TEST(ShortestPathTest, DisconnectedComponentsAreUnreachable) {
  RoadNetwork network = TwoComponentNetwork();
  ShortestPathEngine engine(network);
  std::vector<double> distances = engine.DistancesFrom(0);
  EXPECT_DOUBLE_EQ(distances[1], 1.0);
  EXPECT_EQ(distances[2], ShortestPathEngine::kUnreachable);
  auto path = engine.FindPath(0, 3);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

TEST(ShortestPathTest, PrefersShorterDetour) {
  // A triangle-ish layout where the direct segment is longer than the
  // two-hop detour.
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({4, 3});     // Direct: length 5.
  VertexId c = builder.AddVertex({2, 0});     // a-c: 2, c-b: ~3.6.
  SOI_CHECK(builder.AddStreet("Direct", {a, b}).ok());
  SOI_CHECK(builder.AddStreet("Via", {a, c, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  ShortestPathEngine engine(network);
  auto path = engine.FindPath(a, b);
  ASSERT_TRUE(path.ok());
  EXPECT_LT(path.ValueOrDie().length, 5.0 + 1e-12);
  // 2 + sqrt(4 + 9) = 5.606 > 5, so the direct segment wins here.
  EXPECT_DOUBLE_EQ(path.ValueOrDie().length, 5.0);
}

}  // namespace
}  // namespace soi
