#include <set>

#include "common/random.h"
#include "geometry/distance.h"
#include "grid/segment_cell_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

GridGeometry GeometryFor(const RoadNetwork& network, double cell_size) {
  return GridGeometry(network.bounds().Expanded(cell_size), cell_size);
}

TEST(SegmentCellIndexTest, BaseMapsMatchBruteForce) {
  RoadNetwork network = testing_util::MakeGridNetwork(4, 5, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.004);
  SegmentCellIndex index(network, geometry);
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    const Segment& seg = network.segment(id).geometry;
    std::set<CellId> expected;
    for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
      // Mirrors the exact touch test in segment_cell_index.cc.
      // soi-lint: float-eq
      if (SegmentBoxDistance(seg, geometry.CellBox(cell)) == 0.0) {
        expected.insert(cell);
      }
    }
    std::set<CellId> actual(index.SegmentCells(id).begin(),
                            index.SegmentCells(id).end());
    EXPECT_EQ(actual, expected) << "segment " << id;
  }
}

TEST(SegmentCellIndexTest, MapsAreInverses) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 4, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.005);
  SegmentCellIndex index(network, geometry);
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    for (CellId cell : index.SegmentCells(id)) {
      const auto& segs = index.CellSegments(cell);
      EXPECT_NE(std::find(segs.begin(), segs.end(), id), segs.end());
    }
  }
  for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
    for (SegmentId id : index.CellSegments(cell)) {
      const auto& cells = index.SegmentCells(id);
      EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(), cell));
    }
  }
}

class EpsAugmentationProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(EpsAugmentationProperty, MatchesBruteForceAndIsSymmetric) {
  auto [seed, eps] = GetParam();
  Rng rng(seed);
  RoadNetwork network = testing_util::MakeGridNetwork(4, 4, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.0035);
  SegmentCellIndex base(network, geometry);
  EpsAugmentedMaps maps(base, eps);
  EXPECT_DOUBLE_EQ(maps.eps(), eps);

  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    const Segment& seg = network.segment(id).geometry;
    std::set<CellId> expected;
    for (CellId cell = 0; cell < geometry.num_cells(); ++cell) {
      if (SegmentBoxDistance(seg, geometry.CellBox(cell)) <= eps) {
        expected.insert(cell);
      }
    }
    std::set<CellId> actual(maps.SegmentCells(id).begin(),
                            maps.SegmentCells(id).end());
    EXPECT_EQ(actual, expected) << "segment " << id << " eps " << eps;
    // C_eps grows with eps and contains the base cells.
    for (CellId cell : base.SegmentCells(id)) {
      EXPECT_TRUE(expected.count(cell) > 0);
    }
    // Symmetry with L_eps.
    for (CellId cell : maps.SegmentCells(id)) {
      const auto& segs = maps.CellSegments(cell);
      EXPECT_NE(std::find(segs.begin(), segs.end(), id), segs.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EpsAugmentationProperty,
    ::testing::Combine(::testing::Values(uint64_t{1}),
                       ::testing::Values(0.0005, 0.002, 0.006)));

// The key completeness property behind UpdateInterest: any POI within eps
// of a segment lies in a cell of C_eps(l).
TEST(EpsAugmentationTest, CoversAllNearbyPoints) {
  Rng rng(17);
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.003);
  SegmentCellIndex base(network, geometry);
  double eps = 0.0025;
  EpsAugmentedMaps maps(base, eps);
  const Box& bounds = geometry.bounds();
  for (int i = 0; i < 3000; ++i) {
    Point p{rng.UniformDouble(bounds.min.x, bounds.max.x),
            rng.UniformDouble(bounds.min.y, bounds.max.y)};
    CellId cell = geometry.CellOf(p);
    for (SegmentId id = 0; id < network.num_segments(); ++id) {
      if (network.segment(id).geometry.DistanceTo(p) <= eps) {
        const auto& cells = maps.SegmentCells(id);
        EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(), cell))
            << "point " << p << " near segment " << id
            << " but its cell is not in C_eps";
      }
    }
  }
}

TEST(EpsAugmentationTest, ZeroEpsEqualsBaseMaps) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.004);
  SegmentCellIndex base(network, geometry);
  EpsAugmentedMaps maps(base, 0.0);
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    EXPECT_EQ(maps.SegmentCells(id), base.SegmentCells(id));
  }
}

TEST(EpsAugmentationTest, NumSegmentCellsMatchesListSize) {
  RoadNetwork network = testing_util::MakeGridNetwork(3, 3, 0.01);
  GridGeometry geometry = GeometryFor(network, 0.004);
  SegmentCellIndex base(network, geometry);
  EpsAugmentedMaps maps(base, 0.001);
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    EXPECT_EQ(maps.NumSegmentCells(id),
              static_cast<int64_t>(maps.SegmentCells(id).size()));
    EXPECT_GT(maps.NumSegmentCells(id), 0);
  }
}

}  // namespace
}  // namespace soi
