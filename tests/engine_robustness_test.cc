// Robustness tests for the hardened serving path (DESIGN.md "Failure
// model"): admission validation, deadlines/cancellation, overload
// shedding, and recovery from injected faults. The fault-dependent tests
// run fully only under -DSOI_FAULT_INJECTION=ON (the `fault` preset) and
// degrade to checking the happy path elsewhere.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "core/query_engine.h"
#include "core/soi_algorithm.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "test_util.h"

namespace soi {
namespace {

// A self-contained SOI instance (mirrors the query_engine_test fixture).
struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  Instance(uint64_t seed, double cell_size, int64_t num_pois,
           int32_t vocab_size)
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(seed, num_pois, vocab_size, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), cell_size),
        grid(geometry.bounds(), cell_size, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, int64_t n,
                                   int32_t vocab_size,
                                   Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, n, vocab_size, vocabulary, &rng);
  }
};

SoiQuery ValidQuery(double eps = 0.002) {
  SoiQuery query;
  query.keywords = KeywordSet({0, 1});
  query.k = 3;
  query.eps = eps;
  return query;
}

void ExpectIdenticalResults(const SoiResult& got, const SoiResult& want,
                            const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(got.streets.size(), want.streets.size());
  for (size_t i = 0; i < got.streets.size(); ++i) {
    EXPECT_EQ(got.streets[i].street, want.streets[i].street);
    EXPECT_EQ(got.streets[i].interest, want.streets[i].interest);
    EXPECT_EQ(got.streets[i].best_segment, want.streets[i].best_segment);
  }
  EXPECT_EQ(got.stats.iterations, want.stats.iterations);
  EXPECT_EQ(got.stats.segments_seen, want.stats.segments_seen);
  EXPECT_EQ(got.stats.poi_distance_checks, want.stats.poi_distance_checks);
}

TEST(EngineRobustnessTest, QueryValidationRejectsMalformedQueries) {
  SoiQuery query = ValidQuery();
  EXPECT_TRUE(query.Validate().ok());

  SoiQuery nan_eps = ValidQuery(std::nan(""));
  EXPECT_EQ(nan_eps.Validate().code(), StatusCode::kInvalidArgument);
  SoiQuery inf_eps = ValidQuery(std::numeric_limits<double>::infinity());
  EXPECT_EQ(inf_eps.Validate().code(), StatusCode::kInvalidArgument);
  SoiQuery negative_eps = ValidQuery(-0.001);
  EXPECT_EQ(negative_eps.Validate().code(), StatusCode::kInvalidArgument);
  SoiQuery zero_eps = ValidQuery(0.0);
  EXPECT_EQ(zero_eps.Validate().code(), StatusCode::kInvalidArgument);

  SoiQuery bad_k = ValidQuery();
  bad_k.k = 0;
  EXPECT_EQ(bad_k.Validate().code(), StatusCode::kInvalidArgument);
  bad_k.k = -5;
  EXPECT_EQ(bad_k.Validate().code(), StatusCode::kInvalidArgument);

  SoiQuery no_keywords = ValidQuery();
  no_keywords.keywords = KeywordSet();
  EXPECT_EQ(no_keywords.Validate().code(), StatusCode::kInvalidArgument);
}

// The NaN regression of the eps-keyed cache: NaN != NaN, so a NaN key
// would miss (and insert a fresh entry) on every lookup. Validation must
// reject the query before the cache is ever consulted.
TEST(EngineRobustnessTest, NanEpsNeverBecomesACacheKey) {
  Instance instance(3, 0.003, 300, 6);
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells);

  SoiQuery nan_query = ValidQuery(std::nan(""));
  for (int i = 0; i < 3; ++i) {
    Result<SoiResult> result = engine.TryRun(nan_query);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.cache_stats().misses, 0);

  // The engine is untouched: a valid query works and caches normally.
  EXPECT_TRUE(engine.TryRun(ValidQuery()).ok());
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(EngineRobustnessTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Instance instance(5, 0.003, 300, 6);
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells);

#if SOI_OBS_ENABLED
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
#endif
  CancellationToken expired = CancellationToken::WithDeadline(-1.0);
  Result<SoiResult> result = engine.TryRun(ValidQuery(), expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
#if SOI_OBS_ENABLED
  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().Since(before);
  EXPECT_EQ(delta.CounterOr0("soi.engine.deadline_exceeded"), 1);
#endif

  // An expired deadline observed during the maps build (TryGetMaps) must
  // not leave a half-built cache entry behind.
  auto maps = engine.TryGetMaps(0.004, &expired);
  ASSERT_FALSE(maps.ok());
  EXPECT_EQ(maps.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.cache_size(), 0u);

  // The same eps builds fine afterwards.
  EXPECT_TRUE(engine.TryGetMaps(0.004).ok());
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(EngineRobustnessTest, CancellationMidFilteringReturnsCancelled) {
  Instance instance(7, 0.003, 400, 6);
  CancellationToken token = CancellationToken::Cancellable();
  QueryEngineOptions options;
  // Cancel from inside the filtering loop via the per-iteration observer:
  // deterministic, no timing dependence.
  options.algorithm.observer =
      [token](const SoiAlgorithmOptions::FilterSnapshot&) {
        token.Cancel();
      };
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  Result<SoiResult> result = engine.TryRun(ValidQuery(), token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // The engine survives: the same query re-runs fine without the token.
  EXPECT_TRUE(engine.TryRun(ValidQuery()).ok());
}

TEST(EngineRobustnessTest, RunBatchSuccessPathIsUnchangedByHardening) {
  Instance instance(9, 0.003, 400, 6);
  SoiAlgorithm sequential(instance.network, instance.grid,
                          instance.global_index);
  SoiQuery query = ValidQuery();
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiResult expected = sequential.TopK(query, maps);

  QueryEngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  Result<SoiResult> tried = engine.TryRun(query);
  ASSERT_TRUE(tried.ok()) << tried.status().ToString();
  ExpectIdenticalResults(tried.ValueOrDie(), expected, "TryRun");
}

TEST(EngineRobustnessTest, SheddingBeyondMaxInflight) {
  Instance instance(11, 0.003, 300, 6);
  QueryEngineOptions options;
  options.num_threads = 4;
  options.max_inflight_queries = 1;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);

  // Distinct queries (distinct k) so none coalesce: admission is pure
  // first-come-first-served racing, not the per-logical-query group
  // charge (that path has its own test in query_engine_test.cc).
  std::vector<SoiQuery> batch;
  for (int i = 0; i < 8; ++i) {
    SoiQuery query = ValidQuery();
    query.k = 1 + i;
    batch.push_back(query);
  }
  std::vector<Result<SoiResult>> results = engine.TryRunBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  int ok = 0, shed = 0;
  for (const Result<SoiResult>& result : results) {
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  // Admission is first-come-first-served under a racing batch, so the
  // split is nondeterministic — but at least one query is always
  // admitted, and every query gets exactly one of the two outcomes.
  EXPECT_GE(ok, 1);
  EXPECT_EQ(ok + shed, static_cast<int>(batch.size()));

  // A sequential engine under the same bound never sheds distinct
  // queries: they run one at a time, each within the in-flight limit.
  QueryEngineOptions sequential_options;
  sequential_options.max_inflight_queries = 1;
  QueryEngine sequential_engine(instance.network, instance.grid,
                                instance.global_index,
                                instance.segment_cells, sequential_options);
  for (const Result<SoiResult>& result :
       sequential_engine.TryRunBatch(batch)) {
    EXPECT_TRUE(result.ok());
  }
}

// The acceptance scenario of this PR: one batch mixing healthy queries,
// invalid queries, an expired-deadline query, and (under the fault
// preset) an injected eps-cache build fault. Failed entries report their
// per-query Status; healthy entries are bit-identical to the sequential
// reference; the engine and its cache stay clean throughout.
TEST(EngineRobustnessTest, MixedBatchReturnsPerQueryStatuses) {
  fault::Registry::Global().Reset();
  Instance instance(13, 0.003, 500, 8);

  const double kFaultedEps = 0.005;
  std::vector<SoiQuery> batch;
  std::vector<CancellationToken> cancels;
  // Indices 0-5: healthy, two eps values exercising the cache.
  for (int i = 0; i < 6; ++i) {
    SoiQuery query = ValidQuery(i % 2 == 0 ? 0.002 : 0.0008);
    query.keywords = KeywordSet({static_cast<KeywordId>(i % 4),
                                 static_cast<KeywordId>((i + 1) % 4)});
    query.k = 2 + i % 3;
    batch.push_back(query);
    cancels.push_back(CancellationToken());
  }
  // Index 6: NaN eps (invalid).
  batch.push_back(ValidQuery(std::nan("")));
  cancels.push_back(CancellationToken());
  // Index 7: k = 0 (invalid).
  SoiQuery bad_k = ValidQuery();
  bad_k.k = 0;
  batch.push_back(bad_k);
  cancels.push_back(CancellationToken());
  // Index 8: expired deadline.
  batch.push_back(ValidQuery(0.003));
  cancels.push_back(CancellationToken::WithDeadline(-1.0));
  // Index 9: targets the faulted eps — under the fault preset its maps
  // build fails once (kInternal); elsewhere it behaves like a healthy
  // query.
  SoiQuery faulted = ValidQuery(kFaultedEps);
  batch.push_back(faulted);
  cancels.push_back(CancellationToken());

  // Sequential reference for every structurally valid query.
  SoiAlgorithm sequential(instance.network, instance.grid,
                          instance.global_index);
  auto reference = [&](const SoiQuery& query) {
    EpsAugmentedMaps maps(instance.segment_cells, query.eps);
    return sequential.TopK(query, maps);
  };

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QueryEngineOptions options;
    options.num_threads = threads;
    QueryEngine engine(instance.network, instance.grid,
                       instance.global_index, instance.segment_cells,
                       options);
    fault::ScopedFault armed("cache.build_maps", fault::FaultPlan{});

    std::vector<Result<SoiResult>> results =
        engine.TryRunBatch(batch, cancels);
    ASSERT_EQ(results.size(), batch.size());

    EXPECT_EQ(results[6].status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(results[7].status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(results[8].status().code(), StatusCode::kDeadlineExceeded);

    // The structurally valid queries (0-5 and 9): under the fault preset
    // exactly one absorbs the injected build fault (whichever triggered
    // the first maps build — scheduling-dependent) and reports
    // kInternal; every other one must return a result bit-identical to
    // the sequential reference. Same-eps peers of the faulted build
    // retry against the evicted slot and succeed.
    int internal = 0;
    for (size_t i : {0u, 1u, 2u, 3u, 4u, 5u, 9u}) {
      const Result<SoiResult>& result = results[i];
      if (result.ok()) {
        ExpectIdenticalResults(result.ValueOrDie(), reference(batch[i]),
                               "query " + std::to_string(i));
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kInternal)
            << "query " << i << ": " << result.status().ToString();
        ++internal;
      }
    }
    EXPECT_EQ(internal, fault::kEnabled ? 1 : 0);
    if (fault::kEnabled) {
      EXPECT_EQ(fault::Registry::Global().FireCount("cache.build_maps"), 1);
    }

    // No stale or poisoned cache entry: every eps in the batch can be
    // (re)built and served after the storm.
    for (double eps : {0.002, 0.0008, 0.003, kFaultedEps}) {
      Result<SoiResult> retry = engine.TryRun(ValidQuery(eps));
      EXPECT_TRUE(retry.ok()) << "eps=" << eps << ": "
                              << retry.status().ToString();
    }
    EXPECT_EQ(engine.cache_size(), 4u);
  }
}

TEST(EngineRobustnessTest, FailedMapsBuildEvictsItsCacheEntry) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "fault points compiled out (build with the `fault` "
                    "preset)";
  }
  fault::Registry::Global().Reset();
  Instance instance(15, 0.003, 300, 6);
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells);

#if SOI_OBS_ENABLED
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
#endif
  {
    fault::ScopedFault armed("cache.build_maps", fault::FaultPlan{});
    Result<SoiResult> result = engine.TryRun(ValidQuery());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
  // The failed build's entry was evicted, not published.
  EXPECT_EQ(engine.cache_size(), 0u);

  // Recovery: the same eps rebuilds from scratch and serves.
  Result<SoiResult> retry = engine.TryRun(ValidQuery());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(engine.cache_size(), 1u);
#if SOI_OBS_ENABLED
  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().Since(before);
  // Both attempts missed (the failed entry never became visible as a
  // hit), and only the successful one counts as a completed build.
  EXPECT_EQ(delta.CounterOr0("soi.cache.misses"), 2);
  EXPECT_EQ(delta.CounterOr0("soi.cache.builds"), 1);
#endif
}

TEST(EngineRobustnessTest, RefinementFaultSurfacesAsInternal) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "fault points compiled out (build with the `fault` "
                    "preset)";
  }
  fault::Registry::Global().Reset();
  Instance instance(17, 0.003, 400, 6);
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells);

  {
    fault::ScopedFault armed("soi.refine.finalize", fault::FaultPlan{});
    Result<SoiResult> result = engine.TryRun(ValidQuery());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
  // The maps cache is unaffected (the build succeeded) and the engine
  // still serves.
  EXPECT_EQ(engine.cache_size(), 1u);
  EXPECT_TRUE(engine.TryRun(ValidQuery()).ok());
}

TEST(EngineRobustnessTest, RunBatchStillBitIdenticalAcrossThreadCounts) {
  // Tier-1 determinism guard rerun against the hardened path: Run and
  // RunBatch are now thin wrappers over TryRun, and must remain
  // bit-identical to the sequential reference.
  Instance instance(19, 0.003, 400, 6);
  SoiAlgorithm sequential(instance.network, instance.grid,
                          instance.global_index);
  std::vector<SoiQuery> batch;
  for (int i = 0; i < 8; ++i) {
    SoiQuery query = ValidQuery(i % 2 == 0 ? 0.002 : 0.004);
    query.keywords = KeywordSet({static_cast<KeywordId>(i % 5)});
    query.k = 1 + i % 4;
    batch.push_back(query);
  }
  std::vector<SoiResult> expected;
  for (const SoiQuery& query : batch) {
    EpsAugmentedMaps maps(instance.segment_cells, query.eps);
    expected.push_back(sequential.TopK(query, maps));
  }
  for (int threads : {1, 2, 4}) {
    QueryEngineOptions options;
    options.num_threads = threads;
    QueryEngine engine(instance.network, instance.grid,
                       instance.global_index, instance.segment_cells,
                       options);
    std::vector<SoiResult> got = engine.RunBatch(batch);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectIdenticalResults(got[i], expected[i],
                             "threads=" + std::to_string(threads) +
                                 " query=" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace soi
