// Metrics-registry correctness, including exactness under concurrent
// writers (run with SOI_SANITIZE=thread to verify the sharded paths are
// race-free). Uses local Registry instances so tests do not interfere
// with the process-global registry or with each other.

#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "gtest/gtest.h"
#include "obs/json_export.h"

namespace soi {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Registry registry;
  Counter* counter = registry.GetCounter("test.adds");
  EXPECT_EQ(counter->Value(), 0);
  counter->Add(5);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 6);
  EXPECT_EQ(counter->name(), "test.adds");
}

TEST(CounterTest, ConcurrentWritersSumExactly) {
  Registry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Sharded accumulation must lose no increments: the sum is exact, not
  // a statistical approximation.
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test.level");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Add(-40);
  EXPECT_EQ(gauge->Value(), 2);
  gauge->Set(7);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(HistogramTest, BucketsObservationsAgainstBounds) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("test.latency", {0.001, 0.01, 0.1});
  histogram->Observe(0.0005);  // bucket 0 (<= 0.001)
  histogram->Observe(0.001);   // bucket 0 (bounds are inclusive)
  histogram->Observe(0.005);   // bucket 1
  histogram->Observe(0.05);    // bucket 2
  histogram->Observe(5.0);     // overflow bucket
  Histogram::Snapshot snap = histogram->Snap();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total_count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0005 + 0.001 + 0.005 + 0.05 + 5.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), snap.sum / 5.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test.q", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram->Observe(0.5);  // bucket [0, 1]
  Histogram::Snapshot snap = histogram->Snap();
  // All mass in the first bucket: quantiles interpolate inside [0, 1].
  EXPECT_GE(snap.Quantile(0.5), 0.0);
  EXPECT_LE(snap.Quantile(0.5), 1.0);
  EXPECT_LE(snap.Quantile(0.1), snap.Quantile(0.9));
  // Overflow observations clamp to the last finite bound.
  histogram->Observe(100.0);
  EXPECT_LE(histogram->Snap().Quantile(1.0), 4.0);
}

TEST(HistogramTest, ConcurrentObserversCountExactly) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test.conc", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      // Alternate buckets so both the count array and the CAS-folded sum
      // see contention.
      for (int i = 0; i < kObsPerThread; ++i) {
        histogram->Observe(t % 2 == 0 ? 0.5 : 5.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.total_count,
            static_cast<int64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ(snap.counts[0], 4 * static_cast<int64_t>(kObsPerThread));
  EXPECT_EQ(snap.counts[1], 4 * static_cast<int64_t>(kObsPerThread));
  EXPECT_DOUBLE_EQ(snap.sum, 4 * kObsPerThread * 0.5 + 4 * kObsPerThread * 5.0);
}

TEST(HistogramTest, ExemplarsStampBucketsLastWriteWins) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("test.exemplar", {0.001, 0.01, 0.1});
  histogram->Observe(0.0005, /*exemplar_query_id=*/7);
  histogram->Observe(0.05, /*exemplar_query_id=*/11);
  histogram->Observe(0.05, /*exemplar_query_id=*/12);  // overwrites 11
  histogram->Observe(5.0, /*exemplar_query_id=*/13);   // overflow bucket
  histogram->Observe(0.005);  // plain Observe: no exemplar, bucket 1 stays 0
  Histogram::Snapshot snap = histogram->Snap();
  ASSERT_EQ(snap.exemplars.size(), snap.counts.size());
  EXPECT_EQ(snap.exemplars[0], 7u);
  EXPECT_EQ(snap.exemplars[1], 0u);  // never stamped
  EXPECT_EQ(snap.exemplars[2], 12u);
  EXPECT_EQ(snap.exemplars[3], 13u);
}

TEST(HistogramTest, ExemplarIdZeroDoesNotErase) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test.exemplar0", {1.0});
  histogram->Observe(0.5, /*exemplar_query_id=*/42);
  // Id 0 means "no exemplar carried": the sample counts but must not
  // clear the bucket's existing stamp.
  histogram->Observe(0.5, /*exemplar_query_id=*/0);
  Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.exemplars[0], 42u);
}

TEST(HistogramTest, ExemplarForQuantileFindsTheTargetBucket) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("test.exemplar_q", {0.001, 0.01, 0.1});
  // 98 fast samples, 2 slow ones: the p99 target lands in the slow
  // bucket, whose stamp is the most recent slow query.
  for (int i = 0; i < 98; ++i) {
    histogram->Observe(0.0005, /*exemplar_query_id=*/100 + i);
  }
  histogram->Observe(0.05, /*exemplar_query_id=*/900);
  histogram->Observe(0.05, /*exemplar_query_id=*/901);
  Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.ExemplarForQuantile(0.99), 901u);
  EXPECT_EQ(snap.ExemplarForQuantile(0.5), 197u);
  Histogram::Snapshot empty =
      registry.GetHistogram("test.exemplar_empty", {1.0})->Snap();
  EXPECT_EQ(empty.ExemplarForQuantile(0.99), 0u);
}

TEST(HistogramTest, ResetClearsExemplars) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test.exemplar_reset", {1.0});
  histogram->Observe(0.5, /*exemplar_query_id=*/5);
  registry.Reset();
  Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.total_count, 0);
  EXPECT_EQ(snap.exemplars[0], 0u);
}

// Regression: a Registry::Reset between two snapshots (registry re-use
// across bench runs) used to make Since produce negative deltas, which
// poisoned every downstream rate and JSON artifact. Deltas now clamp to
// zero and the snapshot is flagged.
TEST(RegistryTest, SinceClampsNegativeCounterDeltas) {
  Registry registry;
  registry.GetCounter("c")->Add(10);
  MetricsSnapshot before = registry.Snapshot();
  registry.Reset();
  registry.GetCounter("c")->Add(3);  // 3 < 10: raw delta would be -7
  MetricsSnapshot delta = registry.Snapshot().Since(before);
  EXPECT_EQ(delta.CounterOr0("c"), 0);
  EXPECT_TRUE(delta.clamped);
}

TEST(RegistryTest, SinceWithoutResetIsNotClamped) {
  Registry registry;
  registry.GetCounter("c")->Add(10);
  MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("c")->Add(5);
  MetricsSnapshot delta = registry.Snapshot().Since(before);
  EXPECT_EQ(delta.CounterOr0("c"), 5);
  EXPECT_FALSE(delta.clamped);
}

TEST(HistogramTest, SinceClampsNegativeBucketDeltas) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("h", {1.0, 10.0});
  for (int i = 0; i < 5; ++i) histogram->Observe(0.5);
  Histogram::Snapshot before = histogram->Snap();
  registry.Reset();
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  Histogram::Snapshot delta = histogram->Snap().Since(before);
  EXPECT_TRUE(delta.clamped);
  // Bucket 0 went 5 -> 1 (clamped to 0); bucket 1 went 0 -> 1 (real).
  EXPECT_EQ(delta.counts[0], 0);
  EXPECT_EQ(delta.counts[1], 1);
  // total_count is recomputed from the clamped buckets, not subtracted
  // independently — the snapshot stays internally consistent.
  EXPECT_EQ(delta.total_count, 1);
  EXPECT_GE(delta.sum, 0.0);
}

TEST(RegistryTest, SincePropagatesHistogramClampFlag) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  for (int i = 0; i < 4; ++i) histogram->Observe(0.5);
  MetricsSnapshot before = registry.Snapshot();
  registry.Reset();
  histogram->Observe(0.5);
  MetricsSnapshot delta = registry.Snapshot().Since(before);
  const Histogram::Snapshot* h = delta.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count, 0);
  EXPECT_TRUE(h->clamped);
  EXPECT_TRUE(delta.clamped);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  Registry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetCounter("mid")->Add(3);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  EXPECT_EQ(snap.CounterOr0("alpha"), 2);
  EXPECT_EQ(snap.CounterOr0("absent"), 0);
}

TEST(RegistryTest, SinceComputesIntervalDeltas) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  registry.GetCounter("c")->Add(10);
  registry.GetGauge("g")->Set(100);
  histogram->Observe(0.5);
  MetricsSnapshot before = registry.Snapshot();

  registry.GetCounter("c")->Add(7);
  registry.GetCounter("fresh")->Add(3);
  registry.GetGauge("g")->Set(50);
  // Bounds-less lookup finds the existing histogram despite its custom
  // bounds.
  registry.GetHistogram("h")->Observe(0.25);
  MetricsSnapshot delta = registry.Snapshot().Since(before);

  EXPECT_EQ(delta.CounterOr0("c"), 7);
  // Metrics absent from the earlier snapshot pass through unchanged.
  EXPECT_EQ(delta.CounterOr0("fresh"), 3);
  // Gauges are levels, not sums: Since keeps the later level.
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 50);
  const Histogram::Snapshot* h = delta.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count, 1);
  EXPECT_DOUBLE_EQ(h->sum, 0.25);
}

TEST(RegistryTest, ResetZeroesValuesKeepingPointersValid) {
  Registry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  counter->Add(5);
  histogram->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(histogram->Snap().total_count, 0);
  counter->Add(2);  // pointers stay usable after Reset
  EXPECT_EQ(counter->Value(), 2);
}

TEST(JsonExportTest, EmitsCountersGaugesAndHistograms) {
  Registry registry;
  registry.GetCounter("soi.test.count")->Add(4);
  registry.GetGauge("soi.test.level")->Set(9);
  registry.GetHistogram("soi.test.seconds", {0.1, 1.0})->Observe(0.05);
  std::string text = MetricsToJson(registry.Snapshot());
  EXPECT_NE(text.find("\"soi.test.count\": 4"), std::string::npos) << text;
  EXPECT_NE(text.find("\"soi.test.level\": 9"), std::string::npos) << text;
  EXPECT_NE(text.find("\"soi.test.seconds\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"count\": 1"), std::string::npos) << text;
  // Valid JSON document: the writer's own validation ran to completion
  // (MetricsToJson checks done()), spot-check the envelope keys.
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
}

TEST(JsonExportTest, EmptyRegistryProducesEmptySections) {
  Registry registry;
  std::ostringstream out;
  JsonWriter json(&out, /*pretty=*/false);
  WriteMetricsJson(registry.Snapshot(), &json);
  EXPECT_TRUE(json.done());
  EXPECT_EQ(out.str(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace obs
}  // namespace soi
