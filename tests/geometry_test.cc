#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "geometry/box.h"
#include "geometry/distance.h"
#include "geometry/point.h"
#include "geometry/segment.h"
#include "gtest/gtest.h"

namespace soi {
namespace {

// --- Point ---------------------------------------------------------------

TEST(PointTest, Distance) {
  Point a{0, 0};
  Point b{3, 4};
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistanceTo(b), 25.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(PointTest, Arithmetic) {
  Point a{1, 2};
  Point b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_EQ(a * 2.0, (Point{2, 4}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
}

// --- Box -----------------------------------------------------------------

TEST(BoxTest, EmptyBox) {
  Box box = Box::Empty();
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Diagonal(), 0.0);
  EXPECT_FALSE(box.Contains(Point{0, 0}));
}

TEST(BoxTest, FromCornersNormalizes) {
  Box box = Box::FromCorners(Point{2, 3}, Point{-1, 1});
  EXPECT_EQ(box.min, (Point{-1, 1}));
  EXPECT_EQ(box.max, (Point{2, 3}));
  EXPECT_DOUBLE_EQ(box.Width(), 3.0);
  EXPECT_DOUBLE_EQ(box.Height(), 2.0);
}

TEST(BoxTest, ContainsBoundaryInclusive) {
  Box box = Box::FromCorners(Point{0, 0}, Point{1, 1});
  EXPECT_TRUE(box.Contains(Point{0, 0}));
  EXPECT_TRUE(box.Contains(Point{1, 1}));
  EXPECT_TRUE(box.Contains(Point{0.5, 1}));
  EXPECT_FALSE(box.Contains(Point{1.0001, 0.5}));
}

TEST(BoxTest, Intersects) {
  Box a = Box::FromCorners(Point{0, 0}, Point{2, 2});
  Box b = Box::FromCorners(Point{2, 2}, Point{3, 3});  // Touching corner.
  Box c = Box::FromCorners(Point{2.1, 2.1}, Point{3, 3});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(Box::Empty()));
}

TEST(BoxTest, ExtendToCover) {
  Box box = Box::Empty();
  box.ExtendToCover(Point{1, 1});
  EXPECT_FALSE(box.IsEmpty());
  box.ExtendToCover(Point{-1, 3});
  EXPECT_EQ(box.min, (Point{-1, 1}));
  EXPECT_EQ(box.max, (Point{1, 3}));
  box.ExtendToCover(Box::FromCorners(Point{0, 0}, Point{5, 0.5}));
  EXPECT_EQ(box.max, (Point{5, 3}));
  EXPECT_EQ(box.min, (Point{-1, 0}));
}

TEST(BoxTest, Expanded) {
  Box box = Box::FromCorners(Point{0, 0}, Point{1, 1}).Expanded(0.5);
  EXPECT_EQ(box.min, (Point{-0.5, -0.5}));
  EXPECT_EQ(box.max, (Point{1.5, 1.5}));
  EXPECT_DOUBLE_EQ(box.Diagonal(), std::sqrt(8.0));
}

TEST(BoxTest, MinMaxDistance) {
  Box box = Box::FromCorners(Point{0, 0}, Point{2, 2});
  EXPECT_DOUBLE_EQ(box.MinDistanceTo(Point{1, 1}), 0.0);    // Inside.
  EXPECT_DOUBLE_EQ(box.MinDistanceTo(Point{3, 1}), 1.0);    // Right.
  EXPECT_DOUBLE_EQ(box.MinDistanceTo(Point{3, 3}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(box.MaxDistanceTo(Point{0, 0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(box.MaxDistanceTo(Point{1, 1}), std::sqrt(2.0));
}

TEST(BoxTest, MinMaxDistanceBracketRandomPoints) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Box box = Box::FromCorners(
        Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)},
        Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)});
    Point p{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)};
    double lo = box.MinDistanceTo(p);
    double hi = box.MaxDistanceTo(p);
    // Any point inside the box must be within [lo, hi] of p.
    for (int s = 0; s < 20; ++s) {
      Point q{rng.UniformDouble(box.min.x, box.max.x),
              rng.UniformDouble(box.min.y, box.max.y)};
      double d = p.DistanceTo(q);
      EXPECT_GE(d, lo - 1e-12);
      EXPECT_LE(d, hi + 1e-12);
    }
  }
}

// --- Segment ----------------------------------------------------------------

TEST(SegmentTest, LengthAndMidpoint) {
  Segment s{Point{0, 0}, Point{4, 3}};
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_EQ(s.Midpoint(), (Point{2, 1.5}));
}

TEST(SegmentTest, DistanceToPoint) {
  Segment s{Point{0, 0}, Point{10, 0}};
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{5, 3}), 3.0);      // Perpendicular.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{-3, 4}), 5.0);     // Beyond endpoint a.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{13, 4}), 5.0);     // Beyond endpoint b.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{7, 0}), 0.0);      // On segment.
}

TEST(SegmentTest, DegenerateSegment) {
  Segment s{Point{1, 1}, Point{1, 1}};
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo(Point{4, 5}), 5.0);
}

TEST(SegmentTest, ClosestPointMinimizesOverSamples) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    Segment s{Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)},
              Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)}};
    Point p{rng.UniformDouble(-8, 8), rng.UniformDouble(-8, 8)};
    double reported = s.DistanceTo(p);
    for (int i = 0; i <= 50; ++i) {
      Point q = s.Interpolate(i / 50.0);
      EXPECT_LE(reported, p.DistanceTo(q) + 1e-12);
    }
  }
}

// --- SegmentsIntersect / distances ----------------------------------------

TEST(DistanceTest, SegmentsIntersectCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {2, 2}},
                                Segment{{0, 2}, {2, 0}}));
}

TEST(DistanceTest, SegmentsIntersectSharedEndpoint) {
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {1, 1}},
                                Segment{{1, 1}, {2, 0}}));
}

TEST(DistanceTest, SegmentsIntersectCollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect(Segment{{0, 0}, {2, 0}},
                                Segment{{1, 0}, {3, 0}}));
  EXPECT_FALSE(SegmentsIntersect(Segment{{0, 0}, {1, 0}},
                                 Segment{{2, 0}, {3, 0}}));
}

TEST(DistanceTest, SegmentsDisjoint) {
  EXPECT_FALSE(SegmentsIntersect(Segment{{0, 0}, {1, 0}},
                                 Segment{{0, 1}, {1, 1}}));
}

TEST(DistanceTest, SegmentSegmentDistanceParallel) {
  EXPECT_DOUBLE_EQ(
      SegmentSegmentDistance(Segment{{0, 0}, {2, 0}}, Segment{{0, 1}, {2, 1}}),
      1.0);
}

TEST(DistanceTest, SegmentSegmentDistanceZeroWhenCrossing) {
  EXPECT_DOUBLE_EQ(
      SegmentSegmentDistance(Segment{{0, 0}, {2, 2}}, Segment{{0, 2}, {2, 0}}),
      0.0);
}

TEST(DistanceTest, SegmentSegmentDistanceMatchesSampling) {
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    Segment s{Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)},
              Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)}};
    Segment t{Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)},
              Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)}};
    double reported = SegmentSegmentDistance(s, t);
    double sampled = 1e100;
    for (int i = 0; i <= 30; ++i) {
      Point q = t.Interpolate(i / 30.0);
      sampled = std::min(sampled, s.DistanceTo(q));
    }
    // The true distance is never larger than any sampled distance, and for
    // disjoint segments the dense sample should come close to it. (When
    // they intersect, the crossing point can fall between samples, so only
    // the upper-bound direction holds.)
    EXPECT_LE(reported, sampled + 1e-12);
    if (reported > 0.0) {
      EXPECT_NEAR(reported, sampled, 0.05);
    }
  }
}

TEST(DistanceTest, SegmentBoxDistanceZeroWhenInside) {
  Box box = Box::FromCorners(Point{0, 0}, Point{4, 4});
  EXPECT_DOUBLE_EQ(SegmentBoxDistance(Segment{{1, 1}, {2, 2}}, box), 0.0);
  // Crossing straight through (endpoints outside).
  EXPECT_DOUBLE_EQ(SegmentBoxDistance(Segment{{-1, 2}, {5, 2}}, box), 0.0);
}

TEST(DistanceTest, SegmentBoxDistancePositive) {
  Box box = Box::FromCorners(Point{0, 0}, Point{1, 1});
  EXPECT_DOUBLE_EQ(SegmentBoxDistance(Segment{{3, 0}, {3, 1}}, box), 2.0);
  EXPECT_NEAR(SegmentBoxDistance(Segment{{2, 2}, {3, 3}}, box),
              std::sqrt(2.0), 1e-12);
}

TEST(DistanceTest, SegmentBoxDistanceMatchesSampling) {
  Rng rng(45);
  for (int trial = 0; trial < 100; ++trial) {
    Box box = Box::FromCorners(
        Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)},
        Point{rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)});
    Segment s{Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)},
              Point{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)}};
    double reported = SegmentBoxDistance(s, box);
    double sampled = 1e100;
    for (int i = 0; i <= 40; ++i) {
      sampled = std::min(sampled,
                         box.MinDistanceTo(s.Interpolate(i / 40.0)));
    }
    EXPECT_LE(reported, sampled + 1e-12);
    if (reported > 0.0) {
      EXPECT_NEAR(reported, sampled, 0.05);
    }
  }
}

}  // namespace
}  // namespace soi
