// Tests for the runtime lock-order graph (analysis/lock_graph.h).
//
// The simulation tests drive a private LockGraph instance with synthetic
// ThreadStates, so they verify the detector's logic in every build mode.
// The RealMutex tests exercise the instrumented soi::Mutex hooks against
// LockGraph::Global() and only run when the detector is compiled in
// (the `deadlock` / `tsan-deadlock` presets); elsewhere they skip.

#include <string>
#include <thread>
#include <vector>

#include "analysis/lock_graph.h"
#include "common/mutex.h"
#include "obs/dump.h"
#include "gtest/gtest.h"

namespace soi {
namespace lock_graph {
namespace {

// A graph whose violations are collected, not fatal, so tests can plant
// inversions and inspect the reports.
class SimulatedGraphTest : public ::testing::Test {
 protected:
  SimulatedGraphTest() { graph_.SetFatalOnViolation(false); }

  // Simulated mutex instances: distinct addresses are all that matters.
  const LockNode* Node(const char* name, int rank = kNoRank) {
    return graph_.RegisterNode(name, rank);
  }

  LockGraph graph_;
  ThreadState thread1_;
  ThreadState thread2_;
  int a_ = 0;
  int b_ = 0;
  int c_ = 0;
};

TEST_F(SimulatedGraphTest, ConsistentOrderIsClean) {
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  for (int round = 0; round < 3; ++round) {
    graph_.RecordAcquire(thread1_, &a_, a);
    graph_.RecordAcquire(thread1_, &b_, b);
    graph_.RecordRelease(thread1_, &b_);
    graph_.RecordRelease(thread1_, &a_);
  }
  graph_.RecordAcquire(thread2_, &a_, a);
  graph_.RecordAcquire(thread2_, &b_, b);
  EXPECT_EQ(graph_.violation_count(), 0u);
  GraphSnapshot snapshot = graph_.Snapshot();
  ASSERT_EQ(snapshot.edges.size(), 1u);
  EXPECT_EQ(snapshot.edges[0].from, "test.A");
  EXPECT_EQ(snapshot.edges[0].to, "test.B");
}

TEST_F(SimulatedGraphTest, OppositeOrdersOnTwoThreadsAreFlagged) {
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  graph_.RecordAcquire(thread1_, &a_, a);
  graph_.RecordAcquire(thread1_, &b_, b);
  graph_.RecordRelease(thread1_, &b_);
  graph_.RecordRelease(thread1_, &a_);
  EXPECT_EQ(graph_.violation_count(), 0u);

  graph_.RecordAcquire(thread2_, &b_, b);
  graph_.RecordAcquire(thread2_, &a_, a);  // closes B -> A -> B
  ASSERT_EQ(graph_.violation_count(), 1u);

  GraphSnapshot snapshot = graph_.Snapshot();
  const Violation& violation = snapshot.violations[0];
  EXPECT_EQ(violation.kind, Violation::Kind::kCycle);
  // The typed report names both mutexes...
  EXPECT_NE(violation.summary.find("test.A"), std::string::npos);
  EXPECT_NE(violation.summary.find("test.B"), std::string::npos);
  // ...and both acquisition sites (the held stack when each edge was
  // first recorded).
  ASSERT_EQ(violation.edges.size(), 2u);
  EXPECT_NE(violation.edges[0].find("holding [test.B]"), std::string::npos)
      << violation.edges[0];
  EXPECT_NE(violation.edges[1].find("holding [test.A]"), std::string::npos)
      << violation.edges[1];
}

TEST_F(SimulatedGraphTest, CycleReportedOncePerEdgePair) {
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  for (int round = 0; round < 3; ++round) {
    graph_.RecordAcquire(thread1_, &a_, a);
    graph_.RecordAcquire(thread1_, &b_, b);
    graph_.RecordRelease(thread1_, &b_);
    graph_.RecordRelease(thread1_, &a_);
    graph_.RecordAcquire(thread2_, &b_, b);
    graph_.RecordAcquire(thread2_, &a_, a);
    graph_.RecordRelease(thread2_, &a_);
    graph_.RecordRelease(thread2_, &b_);
  }
  EXPECT_EQ(graph_.violation_count(), 1u);
}

TEST_F(SimulatedGraphTest, ThreeLockCycleIsFlagged) {
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  const LockNode* c = Node("test.C");
  graph_.RecordAcquire(thread1_, &a_, a);
  graph_.RecordAcquire(thread1_, &b_, b);
  graph_.RecordRelease(thread1_, &b_);
  graph_.RecordRelease(thread1_, &a_);
  graph_.RecordAcquire(thread1_, &b_, b);
  graph_.RecordAcquire(thread1_, &c_, c);
  graph_.RecordRelease(thread1_, &c_);
  graph_.RecordRelease(thread1_, &b_);
  EXPECT_EQ(graph_.violation_count(), 0u);

  graph_.RecordAcquire(thread2_, &c_, c);
  graph_.RecordAcquire(thread2_, &a_, a);  // closes C -> A -> B -> C
  ASSERT_EQ(graph_.violation_count(), 1u);
  GraphSnapshot snapshot = graph_.Snapshot();
  const Violation& violation = snapshot.violations[0];
  EXPECT_EQ(violation.kind, Violation::Kind::kCycle);
  EXPECT_EQ(violation.edges.size(), 3u) << violation.summary;
}

TEST_F(SimulatedGraphTest, RankInversionFlaggedWithoutASecondThread) {
  const LockNode* leaf = Node("test.leaf", kRankLeaf);
  const LockNode* pool = Node("test.pool", kRankThreadPool);
  graph_.RecordAcquire(thread1_, &a_, leaf);
  graph_.RecordAcquire(thread1_, &b_, pool);  // rank 20 under rank 50
  ASSERT_EQ(graph_.violation_count(), 1u);
  GraphSnapshot snapshot = graph_.Snapshot();
  const Violation& violation = snapshot.violations[0];
  EXPECT_EQ(violation.kind, Violation::Kind::kRankInversion);
  EXPECT_NE(violation.summary.find("test.leaf"), std::string::npos);
  EXPECT_NE(violation.summary.find("test.pool"), std::string::npos);
}

TEST_F(SimulatedGraphTest, AscendingRanksAreClean) {
  const LockNode* serve = Node("test.serve", kRankServe);
  const LockNode* registry = Node("test.registry", kRankObsRegistry);
  graph_.RecordAcquire(thread1_, &a_, serve);
  graph_.RecordAcquire(thread1_, &b_, registry);
  EXPECT_EQ(graph_.violation_count(), 0u);
}

TEST_F(SimulatedGraphTest, EqualRankNestingIsFlagged) {
  const LockNode* x = Node("test.leaf_x", kRankLeaf);
  const LockNode* y = Node("test.leaf_y", kRankLeaf);
  graph_.RecordAcquire(thread1_, &a_, x);
  graph_.RecordAcquire(thread1_, &b_, y);
  ASSERT_EQ(graph_.violation_count(), 1u);
  EXPECT_EQ(graph_.Snapshot().violations[0].kind,
            Violation::Kind::kRankInversion);
}

TEST_F(SimulatedGraphTest, SelfRelockIsFlagged) {
  const LockNode* a = Node("test.A");
  graph_.RecordAcquire(thread1_, &a_, a);
  graph_.RecordAcquire(thread1_, &a_, a);
  ASSERT_EQ(graph_.violation_count(), 1u);
  EXPECT_EQ(graph_.Snapshot().violations[0].kind,
            Violation::Kind::kSelfDeadlock);
}

TEST_F(SimulatedGraphTest, TwoInstancesOfOneClassAreNotFlagged) {
  // Per-ParallelFor ForkJoinStates share one lock class; nesting two
  // *distinct instances* is not modeled (would need per-instance order)
  // and must not false-positive as a self-deadlock.
  const LockNode* fork_join = Node("test.fork_join");
  graph_.RecordAcquire(thread1_, &a_, fork_join);
  graph_.RecordAcquire(thread1_, &b_, fork_join);
  EXPECT_EQ(graph_.violation_count(), 0u);
}

TEST_F(SimulatedGraphTest, TryLockAddsNoEdges) {
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  graph_.RecordAcquire(thread1_, &a_, a);
  // try_lock succeeded: cannot block, so no A -> B edge...
  graph_.RecordAcquire(thread1_, &b_, b, /*blocking=*/false);
  graph_.RecordRelease(thread1_, &b_);
  graph_.RecordRelease(thread1_, &a_);
  graph_.RecordAcquire(thread2_, &b_, b);
  graph_.RecordAcquire(thread2_, &a_, a);
  // ...hence the reversed blocking order closes no cycle.
  EXPECT_EQ(graph_.violation_count(), 0u);
  // But the hold was tracked: locks taken *under* a try-locked mutex do
  // get edges.
  graph_.RecordRelease(thread2_, &a_);
  graph_.RecordRelease(thread2_, &b_);
  graph_.RecordAcquire(thread1_, &a_, a, /*blocking=*/false);
  graph_.RecordAcquire(thread1_, &c_, Node("test.C"));
  EXPECT_EQ(graph_.Snapshot().edges.size(), 2u);  // B->A and A->C
}

TEST_F(SimulatedGraphTest, ConflictingRankRedeclarationIsFlagged) {
  Node("test.A", kRankServe);
  Node("test.A", kRankLeaf);
  ASSERT_EQ(graph_.violation_count(), 1u);
  EXPECT_EQ(graph_.Snapshot().violations[0].kind,
            Violation::Kind::kRankInversion);
}

TEST_F(SimulatedGraphTest, CondVarReacquireRecordsEdgesFromRemainingHeld) {
  // CondVar::Wait releases the mutex before blocking; the reacquire
  // re-records it. The out-of-order release (not top of stack) must not
  // corrupt the held stack.
  const LockNode* a = Node("test.A");
  const LockNode* b = Node("test.B");
  graph_.RecordAcquire(thread1_, &a_, a);
  graph_.RecordAcquire(thread1_, &b_, b);
  graph_.RecordRelease(thread1_, &a_);  // waiter releases the outer lock
  graph_.RecordAcquire(thread1_, &a_, a);  // reacquired after the wait
  graph_.RecordRelease(thread1_, &a_);
  graph_.RecordRelease(thread1_, &b_);
  // B -> A is a real edge (reacquired while holding B): recorded, and
  // the existing A -> B edge makes it a reported cycle — exactly the
  // "wait with a second lock held" bug lockdep exists to catch.
  EXPECT_EQ(graph_.violation_count(), 1u);
}

TEST_F(SimulatedGraphTest, HeldStackOverflowIsCountedNotFatal) {
  std::vector<int> instances(ThreadState::kMaxHeld + 4);
  for (int i = 0; i < ThreadState::kMaxHeld + 4; ++i) {
    std::string name = "test.overflow_" + std::to_string(i);
    graph_.RecordAcquire(thread1_, &instances[static_cast<size_t>(i)],
                         Node(name.c_str()));
  }
  EXPECT_EQ(thread1_.depth, ThreadState::kMaxHeld);
  EXPECT_EQ(thread1_.overflowed, 4);
  for (int i = ThreadState::kMaxHeld + 3; i >= 0; --i) {
    graph_.RecordRelease(thread1_, &instances[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(thread1_.depth, 0);
}

// ---------------------------------------------------------------------
// Instrumented soi::Mutex against the global graph (deadlock presets).

class RealMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "SOI_DEADLOCK_DETECT is off";
    LockGraph::Global().SetFatalOnViolation(false);
    LockGraph::Global().ResetForTest();
  }
  void TearDown() override {
    if (!kEnabled) return;
    // Drop the planted edges so they cannot interact with later tests,
    // then restore the suite-wide fail-fast contract.
    LockGraph::Global().ResetForTest();
    LockGraph::Global().SetFatalOnViolation(true);
  }
};

TEST_F(RealMutexTest, DeliberateInversionOnTwoThreadsIsFlagged) {
  Mutex first("test.real.first");
  Mutex second("test.real.second");
  std::size_t before = LockGraph::Global().violation_count();
  // Sequenced by join, so the inversion is detected without ever
  // interleaving into an actual deadlock.
  std::thread forward([&] {
    MutexLock outer(first);
    MutexLock inner(second);
  });
  forward.join();
  std::thread backward([&] {
    MutexLock outer(second);
    MutexLock inner(first);
  });
  backward.join();
  ASSERT_EQ(LockGraph::Global().violation_count(), before + 1);
  GraphSnapshot snapshot = LockGraph::Global().Snapshot();
  const Violation& violation = snapshot.violations.back();
  EXPECT_EQ(violation.kind, Violation::Kind::kCycle);
  EXPECT_NE(violation.summary.find("test.real.first"), std::string::npos)
      << violation.summary;
  EXPECT_NE(violation.summary.find("test.real.second"), std::string::npos)
      << violation.summary;
  ASSERT_EQ(violation.edges.size(), 2u);
}

TEST_F(RealMutexTest, LibraryLockClassesAreRegistered) {
  // Forces the lazy obs singletons (Registry, FlightRecorder) so their
  // named mutexes exist, then asserts the construction-site naming is
  // wired through and every registered rank is from the documented
  // ladder.
  obs::DumpStateJson();
  GraphSnapshot snapshot = LockGraph::Global().Snapshot();
  bool found_registry = false;
  for (const NodeSnapshot& node : snapshot.nodes) {
    if (node.name == "obs.Registry.metrics") {
      found_registry = true;
      EXPECT_EQ(node.rank, kRankObsRegistry);
    }
    EXPECT_TRUE(node.rank == kNoRank || node.rank == kRankServe ||
                node.rank == kRankThreadPool || node.rank == kRankObsOuter ||
                node.rank == kRankObsRegistry || node.rank == kRankLeaf)
        << node.name << " rank " << node.rank;
  }
  EXPECT_TRUE(found_registry);
}

TEST_F(RealMutexTest, TryLockAndCondVarHooksBalanceTheHeldStack) {
  Mutex mutex("test.real.cv");
  CondVar cv;
  {
    MutexLock lock(mutex);
    // Timed wait exercises the release/reacquire hook pair.
    EXPECT_FALSE(cv.WaitFor(mutex, 0.01));
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
  EXPECT_EQ(LockGraph::Global().violation_count(), 0u);
}

TEST_F(RealMutexTest, ViolationsSurfaceInTheObsStateDump) {
  Mutex left("test.real.dump_left");
  Mutex right("test.real.dump_right");
  std::thread forward([&] {
    MutexLock outer(left);
    MutexLock inner(right);
  });
  forward.join();
  std::thread backward([&] {
    MutexLock outer(right);
    MutexLock inner(left);
  });
  backward.join();
  std::string dump = obs::DumpStateJson();
  EXPECT_NE(dump.find("\"lock_graph\""), std::string::npos);
  EXPECT_NE(dump.find("test.real.dump_left"), std::string::npos);
  EXPECT_NE(dump.find("\"violations\""), std::string::npos);
  EXPECT_NE(dump.find("lock-order cycle"), std::string::npos);
}

}  // namespace
}  // namespace lock_graph
}  // namespace soi
