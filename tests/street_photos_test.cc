#include <vector>

#include "common/random.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

struct Fixture {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Photo> photos;
  std::vector<Point> positions;

  explicit Fixture(uint64_t seed)
      : network(testing_util::MakeGridNetwork(4, 4, 0.01)) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.034, 0.034});
    photos = testing_util::RandomPhotos(box, 600, 12, &vocabulary, &rng);
    for (const Photo& photo : photos) positions.push_back(photo.position);
  }

  PointGrid<PhotoId> MakeGrid(double cell_size) const {
    return PointGrid<PhotoId>(
        GridGeometry(network.bounds().Expanded(0.01), cell_size), positions);
  }
};

TEST(StreetPhotosTest, GridExtractionMatchesBruteForce) {
  Fixture fx(1);
  PointGrid<PhotoId> grid = fx.MakeGrid(0.003);
  for (StreetId street = 0; street < fx.network.num_streets(); ++street) {
    for (double eps : {0.001, 0.004}) {
      StreetPhotos via_grid = ExtractStreetPhotos(fx.network, street,
                                                  fx.photos, grid, eps);
      StreetPhotos brute = ExtractStreetPhotosBruteForce(fx.network, street,
                                                         fx.photos, eps);
      EXPECT_EQ(via_grid.global_ids, brute.global_ids)
          << "street " << street << " eps " << eps;
      EXPECT_DOUBLE_EQ(via_grid.max_distance, brute.max_distance);
    }
  }
}

TEST(StreetPhotosTest, AllExtractedPhotosAreWithinEps) {
  Fixture fx(2);
  PointGrid<PhotoId> grid = fx.MakeGrid(0.004);
  double eps = 0.002;
  StreetPhotos sp = ExtractStreetPhotos(fx.network, 0, fx.photos, grid, eps);
  for (size_t i = 0; i < sp.photos.size(); ++i) {
    EXPECT_LE(fx.network.StreetDistanceTo(0, sp.photos[i].position), eps);
    // Local copy matches the global photo.
    PhotoId global = sp.global_ids[i];
    EXPECT_EQ(sp.photos[i].position,
              fx.photos[static_cast<size_t>(global)].position);
  }
  // And no photo within eps is missed.
  int64_t expected = 0;
  for (const Photo& photo : fx.photos) {
    if (fx.network.StreetDistanceTo(0, photo.position) <= eps) ++expected;
  }
  EXPECT_EQ(sp.size(), expected);
}

TEST(StreetPhotosTest, TermVectorAggregatesKeywordFrequencies) {
  // Two photos with overlapping tags near a single street.
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({1, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();

  std::vector<Photo> photos(3);
  photos[0].position = Point{0.2, 0.01};
  photos[0].keywords = KeywordSet({1, 2});
  photos[1].position = Point{0.6, -0.01};
  photos[1].keywords = KeywordSet({2, 3});
  photos[2].position = Point{0.5, 0.9};  // Too far: excluded.
  photos[2].keywords = KeywordSet({9});

  StreetPhotos sp =
      ExtractStreetPhotosBruteForce(network, 0, photos, 0.05);
  ASSERT_EQ(sp.size(), 2);
  EXPECT_DOUBLE_EQ(sp.street_terms.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(sp.street_terms.Get(2), 2.0);
  EXPECT_DOUBLE_EQ(sp.street_terms.Get(3), 1.0);
  EXPECT_DOUBLE_EQ(sp.street_terms.Get(9), 0.0);
  EXPECT_DOUBLE_EQ(sp.street_terms.L1Norm(), 4.0);
}

TEST(StreetPhotosTest, MaxDistanceIsBufferedDiagonal) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({3, 4});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  std::vector<Photo> photos(1);
  photos[0].position = Point{1, 1};
  photos[0].keywords = KeywordSet({1});
  double eps = 0.5;
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, eps);
  // MBR of the street is [0,3]x[0,4]; buffered by 0.5 -> diagonal of 4x5.
  EXPECT_DOUBLE_EQ(sp.max_distance, std::sqrt(16.0 + 25.0));
}

TEST(StreetPhotosTest, StreetWithNoPhotosYieldsEmptySet) {
  Fixture fx(3);
  std::vector<Photo> none;
  StreetPhotos sp =
      ExtractStreetPhotosBruteForce(fx.network, 0, none, 0.001);
  EXPECT_EQ(sp.size(), 0);
  EXPECT_TRUE(sp.photos.empty());
}

TEST(StreetPhotosTest, GlobalIdsAreSortedUnique) {
  Fixture fx(4);
  PointGrid<PhotoId> grid = fx.MakeGrid(0.0025);
  StreetPhotos sp =
      ExtractStreetPhotos(fx.network, 2, fx.photos, grid, 0.003);
  for (size_t i = 1; i < sp.global_ids.size(); ++i) {
    EXPECT_LT(sp.global_ids[i - 1], sp.global_ids[i]);
  }
}

}  // namespace
}  // namespace soi
