// Crash-safe snapshot save (DESIGN.md "Persistence & warm start"):
// SaveSnapshotToFile writes a temp file in the target directory, fsyncs,
// and renames into place — so a save that dies mid-write (here: the
// "snapshot.write_section" fault point, standing in for a crash or a
// full disk) must leave a previously saved snapshot byte-identical and
// loadable, and must not litter the directory with temp files. The
// injected-fault case runs fully under the `fault` preset and degrades
// to the happy-path atomicity checks elsewhere.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "datagen/dataset.h"
#include "gtest/gtest.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace soi {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return std::move(bytes).str();
}

/// Files currently present in `dir` — used to prove a failed save cleans
/// up after itself (no orphaned *.tmp).
std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

TEST(SnapshotFaultTest, FailedSaveLeavesExistingSnapshotIntact) {
  CityProfile profile = testing_util::TinyCityProfile(7);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  std::unique_ptr<DatasetIndexes> indexes = BuildIndexes(dataset, 0.0005);
  SnapshotContents contents;
  contents.dataset = &dataset;
  contents.indexes = indexes.get();

  const std::string dir =
      ::testing::TempDir() + "soi_snapshot_fault_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directory(dir));
  const std::string path = dir + "/city.snap";

  // A good save first: this is the survivor the failed overwrite below
  // must not damage.
  ASSERT_TRUE(SaveSnapshotToFile(contents, path).ok());
  const std::string good_bytes = ReadFileBytes(path);
  ASSERT_FALSE(good_bytes.empty());
  ASSERT_EQ(ListDir(dir), std::vector<std::string>{"city.snap"});

  if (fault::kEnabled) {
    // Kill the very first section write of the re-save. The temp file
    // dies mid-write; the rename never happens.
    fault::ScopedFault armed("snapshot.write_section",
                             fault::FaultPlan{.count = 1});
    Status failed = SaveSnapshotToFile(contents, path);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kInternal);
    EXPECT_GT(fault::Registry::Global().FireCount("snapshot.write_section"),
              0);
  } else {
    // No fault machinery in this build: overwrite succeeds, which must
    // be just as atomic (same temp+rename path).
    ASSERT_TRUE(SaveSnapshotToFile(contents, path).ok());
  }

  // The original snapshot survived byte-identical, still loads, and the
  // failed attempt left no temp debris behind.
  EXPECT_EQ(ReadFileBytes(path), good_bytes);
  EXPECT_EQ(ListDir(dir), std::vector<std::string>{"city.snap"});
  Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().dataset->pois.size(), dataset.pois.size());

  std::filesystem::remove_all(dir);
}

TEST(SnapshotFaultTest, FirstSaveFailureLeavesNoFileAtAll) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  CityProfile profile = testing_util::TinyCityProfile(7);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  std::unique_ptr<DatasetIndexes> indexes = BuildIndexes(dataset, 0.0005);
  SnapshotContents contents;
  contents.dataset = &dataset;
  contents.indexes = indexes.get();

  const std::string dir =
      ::testing::TempDir() + "soi_snapshot_fault_first";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directory(dir));
  const std::string path = dir + "/city.snap";

  fault::ScopedFault armed("snapshot.write_section",
                           fault::FaultPlan{.count = 1});
  Status failed = SaveSnapshotToFile(contents, path);
  ASSERT_FALSE(failed.ok());
  // Failure is all-or-nothing: no partial snapshot, no temp file.
  EXPECT_TRUE(ListDir(dir).empty());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace soi
