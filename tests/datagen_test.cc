#include <cmath>
#include <set>

#include "datagen/city_profile.h"
#include "datagen/dataset.h"
#include "datagen/street_grid_generator.h"
#include "gtest/gtest.h"
#include "network/network_stats.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(CityProfileTest, PresetsScale) {
  CityProfile full = LondonProfile(1.0);
  CityProfile tenth = LondonProfile(0.1);
  EXPECT_EQ(full.target_segments, 113885);
  EXPECT_EQ(full.target_pois, 2114264);
  EXPECT_NEAR(tenth.target_segments, 11389, 2);
  EXPECT_NEAR(tenth.target_pois, 211426, 2);
  EXPECT_EQ(AllCityProfiles(0.1).size(), 3u);
  // Berlin and Vienna are progressively smaller, as in Table 1.
  EXPECT_GT(BerlinProfile(1.0).target_segments,
            ViennaProfile(1.0).target_segments);
  EXPECT_GT(LondonProfile(1.0).target_segments,
            BerlinProfile(1.0).target_segments);
}

TEST(StreetGridGeneratorTest, HitsSegmentTargetApproximately) {
  CityProfile profile = testing_util::TinyCityProfile(1);
  Rng rng(profile.seed);
  auto network = GenerateStreetGrid(profile, &rng);
  ASSERT_TRUE(network.ok());
  int64_t segments = network.ValueOrDie().num_segments();
  EXPECT_GT(segments, profile.target_segments / 2);
  EXPECT_LT(segments, profile.target_segments * 2);
}

TEST(StreetGridGeneratorTest, StructuralInvariants) {
  CityProfile profile = testing_util::TinyCityProfile(2);
  Rng rng(profile.seed);
  RoadNetwork network =
      GenerateStreetGrid(profile, &rng).ValueOrDie();
  // Every segment belongs to exactly one street; street lengths add up.
  std::vector<int> owners(static_cast<size_t>(network.num_segments()), 0);
  for (StreetId s = 0; s < network.num_streets(); ++s) {
    const Street& street = network.street(s);
    EXPECT_FALSE(street.segments.empty());
    EXPECT_FALSE(street.name.empty());
    double total = 0.0;
    for (SegmentId l : street.segments) {
      EXPECT_EQ(network.segment(l).street, s);
      EXPECT_GT(network.segment(l).length, 0.0);
      total += network.segment(l).length;
      ++owners[static_cast<size_t>(l)];
    }
    EXPECT_DOUBLE_EQ(street.length, total);
    // Consecutive segments share a vertex (simple path).
    for (size_t i = 1; i < street.segments.size(); ++i) {
      EXPECT_EQ(network.segment(street.segments[i - 1]).to,
                network.segment(street.segments[i]).from);
    }
  }
  for (int owner_count : owners) EXPECT_EQ(owner_count, 1);
}

TEST(StreetGridGeneratorTest, DeterministicForSameSeed) {
  CityProfile profile = testing_util::TinyCityProfile(3);
  Rng rng_a(profile.seed);
  Rng rng_b(profile.seed);
  RoadNetwork a = GenerateStreetGrid(profile, &rng_a).ValueOrDie();
  RoadNetwork b = GenerateStreetGrid(profile, &rng_b).ValueOrDie();
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex(v).position, b.vertex(v).position);
  }
}

TEST(GenerateCityTest, DeterministicAndComplete) {
  CityProfile profile = testing_util::TinyCityProfile(4);
  Dataset a = GenerateCity(profile).ValueOrDie();
  Dataset b = GenerateCity(profile).ValueOrDie();
  EXPECT_EQ(a.pois.size(), b.pois.size());
  EXPECT_EQ(a.photos.size(), b.photos.size());
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_EQ(a.pois[i].position, b.pois[i].position);
    EXPECT_EQ(a.pois[i].keywords, b.pois[i].keywords);
  }
  EXPECT_EQ(static_cast<int64_t>(a.pois.size()), profile.target_pois);
  EXPECT_EQ(static_cast<int64_t>(a.photos.size()), profile.target_photos);
}

TEST(GenerateCityTest, CategoryFractionsApproximatelyMet) {
  CityProfile profile = testing_util::TinyCityProfile(5);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  for (const CategorySpec& category : profile.categories) {
    KeywordId keyword = dataset.vocabulary.Find(category.keyword);
    ASSERT_NE(keyword, kInvalidKeyword) << category.keyword;
    int64_t count = CountRelevantPois(dataset.pois, KeywordSet({keyword}));
    double expected = category.poi_fraction * profile.target_pois;
    // Secondary-category assignment adds ~10% noise on top.
    EXPECT_GT(count, expected * 0.8) << category.keyword;
    EXPECT_LT(count, expected * 1.6 + 20) << category.keyword;
  }
}

TEST(GenerateCityTest, GroundTruthIsConsistent) {
  CityProfile profile = testing_util::TinyCityProfile(6);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  // Hotspot categories only.
  std::set<std::string> expected_categories;
  for (const CategorySpec& category : profile.categories) {
    if (category.num_hotspot_streets > 0) {
      expected_categories.insert(category.keyword);
    }
  }
  ASSERT_EQ(dataset.ground_truth.categories.size(),
            expected_categories.size());
  for (const CategoryGroundTruth& truth : dataset.ground_truth.categories) {
    EXPECT_TRUE(expected_categories.count(truth.keyword) > 0);
    EXPECT_FALSE(truth.hotspots.empty());
    ASSERT_EQ(truth.hotspots.size(), truth.planted_counts.size());
    for (StreetId street : truth.hotspots) {
      EXPECT_GE(street, 0);
      EXPECT_LT(street, dataset.network.num_streets());
    }
    // Planted counts decrease with rank.
    for (size_t i = 1; i < truth.planted_counts.size(); ++i) {
      EXPECT_GE(truth.planted_counts[i - 1], truth.planted_counts[i]);
    }
    // Web sources are 5 streets drawn from the top hotspots.
    for (const auto& source : truth.web_sources) {
      EXPECT_LE(source.size(), 5u);
      for (StreetId street : source) {
        EXPECT_NE(std::find(truth.hotspots.begin(), truth.hotspots.end(),
                            street),
                  truth.hotspots.end());
      }
    }
    EXPECT_EQ(dataset.ground_truth.Find(truth.keyword), &truth);
  }
  EXPECT_EQ(dataset.ground_truth.Find("no-such-category"), nullptr);
}

TEST(GenerateCityTest, HotspotStreetsActuallyDense) {
  CityProfile profile = testing_util::TinyCityProfile(7);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  const CategoryGroundTruth* truth = dataset.ground_truth.Find("shop");
  ASSERT_NE(truth, nullptr);
  KeywordId shop = dataset.vocabulary.Find("shop");
  double eps = 0.0005;
  // POIs near the rank-1 hotspot street.
  StreetId top = truth->hotspots[0];
  int64_t near_top = 0;
  for (const Poi& poi : dataset.pois) {
    if (poi.keywords.Contains(shop) &&
        dataset.network.StreetDistanceTo(top, poi.position) <= eps) {
      ++near_top;
    }
  }
  // A random non-hotspot street should have far fewer.
  std::set<StreetId> hotspot_set(truth->hotspots.begin(),
                                 truth->hotspots.end());
  int64_t max_background = 0;
  for (StreetId s = 0; s < dataset.network.num_streets(); s += 7) {
    if (hotspot_set.count(s) > 0) continue;
    int64_t near = 0;
    for (const Poi& poi : dataset.pois) {
      if (poi.keywords.Contains(shop) &&
          dataset.network.StreetDistanceTo(s, poi.position) <= eps) {
        ++near;
      }
    }
    max_background = std::max(max_background, near);
  }
  EXPECT_GT(near_top, 3 * std::max<int64_t>(max_background, 1));
}

TEST(GenerateCityTest, PhotosClusterOnHotspotStreets) {
  CityProfile profile = testing_util::TinyCityProfile(8);
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  const CategoryGroundTruth* truth = dataset.ground_truth.Find("shop");
  ASSERT_NE(truth, nullptr);
  StreetId top = truth->hotspots[0];
  int64_t near = 0;
  for (const Photo& photo : dataset.photos) {
    if (dataset.network.StreetDistanceTo(top, photo.position) <= 0.0005) {
      ++near;
    }
  }
  // The top cluster street must have a photo set large enough to
  // describe (the paper's R_s ranged from ~800 to ~6600).
  EXPECT_GT(near, 50);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  CityProfile profile = testing_util::TinyCityProfile(9);
  profile.target_pois = 500;
  profile.target_photos = 200;
  Dataset original = GenerateCity(profile).ValueOrDie();
  std::string prefix = ::testing::TempDir() + "/tinytown";
  ASSERT_TRUE(SaveDataset(original, prefix).ok());
  auto loaded = LoadDataset("Tinytown", prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& dataset = loaded.ValueOrDie();
  ASSERT_EQ(dataset.pois.size(), original.pois.size());
  ASSERT_EQ(dataset.photos.size(), original.photos.size());
  ASSERT_EQ(dataset.network.num_segments(),
            original.network.num_segments());
  for (size_t i = 0; i < original.pois.size(); ++i) {
    EXPECT_EQ(dataset.pois[i].position, original.pois[i].position);
    // Keyword sets must be semantically equal across vocabularies.
    EXPECT_EQ(dataset.pois[i].keywords.size(),
              original.pois[i].keywords.size());
  }
  // Spot-check one keyword mapping.
  KeywordId shop_old = original.vocabulary.Find("shop");
  KeywordId shop_new = dataset.vocabulary.Find("shop");
  ASSERT_NE(shop_new, kInvalidKeyword);
  int64_t old_count = 0;
  int64_t new_count = 0;
  for (size_t i = 0; i < original.pois.size(); ++i) {
    if (original.pois[i].keywords.Contains(shop_old)) ++old_count;
    if (dataset.pois[i].keywords.Contains(shop_new)) ++new_count;
  }
  EXPECT_EQ(new_count, old_count);
}

TEST(BuildIndexesTest, GeometryCoversEverything) {
  CityProfile profile = testing_util::TinyCityProfile(10);
  profile.target_pois = 800;
  profile.target_photos = 300;
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  auto indexes = BuildIndexes(dataset, 0.0005);
  const Box& bounds = indexes->geometry.bounds();
  for (const Poi& poi : dataset.pois) {
    EXPECT_TRUE(bounds.Contains(poi.position));
  }
  for (const Photo& photo : dataset.photos) {
    EXPECT_TRUE(bounds.Contains(photo.position));
  }
  EXPECT_TRUE(bounds.Contains(dataset.network.bounds().min));
  EXPECT_TRUE(bounds.Contains(dataset.network.bounds().max));
  // POI grid indexes every POI.
  int64_t total = 0;
  for (CellId cell : indexes->poi_grid.NonEmptyCells()) {
    total += indexes->poi_grid.NumPoisInCell(cell);
  }
  EXPECT_EQ(total, static_cast<int64_t>(dataset.pois.size()));
}

}  // namespace
}  // namespace soi
