#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/diversify/objective.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

// A one-street world with photos placed by the test.
struct World {
  RoadNetwork network;
  std::vector<Photo> photos;

  World() {
    NetworkBuilder builder;
    VertexId a = builder.AddVertex({0, 0});
    VertexId b = builder.AddVertex({1, 0});
    SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
    network = std::move(builder).Build().ValueOrDie();
  }

  void Add(double x, double y, std::vector<KeywordId> tags) {
    Photo photo;
    photo.position = Point{x, y};
    photo.keywords = KeywordSet(std::move(tags));
    photos.push_back(std::move(photo));
  }

  StreetPhotos Extract(double eps) const {
    return ExtractStreetPhotosBruteForce(network, 0, photos, eps);
  }
};

TEST(PhotoScorerTest, SpatialRelCountsNeighborhood) {
  World world;
  world.Add(0.10, 0.0, {1});
  world.Add(0.11, 0.0, {2});  // Within rho=0.02 of the first.
  world.Add(0.50, 0.0, {3});  // Isolated.
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, /*rho=*/0.02);
  // Photo 0 has neighbors {0, 1} -> 2/3.
  EXPECT_DOUBLE_EQ(scorer.SpatialRel(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(scorer.SpatialRel(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(scorer.SpatialRel(2), 1.0 / 3.0);  // Only itself.
}

TEST(PhotoScorerTest, SpatialRelMatchesBruteForceOnRandomData) {
  Vocabulary vocabulary;
  Rng rng(5);
  World world;
  Box box = Box::FromCorners(Point{0, -0.02}, Point{1, 0.02});
  for (int i = 0; i < 300; ++i) {
    world.Add(rng.UniformDouble(0, 1), rng.UniformDouble(-0.02, 0.02),
              {static_cast<KeywordId>(rng.UniformInt(0, 9))});
  }
  (void)box;
  StreetPhotos sp = world.Extract(0.05);
  ASSERT_EQ(sp.size(), 300);
  double rho = 0.013;
  PhotoScorer scorer(sp, rho);
  for (PhotoId r = 0; r < sp.size(); ++r) {
    int64_t count = 0;
    for (PhotoId other = 0; other < sp.size(); ++other) {
      if (sp.photos[static_cast<size_t>(r)].position.DistanceTo(
              sp.photos[static_cast<size_t>(other)].position) <= rho) {
        ++count;
      }
    }
    EXPECT_DOUBLE_EQ(scorer.SpatialRel(r),
                     static_cast<double>(count) / sp.size())
        << "photo " << r;
  }
}

TEST(PhotoScorerTest, TextualRelFollowsDefinition6) {
  World world;
  world.Add(0.1, 0.0, {1, 2});
  world.Add(0.2, 0.0, {2});
  world.Add(0.3, 0.0, {3});
  StreetPhotos sp = world.Extract(0.1);
  // Phi_s: {1:1, 2:2, 3:1}, norm 4.
  PhotoScorer scorer(sp, 0.01);
  EXPECT_DOUBLE_EQ(scorer.TextualRel(0), (1.0 + 2.0) / 4.0);
  EXPECT_DOUBLE_EQ(scorer.TextualRel(1), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(scorer.TextualRel(2), 1.0 / 4.0);
}

TEST(PhotoScorerTest, SpatialDivNormalizedByMaxD) {
  World world;
  world.Add(0.0, 0.0, {1});
  world.Add(1.0, 0.0, {2});
  StreetPhotos sp = world.Extract(0.5);
  PhotoScorer scorer(sp, 0.1);
  EXPECT_DOUBLE_EQ(scorer.SpatialDiv(0, 1), 1.0 / sp.max_distance);
  EXPECT_DOUBLE_EQ(scorer.SpatialDiv(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scorer.SpatialDiv(0, 1), scorer.SpatialDiv(1, 0));
}

TEST(PhotoScorerTest, TextualDivIsJaccard) {
  World world;
  world.Add(0.1, 0.0, {1, 2});
  world.Add(0.2, 0.0, {2, 3});
  world.Add(0.3, 0.0, {1, 2});
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, 0.01);
  EXPECT_DOUBLE_EQ(scorer.TextualDiv(0, 1), 1.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(scorer.TextualDiv(0, 2), 0.0);
}

TEST(PhotoScorerTest, RelAndDivWeighting) {
  World world;
  world.Add(0.1, 0.0, {1});
  world.Add(0.9, 0.0, {2});
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, 0.01);
  EXPECT_DOUBLE_EQ(scorer.Rel(0, 1.0), scorer.SpatialRel(0));
  EXPECT_DOUBLE_EQ(scorer.Rel(0, 0.0), scorer.TextualRel(0));
  EXPECT_DOUBLE_EQ(scorer.Div(0, 1, 1.0), scorer.SpatialDiv(0, 1));
  EXPECT_DOUBLE_EQ(scorer.Div(0, 1, 0.0), scorer.TextualDiv(0, 1));
  EXPECT_DOUBLE_EQ(
      scorer.Div(0, 1, 0.3),
      0.3 * scorer.SpatialDiv(0, 1) + 0.7 * scorer.TextualDiv(0, 1));
}

TEST(PhotoScorerTest, MmrMatchesEquation10) {
  World world;
  world.Add(0.1, 0.0, {1});
  world.Add(0.5, 0.0, {2});
  world.Add(0.9, 0.0, {3});
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, 0.05);
  DiversifyParams params;
  params.k = 3;
  params.lambda = 0.4;
  params.w = 0.6;
  // Empty selection: pure relevance term.
  EXPECT_DOUBLE_EQ(scorer.Mmr(0, {}, params),
                   (1 - 0.4) * scorer.Rel(0, 0.6));
  // One selected photo.
  std::vector<PhotoId> selected{1};
  EXPECT_DOUBLE_EQ(scorer.Mmr(0, selected, params),
                   0.6 * scorer.Rel(0, 0.6) +
                       0.4 / 2.0 * scorer.Div(0, 1, 0.6));
}

TEST(PhotoScorerTest, SetRelevanceAndDiversityFollowEquations4And5) {
  World world;
  world.Add(0.1, 0.0, {1});
  world.Add(0.5, 0.0, {2});
  world.Add(0.9, 0.0, {1, 2});
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, 0.05);
  double w = 0.5;
  std::vector<PhotoId> set{0, 1, 2};
  double expected_rel = 0.0;
  for (PhotoId r : set) {
    expected_rel += w / 3.0 * scorer.SpatialRel(r) +
                    (1 - w) / 3.0 * scorer.TextualRel(r);
  }
  EXPECT_NEAR(scorer.SetRelevance(set, w), expected_rel, 1e-15);

  double expected_div = 0.0;
  double pairs = 3.0;  // C(3,2)
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      expected_div += w * scorer.SpatialDiv(set[i], set[j]) +
                      (1 - w) * scorer.TextualDiv(set[i], set[j]);
    }
  }
  expected_div /= pairs;
  EXPECT_NEAR(scorer.SetDiversity(set, w), expected_div, 1e-15);

  DiversifyParams params;
  params.lambda = 0.25;
  params.w = w;
  EXPECT_NEAR(scorer.Objective(set, params),
              0.75 * scorer.SetRelevance(set, w) +
                  0.25 * scorer.SetDiversity(set, w),
              1e-15);
}

TEST(PhotoScorerTest, SetDiversityOfSingletonIsZero) {
  World world;
  world.Add(0.1, 0.0, {1});
  StreetPhotos sp = world.Extract(0.1);
  PhotoScorer scorer(sp, 0.05);
  EXPECT_DOUBLE_EQ(scorer.SetDiversity({0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(scorer.SetRelevance({}, 0.5), 0.0);
}

TEST(PhotoScorerTest, ValuesAreInUnitRange) {
  Vocabulary vocabulary;
  Rng rng(7);
  World world;
  for (int i = 0; i < 200; ++i) {
    std::vector<KeywordId> tags;
    int64_t n = rng.UniformInt(1, 5);
    for (int64_t t = 0; t < n; ++t) {
      tags.push_back(static_cast<KeywordId>(rng.UniformInt(0, 20)));
    }
    world.Add(rng.UniformDouble(0, 1), rng.UniformDouble(-0.05, 0.05),
              std::move(tags));
  }
  StreetPhotos sp = world.Extract(0.06);
  PhotoScorer scorer(sp, 0.02);
  for (PhotoId r = 0; r < sp.size(); ++r) {
    EXPECT_GE(scorer.SpatialRel(r), 0.0);
    EXPECT_LE(scorer.SpatialRel(r), 1.0);
    EXPECT_GE(scorer.TextualRel(r), 0.0);
    EXPECT_LE(scorer.TextualRel(r), 1.0);
  }
  for (int trial = 0; trial < 100; ++trial) {
    PhotoId a = static_cast<PhotoId>(rng.UniformInt(0, sp.size() - 1));
    PhotoId b = static_cast<PhotoId>(rng.UniformInt(0, sp.size() - 1));
    EXPECT_GE(scorer.SpatialDiv(a, b), 0.0);
    EXPECT_LE(scorer.SpatialDiv(a, b), 1.0);
    EXPECT_GE(scorer.TextualDiv(a, b), 0.0);
    EXPECT_LE(scorer.TextualDiv(a, b), 1.0);
  }
}

}  // namespace
}  // namespace soi
