#include <set>
#include <vector>

#include "common/random.h"
#include "grid/grid_geometry.h"
#include "grid/point_grid.h"
#include "gtest/gtest.h"

namespace soi {
namespace {

Box UnitBox() { return Box::FromCorners(Point{0, 0}, Point{10, 5}); }

TEST(GridGeometryTest, Dimensions) {
  GridGeometry grid(UnitBox(), 1.0);
  EXPECT_EQ(grid.nx(), 10);
  EXPECT_EQ(grid.ny(), 5);
  EXPECT_EQ(grid.num_cells(), 50);
}

TEST(GridGeometryTest, NonDividingCellSizeRoundsUp) {
  GridGeometry grid(UnitBox(), 3.0);
  EXPECT_EQ(grid.nx(), 4);  // ceil(10/3)
  EXPECT_EQ(grid.ny(), 2);  // ceil(5/3)
}

TEST(GridGeometryTest, CellOfInteriorPoints) {
  GridGeometry grid(UnitBox(), 1.0);
  EXPECT_EQ(grid.CellOf(Point{0.5, 0.5}), grid.ToId(CellCoord{0, 0}));
  EXPECT_EQ(grid.CellOf(Point{9.5, 4.5}), grid.ToId(CellCoord{9, 4}));
  EXPECT_EQ(grid.CellOf(Point{2.0, 3.0}), grid.ToId(CellCoord{2, 3}));
}

TEST(GridGeometryTest, OutOfBoundsClampsToBorder) {
  GridGeometry grid(UnitBox(), 1.0);
  EXPECT_EQ(grid.CellOf(Point{-5, -5}), grid.ToId(CellCoord{0, 0}));
  EXPECT_EQ(grid.CellOf(Point{100, 100}), grid.ToId(CellCoord{9, 4}));
  EXPECT_EQ(grid.CellOf(Point{10.0, 5.0}), grid.ToId(CellCoord{9, 4}));
}

TEST(GridGeometryTest, IdCoordRoundTrip) {
  GridGeometry grid(UnitBox(), 1.0);
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    EXPECT_EQ(grid.ToId(grid.ToCoord(id)), id);
  }
}

TEST(GridGeometryTest, CellBoxContainsItsPoints) {
  GridGeometry grid(UnitBox(), 0.7);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.UniformDouble(0, 10), rng.UniformDouble(0, 5)};
    Box cell_box = grid.CellBox(grid.CellOf(p));
    EXPECT_TRUE(cell_box.Contains(p))
        << "point " << p << " not in its cell box " << cell_box;
  }
}

TEST(GridGeometryTest, ForEachCellInBoxCoversExactRange) {
  GridGeometry grid(UnitBox(), 1.0);
  std::set<CellId> visited;
  grid.ForEachCellInBox(Box::FromCorners(Point{1.5, 1.5}, Point{3.5, 2.5}),
                        [&](CellId id) { visited.insert(id); });
  // x cells 1..3, y cells 1..2 -> 6 cells.
  EXPECT_EQ(visited.size(), 6u);
  for (int32_t iy = 1; iy <= 2; ++iy) {
    for (int32_t ix = 1; ix <= 3; ++ix) {
      EXPECT_TRUE(visited.count(grid.ToId(CellCoord{ix, iy})) > 0);
    }
  }
}

TEST(GridGeometryTest, ForEachCellInBoxEmptyBoxIsNoop) {
  GridGeometry grid(UnitBox(), 1.0);
  int count = 0;
  grid.ForEachCellInBox(Box::Empty(), [&](CellId) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(GridGeometryTest, ForEachCellInBoxClampsToGrid) {
  GridGeometry grid(UnitBox(), 1.0);
  int count = 0;
  grid.ForEachCellInBox(Box::FromCorners(Point{-100, -100}, Point{100, 100}),
                        [&](CellId) { ++count; });
  EXPECT_EQ(count, 50);
}

TEST(PointGridTest, RangeQueryMatchesBruteForce) {
  Rng rng(7);
  std::vector<Point> positions;
  for (int i = 0; i < 400; ++i) {
    positions.push_back(
        Point{rng.UniformDouble(0, 10), rng.UniformDouble(0, 5)});
  }
  PointGrid<int32_t> grid(GridGeometry(UnitBox(), 0.9), positions);
  for (int trial = 0; trial < 50; ++trial) {
    Box probe = Box::FromCorners(
        Point{rng.UniformDouble(0, 10), rng.UniformDouble(0, 5)},
        Point{rng.UniformDouble(0, 10), rng.UniformDouble(0, 5)});
    std::set<int32_t> candidates;
    grid.ForEachCandidateInBox(probe,
                               [&](int32_t id) { candidates.insert(id); });
    // Every point inside the probe box must be among the candidates
    // (candidates may be a superset: whole-cell granularity).
    for (size_t i = 0; i < positions.size(); ++i) {
      if (probe.Contains(positions[i])) {
        EXPECT_TRUE(candidates.count(static_cast<int32_t>(i)) > 0);
      }
    }
  }
}

TEST(PointGridTest, CellContentsPartitionAllPoints) {
  Rng rng(9);
  std::vector<Point> positions;
  for (int i = 0; i < 300; ++i) {
    positions.push_back(
        Point{rng.UniformDouble(0, 10), rng.UniformDouble(0, 5)});
  }
  GridGeometry geometry(UnitBox(), 1.3);
  PointGrid<int32_t> grid(geometry, positions);
  std::multiset<int32_t> all;
  for (CellId id = 0; id < geometry.num_cells(); ++id) {
    for (int32_t p : grid.CellContents(id)) all.insert(p);
  }
  EXPECT_EQ(all.size(), positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(all.count(static_cast<int32_t>(i)), 1u);
  }
}

}  // namespace
}  // namespace soi
