#include <vector>

#include "common/random.h"
#include "grid/global_inverted_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

Box TestBox() { return Box::FromCorners(Point{0, 0}, Point{1, 1}); }

TEST(GlobalInvertedIndexTest, EntriesSortedDescendingAndCorrect) {
  Vocabulary vocabulary;
  Rng rng(1);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 600, 12, &vocabulary, &rng);
  PoiGridIndex grid(TestBox(), 0.2, pois);
  GlobalInvertedIndex index(grid);
  for (KeywordId keyword = 0; keyword < vocabulary.size(); ++keyword) {
    const auto& entries = index.Entries(keyword);
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(entries[i - 1].num_pois, entries[i].num_pois);
      }
      // num_pois matches the local posting list length.
      const std::vector<PoiId>* postings =
          grid.FindPostings(entries[i].cell, keyword);
      ASSERT_NE(postings, nullptr);
      EXPECT_EQ(entries[i].num_pois,
                static_cast<int64_t>(postings->size()));
    }
  }
}

TEST(GlobalInvertedIndexTest, UnknownKeywordHasNoEntries) {
  std::vector<Poi> pois(1);
  pois[0].position = Point{0.5, 0.5};
  pois[0].keywords = KeywordSet({0});
  PoiGridIndex grid(TestBox(), 0.5, pois);
  GlobalInvertedIndex index(grid);
  // Regression for the dense CSR layout: ids beyond the indexed range
  // and negative ids must keep the empty-list fallback of the old
  // hash-map storage (not read out of bounds).
  EXPECT_TRUE(index.Entries(12345).empty());
  EXPECT_TRUE(index.Entries(index.num_keywords()).empty());
  EXPECT_TRUE(index.Entries(-1).empty());
  // A query mixing known and unknown keywords aggregates only the known
  // ones instead of failing.
  std::vector<GlobalInvertedIndex::Entry> known =
      index.BuildQueryCellList(KeywordSet({0}), grid);
  std::vector<GlobalInvertedIndex::Entry> mixed =
      index.BuildQueryCellList(KeywordSet({0, 12345}), grid);
  EXPECT_EQ(known, mixed);
}

TEST(GlobalInvertedIndexTest, CoversEveryCellContainingKeyword) {
  Vocabulary vocabulary;
  Rng rng(2);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 300, 6, &vocabulary, &rng);
  PoiGridIndex grid(TestBox(), 0.25, pois);
  GlobalInvertedIndex index(grid);
  for (KeywordId keyword = 0; keyword < vocabulary.size(); ++keyword) {
    std::set<CellId> listed;
    for (const auto& entry : index.Entries(keyword)) {
      listed.insert(entry.cell);
    }
    for (CellId cell : grid.NonEmptyCells()) {
      bool has = grid.FindPostings(cell, keyword) != nullptr;
      EXPECT_EQ(listed.count(cell) > 0, has);
    }
  }
}

// |P_Psi(c)| of Algorithm 1 line 2 must upper-bound the true relevant
// count and never exceed |P_c|.
class QueryCellListProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryCellListProperty, BoundsTrueRelevantCount) {
  Vocabulary vocabulary;
  Rng rng(GetParam());
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 500, 6, &vocabulary, &rng);
  PoiGridIndex grid(TestBox(), 0.2, pois);
  GlobalInvertedIndex index(grid);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<KeywordId> q;
    int64_t nq = rng.UniformInt(1, 4);
    for (int64_t i = 0; i < nq; ++i) {
      q.push_back(static_cast<KeywordId>(rng.UniformInt(0, 5)));
    }
    KeywordSet query(q);
    auto list = index.BuildQueryCellList(query, grid);
    // Sorted decreasingly.
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i - 1].num_pois, list[i].num_pois);
    }
    std::set<CellId> listed;
    for (const auto& entry : list) {
      listed.insert(entry.cell);
      int64_t true_count = grid.CountRelevantInCell(entry.cell, query);
      EXPECT_GE(entry.num_pois, true_count);
      EXPECT_LE(entry.num_pois, grid.NumPoisInCell(entry.cell));
      EXPECT_GT(entry.num_pois, 0);
    }
    // Completeness: any cell with a relevant POI is listed.
    for (CellId cell : grid.NonEmptyCells()) {
      if (grid.CountRelevantInCell(cell, query) > 0) {
        EXPECT_TRUE(listed.count(cell) > 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryCellListProperty,
                         ::testing::Values(5, 6, 7, 8));

TEST(GlobalInvertedIndexTest, SingleKeywordQueryListEqualsEntries) {
  Vocabulary vocabulary;
  Rng rng(3);
  std::vector<Poi> pois =
      testing_util::RandomPois(TestBox(), 200, 5, &vocabulary, &rng);
  PoiGridIndex grid(TestBox(), 0.3, pois);
  GlobalInvertedIndex index(grid);
  KeywordId keyword = 0;
  auto list = index.BuildQueryCellList(KeywordSet({keyword}), grid);
  const auto& entries = index.Entries(keyword);
  ASSERT_EQ(list.size(), entries.size());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].cell, entries[i].cell);
    EXPECT_EQ(list[i].num_pois, entries[i].num_pois);
  }
}

}  // namespace
}  // namespace soi
