#include <vector>

#include "common/random.h"
#include "core/diversify/exact.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/objective.h"
#include "core/street_photos.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

StreetPhotos TinyWorld(uint64_t seed, int64_t n) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  Vocabulary vocabulary;
  Rng rng(seed);
  std::vector<Photo> photos = testing_util::RandomPhotos(
      Box::FromCorners(Point{0, -0.002}, Point{0.01, 0.002}), n, 8,
      &vocabulary, &rng);
  StreetPhotos sp =
      ExtractStreetPhotosBruteForce(network, 0, photos, 0.0025);
  // RandomPhotos concentrates a third near the center but some may fall
  // out of eps; accept whatever remains (still >= n/2 in practice).
  SOI_CHECK(sp.size() >= n / 2);
  return sp;
}

// The exact optimum never scores below the greedy result, and greedy stays
// within a reasonable factor — the MaxSum greedy has a constant-factor
// guarantee for metric distances.
class GreedyVsExact : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyVsExact, GreedyIsNearOptimal) {
  // Keep |R_s| small: ExactMaxSumSelect enumerates C(n, k) subsets.
  StreetPhotos sp = TinyWorld(GetParam(), 18);
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    DiversifyParams params;
    params.k = static_cast<int32_t>(rng.UniformInt(2, 4));
    params.lambda = rng.UniformDouble();
    params.w = rng.UniformDouble();
    params.rho = 0.0005;
    PhotoScorer scorer(sp, params.rho);
    DiversifyResult greedy = GreedyBaselineSelect(scorer, params);
    std::vector<PhotoId> best = ExactMaxSumSelect(scorer, params);
    double greedy_score = scorer.Objective(greedy.selected, params);
    double best_score = scorer.Objective(best, params);
    EXPECT_GE(best_score, greedy_score - 1e-12);
    EXPECT_GE(greedy_score, 0.4 * best_score)
        << "greedy=" << greedy_score << " exact=" << best_score;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExact,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ExactMaxSumTest, KOneIsBestSinglePhoto) {
  StreetPhotos sp = TinyWorld(11, 15);
  DiversifyParams params;
  params.k = 1;
  params.lambda = 0.3;
  params.w = 0.5;
  params.rho = 0.0005;
  PhotoScorer scorer(sp, params.rho);
  std::vector<PhotoId> best = ExactMaxSumSelect(scorer, params);
  ASSERT_EQ(best.size(), 1u);
  for (PhotoId r = 0; r < sp.size(); ++r) {
    EXPECT_LE(scorer.Objective({r}, params),
              scorer.Objective(best, params) + 1e-15);
  }
}

TEST(ExactMaxSumTest, KEqualsNSelectsEverything) {
  StreetPhotos sp = TinyWorld(13, 10);
  DiversifyParams params;
  params.k = 100;
  params.rho = 0.0005;
  PhotoScorer scorer(sp, params.rho);
  std::vector<PhotoId> best = ExactMaxSumSelect(scorer, params);
  EXPECT_EQ(static_cast<int64_t>(best.size()), sp.size());
}

// Lambda sweep: diversity of the greedy summary is non-decreasing-ish and
// relevance non-increasing-ish as lambda grows (the Figure 5 trade-off).
// Greedy is a heuristic, so allow slack; the endpoints must order
// strictly.
TEST(DiversifyQualityTest, LambdaTradeoffEndpoints) {
  StreetPhotos sp = TinyWorld(17, 24);
  DiversifyParams params;
  params.k = 5;
  params.w = 0.5;
  params.rho = 0.0005;
  PhotoScorer scorer(sp, params.rho);

  params.lambda = 0.0;
  DiversifyResult rel_end = GreedyBaselineSelect(scorer, params);
  params.lambda = 1.0;
  DiversifyResult div_end = GreedyBaselineSelect(scorer, params);

  EXPECT_GE(scorer.SetRelevance(rel_end.selected, params.w),
            scorer.SetRelevance(div_end.selected, params.w) - 1e-12);
  EXPECT_GE(scorer.SetDiversity(div_end.selected, params.w),
            scorer.SetDiversity(rel_end.selected, params.w) - 1e-12);
}

}  // namespace
}  // namespace soi
