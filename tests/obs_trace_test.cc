// Trace-recorder behavior: span nesting, Chrome-JSON export round-trip,
// ring overflow accounting, and session arming/disarming. Uses the
// global recorder (the one SOI_TRACE_SPAN writes to); each test calls
// Start() first, which clears prior events, so the tests are
// order-independent. The ScopedSpan class API is exercised directly —
// it works in both build modes — and macro behavior is asserted under
// the mode actually compiled (obs::kEnabled).

#include "obs/trace.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/obs.h"

namespace soi {
namespace obs {
namespace {

TEST(TraceTest, RecordsNestedSpansWithDepthAndContainment) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
    }
    {
      ScopedSpan sibling("sibling");
    }
  }
  recorder.Stop();

  std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 3u);
  // Collect() orders parents before children: "outer" starts first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  const TraceEvent& outer = events[0];
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].depth, 1) << events[i].name;
    EXPECT_EQ(events[i].thread_id, outer.thread_id);
    // Children are contained in the parent interval.
    EXPECT_GE(events[i].start_ns, outer.start_ns) << events[i].name;
    EXPECT_LE(events[i].start_ns + events[i].duration_ns,
              outer.start_ns + outer.duration_ns)
        << events[i].name;
  }
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "sibling");
}

TEST(TraceTest, SpansOutsideASessionRecordNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  recorder.Stop();
  {
    ScopedSpan span("after.stop");
  }
  EXPECT_TRUE(recorder.Collect().empty());

  // A span opened before Stop() but closed after it is dropped too: the
  // recorded set only contains spans fully inside the session.
  recorder.Start();
  {
    ScopedSpan span("straddles.stop");
    recorder.Stop();
  }
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(TraceTest, StartClearsPreviousSession) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    ScopedSpan span("first.session");
  }
  recorder.Start();  // restart: prior events are discarded
  {
    ScopedSpan span("second.session");
  }
  recorder.Stop();
  std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second.session");
}

TEST(TraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("overflow");
  }
  recorder.Stop();
  std::vector<TraceEvent> events = recorder.Collect();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6);
  // The survivors are the newest events: strictly increasing start
  // times, and the last one began after every dropped one.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceTest, ThreadsGetDistinctIds) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    ScopedSpan main_span("on.main");
  }
  std::thread worker([] {
    ScopedSpan worker_span("on.worker");
  });
  worker.join();
  recorder.Stop();
  std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST(TraceTest, ExportsChromeTraceEventJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    ScopedSpan outer("phase.outer");
    ScopedSpan inner("phase.inner");
  }
  recorder.Stop();
  std::ostringstream out;
  recorder.ExportChromeJson(&out);
  std::string text = out.str();
  // The envelope chrome://tracing and Perfetto accept: an object with a
  // traceEvents array of complete ("X") events in microseconds.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"phase.outer\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"phase.inner\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ts\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"dur\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"tid\""), std::string::npos) << text;
}

TEST(TraceTest, WriteChromeTraceReportsUnwritablePath) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  recorder.Stop();
  Status status =
      recorder.WriteChromeTrace("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

TEST(TraceTest, MacroRecordsExactlyWhenCompiledIn) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    SOI_TRACE_SPAN("macro.span");
  }
  recorder.Stop();
  std::vector<TraceEvent> events = recorder.Collect();
  if (kEnabled) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "macro.span");
  } else {
    // SOI_OBSERVABILITY=OFF: the macro compiles to nothing.
    EXPECT_TRUE(events.empty());
  }
}

}  // namespace
}  // namespace obs
}  // namespace soi
