// Tests for the visual-features extension (the paper's future work:
// "enhance the diversification criteria with visual features extracted
// from the photos"): descriptor distances, visual relevance/diversity,
// bound soundness, ST_Rel+Div equivalence with the baseline, and exact
// backward compatibility when visual_weight = 0.

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/diversify/cell_bounds.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/objective.h"
#include "core/diversify/st_rel_div.h"
#include "core/street_photos.h"
#include "datagen/dataset.h"
#include "gtest/gtest.h"
#include "network/network_builder.h"
#include "test_util.h"

namespace soi {
namespace {

TEST(VisualDistanceTest, BasicProperties) {
  std::vector<float> a = {0, 0, 0, 0};
  std::vector<float> b = {1, 1, 1, 1};
  std::vector<float> c = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(VisualDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(VisualDistance(a, b), 1.0);  // Cube diagonal, RMS = 1.
  EXPECT_DOUBLE_EQ(VisualDistance(a, c), 0.5);
  EXPECT_DOUBLE_EQ(VisualDistance(a, b), VisualDistance(b, a));
}

// A single-street world whose photos carry descriptors.
struct VisualWorld {
  RoadNetwork network;
  std::vector<Photo> photos;
  StreetPhotos sp;

  explicit VisualWorld(uint64_t seed, int64_t n = 300) {
    NetworkBuilder builder;
    VertexId a = builder.AddVertex({0, 0});
    VertexId b = builder.AddVertex({0.02, 0});
    SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
    network = std::move(builder).Build().ValueOrDie();
    Rng rng(seed);
    Vocabulary vocabulary;
    photos = testing_util::RandomPhotos(
        Box::FromCorners(Point{0, -0.002}, Point{0.02, 0.002}), n, 16,
        &vocabulary, &rng);
    // Descriptors: three visual "scene clusters" plus noise.
    std::vector<std::vector<float>> bases;
    for (int c = 0; c < 3; ++c) {
      std::vector<float> base(6);
      for (float& v : base) v = static_cast<float>(rng.UniformDouble());
      bases.push_back(base);
    }
    for (size_t i = 0; i < photos.size(); ++i) {
      const std::vector<float>& base = bases[i % bases.size()];
      std::vector<float> descriptor(6);
      for (size_t d = 0; d < 6; ++d) {
        descriptor[d] = static_cast<float>(std::clamp(
            static_cast<double>(base[d]) + rng.Normal(0, 0.05), 0.0, 1.0));
      }
      photos[i].visual = std::move(descriptor);
    }
    sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.0025);
    SOI_CHECK(sp.size() > 40);
  }
};

TEST(VisualScorerTest, ZeroWeightIsExactlyThePaperObjective) {
  VisualWorld world(1);
  DiversifyParams params;
  params.k = 6;
  params.rho = 0.0005;
  params.visual_weight = 0.0;
  PhotoScorer scorer(world.sp, params.rho);
  ASSERT_TRUE(scorer.has_visual());
  // Per-photo and set-level quantities match the w-only forms bit-exactly.
  for (PhotoId r = 0; r < std::min<int64_t>(world.sp.size(), 50); ++r) {
    EXPECT_EQ(scorer.Rel(r, params), scorer.Rel(r, params.w));
  }
  DiversifyResult result = GreedyBaselineSelect(scorer, params);
  EXPECT_EQ(scorer.Objective(result.selected, params),
            (1.0 - params.lambda) *
                    scorer.SetRelevance(result.selected, params.w) +
                params.lambda * scorer.SetDiversity(result.selected,
                                                    params.w));
}

TEST(VisualScorerTest, VisualRelAndDivAreInUnitRange) {
  VisualWorld world(2);
  PhotoScorer scorer(world.sp, 0.0005);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    PhotoId a = static_cast<PhotoId>(rng.UniformInt(0, world.sp.size() - 1));
    PhotoId b = static_cast<PhotoId>(rng.UniformInt(0, world.sp.size() - 1));
    EXPECT_GE(scorer.VisualRel(a), 0.0);
    EXPECT_LE(scorer.VisualRel(a), 1.0);
    EXPECT_GE(scorer.VisualDiv(a, b), 0.0);
    EXPECT_LE(scorer.VisualDiv(a, b), 1.0);
    EXPECT_DOUBLE_EQ(scorer.VisualDiv(a, b), scorer.VisualDiv(b, a));
    EXPECT_DOUBLE_EQ(scorer.VisualDiv(a, a), 0.0);
  }
}

class VisualBoundsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisualBoundsProperty, CellBoundsContainExactValues) {
  VisualWorld world(GetParam());
  double rho = 0.0005;
  PhotoScorer scorer(world.sp, rho);
  PhotoGridIndex index(rho / 2, world.sp.photos);
  CellBoundsCalculator bounds(world.sp, index);
  Rng rng(GetParam() * 13 + 1);
  constexpr double kTol = 1e-9;  // float descriptors -> coarser tolerance.
  for (CellId cell : index.non_empty_cells()) {
    for (int trial = 0; trial < 4; ++trial) {
      PhotoId ref =
          static_cast<PhotoId>(rng.UniformInt(0, world.sp.size() - 1));
      Bounds vdiv = bounds.VisualDiv(cell, ref);
      for (PhotoId r : index.FindCell(cell)->photos) {
        EXPECT_GE(scorer.VisualDiv(r, ref), vdiv.lower - kTol);
        EXPECT_LE(scorer.VisualDiv(r, ref), vdiv.upper + kTol);
      }
    }
  }
}

TEST_P(VisualBoundsProperty, VisualAwareMmrBoundsContainExact) {
  VisualWorld world(GetParam() + 50);
  double rho = 0.0005;
  PhotoScorer scorer(world.sp, rho);
  PhotoGridIndex index(rho / 2, world.sp.photos);
  CellBoundsCalculator bounds(world.sp, index);
  Rng rng(GetParam() * 19 + 3);
  for (int trial = 0; trial < 4; ++trial) {
    DiversifyParams params;
    params.k = static_cast<int32_t>(rng.UniformInt(2, 6));
    params.lambda = rng.UniformDouble();
    params.w = rng.UniformDouble();
    params.visual_weight = rng.UniformDouble(0.1, 0.8);
    params.rho = rho;
    std::vector<PhotoId> selected;
    int64_t ns = rng.UniformInt(0, 3);
    for (int64_t i = 0; i < ns; ++i) {
      selected.push_back(
          static_cast<PhotoId>(rng.UniformInt(0, world.sp.size() - 1)));
    }
    for (CellId cell : index.non_empty_cells()) {
      Bounds mmr = bounds.MmrWithVisual(cell, selected, params);
      for (PhotoId r : index.FindCell(cell)->photos) {
        double exact = scorer.Mmr(r, selected, params);
        EXPECT_GE(exact, mmr.lower - 1e-9);
        EXPECT_LE(exact, mmr.upper + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisualBoundsProperty,
                         ::testing::Values(1, 2, 3, 4));

class VisualEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(VisualEquivalence, StRelDivMatchesBaselineWithVisualWeight) {
  auto [seed, visual_weight] = GetParam();
  VisualWorld world(seed);
  DiversifyParams params;
  params.k = 8;
  params.lambda = 0.5;
  params.w = 0.5;
  params.rho = 0.0005;
  params.visual_weight = visual_weight;
  PhotoScorer scorer(world.sp, params.rho);
  PhotoGridIndex index(params.rho / 2, world.sp.photos);
  CellBoundsCalculator bounds(world.sp, index);
  DiversifyResult fast = StRelDivSelect(scorer, bounds, params);
  DiversifyResult slow = GreedyBaselineSelect(scorer, params);
  EXPECT_EQ(fast.selected, slow.selected) << "v=" << visual_weight;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VisualEquivalence,
    ::testing::Combine(::testing::Values(uint64_t{5}, uint64_t{6}),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

// Visually near-duplicate photos with *different tags and locations* are
// only separated by the visual criterion.
TEST(VisualDiversifyTest, VisualWeightAvoidsVisualDuplicates) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("S", {a, b}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();
  Rng rng(11);
  std::vector<Photo> photos;
  // 20 photos of the same monument from different spots with different
  // tags (high spatial + textual diversity) but identical appearance.
  std::vector<float> monument = {0.9f, 0.1f, 0.8f, 0.2f};
  for (int i = 0; i < 20; ++i) {
    Photo photo;
    photo.position = Point{0.0005 * i, (i % 2 ? 1 : -1) * 0.0004};
    photo.keywords = KeywordSet({static_cast<KeywordId>(i)});
    photo.visual = monument;
    photos.push_back(photo);
  }
  // 5 visually distinct photos.
  for (int i = 0; i < 5; ++i) {
    Photo photo;
    photo.position = Point{0.002 * i, 0.0001};
    photo.keywords = KeywordSet({static_cast<KeywordId>(100 + i)});
    photo.visual = {static_cast<float>(0.2 * i), 0.9f,
                    static_cast<float>(0.1 * i), 0.7f};
    photos.push_back(photo);
  }
  StreetPhotos sp = ExtractStreetPhotosBruteForce(network, 0, photos, 0.002);
  ASSERT_EQ(sp.size(), 25);
  DiversifyParams params;
  params.k = 4;
  params.lambda = 1.0;  // Pure diversity.
  params.w = 0.5;
  params.rho = 0.0005;
  PhotoScorer scorer(sp, params.rho);

  // Without the visual term, spatial+textual diversity is happy with all
  // monument shots (they are spread out and have disjoint tags).
  params.visual_weight = 0.0;
  DiversifyResult blind = GreedyBaselineSelect(scorer, params);
  int blind_monument = 0;
  for (PhotoId r : blind.selected) {
    if (r < 20) ++blind_monument;
  }
  // With a strong visual weight, the summary mixes in visually distinct
  // photos.
  params.visual_weight = 0.8;
  DiversifyResult aware = GreedyBaselineSelect(scorer, params);
  int aware_distinct = 0;
  for (PhotoId r : aware.selected) {
    if (r >= 20) ++aware_distinct;
  }
  EXPECT_GE(aware_distinct, 2);
  EXPECT_GE(blind_monument, aware_distinct == 0 ? 0 : 1);
}

TEST(VisualDiversifyTest, GeneratorAttachesConsistentDescriptors) {
  CityProfile profile = testing_util::TinyCityProfile(9);
  profile.target_photos = 400;
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  ASSERT_FALSE(dataset.photos.empty());
  size_t dim = dataset.photos[0].visual.size();
  EXPECT_EQ(dim, static_cast<size_t>(profile.visual_descriptor_dim));
  for (const Photo& photo : dataset.photos) {
    ASSERT_EQ(photo.visual.size(), dim);
    for (float v : photo.visual) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(VisualDiversifyTest, DimZeroDisablesDescriptors) {
  CityProfile profile = testing_util::TinyCityProfile(10);
  profile.target_photos = 200;
  profile.visual_descriptor_dim = 0;
  Dataset dataset = GenerateCity(profile).ValueOrDie();
  for (const Photo& photo : dataset.photos) {
    EXPECT_TRUE(photo.visual.empty());
  }
}

}  // namespace
}  // namespace soi
