// Tests for the weighted-mass extension (the note under Definition 1):
// POIs carry importance weights, segment mass is the weight sum, and the
// SOI algorithm's bounds remain sound because SL1 aggregates weight sums.

#include <sstream>
#include <vector>

#include "common/random.h"
#include "core/interest.h"
#include "core/soi_algorithm.h"
#include "core/soi_baseline.h"
#include "gtest/gtest.h"
#include "objects/object_io.h"
#include "test_util.h"

namespace soi {
namespace {

// Dyadic weights (1, 0.5, 2, 4, 0.25) sum exactly in any order, so SOI
// and BL produce bit-identical interests even though they accumulate mass
// in different cell orders.
double DyadicWeight(Rng* rng) {
  constexpr double kWeights[] = {1.0, 0.5, 2.0, 4.0, 0.25};
  return kWeights[rng->UniformInt(uint64_t{5})];
}

struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  explicit Instance(uint64_t seed)
      : network(testing_util::MakeGridNetwork(4, 4, 0.01)),
        pois(MakePois(seed, &vocabulary)),
        geometry(network.bounds().Expanded(0.005), 0.003),
        grid(geometry.bounds(), 0.003, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(uint64_t seed, Vocabulary* vocabulary) {
    Rng rng(seed);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.034, 0.034});
    std::vector<Poi> pois =
        testing_util::RandomPois(box, 500, 6, vocabulary, &rng);
    for (Poi& poi : pois) poi.weight = DyadicWeight(&rng);
    return pois;
  }
};

TEST(WeightedInterestTest, BruteForceMassSumsWeights) {
  Segment segment{Point{0, 0}, Point{1, 0}};
  std::vector<Poi> pois(3);
  pois[0].position = Point{0.2, 0.01};
  pois[0].keywords = KeywordSet({1});
  pois[0].weight = 2.5;
  pois[1].position = Point{0.6, -0.02};
  pois[1].keywords = KeywordSet({1});
  pois[1].weight = 0.5;
  pois[2].position = Point{0.9, 0.01};
  pois[2].keywords = KeywordSet({2});  // Irrelevant.
  pois[2].weight = 100.0;
  EXPECT_DOUBLE_EQ(
      BruteForceSegmentMass(segment, pois, KeywordSet({1}), 0.05), 3.0);
}

TEST(WeightedInterestTest, UnitWeightsReduceToCounts) {
  Vocabulary vocabulary;
  Rng rng(3);
  Box box = Box::FromCorners(Point{0, 0}, Point{1, 1});
  std::vector<Poi> pois =
      testing_util::RandomPois(box, 200, 5, &vocabulary, &rng);
  Segment segment{Point{0.2, 0.5}, Point{0.8, 0.5}};
  KeywordSet query({0, 1});
  double mass = BruteForceSegmentMass(segment, pois, query, 0.1);
  int64_t count = 0;
  for (const Poi& poi : pois) {
    if (poi.IsRelevantTo(query) && segment.DistanceTo(poi.position) <= 0.1) {
      ++count;
    }
  }
  EXPECT_DOUBLE_EQ(mass, static_cast<double>(count));
}

TEST(WeightedSoiTest, GlobalIndexWeightSumsMatchPostings) {
  Instance instance(7);
  for (KeywordId keyword = 0; keyword < instance.vocabulary.size();
       ++keyword) {
    for (const auto& entry : instance.global_index.Entries(keyword)) {
      const std::vector<PoiId>* postings =
          instance.grid.FindPostings(entry.cell, keyword);
      ASSERT_NE(postings, nullptr);
      double weight = 0.0;
      for (PoiId id : *postings) {
        weight += instance.pois[static_cast<size_t>(id)].weight;
      }
      EXPECT_DOUBLE_EQ(entry.weight, weight);
      EXPECT_EQ(entry.num_pois, static_cast<int64_t>(postings->size()));
    }
  }
}

TEST(WeightedSoiTest, BaselineMassMatchesBruteForce) {
  Instance instance(11);
  SoiBaseline baseline(instance.network, instance.grid);
  EpsAugmentedMaps maps(instance.segment_cells, 0.002);
  KeywordSet query({0, 2});
  for (SegmentId id = 0; id < instance.network.num_segments(); ++id) {
    EXPECT_DOUBLE_EQ(
        baseline.SegmentMass(id, query, maps),
        BruteForceSegmentMass(instance.network.segment(id).geometry,
                              instance.pois, query, 0.002));
  }
}

class WeightedSoiEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeightedSoiEquivalence, SoiMatchesBaselineOnWeightedData) {
  Instance instance(GetParam());
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiBaseline baseline(instance.network, instance.grid);
  Rng rng(GetParam() * 131 + 5);
  for (double eps : {0.001, 0.003}) {
    EpsAugmentedMaps maps(instance.segment_cells, eps);
    for (int32_t k : {1, 4, 12}) {
      SoiQuery query;
      std::vector<KeywordId> q;
      int64_t nq = rng.UniformInt(1, 3);
      for (int64_t i = 0; i < nq; ++i) {
        q.push_back(static_cast<KeywordId>(rng.UniformInt(0, 5)));
      }
      query.keywords = KeywordSet(q);
      query.k = k;
      query.eps = eps;
      SoiResult fast = algorithm.TopK(query, maps);
      SoiResult slow = baseline.TopK(query, maps);
      ASSERT_EQ(fast.streets.size(), slow.streets.size());
      for (size_t i = 0; i < fast.streets.size(); ++i) {
        EXPECT_DOUBLE_EQ(fast.streets[i].interest, slow.streets[i].interest)
            << "k=" << k << " eps=" << eps << " rank=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSoiEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25));

// The unseen upper bound must stay sound with weights: SL1 aggregates
// weight sums, not counts.
TEST(WeightedSoiTest, UpperBoundSoundWithWeights) {
  Instance instance(31);
  SoiQuery query;
  query.keywords = KeywordSet({0});
  query.k = 4;
  query.eps = 0.002;
  EpsAugmentedMaps maps(instance.segment_cells, query.eps);
  SoiBaseline baseline(instance.network, instance.grid);
  std::vector<double> exact = baseline.AllSegmentInterests(query, maps);
  SoiAlgorithm algorithm(instance.network, instance.grid,
                         instance.global_index);
  SoiAlgorithmOptions options;
  options.observer = [&](const SoiAlgorithmOptions::FilterSnapshot& snap) {
    double max_unseen = 0.0;
    for (SegmentId id = 0; id < instance.network.num_segments(); ++id) {
      if (!(*snap.segment_seen)[static_cast<size_t>(id)]) {
        max_unseen = std::max(max_unseen, exact[static_cast<size_t>(id)]);
      }
    }
    EXPECT_GE(snap.upper_bound, max_unseen * (1 - 1e-12));
  };
  algorithm.TopK(query, maps, options);
}

TEST(WeightedSoiTest, WeightsSurviveIoRoundTrip) {
  Vocabulary vocabulary;
  std::vector<Poi> pois(3);
  pois[0].position = Point{1, 2};
  pois[0].keywords = KeywordSet({vocabulary.Intern("shop")});
  pois[0].weight = 2.5;
  pois[1].position = Point{3, 4};
  pois[1].keywords = KeywordSet({vocabulary.Intern("food")});
  // pois[1] keeps the default weight 1 (written without the column).
  pois[2].position = Point{5, 6};
  pois[2].keywords = KeywordSet({vocabulary.Intern("bank")});
  pois[2].weight = 0.125;

  std::stringstream stream;
  ASSERT_TRUE(WritePois(pois, vocabulary, &stream).ok());
  Vocabulary fresh;
  auto loaded = ReadPois(&stream, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.ValueOrDie().size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[2].weight, 0.125);
}

TEST(WeightedSoiTest, NegativeWeightRejectedOnRead) {
  std::stringstream stream("# soi-objects v1\n1\t2\tshop\t-3\n");
  Vocabulary vocabulary;
  EXPECT_FALSE(ReadPois(&stream, &vocabulary).ok());
}

// Weighting changes the ranking: a single heavy POI can outrank a cluster
// of light ones.
TEST(WeightedSoiTest, HeavyPoiDominates) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  VertexId c = builder.AddVertex({0, 0.01});
  VertexId d = builder.AddVertex({0.01, 0.01});
  SOI_CHECK(builder.AddStreet("Light", {a, b}).ok());
  SOI_CHECK(builder.AddStreet("Heavy", {c, d}).ok());
  RoadNetwork network = std::move(builder).Build().ValueOrDie();

  std::vector<Poi> pois;
  // Three unit-weight POIs on "Light".
  for (int i = 0; i < 3; ++i) {
    Poi poi;
    poi.position = Point{0.002 + 0.002 * i, 0.0001};
    poi.keywords = KeywordSet({1});
    pois.push_back(poi);
  }
  // One weight-8 POI on "Heavy".
  Poi heavy;
  heavy.position = Point{0.005, 0.0099};
  heavy.keywords = KeywordSet({1});
  heavy.weight = 8.0;
  pois.push_back(heavy);

  GridGeometry geometry(network.bounds().Expanded(0.002), 0.002);
  PoiGridIndex grid(geometry.bounds(), 0.002, pois);
  GlobalInvertedIndex global_index(grid);
  SegmentCellIndex segment_cells(network, geometry);
  EpsAugmentedMaps maps(segment_cells, 0.001);
  SoiAlgorithm algorithm(network, grid, global_index);
  SoiQuery query;
  query.keywords = KeywordSet({1});
  query.k = 1;
  query.eps = 0.001;
  SoiResult result = algorithm.TopK(query, maps);
  ASSERT_EQ(result.streets.size(), 1u);
  EXPECT_EQ(network.street(result.streets[0].street).name, "Heavy");
}

}  // namespace
}  // namespace soi
