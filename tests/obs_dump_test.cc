// End-to-end introspection-plane test (the PR's acceptance criterion):
// a real workload through a QueryEngine must leave DumpState JSON that
// (a) validates as strict JSON, (b) contains QueryRecords with nonzero
// phase timings, and (c) carries latency-histogram exemplars whose query
// ids resolve to records in the flight-recorder snapshot — the
// p99-to-replayable-query link the plane exists for. Uses the
// process-global registry/recorder (that is what DumpState serializes),
// resetting them per test.

#include "obs/dump.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_util.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "core/query_engine.h"
#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "test_util.h"

namespace soi {
namespace {

// Self-contained SOI instance (mirrors the query_engine_test fixture).
struct Instance {
  RoadNetwork network;
  Vocabulary vocabulary;
  std::vector<Poi> pois;
  GridGeometry geometry;
  PoiGridIndex grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;

  Instance()
      : network(testing_util::MakeGridNetwork(5, 5, 0.01)),
        pois(MakePois(&vocabulary)),
        geometry(network.bounds().Expanded(0.005), 0.002),
        grid(geometry.bounds(), 0.002, pois),
        global_index(grid),
        segment_cells(network, geometry) {}

  static std::vector<Poi> MakePois(Vocabulary* vocabulary) {
    Rng rng(20260808);
    Box box = Box::FromCorners(Point{-0.004, -0.004}, Point{0.044, 0.044});
    return testing_util::RandomPois(box, 300, 8, vocabulary, &rng);
  }
};

std::vector<SoiQuery> MakeBatch(int count) {
  Rng rng(7);
  const double eps_values[] = {0.0008, 0.002};
  std::vector<SoiQuery> batch;
  for (int i = 0; i < count; ++i) {
    SoiQuery query;
    std::vector<KeywordId> keywords;
    int64_t nq = rng.UniformInt(1, 3);
    for (int64_t j = 0; j < nq; ++j) {
      keywords.push_back(static_cast<KeywordId>(rng.UniformInt(0, 7)));
    }
    query.keywords = KeywordSet(keywords);
    query.k = static_cast<int32_t>(rng.UniformInt(1, 10));
    query.eps = eps_values[rng.UniformInt(static_cast<uint64_t>(2))];
    batch.push_back(query);
  }
  return batch;
}

class ObsDumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().Reset();
    obs::FlightRecorder::Global().Reset();
  }
};

TEST_F(ObsDumpTest, QueryRecordJsonIsValid) {
  obs::QueryRecord record;
  record.query_id = 42;
  record.psi_size = 2;
  record.k = 10;
  record.eps = 0.0005;
  record.keyword_ids = {3, 7};
  record.total_seconds = 0.012;
  record.status = StatusCode::kDeadlineExceeded;
  std::ostringstream out;
  JsonWriter json(&out);
  obs::WriteQueryRecordJson(record, &json);
  ASSERT_TRUE(json.done());
  std::string text = out.str();
  EXPECT_TRUE(ValidateJson(text).ok()) << text;
  EXPECT_NE(text.find("\"query_id\": 42"), std::string::npos) << text;
  EXPECT_NE(text.find("\"status\": \"Deadline exceeded\""), std::string::npos)
      << text;
}

TEST_F(ObsDumpTest, EmptyStateIsValidJson) {
  std::string text = obs::DumpStateJson();
  Status valid = ValidateJson(text);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << text;
  EXPECT_NE(text.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
}

// The acceptance test: serve a workload, dump, and check the dump links
// together — valid JSON, populated QueryRecords with nonzero phase
// timings, and a latency exemplar resolvable in the recorder snapshot.
TEST_F(ObsDumpTest, ServedWorkloadProducesLinkedDump) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  Instance instance;
  QueryEngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(instance.network, instance.grid, instance.global_index,
                     instance.segment_cells, options);
  std::vector<SoiQuery> batch = MakeBatch(24);
  std::vector<Result<SoiResult>> results = engine.TryRunBatch(batch);
  for (const Result<SoiResult>& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  std::string text = obs::DumpStateJson();
  Status valid = ValidateJson(text);
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(text.find("\"query_id\""), std::string::npos);

  obs::FlightRecorder::Snapshot flights =
      obs::FlightRecorder::Global().Snap();
  ASSERT_EQ(flights.total_recorded, static_cast<int64_t>(batch.size()));

  // At least one record carries nonzero phase timings and the phases are
  // bounded by the query's own wall clock.
  bool saw_phases = false;
  for (const obs::QueryRecord& record : flights.recent) {
    EXPECT_GT(record.query_id, 0u);
    EXPECT_GT(record.psi_size, 0);
    EXPECT_FALSE(record.keyword_ids.empty());
    EXPECT_EQ(record.status, StatusCode::kOk);
    if (record.cache_hit || record.coalesced) continue;
    if (record.lists_seconds > 0.0 && record.refine_seconds > 0.0) {
      saw_phases = true;
      EXPECT_LE(record.lists_seconds + record.filter_seconds +
                    record.refine_seconds,
                record.total_seconds + 1e-6);
    }
  }
  EXPECT_TRUE(saw_phases)
      << "no record carried nonzero lists+refine phase timings";

  // Exemplar link: the engine's latency histogram points at real,
  // resolvable flight records, including one behind the p99 bucket.
  obs::MetricsSnapshot metrics = obs::Registry::Global().Snapshot();
  const obs::Histogram::Snapshot* latency =
      metrics.FindHistogram("soi.engine.query_seconds");
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->total_count, static_cast<int64_t>(batch.size()));
  uint64_t p99_exemplar = latency->ExemplarForQuantile(0.99);
  ASSERT_NE(p99_exemplar, 0u);
  const obs::QueryRecord* linked = flights.Find(p99_exemplar);
  ASSERT_NE(linked, nullptr)
      << "p99 exemplar query " << p99_exemplar
      << " not resolvable in the flight recorder";
  EXPECT_GT(linked->total_seconds, 0.0);
  // The record is replayable: its identity reconstructs a full SoiQuery.
  EXPECT_GT(linked->k, 0);
  EXPECT_GT(linked->eps, 0.0);
  EXPECT_FALSE(linked->keyword_ids.empty());
  // Every stamped exemplar resolves, not just the p99 one.
  for (uint64_t exemplar : latency->exemplars) {
    if (exemplar != 0) {
      EXPECT_NE(flights.Find(exemplar), nullptr);
    }
  }
}

TEST_F(ObsDumpTest, WriteStateFileRoundTrips) {
  std::string path =
      ::testing::TempDir() + "/soi_dump_test_state.json";
  Status written = obs::WriteStateFile(path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  EXPECT_TRUE(ValidateJson(content.str()).ok());
  EXPECT_FALSE(obs::WriteStateFile("/nonexistent_dir_xyz/state.json").ok());
}

}  // namespace
}  // namespace soi
