// End-to-end pipeline test: generate a small city, build the offline
// indices, identify streets of interest for a planted category, and
// describe the winner with a diversified photo summary — the full
// workflow of the paper on one dataset.

#include <algorithm>

#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/diversify/variants.h"
#include "core/soi_algorithm.h"
#include "core/soi_baseline.h"
#include "core/street_photos.h"
#include "datagen/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace soi {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityProfile profile = testing_util::TinyCityProfile(42);
    profile.target_pois = 8000;
    profile.target_photos = 4000;
    dataset_ = new Dataset(GenerateCity(profile).ValueOrDie());
    indexes_ = BuildIndexes(*dataset_, /*cell_size=*/0.0005).release();
  }

  static void TearDownTestSuite() {
    delete indexes_;
    delete dataset_;
    indexes_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static DatasetIndexes* indexes_;
};

Dataset* PipelineTest::dataset_ = nullptr;
DatasetIndexes* PipelineTest::indexes_ = nullptr;

TEST_F(PipelineTest, SoiRecoversPlantedHotspots) {
  const CategoryGroundTruth* truth = dataset_->ground_truth.Find("shop");
  ASSERT_NE(truth, nullptr);
  SoiQuery query;
  query.keywords =
      KeywordSet({dataset_->vocabulary.Find("shop")});
  query.k = 10;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes_->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset_->network, indexes_->poi_grid,
                         indexes_->global_index);
  SoiResult result = algorithm.TopK(query, maps);
  ASSERT_EQ(result.streets.size(), 10u);

  // The top planted hotspots must be recovered with high recall.
  std::vector<StreetId> top_truth(
      truth->hotspots.begin(),
      truth->hotspots.begin() + std::min<size_t>(4, truth->hotspots.size()));
  double recall = RecallAtK(result.streets, top_truth, 10);
  EXPECT_GE(recall, 0.75) << "recall@10 of planted shop streets";

  // And SOI agrees with the baseline.
  SoiBaseline baseline(dataset_->network, indexes_->poi_grid);
  SoiResult expected = baseline.TopK(query, maps);
  ASSERT_EQ(expected.streets.size(), result.streets.size());
  for (size_t i = 0; i < result.streets.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.streets[i].interest,
                     expected.streets[i].interest);
  }
}

TEST_F(PipelineTest, TopSoiHasDescribablePhotoSet) {
  SoiQuery query;
  query.keywords = KeywordSet({dataset_->vocabulary.Find("shop")});
  query.k = 1;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes_->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset_->network, indexes_->poi_grid,
                         indexes_->global_index);
  SoiResult result = algorithm.TopK(query, maps);
  ASSERT_EQ(result.streets.size(), 1u);
  StreetId top = result.streets[0].street;

  StreetPhotos sp = ExtractStreetPhotos(dataset_->network, top,
                                        dataset_->photos,
                                        indexes_->photo_grid, query.eps);
  ASSERT_GT(sp.size(), 20) << "top SOI needs photos to describe";

  DiversifyParams params;
  params.k = 5;
  params.rho = 0.0001;
  PhotoScorer scorer(sp, params.rho);
  PhotoGridIndex index(params.rho / 2, sp.photos);
  CellBoundsCalculator cell_bounds(sp, index);
  DiversifyResult fast = StRelDivSelect(scorer, cell_bounds, params);
  DiversifyResult slow = GreedyBaselineSelect(scorer, params);
  EXPECT_EQ(fast.selected, slow.selected);
  EXPECT_EQ(fast.selected.size(), 5u);

  // The full method's summary scores best under the full objective. The
  // greedy heuristic on this toy-sized photo set can be edged out by a
  // restricted variant by several percent, so this is a coarse check;
  // variants_test and bench/table3 cover the margin claim properly.
  double full = scorer.Objective(fast.selected, params);
  for (SelectionMethod method : AllSelectionMethods()) {
    DiversifyResult variant = SelectWithMethod(scorer, method, params);
    EXPECT_LE(scorer.Objective(variant.selected, params), full * 1.15 + 1e-9)
        << SelectionMethodName(method);
  }
}

TEST_F(PipelineTest, MultiKeywordQueryMatchesBaseline) {
  SoiQuery query;
  query.keywords = KeywordSet({dataset_->vocabulary.Find("shop"),
                               dataset_->vocabulary.Find("food"),
                               dataset_->vocabulary.Find("museum")});
  query.k = 20;
  query.eps = 0.0005;
  EpsAugmentedMaps maps(indexes_->segment_cells, query.eps);
  SoiAlgorithm algorithm(dataset_->network, indexes_->poi_grid,
                         indexes_->global_index);
  SoiBaseline baseline(dataset_->network, indexes_->poi_grid);
  SoiResult fast = algorithm.TopK(query, maps);
  SoiResult slow = baseline.TopK(query, maps);
  ASSERT_EQ(fast.streets.size(), slow.streets.size());
  for (size_t i = 0; i < fast.streets.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast.streets[i].interest, slow.streets[i].interest);
  }
  // A broad 3-keyword query with k=20 on a tiny city may legitimately
  // touch everything (the paper sees ~60% relevant segments at |Psi|=4);
  // pruning under selective queries is asserted elsewhere.
  EXPECT_LE(fast.stats.segments_seen, dataset_->network.num_segments());
}

TEST_F(PipelineTest, Table4StyleRelevantCountsGrowWithKeywords) {
  std::vector<std::string> keywords = {"shop", "food", "museum", "office"};
  std::vector<KeywordId> accumulated;
  int64_t last = 0;
  for (const std::string& keyword : keywords) {
    accumulated.push_back(dataset_->vocabulary.Find(keyword));
    int64_t count =
        CountRelevantPois(dataset_->pois, KeywordSet(accumulated));
    EXPECT_GE(count, last);
    last = count;
  }
  EXPECT_GT(last, 0);
}

}  // namespace
}  // namespace soi
