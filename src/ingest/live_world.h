#ifndef SOI_INGEST_LIVE_WORLD_H_
#define SOI_INGEST_LIVE_WORLD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "datagen/dataset.h"
#include "grid/live_poi_view.h"
#include "grid/poi_overlay.h"
#include "objects/photo.h"
#include "objects/poi.h"

namespace soi {

class ThreadPool;

namespace ingest {

/// One atomically-applied set of updates. POI deletes name live POI ids
/// (base ids, or ids returned by earlier batches' inserts); a batch
/// cannot delete a POI it inserts itself — its ids are assigned during
/// application. Photo updates are symmetric. An invalid batch is
/// rejected whole: validation runs before any state is touched, so a
/// kInvalidArgument batch has no effect on any epoch.
struct UpdateBatch {
  std::vector<Poi> poi_inserts;
  std::vector<PoiId> poi_deletes;
  std::vector<Photo> photo_inserts;
  std::vector<PhotoId> photo_deletes;

  bool empty() const {
    return poi_inserts.empty() && poi_deletes.empty() &&
           photo_inserts.empty() && photo_deletes.empty();
  }
  int64_t num_ops() const {
    return static_cast<int64_t>(poi_inserts.size() + poi_deletes.size() +
                                photo_inserts.size() +
                                photo_deletes.size());
  }
};

struct LiveWorldOptions {
  /// Parallelizes index builds (base construction, compaction,
  /// snapshot save). Not owned; may be null. The world's writer mutex
  /// (rank kRankIngest) is held while builders submit pool work, which
  /// the rank ladder permits (kRankIngest < kRankThreadPool).
  ThreadPool* pool = nullptr;

  /// When > 0, a background compactor thread folds the overlay into a
  /// fresh arena whenever at least this many ops have been applied
  /// since the last compaction. 0 (default) = manual Compact() only.
  int64_t auto_compact_ops = 0;
};

/// The incremental-update subsystem (DESIGN.md "Ingest & epochs"): owns
/// one dataset plus its index suite and accepts POI/photo insert/delete
/// batches on top of the flat CSR indexes, without ever blocking
/// readers.
///
/// Update model — epochs over immutable state:
///  - ApplyBatch validates the whole batch, builds a fresh
///    PoiDeltaOverlay (copy-on-write; untouched cells/rows shared with
///    the previous epoch), and publishes a new PoiEpochSnapshot
///    atomically. Failure (validation or an "ingest.apply_delta" fault)
///    publishes nothing.
///  - Compact() — or the background compactor — folds base + overlay
///    into a freshly built PoiGridIndex/GlobalInvertedIndex arena
///    (fixed base geometry, live ids renumbered densely in live-id
///    order) and republishes with a null overlay. A failed compaction
///    ("ingest.compact" fault) publishes nothing; readers stay on the
///    old epoch and the overlay remains intact for a retry.
///  - Pin() (the PoiEpochSource implementation QueryEngine reads
///    through) is wait-free and never blocks on the writer: the same
///    atomic-generation-pointer + reader-counter RCU protocol as
///    QueryEngine's eps hit table, with retired epochs reclaimed only
///    after readers are observed quiescent.
///
/// Correctness bar (asserted by tests/ingest_test.cc): after any
/// interleaving of batches and compactions, queries over a pinned
/// current epoch are bit-identical to the same queries over indexes
/// cold-rebuilt from the live dataset on the world's fixed geometry.
/// The geometry is fixed at construction (derived from the initial
/// dataset, exactly as BuildIndexes does) for the world's lifetime;
/// inserts outside its bounds are rejected with kInvalidArgument.
///
/// Photos are not on the query read path, so they are delta-buffered in
/// the writer (visible through num_live_photos()) and materialized at
/// compaction / snapshot time only.
///
/// Thread-safe: ApplyBatch/Compact/Save serialize on the writer mutex;
/// Pin() and the accessors never take it.
class LiveWorld : public PoiEpochSource {
 public:
  /// Takes ownership of `dataset` and builds the base (epoch 0) index
  /// suite over it with cells of side `cell_size` (the BuildIndexes
  /// geometry). The base suite stays alive — at a stable address — for
  /// the world's lifetime, so QueryEngine can be constructed over
  /// base_indexes() and outlive any number of compactions.
  LiveWorld(Dataset dataset, double cell_size,
            LiveWorldOptions options = {});
  ~LiveWorld() override;

  LiveWorld(const LiveWorld&) = delete;
  LiveWorld& operator=(const LiveWorld&) = delete;

  /// Wait-free epoch pin (PoiEpochSource). The snapshot — and through
  /// it the overlay or compacted arena it references — stays valid
  /// until the returned shared_ptr is released.
  std::shared_ptr<const PoiEpochSnapshot> Pin() const override;

  /// Applies `batch` as one new epoch. kInvalidArgument (nothing
  /// applied) for out-of-bounds or non-finite positions, non-positive
  /// or non-finite weights, empty or out-of-vocabulary POI keyword
  /// sets, unknown/dead/duplicate delete ids; kInternal for an injected
  /// "ingest.apply_delta" fault. An empty batch is a no-op OK.
  [[nodiscard]] Status ApplyBatch(const UpdateBatch& batch);

  /// Folds the current overlay + photo deltas into a fresh arena and
  /// republishes (no-op OK when already compact). kInternal for an
  /// injected "ingest.compact" fault — in that case nothing is
  /// published and the overlay remains for a later retry.
  [[nodiscard]] Status Compact();

  /// Compacts, then writes the live dataset + freshly built index suite
  /// through the versioned snapshot format (src/snapshot), stamping the
  /// ingest meta fields (epoch, applied op count). The saved file
  /// round-trips through LoadSnapshot like any cold snapshot.
  [[nodiscard]] Status Save(const std::string& path);

  /// A deep copy of the current live dataset (live ids renumbered
  /// densely in live-id order — the compaction/cold-rebuild order).
  /// Test/diagnostic hook for bit-identity comparisons.
  Dataset MaterializeLiveDataset() const;

  // --- immutable base state (safe without the writer mutex) ----------
  const Dataset& base_dataset() const { return *base_dataset_; }
  const DatasetIndexes& base_indexes() const { return *base_indexes_; }
  const GridGeometry& geometry() const { return base_indexes_->geometry; }

  // --- monotone counters (relaxed atomics) ----------------------------
  uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_relaxed);
  }
  uint64_t applied_ops() const {
    return applied_ops_count_.load(std::memory_order_relaxed);
  }
  int64_t num_live_pois() const {
    return live_pois_count_.load(std::memory_order_relaxed);
  }
  int64_t num_live_photos() const {
    return live_photos_count_.load(std::memory_order_relaxed);
  }

 private:
  /// A compacted generation: the live dataset (densely renumbered) and
  /// the indexes built over it on the fixed base geometry. Epoch
  /// snapshots keep their generation alive via shared_ptr (the
  /// snapshot's `retain`), so a compaction never invalidates pinned
  /// readers.
  struct Arena {
    Dataset dataset;
    std::unique_ptr<PoiGridIndex> grid;
    std::unique_ptr<GlobalInvertedIndex> global;
  };

  /// The published-snapshot holder the RCU pointer targets. Readers
  /// copy the shared_ptr out while registered in readers_; holders are
  /// retired (not freed) on republish and reclaimed at quiescence.
  using SnapshotHolder = std::shared_ptr<const PoiEpochSnapshot>;

  // Writer-side view of the current epoch (grid/global of the current
  // arena, or the base suite when arena_ is null).
  const PoiGridIndex& CurrentGridLocked() const SOI_REQUIRES(mutex_);
  const GlobalInvertedIndex& CurrentGlobalLocked() const
      SOI_REQUIRES(mutex_);

  Status ValidateBatchLocked(const UpdateBatch& batch) const
      SOI_REQUIRES(mutex_);
  Status CompactLocked() SOI_REQUIRES(mutex_);
  Dataset MaterializeLiveDatasetLocked() const SOI_REQUIRES(mutex_);
  void PublishLocked(std::shared_ptr<const PoiEpochSnapshot> snapshot)
      SOI_REQUIRES(mutex_);
  void CompactorLoop();

  // Immutable after construction.
  std::unique_ptr<Dataset> base_dataset_;
  std::unique_ptr<DatasetIndexes> base_indexes_;
  double cell_size_ = 0.0;
  LiveWorldOptions options_;

  // Writer mutex: serializes ApplyBatch/Compact/Save and guards every
  // writer-side field. Rank kRankIngest — held across index builds
  // that submit pool work (rank kRankThreadPool), never across any
  // other named lock.
  mutable Mutex mutex_{"ingest.LiveWorld.writer",
                       lock_graph::kRankIngest};
  CondVar compact_cv_;

  std::shared_ptr<const Arena> arena_ SOI_GUARDED_BY(mutex_);
  std::shared_ptr<const PoiDeltaOverlay> overlay_ SOI_GUARDED_BY(mutex_);
  // Photo deltas since the last compaction (photo live ids follow the
  // same base-then-appended scheme as POIs).
  std::vector<Photo> photos_added_ SOI_GUARDED_BY(mutex_);
  std::unordered_set<PhotoId> photos_deleted_ SOI_GUARDED_BY(mutex_);
  size_t photo_base_size_ SOI_GUARDED_BY(mutex_) = 0;
  uint64_t epoch_ SOI_GUARDED_BY(mutex_) = 0;
  int64_t ops_since_compact_ SOI_GUARDED_BY(mutex_) = 0;
  bool stop_compactor_ SOI_GUARDED_BY(mutex_) = false;

  // RCU publication state (see Pin / PublishLocked). storage_'s last
  // element is the current holder; earlier elements are retired
  // generations a registered reader may still be copying from.
  std::atomic<const SnapshotHolder*> current_{nullptr};
  mutable std::atomic<int64_t> readers_{0};
  std::vector<std::unique_ptr<const SnapshotHolder>> storage_
      SOI_GUARDED_BY(mutex_);

  // Lock-free mirrors for the public accessors.
  std::atomic<uint64_t> published_epoch_{0};
  std::atomic<uint64_t> applied_ops_count_{0};
  std::atomic<int64_t> live_pois_count_{0};
  std::atomic<int64_t> live_photos_count_{0};

  std::thread compactor_;
};

}  // namespace ingest
}  // namespace soi

#endif  // SOI_INGEST_LIVE_WORLD_H_
