#include "ingest/live_world.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/obs.h"
#include "snapshot/snapshot.h"

namespace soi {
namespace ingest {

LiveWorld::LiveWorld(Dataset dataset, double cell_size,
                     LiveWorldOptions options)
    : base_dataset_(std::make_unique<Dataset>(std::move(dataset))),
      base_indexes_(BuildIndexes(*base_dataset_, cell_size, options.pool)),
      cell_size_(cell_size),
      options_(options) {
  SOI_CHECK(cell_size > 0.0) << "cell_size must be positive";
  live_pois_count_.store(static_cast<int64_t>(base_dataset_->pois.size()),
                         std::memory_order_relaxed);
  live_photos_count_.store(
      static_cast<int64_t>(base_dataset_->photos.size()),
      std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    photo_base_size_ = base_dataset_->photos.size();
    auto snapshot = std::make_shared<PoiEpochSnapshot>();
    snapshot->epoch = 0;
    snapshot->grid = &base_indexes_->poi_grid;
    snapshot->global = &base_indexes_->global_index;
    PublishLocked(std::move(snapshot));
  }
  if (options_.auto_compact_ops > 0) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
}

LiveWorld::~LiveWorld() {
  if (compactor_.joinable()) {
    {
      MutexLock lock(mutex_);
      stop_compactor_ = true;
    }
    compact_cv_.NotifyAll();
    compactor_.join();
  }
}

std::shared_ptr<const PoiEpochSnapshot> LiveWorld::Pin() const {
  // Wait-free reader side of the RCU protocol (the same seq_cst
  // argument as QueryEngine::RebuildHitTableLocked): register before
  // loading the generation pointer, copy the shared_ptr out while
  // registered, deregister. A pin racing a republish may return the
  // just-retired epoch — its holder is retired, not freed, until a
  // later publish observes readers_ == 0.
  readers_.fetch_add(1, std::memory_order_seq_cst);
  const SnapshotHolder* holder = current_.load(std::memory_order_seq_cst);
  std::shared_ptr<const PoiEpochSnapshot> snapshot = *holder;
  readers_.fetch_sub(1, std::memory_order_release);
  return snapshot;
}

void LiveWorld::PublishLocked(
    std::shared_ptr<const PoiEpochSnapshot> snapshot) {
  auto holder = std::make_unique<const SnapshotHolder>(std::move(snapshot));
  current_.store(holder.get(), std::memory_order_seq_cst);
  storage_.push_back(std::move(holder));
  // Grace-period reclamation, mirroring the eps hit table: observing
  // zero registered readers after the seq_cst store above proves no
  // reader can still reach a retired holder.
  if (storage_.size() > 1 &&
      readers_.load(std::memory_order_seq_cst) == 0) {
    std::unique_ptr<const SnapshotHolder> current =
        std::move(storage_.back());
    storage_.clear();
    storage_.push_back(std::move(current));
  }
}

const PoiGridIndex& LiveWorld::CurrentGridLocked() const {
  return arena_ != nullptr ? *arena_->grid : base_indexes_->poi_grid;
}

const GlobalInvertedIndex& LiveWorld::CurrentGlobalLocked() const {
  return arena_ != nullptr ? *arena_->global
                           : base_indexes_->global_index;
}

Status LiveWorld::ValidateBatchLocked(const UpdateBatch& batch) const {
  const GridGeometry& geometry = base_indexes_->geometry;
  const int64_t num_keywords = base_dataset_->vocabulary.size();
  auto check_position = [&](const Point& p,
                            const char* what) -> Status {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidArgument(std::string(what) +
                                     " has a non-finite position");
    }
    if (!geometry.bounds().Contains(p)) {
      return Status::InvalidArgument(
          std::string(what) +
          " lies outside the world's fixed grid bounds (the geometry is "
          "fixed at construction; out-of-bounds inserts are rejected)");
    }
    return Status::OK();
  };
  auto check_keywords = [&](const KeywordSet& keywords,
                            const char* what) -> Status {
    for (KeywordId id : keywords.ids()) {
      if (id < 0 || id >= num_keywords) {
        return Status::InvalidArgument(
            std::string(what) + " carries unknown keyword id " +
            std::to_string(id));
      }
    }
    return Status::OK();
  };

  for (const Poi& poi : batch.poi_inserts) {
    SOI_RETURN_NOT_OK(check_position(poi.position, "POI insert"));
    if (!std::isfinite(poi.weight) || poi.weight <= 0.0) {
      return Status::InvalidArgument(
          "POI insert weight must be finite and positive");
    }
    if (poi.keywords.empty()) {
      return Status::InvalidArgument(
          "POI insert must carry at least one keyword");
    }
    SOI_RETURN_NOT_OK(check_keywords(poi.keywords, "POI insert"));
  }

  const size_t base_size = CurrentGridLocked().pois().size();
  const size_t num_added =
      overlay_ != nullptr ? overlay_->added->size() : 0;
  std::unordered_set<PoiId> batch_deletes;
  for (PoiId id : batch.poi_deletes) {
    if (id < 0 || static_cast<size_t>(id) >= base_size + num_added) {
      return Status::InvalidArgument("POI delete names unknown id " +
                                     std::to_string(id));
    }
    if (overlay_ != nullptr && overlay_->deleted->count(id) > 0) {
      return Status::InvalidArgument("POI delete names already-deleted id " +
                                     std::to_string(id));
    }
    if (!batch_deletes.insert(id).second) {
      return Status::InvalidArgument("POI delete repeats id " +
                                     std::to_string(id) +
                                     " within one batch");
    }
  }

  for (const Photo& photo : batch.photo_inserts) {
    SOI_RETURN_NOT_OK(check_position(photo.position, "photo insert"));
    SOI_RETURN_NOT_OK(check_keywords(photo.keywords, "photo insert"));
  }
  const size_t photo_total = photo_base_size_ + photos_added_.size();
  std::unordered_set<PhotoId> photo_batch_deletes;
  for (PhotoId id : batch.photo_deletes) {
    if (id < 0 || static_cast<size_t>(id) >= photo_total) {
      return Status::InvalidArgument("photo delete names unknown id " +
                                     std::to_string(id));
    }
    if (photos_deleted_.count(id) > 0) {
      return Status::InvalidArgument(
          "photo delete names already-deleted id " + std::to_string(id));
    }
    if (!photo_batch_deletes.insert(id).second) {
      return Status::InvalidArgument("photo delete repeats id " +
                                     std::to_string(id) +
                                     " within one batch");
    }
  }
  return Status::OK();
}

Status LiveWorld::ApplyBatch(const UpdateBatch& batch) {
  if (batch.empty()) return Status::OK();
  MutexLock lock(mutex_);
  SOI_RETURN_NOT_OK(ValidateBatchLocked(batch));
  SOI_TRACE_SPAN("ingest.apply_batch");

  const PoiGridIndex& grid = CurrentGridLocked();
  const GlobalInvertedIndex& global = CurrentGlobalLocked();
  const GridGeometry& geometry = base_indexes_->geometry;
  const PoiDeltaOverlay* prev = overlay_.get();
  const size_t base_size = grid.pois().size();
  SOI_DCHECK(prev == nullptr || prev->base_size == base_size);

  // --- build the next epoch's overlay entirely in locals; nothing below
  // touches member state until the commit block after the fault point,
  // so a failure (including an injected one) publishes nothing. --------

  auto added = std::make_shared<std::vector<Poi>>(
      prev != nullptr ? *prev->added : std::vector<Poi>());
  auto deleted = std::make_shared<std::unordered_set<PoiId>>(
      prev != nullptr ? *prev->deleted : std::unordered_set<PoiId>());
  const PoiId first_new_id =
      static_cast<PoiId>(base_size + added->size());
  added->insert(added->end(), batch.poi_inserts.begin(),
                batch.poi_inserts.end());
  std::unordered_set<PoiId> batch_deleted(batch.poi_deletes.begin(),
                                          batch.poi_deletes.end());
  deleted->insert(batch_deleted.begin(), batch_deleted.end());

  auto poi_at = [&](PoiId id) -> const Poi& {
    return static_cast<size_t>(id) < base_size
               ? grid.pois()[static_cast<size_t>(id)]
               : (*added)[static_cast<size_t>(id) - base_size];
  };
  // The previous epoch's read surface, for effective-cell/row lookups.
  const LivePoiView prev_view(grid, global, prev);

  // Cells whose bucket changes this batch.
  std::unordered_set<CellId> affected;
  for (const Poi& poi : batch.poi_inserts) {
    affected.insert(geometry.CellOf(poi.position));
  }
  for (PoiId id : batch.poi_deletes) {
    affected.insert(geometry.CellOf(poi_at(id).position));
  }

  // Rematerialize every affected cell: survivors of the previous
  // effective cell in ascending id order, then this batch's inserts in
  // insert order (their ids are larger than every earlier id, so the
  // concatenation stays sorted — the cold-rebuild id order).
  std::unordered_map<CellId, std::shared_ptr<const PoiGridIndex::Cell>>
      new_cells = prev != nullptr ? prev->cells : decltype(new_cells)();
  // keyword -> affected cells carrying it before or after this batch.
  std::unordered_map<KeywordId, std::vector<CellId>> dirty_rows;
  for (CellId cell : affected) {
    const PoiGridIndex::Cell* old_cell = prev_view.FindCell(cell);
    auto replacement = std::make_shared<PoiGridIndex::Cell>();
    if (old_cell != nullptr) {
      for (PoiId id : old_cell->pois) {
        if (batch_deleted.count(id) == 0) {
          replacement->pois.push_back(id);
        }
      }
      for (const auto& [keyword, postings] : old_cell->postings) {
        (void)postings;
        dirty_rows[keyword].push_back(cell);
      }
    }
    for (size_t i = 0; i < batch.poi_inserts.size(); ++i) {
      if (geometry.CellOf(batch.poi_inserts[i].position) == cell) {
        replacement->pois.push_back(first_new_id +
                                    static_cast<PoiId>(i));
      }
    }
    for (PoiId id : replacement->pois) {
      for (KeywordId keyword : poi_at(id).keywords.ids()) {
        std::vector<PoiId>& postings = replacement->postings[keyword];
        if (postings.empty() && (old_cell == nullptr ||
                                 old_cell->postings.count(keyword) == 0)) {
          // Keyword newly present in this cell: its row is dirty too
          // (cells already carrying it were queued above).
          dirty_rows[keyword].push_back(cell);
        }
        postings.push_back(id);
      }
    }
    new_cells[cell] = std::move(replacement);
  }

  // Rebuild every dirty global-index row from the previous effective
  // row: affected cells get fully recomputed entries (count and weight
  // summed over the replacement postings in ascending id order — the
  // cold-rebuild operand order), untouched entries keep their previous
  // bits, and the canonical re-sort makes the sequence a pure function
  // of the entry set.
  std::unordered_map<
      KeywordId,
      std::shared_ptr<const std::vector<GlobalInvertedIndex::Entry>>>
      new_rows = prev != nullptr ? prev->rows : decltype(new_rows)();
  for (auto& [keyword, cells_of_keyword] : dirty_rows) {
    Span<GlobalInvertedIndex::Entry> old_row = prev_view.Entries(keyword);
    std::vector<GlobalInvertedIndex::Entry> row(old_row.begin(),
                                                old_row.end());
    // A cell can appear twice in cells_of_keyword (old and new posting
    // both present); the recomputation is idempotent, so duplicates are
    // harmless.
    for (CellId cell : cells_of_keyword) {
      auto replacement = new_cells.find(cell);
      SOI_DCHECK(replacement != new_cells.end());
      auto entry_it =
          std::find_if(row.begin(), row.end(),
                       [cell](const GlobalInvertedIndex::Entry& e) {
                         return e.cell == cell;
                       });
      auto postings_it = replacement->second->postings.find(keyword);
      if (postings_it == replacement->second->postings.end() ||
          postings_it->second.empty()) {
        if (entry_it != row.end()) row.erase(entry_it);
        continue;
      }
      double weight = 0.0;
      for (PoiId id : postings_it->second) weight += poi_at(id).weight;
      GlobalInvertedIndex::Entry entry{
          cell, static_cast<int64_t>(postings_it->second.size()), weight};
      if (entry_it != row.end()) {
        *entry_it = entry;
      } else {
        row.push_back(entry);
      }
    }
    GlobalInvertedIndex::SortByWeightDesc(&row);
    new_rows[keyword] =
        std::make_shared<const std::vector<GlobalInvertedIndex::Entry>>(
            std::move(row));
  }

  const int64_t num_live =
      (prev != nullptr ? prev->num_live_pois
                       : static_cast<int64_t>(base_size)) +
      static_cast<int64_t>(batch.poi_inserts.size()) -
      static_cast<int64_t>(batch.poi_deletes.size());

  // The only failure point past validation. Everything above lives in
  // locals: a fired fault unwinds with no member touched, no epoch
  // published, readers unaffected.
  try {
    SOI_FAULT_POINT("ingest.apply_delta");
  } catch (const fault::FaultInjectedError& e) {
    SOI_OBS_COUNTER_ADD("soi.ingest.apply_failures", 1);
    return Status::Internal(std::string(e.what()) +
                            ": batch discarded, no epoch published");
  }

  // --- commit + publish ----------------------------------------------
  auto overlay = std::make_shared<PoiDeltaOverlay>();
  overlay->base_size = base_size;
  overlay->added = std::move(added);
  overlay->deleted = std::move(deleted);
  overlay->cells = std::move(new_cells);
  overlay->rows = std::move(new_rows);
  overlay->num_live_pois = num_live;
  overlay_ = std::move(overlay);

  photos_added_.insert(photos_added_.end(), batch.photo_inserts.begin(),
                       batch.photo_inserts.end());
  photos_deleted_.insert(batch.photo_deletes.begin(),
                         batch.photo_deletes.end());

  ++epoch_;
  auto snapshot = std::make_shared<PoiEpochSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->grid = &grid;
  snapshot->global = &global;
  snapshot->overlay = overlay_;
  snapshot->retain = arena_;
  PublishLocked(std::move(snapshot));

  published_epoch_.store(epoch_, std::memory_order_relaxed);
  applied_ops_count_.fetch_add(static_cast<uint64_t>(batch.num_ops()),
                               std::memory_order_relaxed);
  live_pois_count_.store(num_live, std::memory_order_relaxed);
  live_photos_count_.fetch_add(
      static_cast<int64_t>(batch.photo_inserts.size()) -
          static_cast<int64_t>(batch.photo_deletes.size()),
      std::memory_order_relaxed);
  ops_since_compact_ += batch.num_ops();

  SOI_OBS_COUNTER_ADD("soi.ingest.batches", 1);
  SOI_OBS_COUNTER_ADD("soi.ingest.poi_inserts",
                      static_cast<int64_t>(batch.poi_inserts.size()));
  SOI_OBS_COUNTER_ADD("soi.ingest.poi_deletes",
                      static_cast<int64_t>(batch.poi_deletes.size()));
  SOI_OBS_COUNTER_ADD("soi.ingest.photo_inserts",
                      static_cast<int64_t>(batch.photo_inserts.size()));
  SOI_OBS_COUNTER_ADD("soi.ingest.photo_deletes",
                      static_cast<int64_t>(batch.photo_deletes.size()));
  SOI_OBS_GAUGE_SET("soi.ingest.epoch", static_cast<int64_t>(epoch_));
  SOI_OBS_GAUGE_SET("soi.ingest.overlay_cells",
                    static_cast<int64_t>(overlay_->cells.size()));

  if (options_.auto_compact_ops > 0 &&
      ops_since_compact_ >= options_.auto_compact_ops) {
    compact_cv_.NotifyAll();
  }
  return Status::OK();
}

Dataset LiveWorld::MaterializeLiveDatasetLocked() const {
  const Dataset& current =
      arena_ != nullptr ? arena_->dataset : *base_dataset_;
  Dataset out;
  out.name = current.name;
  out.vocabulary = current.vocabulary;
  out.network = current.network;
  // The planted ground truth describes the original dataset; a mutated
  // world has none (mirroring LoadDataset).

  const PoiGridIndex& grid = CurrentGridLocked();
  if (overlay_ == nullptr) {
    out.pois = grid.pois();
  } else {
    out.pois.reserve(static_cast<size_t>(overlay_->num_live_pois));
    for (size_t id = 0; id < overlay_->base_size; ++id) {
      if (overlay_->deleted->count(static_cast<PoiId>(id)) == 0) {
        out.pois.push_back(grid.pois()[id]);
      }
    }
    for (size_t i = 0; i < overlay_->added->size(); ++i) {
      PoiId id = static_cast<PoiId>(overlay_->base_size + i);
      if (overlay_->deleted->count(id) == 0) {
        out.pois.push_back((*overlay_->added)[i]);
      }
    }
  }

  out.photos.reserve(photo_base_size_ + photos_added_.size());
  for (size_t id = 0; id < photo_base_size_; ++id) {
    if (photos_deleted_.count(static_cast<PhotoId>(id)) == 0) {
      out.photos.push_back(current.photos[id]);
    }
  }
  for (size_t i = 0; i < photos_added_.size(); ++i) {
    PhotoId id = static_cast<PhotoId>(photo_base_size_ + i);
    if (photos_deleted_.count(id) == 0) {
      out.photos.push_back(photos_added_[i]);
    }
  }
  return out;
}

Dataset LiveWorld::MaterializeLiveDataset() const {
  MutexLock lock(mutex_);
  return MaterializeLiveDatasetLocked();
}

Status LiveWorld::Compact() {
  MutexLock lock(mutex_);
  return CompactLocked();
}

Status LiveWorld::CompactLocked() {
  if (overlay_ == nullptr && photos_added_.empty() &&
      photos_deleted_.empty()) {
    return Status::OK();  // already compact
  }
  SOI_TRACE_SPAN("ingest.compact");
  Stopwatch timer;

  // Build the next generation entirely off to the side: the live
  // dataset densely renumbered in live-id order, indexed on the fixed
  // base geometry (NOT BuildIndexes' derived bounds — the geometry is
  // invariant for the world's lifetime so pinned eps maps stay valid).
  auto arena = std::make_shared<Arena>();
  arena->dataset = MaterializeLiveDatasetLocked();
  arena->grid = std::make_unique<PoiGridIndex>(
      base_indexes_->geometry.bounds(), cell_size_, arena->dataset.pois);
  arena->global = std::make_unique<GlobalInvertedIndex>(*arena->grid);

  // The only failure point: a fired fault discards the arena locals —
  // nothing published, the overlay intact for a retry, readers still on
  // the old epoch.
  try {
    SOI_FAULT_POINT("ingest.compact");
  } catch (const fault::FaultInjectedError& e) {
    SOI_OBS_COUNTER_ADD("soi.ingest.compact_failures", 1);
    return Status::Internal(std::string(e.what()) +
                            ": compaction aborted, no epoch published");
  }

  arena_ = std::move(arena);
  overlay_.reset();
  photos_added_.clear();
  photos_deleted_.clear();
  photo_base_size_ = arena_->dataset.photos.size();

  ++epoch_;
  auto snapshot = std::make_shared<PoiEpochSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->grid = arena_->grid.get();
  snapshot->global = arena_->global.get();
  snapshot->retain = arena_;
  PublishLocked(std::move(snapshot));

  published_epoch_.store(epoch_, std::memory_order_relaxed);
  ops_since_compact_ = 0;
  SOI_OBS_COUNTER_ADD("soi.ingest.compactions", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.ingest.compact_seconds",
                            timer.ElapsedSeconds());
  SOI_OBS_GAUGE_SET("soi.ingest.epoch", static_cast<int64_t>(epoch_));
  SOI_OBS_GAUGE_SET("soi.ingest.overlay_cells", 0);
  return Status::OK();
}

Status LiveWorld::Save(const std::string& path) {
  MutexLock lock(mutex_);
  SOI_RETURN_NOT_OK(CompactLocked());

  const Dataset& dataset =
      arena_ != nullptr ? arena_->dataset : *base_dataset_;
  // The snapshot writer wants a full DatasetIndexes. Rebuild one over
  // the compacted dataset on the fixed geometry (segment_cells and the
  // photo grid are not kept per-generation; the POI indexes are rebuilt
  // rather than moved out of the shared arena).
  GridGeometry geometry = base_indexes_->geometry;
  std::vector<Point> photo_positions;
  photo_positions.reserve(dataset.photos.size());
  for (const Photo& photo : dataset.photos) {
    photo_positions.push_back(photo.position);
  }
  PoiGridIndex poi_grid(geometry.bounds(), cell_size_, dataset.pois);
  GlobalInvertedIndex global_index(poi_grid);
  SegmentCellIndex segment_cells(dataset.network, geometry,
                                 options_.pool);
  PointGrid<PhotoId> photo_grid(geometry, photo_positions);
  DatasetIndexes indexes{std::move(geometry), std::move(poi_grid),
                         std::move(global_index),
                         std::move(segment_cells),
                         std::move(photo_grid)};

  SnapshotContents contents;
  contents.dataset = &dataset;
  contents.indexes = &indexes;
  contents.ingest_epoch = epoch_;
  contents.ingest_applied_ops =
      applied_ops_count_.load(std::memory_order_relaxed);
  return SaveSnapshotToFile(contents, path);
}

void LiveWorld::CompactorLoop() {
  MutexLock lock(mutex_);
  while (true) {
    while (!stop_compactor_ &&
           ops_since_compact_ < options_.auto_compact_ops) {
      compact_cv_.Wait(mutex_);
    }
    if (stop_compactor_) return;
    Status status = CompactLocked();
    if (!status.ok() && !stop_compactor_) {
      // Injected compaction fault: the overlay (and the trigger
      // condition) persists, so back off instead of spinning; the next
      // notify or the timeout retries.
      compact_cv_.WaitFor(mutex_, 0.05);
    }
  }
}

}  // namespace ingest
}  // namespace soi
