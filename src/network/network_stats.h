#ifndef SOI_NETWORK_NETWORK_STATS_H_
#define SOI_NETWORK_NETWORK_STATS_H_

#include <cstdint>
#include <string>

#include "network/road_network.h"

namespace soi {

/// Summary statistics of a road network — the columns of the paper's
/// Table 1 plus a few extras.
struct NetworkStats {
  int64_t num_vertices = 0;
  int64_t num_segments = 0;
  int64_t num_streets = 0;
  double min_segment_length = 0.0;
  double max_segment_length = 0.0;
  double mean_segment_length = 0.0;
  double total_length = 0.0;
};

/// Computes summary statistics. Requires a non-empty network.
NetworkStats ComputeNetworkStats(const RoadNetwork& network);

/// Formats the stats as a short human-readable block.
std::string NetworkStatsToString(const NetworkStats& stats);

}  // namespace soi

#endif  // SOI_NETWORK_NETWORK_STATS_H_
