#ifndef SOI_NETWORK_NETWORK_BUILDER_H_
#define SOI_NETWORK_NETWORK_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "network/road_network.h"

namespace soi {

/// Incrementally assembles a RoadNetwork.
///
/// Usage:
///   NetworkBuilder builder;
///   VertexId a = builder.AddVertex({0, 0});
///   VertexId b = builder.AddVertex({1, 0});
///   builder.AddStreet("Oxford Street", {a, b});
///   SOI_ASSIGN_OR_RETURN(RoadNetwork network, std::move(builder).Build());
///
/// Build() validates the paper's structural invariants: every street is a
/// simple path of at least one segment, every segment has positive length,
/// and every segment belongs to exactly one street (by construction).
class NetworkBuilder {
 public:
  NetworkBuilder() = default;

  NetworkBuilder(const NetworkBuilder&) = delete;
  NetworkBuilder& operator=(const NetworkBuilder&) = delete;
  NetworkBuilder(NetworkBuilder&&) = default;
  NetworkBuilder& operator=(NetworkBuilder&&) = default;

  /// Adds a vertex and returns its id.
  VertexId AddVertex(const Point& position);

  /// Adds a street through the given vertex path (>= 2 distinct vertices);
  /// creates one segment per consecutive pair. Returns the street id, or an
  /// error if the path is invalid.
  Result<StreetId> AddStreet(std::string name,
                             const std::vector<VertexId>& path);

  int64_t num_vertices() const { return network_.num_vertices(); }
  int64_t num_streets() const { return network_.num_streets(); }

  /// Finalizes and validates the network. The builder is consumed.
  Result<RoadNetwork> Build() &&;

 private:
  RoadNetwork network_;
};

}  // namespace soi

#endif  // SOI_NETWORK_NETWORK_BUILDER_H_
