#include "network/shortest_path.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/check.h"

namespace soi {

ShortestPathEngine::ShortestPathEngine(const RoadNetwork& network)
    : network_(&network) {
  adjacency_.resize(static_cast<size_t>(network.num_vertices()));
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    const NetworkSegment& segment = network.segment(id);
    adjacency_[static_cast<size_t>(segment.from)].push_back(
        Edge{segment.to, id, segment.length});
    adjacency_[static_cast<size_t>(segment.to)].push_back(
        Edge{segment.from, id, segment.length});
  }
}

void ShortestPathEngine::Dijkstra(VertexId source, VertexId target,
                                  std::vector<double>* distances,
                                  std::vector<Edge>* parents) const {
  SOI_CHECK(source >= 0 && source < network_->num_vertices());
  distances->assign(static_cast<size_t>(network_->num_vertices()),
                    kUnreachable);
  if (parents != nullptr) {
    parents->assign(static_cast<size_t>(network_->num_vertices()),
                    Edge{-1, -1, 0.0});
  }
  using QueueEntry = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  (*distances)[static_cast<size_t>(source)] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [distance, vertex] = queue.top();
    queue.pop();
    if (distance > (*distances)[static_cast<size_t>(vertex)]) continue;
    if (vertex == target) return;  // Early exit: target settled.
    for (const Edge& edge : adjacency_[static_cast<size_t>(vertex)]) {
      double candidate = distance + edge.length;
      double& best = (*distances)[static_cast<size_t>(edge.to)];
      if (candidate < best) {
        best = candidate;
        if (parents != nullptr) {
          (*parents)[static_cast<size_t>(edge.to)] =
              Edge{vertex, edge.segment, edge.length};
        }
        queue.push({candidate, edge.to});
      }
    }
  }
}

std::vector<double> ShortestPathEngine::DistancesFrom(
    VertexId source) const {
  std::vector<double> distances;
  Dijkstra(source, /*target=*/-1, &distances, nullptr);
  return distances;
}

Result<NetworkPath> ShortestPathEngine::FindPath(VertexId from,
                                                 VertexId to) const {
  SOI_CHECK(to >= 0 && to < network_->num_vertices());
  std::vector<double> distances;
  std::vector<Edge> parents;
  Dijkstra(from, to, &distances, &parents);
  if (distances[static_cast<size_t>(to)] == kUnreachable) {
    return Status::NotFound("vertices " + std::to_string(from) + " and " +
                            std::to_string(to) +
                            " are in different components");
  }
  NetworkPath path;
  path.length = distances[static_cast<size_t>(to)];
  // Walk the predecessor chain back from `to`.
  VertexId cursor = to;
  path.vertices.push_back(cursor);
  while (cursor != from) {
    const Edge& parent = parents[static_cast<size_t>(cursor)];
    SOI_DCHECK(parent.to >= 0);
    path.segments.push_back(parent.segment);
    cursor = parent.to;
    path.vertices.push_back(cursor);
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

}  // namespace soi
