#ifndef SOI_NETWORK_SHORTEST_PATH_H_
#define SOI_NETWORK_SHORTEST_PATH_H_

#include <limits>
#include <vector>

#include "common/status.h"
#include "network/road_network.h"

namespace soi {

/// A walk through the road network: consecutive vertices joined by the
/// segments traversed (segments[i] joins vertices[i] and vertices[i+1]).
struct NetworkPath {
  std::vector<VertexId> vertices;
  std::vector<SegmentId> segments;
  /// Total length of the traversed segments.
  double length = 0.0;
};

/// Dijkstra shortest paths over the road network, treating every segment
/// as walkable in both directions. Substrate for the route-recommendation
/// extension (the paper's future work: "provide route recommendations
/// based on the discovered streets of interest").
class ShortestPathEngine {
 public:
  /// Distance value for unreachable vertices.
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  /// Builds the adjacency structure; O(|V| + |L|).
  explicit ShortestPathEngine(const RoadNetwork& network);

  const RoadNetwork& network() const { return *network_; }

  /// Shortest walking distances from `source` to every vertex
  /// (kUnreachable where no path exists).
  std::vector<double> DistancesFrom(VertexId source) const;

  /// The shortest path between two vertices, or NotFound if they are in
  /// different connected components.
  Result<NetworkPath> FindPath(VertexId from, VertexId to) const;

 private:
  struct Edge {
    VertexId to;
    SegmentId segment;
    double length;
  };

  // Runs Dijkstra from `source`; fills distances and, if `parents` is
  // non-null, the predecessor edge of each settled vertex. Stops early
  // once `target` is settled (pass -1 to settle everything).
  void Dijkstra(VertexId source, VertexId target,
                std::vector<double>* distances,
                std::vector<Edge>* parents) const;

  const RoadNetwork* network_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace soi

#endif  // SOI_NETWORK_SHORTEST_PATH_H_
