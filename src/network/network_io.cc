#include "network/network_io.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "network/network_builder.h"

namespace soi {

namespace {
constexpr char kHeader[] = "# soi-network v1";
}  // namespace

Status WriteNetwork(const RoadNetwork& network, std::ostream* out) {
  SOI_CHECK(out != nullptr);
  *out << kHeader << "\n";
  *out << std::setprecision(17);
  for (const Vertex& v : network.vertices()) {
    *out << "V\t" << v.position.x << "\t" << v.position.y << "\n";
  }
  for (const Street& s : network.streets()) {
    if (s.name.find('\t') != std::string::npos ||
        s.name.find('\n') != std::string::npos) {
      return Status::InvalidArgument("street name contains tab or newline: '" +
                                     s.name + "'");
    }
    *out << "S\t" << s.name << "\t";
    // A street's vertex path is its first segment's endpoints followed by
    // the `to` vertex of each further segment.
    bool first = true;
    for (size_t i = 0; i < s.segments.size(); ++i) {
      const NetworkSegment& seg = network.segment(s.segments[i]);
      if (first) {
        *out << seg.from;
        first = false;
      }
      *out << ";" << seg.to;
    }
    *out << "\n";
  }
  if (!out->good()) return Status::IOError("failed writing network stream");
  return Status::OK();
}

Status WriteNetworkToFile(const RoadNetwork& network,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WriteNetwork(network, &file);
}

Result<RoadNetwork> ReadNetwork(std::istream* in) {
  SOI_CHECK(in != nullptr);
  std::string line;
  if (!std::getline(*in, line) || StripWhitespace(line) != kHeader) {
    return Status::IOError("missing soi-network header");
  }
  NetworkBuilder builder;
  int line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string where = " at line " + std::to_string(line_number);
    if (fields[0] == "V") {
      if (fields.size() != 3) {
        return Status::IOError("malformed vertex line" + where);
      }
      SOI_ASSIGN_OR_RETURN(double x, ParseDouble(fields[1]));
      SOI_ASSIGN_OR_RETURN(double y, ParseDouble(fields[2]));
      if (!std::isfinite(x) || !std::isfinite(y)) {
        return Status::IOError("non-finite vertex coordinate" + where);
      }
      builder.AddVertex(Point{x, y});
    } else if (fields[0] == "S") {
      if (fields.size() != 3) {
        return Status::IOError("malformed street line" + where);
      }
      std::vector<VertexId> path;
      for (const std::string& part : Split(fields[2], ';')) {
        SOI_ASSIGN_OR_RETURN(int64_t v, ParseInt64(part));
        // Range-check before the narrowing cast: an id like 2^32 would
        // otherwise wrap to 0 and silently reference the wrong vertex.
        if (v < 0 || v > std::numeric_limits<VertexId>::max()) {
          return Status::IOError("vertex id out of range" + where + ": " +
                                 part);
        }
        path.push_back(static_cast<VertexId>(v));
      }
      SOI_ASSIGN_OR_RETURN(StreetId unused,
                           builder.AddStreet(fields[1], path));
      (void)unused;
    } else {
      return Status::IOError("unknown record type '" + fields[0] + "'" +
                             where);
    }
  }
  SOI_ASSIGN_OR_RETURN(RoadNetwork network, std::move(builder).Build());
  SOI_RETURN_NOT_OK(ValidateNetworkUniqueness(network));
  return network;
}

Status ValidateNetworkUniqueness(const RoadNetwork& network) {
  // Duplicate vertices: compare coordinate *bit patterns* (the identity
  // the id-by-file-order format preserves), not geometric proximity.
  using VertexKey = std::pair<std::pair<uint64_t, uint64_t>, VertexId>;
  std::vector<VertexKey> vertex_keys;
  vertex_keys.reserve(network.vertices().size());
  for (size_t i = 0; i < network.vertices().size(); ++i) {
    const Point& p = network.vertices()[i].position;
    vertex_keys.push_back({{std::bit_cast<uint64_t>(p.x),
                            std::bit_cast<uint64_t>(p.y)},
                           static_cast<VertexId>(i)});
  }
  std::sort(vertex_keys.begin(), vertex_keys.end());
  for (size_t i = 1; i < vertex_keys.size(); ++i) {
    if (vertex_keys[i].first == vertex_keys[i - 1].first) {
      const Point& p =
          network.vertices()[static_cast<size_t>(vertex_keys[i].second)]
              .position;
      return Status::InvalidArgument(
          "duplicate vertex: ids " +
          std::to_string(vertex_keys[i - 1].second) + " and " +
          std::to_string(vertex_keys[i].second) + " share position (" +
          FormatDouble(p.x) + ", " + FormatDouble(p.y) + ")");
    }
  }

  // Duplicate segments: the same undirected edge in more than one
  // segment, within or across streets.
  using EdgeKey = std::pair<std::pair<VertexId, VertexId>, SegmentId>;
  std::vector<EdgeKey> edge_keys;
  edge_keys.reserve(network.segments().size());
  for (size_t i = 0; i < network.segments().size(); ++i) {
    const NetworkSegment& seg = network.segments()[i];
    VertexId lo = std::min(seg.from, seg.to);
    VertexId hi = std::max(seg.from, seg.to);
    edge_keys.push_back({{lo, hi}, static_cast<SegmentId>(i)});
  }
  std::sort(edge_keys.begin(), edge_keys.end());
  for (size_t i = 1; i < edge_keys.size(); ++i) {
    if (edge_keys[i].first == edge_keys[i - 1].first) {
      return Status::InvalidArgument(
          "duplicate segment: ids " +
          std::to_string(edge_keys[i - 1].second) + " and " +
          std::to_string(edge_keys[i].second) +
          " connect the same vertices " +
          std::to_string(edge_keys[i].first.first) + " and " +
          std::to_string(edge_keys[i].first.second));
    }
  }
  return Status::OK();
}

Result<RoadNetwork> ReadNetworkFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ReadNetwork(&file);
}

}  // namespace soi
