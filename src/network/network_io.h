#ifndef SOI_NETWORK_NETWORK_IO_H_
#define SOI_NETWORK_NETWORK_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "network/road_network.h"

namespace soi {

/// Serializes a road network to a simple line-oriented text format:
///
///   # soi-network v1
///   V <tab> x <tab> y                  (one per vertex, in id order)
///   S <tab> name <tab> v0;v1;...;vn    (one per street, in id order)
///
/// Street names may contain spaces but not tabs or newlines.
[[nodiscard]] Status WriteNetwork(const RoadNetwork& network,
                                  std::ostream* out);
[[nodiscard]] Status WriteNetworkToFile(const RoadNetwork& network,
                                        const std::string& path);

/// Parses the format written by WriteNetwork.
[[nodiscard]] Result<RoadNetwork> ReadNetwork(std::istream* in);
[[nodiscard]] Result<RoadNetwork> ReadNetworkFromFile(
    const std::string& path);

/// Rejects networks carrying duplicated records: two vertex ids with
/// bit-identical coordinates, or the same undirected edge appearing in
/// more than one segment. Text vertices/segments are identified by file
/// order, so a duplicated line silently becomes a distinct id that
/// corrupts index construction downstream (double-counted cell weights,
/// ambiguous street membership) — duplicates are an input error, not a
/// tolerated redundancy. Shared by ReadNetwork and snapshot loading
/// (src/snapshot); returns kInvalidArgument naming the colliding ids.
[[nodiscard]] Status ValidateNetworkUniqueness(const RoadNetwork& network);

}  // namespace soi

#endif  // SOI_NETWORK_NETWORK_IO_H_
