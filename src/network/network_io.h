#ifndef SOI_NETWORK_NETWORK_IO_H_
#define SOI_NETWORK_NETWORK_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "network/road_network.h"

namespace soi {

/// Serializes a road network to a simple line-oriented text format:
///
///   # soi-network v1
///   V <tab> x <tab> y                  (one per vertex, in id order)
///   S <tab> name <tab> v0;v1;...;vn    (one per street, in id order)
///
/// Street names may contain spaces but not tabs or newlines.
[[nodiscard]] Status WriteNetwork(const RoadNetwork& network,
                                  std::ostream* out);
[[nodiscard]] Status WriteNetworkToFile(const RoadNetwork& network,
                                        const std::string& path);

/// Parses the format written by WriteNetwork.
[[nodiscard]] Result<RoadNetwork> ReadNetwork(std::istream* in);
[[nodiscard]] Result<RoadNetwork> ReadNetworkFromFile(
    const std::string& path);

}  // namespace soi

#endif  // SOI_NETWORK_NETWORK_IO_H_
