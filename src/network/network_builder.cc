#include "network/network_builder.h"

#include <unordered_set>
#include <utility>

namespace soi {

VertexId NetworkBuilder::AddVertex(const Point& position) {
  VertexId id = static_cast<VertexId>(network_.vertices_.size());
  network_.vertices_.push_back(Vertex{position});
  network_.bounds_.ExtendToCover(position);
  return id;
}

Result<StreetId> NetworkBuilder::AddStreet(
    std::string name, const std::vector<VertexId>& path) {
  if (path.size() < 2) {
    return Status::InvalidArgument("street '" + name +
                                   "' needs at least 2 vertices");
  }
  std::unordered_set<VertexId> distinct;
  for (VertexId v : path) {
    if (v < 0 || v >= network_.num_vertices()) {
      return Status::InvalidArgument("street '" + name +
                                     "' references unknown vertex " +
                                     std::to_string(v));
    }
    if (!distinct.insert(v).second) {
      return Status::InvalidArgument("street '" + name +
                                     "' repeats vertex " + std::to_string(v) +
                                     "; streets must be simple paths");
    }
  }
  // Validate segment lengths before mutating the network.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Point& a = network_.vertices_[static_cast<size_t>(path[i])].position;
    const Point& b =
        network_.vertices_[static_cast<size_t>(path[i + 1])].position;
    if (a == b) {
      return Status::InvalidArgument("street '" + name +
                                     "' has a zero-length segment");
    }
  }

  StreetId street_id = static_cast<StreetId>(network_.streets_.size());
  Street street;
  street.name = std::move(name);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    NetworkSegment seg;
    seg.from = path[i];
    seg.to = path[i + 1];
    seg.street = street_id;
    seg.geometry =
        Segment{network_.vertices_[static_cast<size_t>(seg.from)].position,
                network_.vertices_[static_cast<size_t>(seg.to)].position};
    seg.length = seg.geometry.Length();
    SegmentId seg_id = static_cast<SegmentId>(network_.segments_.size());
    network_.segments_.push_back(seg);
    street.segments.push_back(seg_id);
    street.length += seg.length;
  }
  network_.streets_.push_back(std::move(street));
  return street_id;
}

Result<RoadNetwork> NetworkBuilder::Build() && {
  if (network_.num_segments() == 0) {
    return Status::InvalidArgument("network has no segments");
  }
  return std::move(network_);
}

}  // namespace soi
