#include "network/network_stats.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace soi {

NetworkStats ComputeNetworkStats(const RoadNetwork& network) {
  SOI_CHECK(network.num_segments() > 0);
  NetworkStats stats;
  stats.num_vertices = network.num_vertices();
  stats.num_segments = network.num_segments();
  stats.num_streets = network.num_streets();
  stats.min_segment_length = network.segments()[0].length;
  stats.max_segment_length = network.segments()[0].length;
  for (const NetworkSegment& seg : network.segments()) {
    stats.min_segment_length = std::min(stats.min_segment_length, seg.length);
    stats.max_segment_length = std::max(stats.max_segment_length, seg.length);
    stats.total_length += seg.length;
  }
  stats.mean_segment_length =
      stats.total_length / static_cast<double>(stats.num_segments);
  return stats;
}

std::string NetworkStatsToString(const NetworkStats& stats) {
  std::ostringstream os;
  os << "vertices=" << stats.num_vertices
     << " segments=" << stats.num_segments
     << " streets=" << stats.num_streets
     << " min_len=" << stats.min_segment_length
     << " max_len=" << stats.max_segment_length
     << " mean_len=" << stats.mean_segment_length;
  return os.str();
}

}  // namespace soi
