#ifndef SOI_NETWORK_ROAD_NETWORK_H_
#define SOI_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"

namespace soi {

using VertexId = int32_t;
using SegmentId = int32_t;
using StreetId = int32_t;

/// A street intersection or breakpoint (vertex v in V, Section 3.1).
struct Vertex {
  Point position;
};

/// A street segment (link l in L): the directed edge between two vertices,
/// owned by exactly one street.
struct NetworkSegment {
  VertexId from = -1;
  VertexId to = -1;
  StreetId street = -1;
  /// Euclidean length of the segment, cached at build time.
  double length = 0.0;
  /// Segment geometry, cached at build time.
  Segment geometry;
};

/// A street s in S: a simple path of consecutive segments.
struct Street {
  std::string name;
  /// Segment ids in path order.
  std::vector<SegmentId> segments;
  /// Sum of segment lengths (len(s), Section 3.1).
  double length = 0.0;
};

/// The road network G = (V, L) plus the street partition S of its links.
///
/// Immutable once built (construct via NetworkBuilder or network IO).
/// Provides the geometric accessors the SOI and diversification algorithms
/// need: segment geometry, segment->street ownership, street MBRs, and
/// point-to-street distances.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  int64_t num_vertices() const {
    return static_cast<int64_t>(vertices_.size());
  }
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  int64_t num_streets() const { return static_cast<int64_t>(streets_.size()); }

  const Vertex& vertex(VertexId id) const;
  const NetworkSegment& segment(SegmentId id) const;
  const Street& street(StreetId id) const;

  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<NetworkSegment>& segments() const { return segments_; }
  const std::vector<Street>& streets() const { return streets_; }

  /// Bounding box of all vertices.
  const Box& bounds() const { return bounds_; }

  /// MBR of the street's segments.
  Box StreetBounds(StreetId id) const;

  /// Minimum distance from `p` to any segment of street `id`
  /// (dist(p, s) of Section 3.1).
  double StreetDistanceTo(StreetId id, const Point& p) const;

  /// Street ids whose name equals `name` (names need not be unique).
  std::vector<StreetId> FindStreetsByName(const std::string& name) const;

 private:
  friend class NetworkBuilder;

  std::vector<Vertex> vertices_;
  std::vector<NetworkSegment> segments_;
  std::vector<Street> streets_;
  Box bounds_;
};

}  // namespace soi

#endif  // SOI_NETWORK_ROAD_NETWORK_H_
