#include "network/road_network.h"

#include <algorithm>

#include "common/check.h"

namespace soi {

const Vertex& RoadNetwork::vertex(VertexId id) const {
  SOI_DCHECK(id >= 0 && id < num_vertices()) << "vertex id " << id;
  return vertices_[static_cast<size_t>(id)];
}

const NetworkSegment& RoadNetwork::segment(SegmentId id) const {
  SOI_DCHECK(id >= 0 && id < num_segments()) << "segment id " << id;
  return segments_[static_cast<size_t>(id)];
}

const Street& RoadNetwork::street(StreetId id) const {
  SOI_DCHECK(id >= 0 && id < num_streets()) << "street id " << id;
  return streets_[static_cast<size_t>(id)];
}

Box RoadNetwork::StreetBounds(StreetId id) const {
  Box box = Box::Empty();
  for (SegmentId seg_id : street(id).segments) {
    box.ExtendToCover(segment(seg_id).geometry.BoundingBox());
  }
  return box;
}

double RoadNetwork::StreetDistanceTo(StreetId id, const Point& p) const {
  const Street& s = street(id);
  SOI_DCHECK(!s.segments.empty());
  double best = segment(s.segments[0]).geometry.DistanceTo(p);
  for (size_t i = 1; i < s.segments.size(); ++i) {
    best = std::min(best, segment(s.segments[i]).geometry.DistanceTo(p));
  }
  return best;
}

std::vector<StreetId> RoadNetwork::FindStreetsByName(
    const std::string& name) const {
  std::vector<StreetId> found;
  for (StreetId id = 0; id < num_streets(); ++id) {
    if (streets_[static_cast<size_t>(id)].name == name) found.push_back(id);
  }
  return found;
}

}  // namespace soi
