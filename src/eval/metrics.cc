#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace soi {

namespace {

std::unordered_set<StreetId> TopKSet(const std::vector<RankedStreet>& ranked,
                                     int32_t k) {
  std::unordered_set<StreetId> set;
  int32_t limit = std::min<int32_t>(k, static_cast<int32_t>(ranked.size()));
  for (int32_t i = 0; i < limit; ++i) set.insert(ranked[i].street);
  return set;
}

}  // namespace

double RecallAtK(const std::vector<RankedStreet>& ranked,
                 const std::vector<StreetId>& truth, int32_t k) {
  if (truth.empty()) return 0.0;
  std::unordered_set<StreetId> top = TopKSet(ranked, k);
  int64_t hits = 0;
  for (StreetId street : truth) {
    if (top.count(street) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double PrecisionAtK(const std::vector<RankedStreet>& ranked,
                    const std::vector<StreetId>& truth, int32_t k) {
  if (k <= 0 || ranked.empty()) return 0.0;
  std::unordered_set<StreetId> truth_set(truth.begin(), truth.end());
  int32_t limit = std::min<int32_t>(k, static_cast<int32_t>(ranked.size()));
  int64_t hits = 0;
  for (int32_t i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i].street) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(limit);
}

std::vector<double> NormalizeByMax(const std::vector<double>& scores) {
  double max_score = 0.0;
  for (double score : scores) {
    SOI_CHECK(score >= 0) << "NormalizeByMax requires non-negative scores";
    max_score = std::max(max_score, score);
  }
  // Exact sentinel: all-zero scores normalize to themselves.
  if (max_score == 0.0) return scores;  // soi-lint: float-eq
  std::vector<double> normalized;
  normalized.reserve(scores.size());
  for (double score : scores) normalized.push_back(score / max_score);
  return normalized;
}

}  // namespace soi
