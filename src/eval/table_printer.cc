#include "eval/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace soi {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SOI_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SOI_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream* out) const {
  SOI_CHECK(out != nullptr);
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out << "  ";
      if (c == 0) {
        *out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      } else {
        *out << std::right << std::setw(static_cast<int>(widths[c]))
             << row[c];
      }
    }
    *out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  *out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string FormatMillis(double seconds) {
  double ms = seconds * 1e3;
  std::ostringstream os;
  os << std::fixed << std::setprecision(ms < 10 ? 2 : 1) << ms << " ms";
  return os.str();
}

}  // namespace soi
