#ifndef SOI_EVAL_METRICS_H_
#define SOI_EVAL_METRICS_H_

#include <vector>

#include "core/soi_query.h"
#include "network/road_network.h"

namespace soi {

/// recall@k of a ranked street list against a ground-truth set: the
/// fraction of `truth` present among the first min(k, |ranked|) entries.
/// Returns 0 for an empty truth set.
double RecallAtK(const std::vector<RankedStreet>& ranked,
                 const std::vector<StreetId>& truth, int32_t k);

/// precision@k: the fraction of the first min(k, |ranked|) entries that
/// are in `truth`. Returns 0 for k <= 0 or an empty ranking.
double PrecisionAtK(const std::vector<RankedStreet>& ranked,
                    const std::vector<StreetId>& truth, int32_t k);

/// Divides every score by the maximum (the paper's Table 3 normalization).
/// All scores must be non-negative; an all-zero input is returned as-is.
std::vector<double> NormalizeByMax(const std::vector<double>& scores);

}  // namespace soi

#endif  // SOI_EVAL_METRICS_H_
