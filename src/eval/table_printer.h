#ifndef SOI_EVAL_TABLE_PRINTER_H_
#define SOI_EVAL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace soi {

/// Minimal fixed-width table formatter for the bench harnesses' paper-style
/// tables (left-aligned first column, right-aligned numerics).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with a separator line under the header.
  void Print(std::ostream* out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision ("0.982").
std::string FormatDouble(double value, int precision = 3);

/// Formats seconds as milliseconds with adaptive precision ("12.4 ms").
std::string FormatMillis(double seconds);

}  // namespace soi

#endif  // SOI_EVAL_TABLE_PRINTER_H_
