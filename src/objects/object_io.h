#ifndef SOI_OBJECTS_OBJECT_IO_H_
#define SOI_OBJECTS_OBJECT_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "objects/photo.h"
#include "objects/poi.h"
#include "text/vocabulary.h"

namespace soi {

/// Serializes POIs / photos to a line-oriented text format:
///
///   # soi-objects v1
///   x <tab> y <tab> kw1;kw2;...;kwn     (one line per object)
///
/// Keywords are written as strings resolved through `vocabulary` so files
/// are portable across vocabularies; reading interns them into the target
/// vocabulary. Keywords must not contain tabs, semicolons, or newlines.
[[nodiscard]] Status WritePois(const std::vector<Poi>& pois,
                               const Vocabulary& vocabulary,
                               std::ostream* out);
[[nodiscard]] Status WritePoisToFile(const std::vector<Poi>& pois,
                                     const Vocabulary& vocabulary,
                                     const std::string& path);
[[nodiscard]] Result<std::vector<Poi>> ReadPois(std::istream* in,
                                                Vocabulary* vocabulary);
[[nodiscard]] Result<std::vector<Poi>> ReadPoisFromFile(
    const std::string& path, Vocabulary* vocabulary);

[[nodiscard]] Status WritePhotos(const std::vector<Photo>& photos,
                                 const Vocabulary& vocabulary,
                                 std::ostream* out);
[[nodiscard]] Status WritePhotosToFile(const std::vector<Photo>& photos,
                                       const Vocabulary& vocabulary,
                                       const std::string& path);
[[nodiscard]] Result<std::vector<Photo>> ReadPhotos(std::istream* in,
                                                    Vocabulary* vocabulary);
[[nodiscard]] Result<std::vector<Photo>> ReadPhotosFromFile(
    const std::string& path, Vocabulary* vocabulary);

/// Rejects object sets carrying duplicated records: two objects with
/// bit-identical coordinates, the same keyword set, and the same
/// type-specific payload (POI weight / photo visual descriptor). Object
/// ids are positional, so a duplicated line silently becomes a second id
/// that double-counts cell weights and photo densities downstream.
/// Shared by ReadPois/ReadPhotos and snapshot loading (src/snapshot);
/// returns kInvalidArgument naming the colliding indices.
[[nodiscard]] Status ValidatePoiUniqueness(const std::vector<Poi>& pois);
[[nodiscard]] Status ValidatePhotoUniqueness(
    const std::vector<Photo>& photos);

}  // namespace soi

#endif  // SOI_OBJECTS_OBJECT_IO_H_
