#include "objects/photo.h"

#include <cmath>

#include "common/check.h"

namespace soi {

double VisualDistance(const std::vector<float>& a,
                      const std::vector<float>& b) {
  SOI_DCHECK(!a.empty());
  SOI_DCHECK(a.size() == b.size())
      << "descriptor dimensions differ: " << a.size() << " vs " << b.size();
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace soi
