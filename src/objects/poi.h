#ifndef SOI_OBJECTS_POI_H_
#define SOI_OBJECTS_POI_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "text/keyword_set.h"

namespace soi {

using PoiId = int32_t;

/// A Point of Interest p = <(x_p, y_p), Psi_p> (Section 3.1): a location
/// plus the keywords derived from its name, description, and tags.
///
/// `weight` supports the paper's weighted-mass extension (the note under
/// Definition 1): a POI's contribution to a segment's mass is its weight
/// (importance derived from ratings, check-ins, ...). The default of 1
/// reduces to the plain count of Definition 1.
struct Poi {
  Point position;
  KeywordSet keywords;
  double weight = 1.0;

  /// True iff the POI carries at least one of the query keywords —
  /// the relevance predicate of Definition 1.
  bool IsRelevantTo(const KeywordSet& query) const {
    return keywords.IntersectsAny(query);
  }
};

/// Number of POIs relevant to `query` (the Table 4 statistic).
int64_t CountRelevantPois(const std::vector<Poi>& pois,
                          const KeywordSet& query);

}  // namespace soi

#endif  // SOI_OBJECTS_POI_H_
