#include "objects/object_io.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace soi {

namespace {

constexpr char kHeader[] = "# soi-objects v1";

// The optional trailing field differs per type: POIs persist their
// importance weight (the weighted extension), photos their visual
// descriptor (the visual extension, '|'-separated floats).
inline Status WriteExtraField(const Poi& poi, std::ostream* out) {
  // Exact sentinel: 1.0 is the unweighted default and round-trips
  // through the text format bit-exactly.
  if (poi.weight != 1.0) *out << "\t" << poi.weight;  // soi-lint: float-eq
  return Status::OK();
}
inline Status WriteExtraField(const Photo& photo, std::ostream* out) {
  if (!photo.visual.empty()) {
    *out << "\t";
    for (size_t d = 0; d < photo.visual.size(); ++d) {
      if (d > 0) *out << "|";
      *out << photo.visual[d];
    }
  }
  return Status::OK();
}

inline Status ParseExtraField(const std::string& field, Poi* poi) {
  SOI_ASSIGN_OR_RETURN(double weight, ParseDouble(field));
  if (!std::isfinite(weight) || weight < 0) {
    return Status::IOError("POI weight must be finite and non-negative");
  }
  poi->weight = weight;
  return Status::OK();
}
inline Status ParseExtraField(const std::string& field, Photo* photo) {
  std::vector<float> visual;
  for (const std::string& part : Split(field, '|')) {
    SOI_ASSIGN_OR_RETURN(double value, ParseDouble(part));
    visual.push_back(static_cast<float>(value));
  }
  if (visual.empty()) {
    return Status::IOError("empty visual descriptor field");
  }
  photo->visual = std::move(visual);
  return Status::OK();
}

// Identity keys for duplicate detection: coordinate and float payload
// *bit patterns* plus keyword ids, so two records are duplicates exactly
// when they would have been written as the same line.
inline void AppendRaw(uint64_t bits, std::string* key) {
  for (int shift = 0; shift < 64; shift += 8) {
    key->push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}
inline void AppendExtraKey(const Poi& poi, std::string* key) {
  AppendRaw(std::bit_cast<uint64_t>(poi.weight), key);
}
inline void AppendExtraKey(const Photo& photo, std::string* key) {
  for (float value : photo.visual) {
    AppendRaw(std::bit_cast<uint32_t>(value), key);
  }
}
template <typename T>
std::string ObjectKey(const T& object) {
  std::string key;
  AppendRaw(std::bit_cast<uint64_t>(object.position.x), &key);
  AppendRaw(std::bit_cast<uint64_t>(object.position.y), &key);
  for (KeywordId id : object.keywords.ids()) {
    AppendRaw(static_cast<uint64_t>(static_cast<uint32_t>(id)), &key);
  }
  key.push_back('|');  // keyword/payload boundary
  AppendExtraKey(object, &key);
  return key;
}

template <typename T>
Status ValidateObjectUniqueness(const std::vector<T>& objects,
                                const char* kind) {
  std::vector<std::pair<std::string, size_t>> keys;
  keys.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    keys.emplace_back(ObjectKey(objects[i]), i);
  }
  std::sort(keys.begin(), keys.end());
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i].first == keys[i - 1].first) {
      return Status::InvalidArgument(
          std::string("duplicate ") + kind + ": records " +
          std::to_string(keys[i - 1].second) + " and " +
          std::to_string(keys[i].second) +
          " have identical position, keywords, and payload");
    }
  }
  return Status::OK();
}

inline Status ValidateUniqueness(const std::vector<Poi>& pois) {
  return ValidateObjectUniqueness(pois, "POI");
}
inline Status ValidateUniqueness(const std::vector<Photo>& photos) {
  return ValidateObjectUniqueness(photos, "photo");
}

// Shared row codec: Poi and Photo share the on-disk shape, with an
// optional type-specific trailing field.
template <typename T>
Status WriteObjects(const std::vector<T>& objects,
                    const Vocabulary& vocabulary, std::ostream* out) {
  SOI_CHECK(out != nullptr);
  *out << kHeader << "\n";
  *out << std::setprecision(17);
  for (const T& object : objects) {
    *out << object.position.x << "\t" << object.position.y << "\t";
    bool first = true;
    for (KeywordId id : object.keywords.ids()) {
      const std::string& name = vocabulary.Name(id);
      if (name.find_first_of("\t;\n") != std::string::npos) {
        return Status::InvalidArgument(
            "keyword contains reserved character: '" + name + "'");
      }
      if (!first) *out << ";";
      *out << name;
      first = false;
    }
    SOI_RETURN_NOT_OK(WriteExtraField(object, out));
    *out << "\n";
  }
  if (!out->good()) return Status::IOError("failed writing objects stream");
  return Status::OK();
}

template <typename T>
Result<std::vector<T>> ReadObjects(std::istream* in, Vocabulary* vocabulary) {
  SOI_CHECK(in != nullptr);
  SOI_CHECK(vocabulary != nullptr);
  std::string line;
  if (!std::getline(*in, line) || StripWhitespace(line) != kHeader) {
    return Status::IOError("missing soi-objects header");
  }
  std::vector<T> objects;
  int line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3 && fields.size() != 4) {
      return Status::IOError("malformed object line " +
                             std::to_string(line_number));
    }
    SOI_ASSIGN_OR_RETURN(double x, ParseDouble(fields[0]));
    SOI_ASSIGN_OR_RETURN(double y, ParseDouble(fields[1]));
    if (!std::isfinite(x) || !std::isfinite(y)) {
      // ParseDouble rejects NaN but admits "inf"; an infinite position
      // would poison grid-geometry bounds downstream.
      return Status::IOError("non-finite coordinate at line " +
                             std::to_string(line_number));
    }
    std::vector<KeywordId> ids;
    if (!fields[2].empty()) {
      for (const std::string& keyword : Split(fields[2], ';')) {
        if (keyword.empty()) {
          return Status::IOError("empty keyword at line " +
                                 std::to_string(line_number));
        }
        ids.push_back(vocabulary->Intern(keyword));
      }
    }
    T object;
    object.position = Point{x, y};
    object.keywords = KeywordSet(std::move(ids));
    if (fields.size() == 4) {
      Status extra = ParseExtraField(fields[3], &object);
      if (!extra.ok()) {
        return Status::IOError(extra.message() + " at line " +
                               std::to_string(line_number));
      }
    }
    objects.push_back(std::move(object));
  }
  SOI_RETURN_NOT_OK(ValidateUniqueness(objects));
  return objects;
}

template <typename T>
Status WriteObjectsToFile(const std::vector<T>& objects,
                          const Vocabulary& vocabulary,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WriteObjects(objects, vocabulary, &file);
}

template <typename T>
Result<std::vector<T>> ReadObjectsFromFile(const std::string& path,
                                           Vocabulary* vocabulary) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ReadObjects<T>(&file, vocabulary);
}

}  // namespace

Status WritePois(const std::vector<Poi>& pois, const Vocabulary& vocabulary,
                 std::ostream* out) {
  return WriteObjects(pois, vocabulary, out);
}

Status WritePoisToFile(const std::vector<Poi>& pois,
                       const Vocabulary& vocabulary,
                       const std::string& path) {
  return WriteObjectsToFile(pois, vocabulary, path);
}

Result<std::vector<Poi>> ReadPois(std::istream* in, Vocabulary* vocabulary) {
  return ReadObjects<Poi>(in, vocabulary);
}

Result<std::vector<Poi>> ReadPoisFromFile(const std::string& path,
                                          Vocabulary* vocabulary) {
  return ReadObjectsFromFile<Poi>(path, vocabulary);
}

Status WritePhotos(const std::vector<Photo>& photos,
                   const Vocabulary& vocabulary, std::ostream* out) {
  return WriteObjects(photos, vocabulary, out);
}

Status WritePhotosToFile(const std::vector<Photo>& photos,
                         const Vocabulary& vocabulary,
                         const std::string& path) {
  return WriteObjectsToFile(photos, vocabulary, path);
}

Result<std::vector<Photo>> ReadPhotos(std::istream* in,
                                      Vocabulary* vocabulary) {
  return ReadObjects<Photo>(in, vocabulary);
}

Result<std::vector<Photo>> ReadPhotosFromFile(const std::string& path,
                                              Vocabulary* vocabulary) {
  return ReadObjectsFromFile<Photo>(path, vocabulary);
}

Status ValidatePoiUniqueness(const std::vector<Poi>& pois) {
  return ValidateUniqueness(pois);
}

Status ValidatePhotoUniqueness(const std::vector<Photo>& photos) {
  return ValidateUniqueness(photos);
}

}  // namespace soi
