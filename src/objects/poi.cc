#include "objects/poi.h"

namespace soi {

int64_t CountRelevantPois(const std::vector<Poi>& pois,
                          const KeywordSet& query) {
  int64_t count = 0;
  for (const Poi& poi : pois) {
    if (poi.IsRelevantTo(query)) ++count;
  }
  return count;
}

}  // namespace soi
