#ifndef SOI_OBJECTS_PHOTO_H_
#define SOI_OBJECTS_PHOTO_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "text/keyword_set.h"

namespace soi {

using PhotoId = int32_t;

/// A geo-tagged photo r = <(x_r, y_r), Psi_r> (Section 4.1.1): a location
/// plus its tag set.
///
/// `visual` is an optional visual-feature descriptor supporting the
/// paper's future-work extension ("enhance the diversification criteria
/// with visual features extracted from the photos"): a fixed-dimension
/// embedding with components in [0, 1]. Empty = no visual information.
/// All photos of a dataset must agree on the dimension.
struct Photo {
  Point position;
  KeywordSet keywords;
  std::vector<float> visual;
};

/// Euclidean distance between two descriptors normalized by the diameter
/// of the [0, 1]^d cube, i.e. a visual diversity in [0, 1] (the visual
/// analogue of Definitions 5 and 7). Requires equal, non-zero dimensions.
double VisualDistance(const std::vector<float>& a,
                      const std::vector<float>& b);

}  // namespace soi

#endif  // SOI_OBJECTS_PHOTO_H_
