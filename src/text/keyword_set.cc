#include "text/keyword_set.h"

#include <algorithm>

namespace soi {

KeywordSet::KeywordSet(std::vector<KeywordId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

KeywordSet::KeywordSet(std::initializer_list<KeywordId> ids)
    : KeywordSet(std::vector<KeywordId>(ids)) {}

bool KeywordSet::Contains(KeywordId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool KeywordSet::IntersectsAny(const KeywordSet& other) const {
  size_t i = 0;
  size_t j = 0;
  while (i < ids_.size() && j < other.ids_.size()) {
    if (ids_[i] == other.ids_[j]) return true;
    if (ids_[i] < other.ids_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

int64_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  size_t i = 0;
  size_t j = 0;
  int64_t count = 0;
  while (i < ids_.size() && j < other.ids_.size()) {
    if (ids_[i] == other.ids_[j]) {
      ++count;
      ++i;
      ++j;
    } else if (ids_[i] < other.ids_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

int64_t KeywordSet::UnionSize(const KeywordSet& other) const {
  return size() + other.size() - IntersectionSize(other);
}

double KeywordSet::JaccardDistance(const KeywordSet& other) const {
  int64_t union_size = UnionSize(other);
  if (union_size == 0) return 0.0;
  int64_t intersection_size = IntersectionSize(other);
  return 1.0 - static_cast<double>(intersection_size) /
                   static_cast<double>(union_size);
}

}  // namespace soi
