#ifndef SOI_TEXT_TERM_VECTOR_H_
#define SOI_TEXT_TERM_VECTOR_H_

#include <unordered_map>

#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// A sparse keyword frequency vector (the Phi_s of Section 4.1.2): the
/// strength of each keyword associated with a street.
class TermVector {
 public:
  TermVector() = default;

  /// Adds `weight` to the frequency of `id`. Requires weight >= 0.
  void Add(KeywordId id, double weight = 1.0);

  /// Adds every keyword of `set` with weight 1.
  void AddAll(const KeywordSet& set);

  /// Frequency of `id`; 0 if absent.
  double Get(KeywordId id) const;

  /// L1 norm ||Phi||_1 = sum of frequencies (Definition 6 normalizer).
  double L1Norm() const { return l1_norm_; }

  /// Number of keywords with non-zero frequency (|Psi_s|).
  int64_t NumTerms() const { return static_cast<int64_t>(weights_.size()); }

  /// Sum of frequencies over the keywords of `set`
  /// (the numerator of Definition 6).
  double WeightOf(const KeywordSet& set) const;

  /// Read access to the underlying sparse map.
  const std::unordered_map<KeywordId, double>& weights() const {
    return weights_;
  }

 private:
  std::unordered_map<KeywordId, double> weights_;
  double l1_norm_ = 0.0;
};

}  // namespace soi

#endif  // SOI_TEXT_TERM_VECTOR_H_
