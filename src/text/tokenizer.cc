#include "text/tokenizer.h"

#include <cctype>

#include "common/check.h"

namespace soi {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

KeywordSet TokenizeToKeywords(std::string_view text, Vocabulary* vocabulary) {
  SOI_CHECK(vocabulary != nullptr);
  std::vector<KeywordId> ids;
  for (const std::string& token : Tokenize(text)) {
    ids.push_back(vocabulary->Intern(token));
  }
  return KeywordSet(std::move(ids));
}

KeywordSet LookupKeywords(std::string_view text,
                          const Vocabulary& vocabulary) {
  std::vector<KeywordId> ids;
  for (const std::string& token : Tokenize(text)) {
    KeywordId id = vocabulary.Find(token);
    if (id != kInvalidKeyword) ids.push_back(id);
  }
  return KeywordSet(std::move(ids));
}

}  // namespace soi
