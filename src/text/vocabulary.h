#ifndef SOI_TEXT_VOCABULARY_H_
#define SOI_TEXT_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace soi {

/// Integer id of an interned keyword. Ids are dense, starting at 0.
using KeywordId = int32_t;

/// Sentinel for "no such keyword".
inline constexpr KeywordId kInvalidKeyword = -1;

/// Interning table mapping keyword strings to dense integer ids.
///
/// Every POI / photo keyword set and every inverted-index term in the
/// library is expressed in KeywordIds; a single Vocabulary per dataset
/// owns the mapping.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `keyword`, interning it if new. Keywords are
  /// case-sensitive; callers normalize (see Tokenizer).
  KeywordId Intern(std::string_view keyword);

  /// Returns the id of `keyword`, or kInvalidKeyword if never interned.
  KeywordId Find(std::string_view keyword) const;

  /// Returns the keyword string for a valid id.
  const std::string& Name(KeywordId id) const;

  /// Number of distinct keywords interned.
  int64_t size() const { return static_cast<int64_t>(names_.size()); }

 private:
  std::unordered_map<std::string, KeywordId> ids_;
  std::vector<std::string> names_;
};

}  // namespace soi

#endif  // SOI_TEXT_VOCABULARY_H_
