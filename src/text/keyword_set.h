#ifndef SOI_TEXT_KEYWORD_SET_H_
#define SOI_TEXT_KEYWORD_SET_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "text/vocabulary.h"

namespace soi {

/// An immutable-after-build sorted set of keyword ids (the Psi_p of a POI,
/// Psi_r of a photo, or Psi of a query).
///
/// Stored as a sorted vector for cache-friendly merge-style intersections,
/// which dominate the cost of the textual diversity (Jaccard) computations.
class KeywordSet {
 public:
  KeywordSet() = default;

  /// Builds from arbitrary ids; sorts and deduplicates.
  explicit KeywordSet(std::vector<KeywordId> ids);
  KeywordSet(std::initializer_list<KeywordId> ids);

  bool empty() const { return ids_.empty(); }
  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

  const std::vector<KeywordId>& ids() const { return ids_; }

  bool Contains(KeywordId id) const;

  /// True iff the sets share at least one keyword (the relevance predicate
  /// Psi_p intersect Psi != empty of Definition 1).
  bool IntersectsAny(const KeywordSet& other) const;

  /// |this intersect other|.
  int64_t IntersectionSize(const KeywordSet& other) const;

  /// |this union other|.
  int64_t UnionSize(const KeywordSet& other) const;

  /// Jaccard distance 1 - |A^B|/|AvB| (Definition 7). Two empty sets have
  /// distance 0.
  double JaccardDistance(const KeywordSet& other) const;

  friend bool operator==(const KeywordSet& a, const KeywordSet& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<KeywordId> ids_;
};

}  // namespace soi

#endif  // SOI_TEXT_KEYWORD_SET_H_
