#include "text/vocabulary.h"

#include "common/check.h"

namespace soi {

KeywordId Vocabulary::Intern(std::string_view keyword) {
  auto it = ids_.find(std::string(keyword));
  if (it != ids_.end()) return it->second;
  KeywordId id = static_cast<KeywordId>(names_.size());
  names_.emplace_back(keyword);
  ids_.emplace(names_.back(), id);
  return id;
}

KeywordId Vocabulary::Find(std::string_view keyword) const {
  auto it = ids_.find(std::string(keyword));
  return it == ids_.end() ? kInvalidKeyword : it->second;
}

const std::string& Vocabulary::Name(KeywordId id) const {
  SOI_CHECK(id >= 0 && id < size()) << "invalid keyword id " << id;
  return names_[static_cast<size_t>(id)];
}

}  // namespace soi
