#ifndef SOI_TEXT_TOKENIZER_H_
#define SOI_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// Splits free text into lowercase alphanumeric tokens. Everything else
/// (punctuation, whitespace) separates tokens. "Oxford Str., London" ->
/// {"oxford", "str", "london"}.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizes `text` and interns the tokens into `vocabulary`, returning
/// the resulting keyword set.
KeywordSet TokenizeToKeywords(std::string_view text, Vocabulary* vocabulary);

/// Looks up (without interning) the tokens of `text` in `vocabulary`;
/// unknown tokens are dropped. Used for parsing user queries against an
/// already-built dataset.
KeywordSet LookupKeywords(std::string_view text,
                          const Vocabulary& vocabulary);

}  // namespace soi

#endif  // SOI_TEXT_TOKENIZER_H_
