#include "text/term_vector.h"

#include "common/check.h"

namespace soi {

void TermVector::Add(KeywordId id, double weight) {
  SOI_DCHECK(weight >= 0);
  if (weight == 0) return;
  weights_[id] += weight;
  l1_norm_ += weight;
}

void TermVector::AddAll(const KeywordSet& set) {
  for (KeywordId id : set.ids()) Add(id);
}

double TermVector::Get(KeywordId id) const {
  auto it = weights_.find(id);
  return it == weights_.end() ? 0.0 : it->second;
}

double TermVector::WeightOf(const KeywordSet& set) const {
  double sum = 0.0;
  for (KeywordId id : set.ids()) sum += Get(id);
  return sum;
}

}  // namespace soi
