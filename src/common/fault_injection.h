#ifndef SOI_COMMON_FAULT_INJECTION_H_
#define SOI_COMMON_FAULT_INJECTION_H_

/// Deterministic fault injection for the serving path (DESIGN.md
/// "Failure model").
///
/// Instrumented code marks failure-eligible sites with
/// `SOI_FAULT_POINT("site")`. In default builds the macro expands to
/// nothing (zero cost, like the SOI_OBS_* macros). Configuring with
/// `-DSOI_FAULT_INJECTION=ON` (the `fault` preset) defines
/// SOI_FAULT_INJECTION_ENABLED and each hit consults the global fault
/// Registry: if the site's armed FaultPlan fires, the point throws
/// FaultInjectedError, which the serving boundary (QueryEngine::TryRun /
/// TryGetMaps, ParallelFor's chunk capture) converts into a per-query
/// kInternal Status. Firing is deterministic: a plan fires as a pure
/// function of (site hit index, seed), never of wall clock or thread
/// identity — reruns of a sequential workload fault identically.
///
/// The Registry and ScopedFault compile unconditionally in both modes so
/// tests build everywhere and branch on `fault::kEnabled`.
///
/// Site catalog: see DESIGN.md "Failure model".

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soi {
namespace fault {

#ifdef SOI_FAULT_INJECTION_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Thrown by a firing fault point. Converted to Status::Internal at the
/// serving boundary; tests may also catch it directly.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// When (and how often) an armed site fires, as a pure function of the
/// site's hit index: hit h fires iff h >= after, fewer than count fires
/// have happened, and the seeded per-hit Bernoulli draw (probability)
/// passes. The defaults fire exactly once, on the next hit.
struct FaultPlan {
  /// Hits skipped before the plan becomes eligible.
  uint64_t after = 0;
  /// Maximum number of fires; 0 means unlimited.
  uint64_t count = 1;
  /// Per-eligible-hit fire probability, drawn deterministically from
  /// (seed, hit index). 1.0 fires every eligible hit.
  double probability = 1.0;
  /// Seed of the per-hit Bernoulli draws (only used when
  /// probability < 1.0).
  uint64_t seed = 0;
};

/// The process-global fault site registry: tracks per-site hit/fire
/// counters and the armed plans. Thread-safe; the per-hit cost is one
/// mutex acquisition, acceptable because fault points sit on coarse
/// operations (an index build, a chunk dispatch, a segment
/// finalization), never per-(segment, cell) work — and in default builds
/// the points compile out entirely.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  /// Arms `site` with `plan`, replacing any previous plan and resetting
  /// the site's hit/fire counters (so plans compose predictably in
  /// sequence).
  void Arm(const std::string& site, FaultPlan plan) SOI_EXCLUDES(mutex_);

  /// Disarms `site`; its counters are kept until Reset().
  void Disarm(const std::string& site) SOI_EXCLUDES(mutex_);

  /// Disarms every site and zeroes all counters.
  void Reset() SOI_EXCLUDES(mutex_);

  /// Records a hit on `site` and returns true iff the armed plan fires.
  /// Called by SOI_FAULT_POINT; hits on unarmed sites are counted too,
  /// so tests can assert a point is actually wired.
  bool Hit(const std::string& site) SOI_EXCLUDES(mutex_);

  /// Cumulative hits / fires on `site` since the last Reset/Arm.
  int64_t HitCount(const std::string& site) const SOI_EXCLUDES(mutex_);
  int64_t FireCount(const std::string& site) const SOI_EXCLUDES(mutex_);

 private:
  struct Site {
    FaultPlan plan;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable Mutex mutex_{"common.FaultRegistry.points",
                       lock_graph::kRankLeaf};
  std::map<std::string, Site> sites_ SOI_GUARDED_BY(mutex_);
};

/// RAII arming for tests: arms `site` on construction, disarms on scope
/// exit.
class ScopedFault {
 public:
  explicit ScopedFault(std::string site, FaultPlan plan = {})
      : site_(std::move(site)) {
    Registry::Global().Arm(site_, plan);
  }
  ~ScopedFault() { Registry::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace fault
}  // namespace soi

#ifdef SOI_FAULT_INJECTION_ENABLED

/// Marks a failure-eligible site. Throws FaultInjectedError when the
/// site's armed plan fires; no-op (compiled out) in default builds.
#define SOI_FAULT_POINT(site)                                  \
  do {                                                         \
    if (::soi::fault::Registry::Global().Hit(site)) {          \
      throw ::soi::fault::FaultInjectedError(site);            \
    }                                                          \
  } while (false)

#else

#define SOI_FAULT_POINT(site) \
  do {                        \
  } while (false)

#endif  // SOI_FAULT_INJECTION_ENABLED

#endif  // SOI_COMMON_FAULT_INJECTION_H_
