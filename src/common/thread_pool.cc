#include "common/thread_pool.h"

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace soi {

namespace {

// Depth of parallel-region nesting on the current thread. A counter (not
// a bool) so ParallelRegionGuard composes under inline-nested loops.
thread_local int parallel_region_depth = 0;

}  // namespace

namespace internal_pool {

ParallelRegionGuard::ParallelRegionGuard() { ++parallel_region_depth; }
ParallelRegionGuard::~ParallelRegionGuard() { --parallel_region_depth; }

}  // namespace internal_pool

bool ThreadPool::InParallelRegion() { return parallel_region_depth > 0; }

ThreadPool::ThreadPool(int num_threads) {
  int num_workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  SOI_OBS_GAUGE_ADD("soi.pool.threads", num_workers);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  SOI_OBS_GAUGE_ADD("soi.pool.threads",
                    -static_cast<int64_t>(workers_.size()));
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
#if SOI_OBS_ENABLED
  // Wrap to measure queue wait (submit -> dequeue) and task run time.
  // The wrapper exists only in instrumented builds, so the compiled-out
  // pool submits the caller's closure untouched.
  Stopwatch queued;
  task = [task = std::move(task), queued]() {
    SOI_OBS_HISTOGRAM_OBSERVE("soi.pool.queue_wait_seconds",
                              queued.ElapsedSeconds());
    Stopwatch running;
    task();
    SOI_OBS_HISTOGRAM_OBSERVE("soi.pool.task_seconds",
                              running.ElapsedSeconds());
  };
  SOI_OBS_COUNTER_ADD("soi.pool.tasks", 1);
#endif
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    SOI_OBS_GAUGE_SET("soi.pool.queue_depth",
                      static_cast<int64_t>(queue_.size()));
  }
  wake_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) wake_.Wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      SOI_OBS_GAUGE_SET("soi.pool.queue_depth",
                        static_cast<int64_t>(queue_.size()));
    }
    task();
  }
}

}  // namespace soi
