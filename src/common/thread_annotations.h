#ifndef SOI_COMMON_THREAD_ANNOTATIONS_H_
#define SOI_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (DESIGN.md "Static analysis &
/// invariants"), in the macro vocabulary of Abseil's
/// thread_annotations.h. Under Clang with -Wthread-safety (the `check`
/// preset, -DSOI_THREAD_SAFETY=ON) the compiler proves lock discipline at
/// build time: a SOI_GUARDED_BY member touched without its mutex held, a
/// SOI_REQUIRES function called without the capability, or a mismatched
/// SOI_ACQUIRE/SOI_RELEASE pair is a hard error. On every other compiler
/// the macros expand to nothing, so annotated code stays portable.
///
/// The annotations only bite on capability types; std::mutex is not one
/// under libstdc++, which is why the library locks through the annotated
/// soi::Mutex / soi::MutexLock wrappers (common/mutex.h) instead of raw
/// standard-library primitives.

#if defined(__clang__)
#define SOI_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SOI_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define SOI_CAPABILITY(x) SOI_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SOI_SCOPED_CAPABILITY SOI_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The member may only be read or written while holding `x`.
#define SOI_GUARDED_BY(x) SOI_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// The pointee (not the pointer itself) is protected by `x`.
#define SOI_PT_GUARDED_BY(x) SOI_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define SOI_REQUIRES(...) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define SOI_ACQUIRE(...) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held).
#define SOI_RELEASE(...) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability; the first argument is
/// the return value that means success.
#define SOI_TRY_ACQUIRE(...) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking public entry points).
#define SOI_EXCLUDES(...) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis) that the capability is already held.
#define SOI_ASSERT_CAPABILITY(x) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The function returns a reference to the given capability.
#define SOI_RETURN_CAPABILITY(x) \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the locking is correct but unprovable.
#define SOI_NO_THREAD_SAFETY_ANALYSIS \
  SOI_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // SOI_COMMON_THREAD_ANNOTATIONS_H_
