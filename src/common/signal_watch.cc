#include "common/signal_watch.h"

#include <set>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <signal.h>

#include <thread>
#endif

#include "common/mutex.h"

namespace soi {

#if defined(__unix__) || defined(__APPLE__)

Status WatchSignal(int signo, std::function<void()> on_signal) {
  static Mutex install_mutex{"common.SignalWatch.install",
                             lock_graph::kRankLeaf};
  static std::set<int>* const installed =
      new std::set<int>();  // soi-lint: naked-new (process-lifetime registry)
  MutexLock lock(install_mutex);
  if (installed->count(signo) != 0) {
    return Status::AlreadyExists("signal " + std::to_string(signo) +
                                 " already has a watcher installed");
  }

  // Running arbitrary code from an async signal handler would not be
  // signal-safe, so the signal is consumed synchronously: block it in
  // this thread (inherited by threads created after), park a no-op
  // disposition for stray deliveries to pre-existing unblocked threads,
  // and sigwait on a dedicated watcher thread.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, signo);
  struct sigaction action = {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  if (sigaction(signo, &action, nullptr) != 0) {
    return Status::Internal("sigaction(" + std::to_string(signo) +
                            ") failed");
  }
  if (pthread_sigmask(SIG_BLOCK, &set, nullptr) != 0) {
    return Status::Internal("pthread_sigmask(SIG_BLOCK, " +
                            std::to_string(signo) + ") failed");
  }

  // The watcher consumes its own signal via sigwait, but it must never
  // be a delivery target for any OTHER watched signal: a thread with
  // signal B unblocked can have a process-directed B land in it and die
  // in the no-op disposition, starving B's own watcher. Spawn with
  // everything blocked (inherited from a temporarily all-blocked mask)
  // and restore this thread's mask afterwards.
  sigset_t all_blocked;
  sigset_t previous;
  sigfillset(&all_blocked);
  if (pthread_sigmask(SIG_SETMASK, &all_blocked, &previous) != 0) {
    return Status::Internal("pthread_sigmask(SIG_SETMASK) failed");
  }
  std::thread watcher([set, callback = std::move(on_signal)] {
    while (true) {
      int signal_number = 0;
      if (sigwait(&set, &signal_number) != 0) return;
      callback();
    }
  });
  watcher.detach();
  if (pthread_sigmask(SIG_SETMASK, &previous, nullptr) != 0) {
    return Status::Internal("pthread_sigmask restore failed");
  }
  installed->insert(signo);
  return Status::OK();
}

#else  // !(__unix__ || __APPLE__)

Status WatchSignal(int signo, std::function<void()> on_signal) {
  (void)signo;
  (void)on_signal;
  return Status::Internal(
      "signal watchers require a POSIX signal interface");
}

#endif

}  // namespace soi
