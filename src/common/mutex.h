#ifndef SOI_COMMON_MUTEX_H_
#define SOI_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace soi {

/// The library's mutex: std::mutex wrapped as a Clang thread-safety
/// *capability* so SOI_GUARDED_BY members and SOI_REQUIRES functions are
/// checked at compile time under the `check` preset (see
/// common/thread_annotations.h — libstdc++'s std::mutex carries no
/// capability annotation, so locking through it is invisible to the
/// analysis).
///
/// Lock through MutexLock; the std-style lock()/unlock() names keep the
/// type BasicLockable for the rare call site that needs std::scoped_lock
/// semantics.
class SOI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SOI_ACQUIRE() { mutex_.lock(); }
  void unlock() SOI_RELEASE() { mutex_.unlock(); }
  bool try_lock() SOI_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock of a Mutex, visible to the thread-safety analysis (a
/// std::lock_guard<soi::Mutex> would compile but the analysis would not
/// credit the critical section).
class SOI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SOI_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SOI_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. Wait() must be called with the
/// mutex held (enforced by SOI_REQUIRES under the analysis) and returns
/// with it held; spurious wakeups are possible, so callers loop:
///
///   MutexLock lock(mutex_);
///   while (!predicate_over_guarded_state) cv_.Wait(mutex_);
///
/// The explicit while-loop idiom (rather than a predicate overload) keeps
/// the guarded reads in the annotated caller where the analysis can see
/// the capability — a predicate lambda would be analyzed as an
/// unannotated function and falsely flagged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified (or spuriously
  /// woken), and reacquires `mutex` before returning.
  void Wait(Mutex& mutex) SOI_REQUIRES(mutex) SOI_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex so the plain (fast)
    // std::condition_variable can be used, then release the unique_lock
    // so ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Wait() with a timeout: returns false if `seconds` elapsed without a
  /// notification (the mutex is reacquired either way). Callers re-check
  /// their predicate on both outcomes, exactly as with Wait() — the
  /// return value only tells them whether to also re-check their clock.
  /// Used by the serving drain path (src/serve) to bound how long it
  /// waits for in-flight work.
  bool WaitFor(Mutex& mutex, double seconds) SOI_REQUIRES(mutex)
      SOI_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(
        native, std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace soi

#endif  // SOI_COMMON_MUTEX_H_
