#ifndef SOI_COMMON_MUTEX_H_
#define SOI_COMMON_MUTEX_H_

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>

#include "analysis/lock_graph.h"
#include "common/thread_annotations.h"

namespace soi {

/// The library's mutex: std::mutex wrapped as a Clang thread-safety
/// *capability* so SOI_GUARDED_BY members and SOI_REQUIRES functions are
/// checked at compile time under the `check` preset (see
/// common/thread_annotations.h — libstdc++'s std::mutex carries no
/// capability annotation, so locking through it is invisible to the
/// analysis).
///
/// Lock through MutexLock; the std-style lock()/unlock() names keep the
/// type BasicLockable for the rare call site that needs std::scoped_lock
/// semantics.
///
/// A Mutex constructed with a name (and optionally a rank from
/// analysis/lock_graph.h) participates in runtime lock-order deadlock
/// detection under the `deadlock` preset (-DSOI_DEADLOCK_DETECT=ON):
/// every held -> acquired pair feeds the global lock graph, where a
/// cycle or rank inversion is reported as a potential deadlock. Name
/// every long-lived Mutex; the name keys a lock *class*, so short-lived
/// instances (one per ParallelFor, say) share a single node. In default
/// builds the name is ignored, the hooks compile out, and the layout is
/// exactly std::mutex (guarded by tests/deadlock_compile_out_test.cc).
class SOI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#ifdef SOI_DEADLOCK_DETECT_ENABLED
  explicit Mutex(const char* name, int rank = lock_graph::kNoRank)
      : node_(lock_graph::LockGraph::Global().RegisterNode(name, rank)) {}
#else
  explicit Mutex(const char* /*name*/, int /*rank*/ = lock_graph::kNoRank) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SOI_ACQUIRE() {
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    // Hook before blocking: the edge (and any cycle it closes) must be
    // reported even on an interleaving that actually deadlocks here.
    if (node_ != nullptr) lock_graph::OnMutexAcquire(this, node_);
#endif
    mutex_.lock();
  }
  void unlock() SOI_RELEASE() {
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    // Hook BEFORE the native unlock: the unlock may be the last licit
    // touch of this object. A stack-allocated mutex (ForkJoinState) can
    // be destroyed by the thread the unlock releases the moment
    // mutex_.unlock() returns, so reading node_ afterwards is a
    // use-after-free and a missed pop strands the lock class on this
    // thread's held stack. Popping early is safe: the stack is
    // thread-local and this thread acquires nothing before the unlock.
    if (node_ != nullptr) lock_graph::OnMutexRelease(this);
#endif
    mutex_.unlock();
  }
  bool try_lock() SOI_TRY_ACQUIRE(true) {
    bool acquired = mutex_.try_lock();
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    // A try_lock cannot block, hence cannot deadlock: record the hold
    // (locks acquired under it still get edges) but add no edges for it.
    if (acquired && node_ != nullptr) {
      lock_graph::OnMutexTryAcquired(this, node_);
    }
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
#ifdef SOI_DEADLOCK_DETECT_ENABLED
  const lock_graph::LockNode* node_ = nullptr;
#endif
};

/// RAII lock of a Mutex, visible to the thread-safety analysis (a
/// std::lock_guard<soi::Mutex> would compile but the analysis would not
/// credit the critical section).
class SOI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SOI_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SOI_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. Wait() must be called with the
/// mutex held (enforced by SOI_REQUIRES under the analysis) and returns
/// with it held; spurious wakeups are possible, so callers loop:
///
///   MutexLock lock(mutex_);
///   while (!predicate_over_guarded_state) cv_.Wait(mutex_);
///
/// The explicit while-loop idiom (rather than a predicate overload) keeps
/// the guarded reads in the annotated caller where the analysis can see
/// the capability — a predicate lambda would be analyzed as an
/// unannotated function and falsely flagged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified (or spuriously
  /// woken), and reacquires `mutex` before returning.
  void Wait(Mutex& mutex) SOI_REQUIRES(mutex) SOI_NO_THREAD_SAFETY_ANALYSIS {
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    // The wait releases the mutex, so the held-lock stack must not show
    // it while blocked; the reacquisition re-records it (with edges from
    // whatever else the waiter still holds).
    if (mutex.node_ != nullptr) lock_graph::OnMutexRelease(&mutex);
#endif
    // Adopt the already-held native mutex so the plain (fast)
    // std::condition_variable can be used, then release the unique_lock
    // so ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    if (mutex.node_ != nullptr) lock_graph::OnMutexAcquire(&mutex, mutex.node_);
#endif
  }

  /// Wait() with a timeout: returns false if `seconds` elapsed without a
  /// notification (the mutex is reacquired either way). Callers re-check
  /// their predicate on both outcomes, exactly as with Wait() — the
  /// return value only tells them whether to also re-check their clock.
  /// Used by the serving drain path (src/serve) to bound how long it
  /// waits for in-flight work.
  ///
  /// A non-finite or non-positive `seconds` (NaN, ±inf, an elapsed
  /// deadline's negative remainder) reports an immediate timeout with
  /// the mutex still held — those values must not reach the duration
  /// cast below, where NaN converts to an arbitrary tick count and an
  /// out-of-range double is undefined behavior.
  bool WaitFor(Mutex& mutex, double seconds) SOI_REQUIRES(mutex)
      SOI_NO_THREAD_SAFETY_ANALYSIS {
    if (!std::isfinite(seconds) || seconds <= 0.0) return false;
    // Cap at a year so a huge finite timeout cannot overflow the
    // steady_clock tick count either; callers looping on a predicate
    // observe a spurious-wakeup-shaped retry, not a behavior change.
    constexpr double kMaxWaitSeconds = 31557600.0;
    if (seconds > kMaxWaitSeconds) seconds = kMaxWaitSeconds;
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    if (mutex.node_ != nullptr) lock_graph::OnMutexRelease(&mutex);
#endif
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(
        native, std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
    native.release();
#ifdef SOI_DEADLOCK_DETECT_ENABLED
    if (mutex.node_ != nullptr) lock_graph::OnMutexAcquire(&mutex, mutex.node_);
#endif
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace soi

#endif  // SOI_COMMON_MUTEX_H_
