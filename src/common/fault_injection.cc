#include "common/fault_injection.h"

namespace soi {
namespace fault {

namespace {

// SplitMix64: the per-hit Bernoulli draw is a pure function of
// (seed, hit index), so probabilistic plans replay identically.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double UnitDraw(uint64_t seed, uint64_t hit) {
  return static_cast<double>(Mix64(seed ^ Mix64(hit)) >> 11) *
         (1.0 / 9007199254740992.0);  // 53-bit mantissa / 2^53
}

}  // namespace

Registry& Registry::Global() {
  // soi-lint: naked-new (intentionally leaked singleton)
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::Arm(const std::string& site, FaultPlan plan) {
  MutexLock lock(mutex_);
  Site& s = sites_[site];
  s.plan = plan;
  s.armed = true;
  s.hits = 0;
  s.fires = 0;
}

void Registry::Disarm(const std::string& site) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void Registry::Reset() {
  MutexLock lock(mutex_);
  sites_.clear();
}

bool Registry::Hit(const std::string& site) {
  MutexLock lock(mutex_);
  Site& s = sites_[site];
  uint64_t hit_index = s.hits++;
  if (!s.armed) return false;
  const FaultPlan& plan = s.plan;
  if (hit_index < plan.after) return false;
  if (plan.count != 0 && s.fires >= plan.count) return false;
  if (plan.probability < 1.0 &&
      UnitDraw(plan.seed, hit_index) >= plan.probability) {
    return false;
  }
  ++s.fires;
  return true;
}

int64_t Registry::HitCount(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it != sites_.end() ? static_cast<int64_t>(it->second.hits) : 0;
}

int64_t Registry::FireCount(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it != sites_.end() ? static_cast<int64_t>(it->second.fires) : 0;
}

}  // namespace fault
}  // namespace soi
