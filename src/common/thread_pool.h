#ifndef SOI_COMMON_THREAD_POOL_H_
#define SOI_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soi {

/// A fixed-size worker pool for the library's data-parallel loops.
///
/// Deliberately work-stealing-free: all parallel loops in libsoi use
/// chunked *static* partitioning (ParallelFor below), so a plain shared
/// queue is enough and the execution schedule stays easy to reason about.
/// The determinism contract (DESIGN.md "Threading model") rests on this:
/// every parallel construct in the library assigns work to chunks purely
/// as a function of the input size, never of thread timing, and only the
/// chunk *results* are combined, in index order, on the calling thread.
///
/// `num_threads` is the total concurrency including the calling thread;
/// the pool spawns `num_threads - 1` workers. A pool constructed with
/// num_threads <= 1 spawns no workers and every ParallelFor degenerates
/// to the sequential loop.
class ThreadPool {
 public:
  /// Spawns max(0, num_threads - 1) workers.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. Outstanding tasks are completed first; the caller
  /// must not destroy the pool from inside one of its own tasks.
  ~ThreadPool();

  /// Total concurrency of parallel loops on this pool (workers + caller).
  int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Enqueues one task. Prefer ParallelFor; this is the low-level hook it
  /// is built on. Tasks must not throw out of `task` (ParallelFor wraps
  /// them to capture exceptions).
  void Submit(std::function<void()> task) SOI_EXCLUDES(mutex_);

  /// True while the current thread is executing a chunk of some parallel
  /// loop (on any pool). Nested parallel constructs consult this and run
  /// inline, so loops can be composed without deadlock or oversubscription.
  static bool InParallelRegion();

 private:
  void WorkerLoop() SOI_EXCLUDES(mutex_);

  Mutex mutex_{"common.ThreadPool.queue", lock_graph::kRankThreadPool};
  CondVar wake_;
  std::deque<std::function<void()>> queue_ SOI_GUARDED_BY(mutex_);
  bool stop_ SOI_GUARDED_BY(mutex_) = false;
  // Written only during construction/destruction (no concurrent access).
  std::vector<std::thread> workers_;
};

namespace internal_pool {

/// RAII marker for ThreadPool::InParallelRegion().
class ParallelRegionGuard {
 public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;
};

/// Shared completion/error state of one ParallelFor call.
struct ForkJoinState {
  Mutex mutex{"common.ForkJoinState.state", lock_graph::kRankLeaf};
  CondVar done;
  int64_t remaining SOI_GUARDED_BY(mutex) = 0;
  // First exception wins, the rest are dropped.
  std::exception_ptr error SOI_GUARDED_BY(mutex);

  void SetRemaining(int64_t chunks) SOI_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    remaining = chunks;
  }
  void FinishChunk() SOI_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (--remaining == 0) done.NotifyOne();
  }
  void RecordError(std::exception_ptr e) SOI_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (!error) error = std::move(e);
  }
  void Wait() SOI_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    while (remaining != 0) done.Wait(mutex);
  }
  /// The first captured exception (null if every chunk succeeded). Only
  /// meaningful after Wait() returned.
  std::exception_ptr TakeError() SOI_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    return error;
  }
};

}  // namespace internal_pool

/// Runs `fn(chunk_begin, chunk_end)` over a static partition of
/// [begin, end) into at most pool->num_threads() contiguous chunks.
///
/// The calling thread executes the first chunk itself and then blocks
/// until the others finish. With a null pool, a single-thread pool, an
/// empty range, or when called from inside another parallel region, the
/// whole range runs inline on the caller as one chunk.
///
/// Exceptions thrown by any chunk are captured; after all chunks finish,
/// the first one captured is rethrown on the calling thread.
template <typename Fn>
void ParallelForChunks(ThreadPool* pool, int64_t begin, int64_t end,
                       Fn&& fn) {
  int64_t n = end - begin;
  if (n <= 0) return;
  int threads = pool ? pool->num_threads() : 1;
  if (threads <= 1 || n == 1 || ThreadPool::InParallelRegion()) {
    internal_pool::ParallelRegionGuard guard;
    fn(begin, end);
    return;
  }

  int64_t chunks = std::min<int64_t>(threads, n);
  int64_t chunk_size = (n + chunks - 1) / chunks;
  internal_pool::ForkJoinState state;
  state.SetRemaining(chunks);

  auto run_chunk = [&state, &fn](int64_t lo, int64_t hi) {
    internal_pool::ParallelRegionGuard guard;
    try {
      // Inside the try: a fired fault is captured exactly like any other
      // chunk failure — siblings complete, the first error is rethrown
      // on the calling thread, the pool is never wedged.
      SOI_FAULT_POINT("pool.run_chunk");
      fn(lo, hi);
    } catch (...) {
      state.RecordError(std::current_exception());
    }
    state.FinishChunk();
  };

  for (int64_t c = 1; c < chunks; ++c) {
    int64_t lo = begin + c * chunk_size;
    int64_t hi = std::min(end, lo + chunk_size);
    pool->Submit([&run_chunk, lo, hi] { run_chunk(lo, hi); });
  }
  run_chunk(begin, std::min(end, begin + chunk_size));
  state.Wait();
  if (std::exception_ptr error = state.TakeError()) {
    std::rethrow_exception(error);
  }
}

/// Element-wise variant: runs `fn(i)` for every i in [begin, end), chunked
/// as in ParallelForChunks.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end, Fn&& fn) {
  ParallelForChunks(pool, begin, end, [&fn](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Dynamic work-grabbing variant of ParallelFor: every participating
/// thread repeatedly claims the next unclaimed index from a shared atomic
/// counter, so one slow element cannot idle the remaining threads the way
/// ParallelFor's static chunking can (a chunk containing a slow element
/// serializes everything behind it in that chunk).
///
/// Use ONLY where per-element cost is wildly uneven AND `fn` is
/// order-independent (e.g. each element writes its own slot): the claim
/// order is timing-dependent, so this construct sits outside the static
/// determinism contract above. Results must not depend on execution
/// order — the batch path satisfies this by writing results[i] from
/// fn(i) only.
///
/// Exceptions from `fn` are captured per-element; the first is rethrown
/// on the calling thread after all spawned participants finish.
template <typename Fn>
void ParallelForDynamic(ThreadPool* pool, int64_t begin, int64_t end,
                        Fn&& fn) {
  int64_t n = end - begin;
  if (n <= 0) return;
  int threads = pool ? pool->num_threads() : 1;
  if (threads <= 1 || n == 1 || ThreadPool::InParallelRegion()) {
    internal_pool::ParallelRegionGuard guard;
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  int64_t participants = std::min<int64_t>(threads, n);
  // Stack lifetime is safe: state.Wait() below outlives every participant.
  std::atomic<int64_t> next(begin);
  internal_pool::ForkJoinState state;
  state.SetRemaining(participants);

  auto run_participant = [&state, &fn, &next, end]() {
    internal_pool::ParallelRegionGuard guard;
    try {
      SOI_FAULT_POINT("pool.run_chunk");
      for (;;) {
        int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        fn(i);
      }
    } catch (...) {
      state.RecordError(std::current_exception());
    }
    state.FinishChunk();
  };

  for (int64_t p = 1; p < participants; ++p) {
    pool->Submit([&run_participant] { run_participant(); });
  }
  run_participant();
  state.Wait();
  if (std::exception_ptr error = state.TakeError()) {
    std::rethrow_exception(error);
  }
}

/// Parallel sort: per-chunk std::sort followed by a tree of pairwise
/// std::inplace_merge passes (merges at the same level run in parallel).
///
/// `cmp` must be a strict *total* order (break ties explicitly, e.g. by
/// id) — then the result is the unique sorted permutation and is
/// bit-identical to std::sort regardless of the thread count. Small
/// ranges fall back to std::sort outright.
template <typename It, typename Cmp>
void ParallelSort(ThreadPool* pool, It first, It last, Cmp cmp) {
  int64_t n = static_cast<int64_t>(last - first);
  int threads = pool ? pool->num_threads() : 1;
  constexpr int64_t kMinParallelSort = 2048;
  if (threads <= 1 || n < kMinParallelSort ||
      ThreadPool::InParallelRegion()) {
    std::sort(first, last, cmp);
    return;
  }

  int64_t chunks = std::min<int64_t>(threads, n);
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  for (int64_t c = 0; c <= chunks; ++c) {
    bounds[static_cast<size_t>(c)] = c * n / chunks;
  }
  ParallelFor(pool, 0, chunks, [&](int64_t c) {
    std::sort(first + bounds[static_cast<size_t>(c)],
              first + bounds[static_cast<size_t>(c) + 1], cmp);
  });
  for (int64_t width = 1; width < chunks; width *= 2) {
    int64_t pairs = (chunks + 2 * width - 1) / (2 * width);
    ParallelFor(pool, 0, pairs, [&](int64_t p) {
      int64_t lo = 2 * width * p;
      int64_t mid = std::min(lo + width, chunks);
      int64_t hi = std::min(lo + 2 * width, chunks);
      if (mid < hi) {
        std::inplace_merge(first + bounds[static_cast<size_t>(lo)],
                           first + bounds[static_cast<size_t>(mid)],
                           first + bounds[static_cast<size_t>(hi)], cmp);
      }
    });
  }
}

}  // namespace soi

#endif  // SOI_COMMON_THREAD_POOL_H_
