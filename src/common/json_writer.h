#ifndef SOI_COMMON_JSON_WRITER_H_
#define SOI_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace soi {

/// A minimal streaming JSON emitter: objects, arrays, and scalar values
/// with automatic comma placement and two-space pretty indentation. The
/// single JSON producer of the repository — the BENCH_*.json envelopes,
/// the metrics-registry export, and the Chrome trace export all go
/// through it (no external JSON dependency).
///
/// Usage is push-style and validated by SOI_CHECK: keys only inside
/// objects, values only at the document root / inside an array / after a
/// key, one root value per writer.
class JsonWriter {
 public:
  /// Writes to `out` (not owned; must outlive the writer). `pretty`
  /// selects indented multi-line output vs compact single-line.
  explicit JsonWriter(std::ostream* out, bool pretty = true);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next call must emit its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  /// Non-finite doubles are emitted as null (JSON has no Inf/NaN).
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Key + value in one call (objects only).
  void KeyValue(std::string_view key, std::string_view value);
  void KeyValue(std::string_view key, const char* value);
  void KeyValue(std::string_view key, int64_t value);
  void KeyValue(std::string_view key, int32_t value);
  void KeyValue(std::string_view key, uint64_t value);
  void KeyValue(std::string_view key, double value);
  void KeyValue(std::string_view key, bool value);

  /// True once the root value is complete (all containers closed).
  bool done() const;

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void WriteEscaped(std::string_view text);
  void Newline();

  std::ostream* out_;
  bool pretty_;
  bool root_written_ = false;
  bool key_pending_ = false;
  // Per open container: scope kind and whether it already has an entry.
  std::vector<Scope> scopes_;
  std::vector<bool> has_entry_;
};

}  // namespace soi

#endif  // SOI_COMMON_JSON_WRITER_H_
