#ifndef SOI_COMMON_SIGNAL_WATCH_H_
#define SOI_COMMON_SIGNAL_WATCH_H_

#include <functional>

#include "common/status.h"

namespace soi {

/// The one signal-mask setup path of the process (DESIGN.md "Serving &
/// overload"): blocks `signo` in the calling thread — and, by mask
/// inheritance, in every thread created afterwards — parks a no-op
/// disposition so a stray delivery to an older unblocked thread cannot
/// terminate the process, and spawns a detached watcher thread that
/// consumes the signal with sigwait and runs `on_signal` once per
/// delivery.
///
/// Both consumers of process signals route through here so their mask
/// setups compose instead of clobbering each other: obs::
/// InstallSignalDump (SIGUSR1 -> state dump) and the soid serving
/// binary's SIGTERM -> graceful drain hook. Each call owns exactly one
/// signal; installing the same signal twice returns kAlreadyExists, and
/// distinct signals coexist freely in one process (regression-tested by
/// tests/signal_coexist_test.cc).
///
/// Call early in main(), before worker threads exist: threads created
/// before the mask change still have the signal unblocked and may
/// consume a delivery as a no-op instead of the watcher seeing it.
///
/// `on_signal` runs on the watcher thread (an ordinary thread, not a
/// signal handler — no async-signal-safety constraints), must not
/// throw, and must tolerate being called repeatedly. The watcher is
/// detached and lives for the process. Returns kInternal on a non-POSIX
/// platform or a failed sigaction/pthread_sigmask.
[[nodiscard]] Status WatchSignal(int signo, std::function<void()> on_signal);

}  // namespace soi

#endif  // SOI_COMMON_SIGNAL_WATCH_H_
