#ifndef SOI_COMMON_STOPWATCH_H_
#define SOI_COMMON_STOPWATCH_H_

#include <chrono>

namespace soi {

/// Wall-clock stopwatch used for the per-phase timings reported by the
/// experiment harness (Figures 4 and 6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace soi

#endif  // SOI_COMMON_STOPWATCH_H_
