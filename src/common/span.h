#ifndef SOI_COMMON_SPAN_H_
#define SOI_COMMON_SPAN_H_

#include <cstddef>
#include <ostream>
#include <vector>

namespace soi {

/// A non-owning read-only view over a contiguous run of `T`, used by the
/// CSR index accessors (grid/csr-backed indexes) so call sites keep
/// range-for / size() / operator[] idioms while the storage lives in one
/// flat arena per index instead of one heap block per row.
///
/// Intentionally minimal (no std::span dependency in public headers, and
/// a stable printable/comparable surface for tests): pointer + length,
/// trivially copyable, implicitly constructible from std::vector<T>.
template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;

  constexpr Span() : data_(nullptr), size_(0) {}
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit: lets nested-vector reference data (tests, conversion
  /// paths) flow into span-taking call sites unchanged.
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// Materializes an owning copy (snapshot writers, test assertions).
  std::vector<T> ToVector() const {
    return std::vector<T>(begin(), end());
  }

 private:
  const T* data_;
  size_t size_;
};

/// Element-wise equality (requires T comparable); spans of different
/// lengths are unequal. Used heavily by the determinism tests.
template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}

template <typename T>
bool operator==(Span<T> a, const std::vector<T>& b) {
  return a == Span<T>(b);
}

template <typename T>
bool operator==(const std::vector<T>& a, Span<T> b) {
  return Span<T>(a) == b;
}

template <typename T>
bool operator!=(Span<T> a, const std::vector<T>& b) {
  return !(a == b);
}

template <typename T>
bool operator!=(const std::vector<T>& a, Span<T> b) {
  return !(a == b);
}

/// Debug/gtest printing (requires T streamable).
template <typename T>
std::ostream& operator<<(std::ostream& os, Span<T> s) {
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) os << ", ";
    os << s[i];
  }
  return os << "]";
}

}  // namespace soi

#endif  // SOI_COMMON_SPAN_H_
