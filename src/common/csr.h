#ifndef SOI_COMMON_CSR_H_
#define SOI_COMMON_CSR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/span.h"

namespace soi {

/// Flat CSR (compressed sparse row) storage: `num_rows + 1` offsets into
/// one contiguous values arena. Replaces std::vector<std::vector<T>> in
/// the serving-path indexes — one allocation instead of one per row, rows
/// contiguous in memory in row order, and Row(i) is two loads with no
/// pointer chase into a separately allocated block.
///
/// Row contents and row count are immutable once built; builders either
/// append rows in order (AppendRow) or pre-size from exact per-row counts
/// (FromRowCounts + cursor fill, the pattern the deterministic parallel
/// inversion uses).
template <typename T>
class CsrArray {
 public:
  /// An empty array with zero rows.
  CsrArray() : offsets_(1, 0) {}

  /// Adopts pre-built storage. `offsets` must be non-empty,
  /// non-decreasing, start at 0, and end at values.size().
  CsrArray(std::vector<int64_t> offsets, std::vector<T> values)
      : offsets_(std::move(offsets)), values_(std::move(values)) {
    SOI_CHECK(!offsets_.empty() && offsets_.front() == 0 &&
              offsets_.back() == static_cast<int64_t>(values_.size()))
        << "malformed CSR offsets";
  }

  /// Converts from nested-vector rows (snapshot ingest, tests).
  static CsrArray FromRows(const std::vector<std::vector<T>>& rows) {
    CsrArray out;
    size_t total = 0;
    for (const auto& row : rows) total += row.size();
    out.offsets_.reserve(rows.size() + 1);
    out.values_.reserve(total);
    for (const auto& row : rows) {
      out.values_.insert(out.values_.end(), row.begin(), row.end());
      out.offsets_.push_back(static_cast<int64_t>(out.values_.size()));
    }
    return out;
  }

  /// Pre-sizes the array to hold exactly `counts[i]` values in row i,
  /// value-initialized. Use mutable_row() to fill. This is the shape the
  /// lock-free parallel inversion wants: counts pass, exclusive prefix
  /// sum, then disjoint cursor fill.
  static CsrArray FromRowCounts(const std::vector<int64_t>& counts) {
    CsrArray out;
    out.offsets_.resize(counts.size() + 1);
    out.offsets_[0] = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      SOI_DCHECK(counts[i] >= 0);
      out.offsets_[i + 1] = out.offsets_[i] + counts[i];
    }
    out.values_.resize(static_cast<size_t>(out.offsets_.back()));
    return out;
  }

  /// Streaming builder: appends one value to the row currently under
  /// construction; FinishRow() seals it. Interleaving with AppendRow is
  /// fine as long as every pushed value is sealed by a FinishRow before
  /// the next row starts.
  void PushValue(T value) { values_.push_back(std::move(value)); }
  void FinishRow() {
    offsets_.push_back(static_cast<int64_t>(values_.size()));
  }

  /// Appends one row (must be called in row order; rows are final once
  /// appended).
  void AppendRow(const T* data, size_t size) {
    values_.insert(values_.end(), data, data + size);
    offsets_.push_back(static_cast<int64_t>(values_.size()));
  }
  void AppendRow(const std::vector<T>& row) {
    AppendRow(row.data(), row.size());
  }

  /// Appends the values of another CSR array wholesale, preserving its row
  /// boundaries (chunk-merge step of parallel construction).
  void AppendAll(const CsrArray& other) {
    int64_t base = offsets_.back();
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    offsets_.reserve(offsets_.size() + other.num_rows());
    for (size_t r = 1; r < other.offsets_.size(); ++r) {
      offsets_.push_back(base + other.offsets_[r]);
    }
  }

  void Reserve(size_t rows, size_t values) {
    offsets_.reserve(rows + 1);
    values_.reserve(values);
  }

  int64_t num_rows() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  int64_t num_values() const {
    return static_cast<int64_t>(values_.size());
  }

  Span<T> Row(int64_t row) const {
    SOI_DCHECK(row >= 0 && row < num_rows());
    const size_t r = static_cast<size_t>(row);
    return Span<T>(values_.data() + offsets_[r],
                   static_cast<size_t>(offsets_[r + 1] - offsets_[r]));
  }

  int64_t RowSize(int64_t row) const {
    SOI_DCHECK(row >= 0 && row < num_rows());
    const size_t r = static_cast<size_t>(row);
    return offsets_[r + 1] - offsets_[r];
  }

  /// Mutable view of row `row` for cursor-fill after FromRowCounts.
  T* mutable_row(int64_t row) {
    SOI_DCHECK(row >= 0 && row < num_rows());
    return values_.data() + offsets_[static_cast<size_t>(row)];
  }

  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<T>& values() const { return values_; }

  friend bool operator==(const CsrArray& a, const CsrArray& b) {
    return a.offsets_ == b.offsets_ && a.values_ == b.values_;
  }
  friend bool operator!=(const CsrArray& a, const CsrArray& b) {
    return !(a == b);
  }

 private:
  std::vector<int64_t> offsets_;
  std::vector<T> values_;
};

}  // namespace soi

#endif  // SOI_COMMON_CSR_H_
