#include "common/status.h"

namespace soi {

// Forces kNumStatusCodes (and with it the runtime exhaustiveness test in
// tests/common_test.cc) to track the enum; the switch below additionally
// fails to compile (-Wswitch -Werror) when a case is missing.
static_assert(static_cast<int>(StatusCode::kUnavailable) + 1 ==
                  kNumStatusCodes,
              "update kNumStatusCodes (and StatusCodeToString) when adding "
              "a StatusCode");

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace soi
