#include "common/status.h"

namespace soi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace soi
