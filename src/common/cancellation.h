#ifndef SOI_COMMON_CANCELLATION_H_
#define SOI_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace soi {

/// A cooperative cancellation handle for the serving path (DESIGN.md
/// "Failure model"): a shared atomic cancel flag plus an optional
/// deadline. Long-running loops (the filter loop, the refinement loop,
/// the eps-augmentation build) call Check() at cell/segment granularity
/// and return kCancelled / kDeadlineExceeded promptly when it fires.
///
/// Copies share state — cancelling any copy cancels them all. The
/// default-constructed token is *inert*: it has no shared state, never
/// fires, and Check() is a single null test, so threading a token
/// through a hot loop costs nothing for callers that don't use one.
///
/// Thread-safe: Cancel/IsCancelled/Check may race freely across threads.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// The inert token: never cancelled, no deadline.
  CancellationToken() = default;

  /// A token that can be cancelled explicitly but has no deadline.
  static CancellationToken Cancellable() {
    return CancellationToken(std::make_shared<State>());
  }

  /// A token that expires `seconds` from now (<= 0 means already
  /// expired). Also cancellable explicitly.
  static CancellationToken WithDeadline(double seconds) {
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return CancellationToken(std::move(state));
  }

  /// A token that expires at `deadline`. Also cancellable explicitly.
  static CancellationToken WithDeadlineAt(Clock::time_point deadline) {
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline = deadline;
    return CancellationToken(std::move(state));
  }

  /// True unless this is the inert default token.
  bool cancellable() const { return state_ != nullptr; }

  /// Requests cancellation; every copy of this token observes it. It is
  /// a checked fatal error to cancel the inert token.
  void Cancel() const {
    SOI_CHECK(state_ != nullptr) << "Cancel() on an inert token";
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// True once Cancel() has been called (deadline expiry not included).
  bool IsCancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

  /// OK while the operation may proceed; kCancelled after Cancel(),
  /// kDeadlineExceeded once the deadline has passed. This is the
  /// cooperative check long loops call per cell / segment / iteration.
  [[nodiscard]] Status Check() const {
    if (state_ == nullptr) return Status::OK();
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (state_->has_deadline && Clock::now() >= state_->deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;  // immutable after construction
    Clock::time_point deadline;
  };

  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Thrown to unwind a cancelled/expired operation out of code that
/// cannot return Status (constructors, parallel chunk bodies). Caught at
/// the serving boundary (QueryEngine::TryRun / TryGetMaps) and converted
/// back to the carried Status — it never escapes the library's public
/// Status-returning API. This is the same deliberate exception-to-the-
/// no-exceptions-rule as ParallelFor's chunk error propagation.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Throws CancelledError if `token` has fired. For use inside builds and
/// parallel chunks where a Status cannot propagate.
inline void ThrowIfCancelled(const CancellationToken& token) {
  Status status = token.Check();
  if (!status.ok()) throw CancelledError(std::move(status));
}

}  // namespace soi

#endif  // SOI_COMMON_CANCELLATION_H_
