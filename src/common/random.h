#ifndef SOI_COMMON_RANDOM_H_
#define SOI_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace soi {

/// Deterministic, seedable pseudo-random generator (PCG-XSH-RR 64/32).
///
/// Every stochastic component of the library (data generators, tests) draws
/// from an explicitly seeded Rng so that datasets and experiments are fully
/// reproducible. Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint32_t;

  /// Seeds the generator. The same (seed, stream) pair always produces the
  /// same sequence.
  explicit Rng(uint64_t seed, uint64_t stream = 1);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Returns the next 32 random bits.
  uint32_t operator()() { return Next32(); }

  uint32_t Next32();
  uint64_t Next64();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns a standard normal variate (Box-Muller).
  double Normal();

  /// Returns a normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Returns an exponential variate with the given rate. Requires rate > 0.
  double Exponential(double rate);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    SOI_DCHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  // Box-Muller produces pairs; caches the spare variate.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Samples ranks 1..n with probability proportional to 1/rank^theta
/// (Zipf/zeta distribution), returning zero-based indices in [0, n).
///
/// Used to assign keyword popularity in the synthetic POI/photo generators:
/// a few keywords are very frequent (e.g. "shop"), most are rare, matching
/// the skew of crowdsourced tags.
class ZipfSampler {
 public:
  /// Precomputes the CDF for `n` ranks with exponent `theta` (theta >= 0;
  /// theta = 0 degenerates to uniform). Requires n > 0.
  ZipfSampler(size_t n, double theta);

  /// Draws a zero-based rank; smaller ranks are more likely.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace soi

#endif  // SOI_COMMON_RANDOM_H_
