#ifndef SOI_COMMON_CHECK_H_
#define SOI_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace soi {
namespace internal_check {

/// Accumulates a fatal-check message and aborts the process when destroyed.
/// Used only via the SOI_CHECK family of macros.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " SOI_CHECK failed: " << condition
            << " ";
  }

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when the check passes; lets
/// `cond ? Voidify() : stream` type-check with no runtime cost.
struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal_check
}  // namespace soi

/// Aborts with a message if `condition` is false. Additional context can be
/// streamed: SOI_CHECK(x > 0) << "x was " << x;
#define SOI_CHECK(condition)                                       \
  (condition) ? (void)0                                            \
              : ::soi::internal_check::Voidify() &                 \
                    ::soi::internal_check::CheckFailStream(        \
                        __FILE__, __LINE__, #condition)

/// Like SOI_CHECK but compiled out in NDEBUG builds. Use for hot-path
/// invariants.
#ifdef NDEBUG
#define SOI_DCHECK(condition) SOI_CHECK(true)
#else
#define SOI_DCHECK(condition) SOI_CHECK(condition)
#endif

#endif  // SOI_COMMON_CHECK_H_
