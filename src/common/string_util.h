#ifndef SOI_COMMON_STRING_UTIL_H_
#define SOI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace soi {

/// Splits `text` on `delimiter`, keeping empty fields. Splitting an empty
/// string yields one empty field (CSV semantics).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Lowercases ASCII characters.
std::string ToLowerAscii(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a double; rejects trailing garbage, empty input, and NaN.
Result<double> ParseDouble(std::string_view text);

/// Parses a non-negative 64-bit integer; rejects trailing garbage and
/// empty input.
Result<int64_t> ParseInt64(std::string_view text);

}  // namespace soi

#endif  // SOI_COMMON_STRING_UTIL_H_
