#ifndef SOI_COMMON_STRING_UTIL_H_
#define SOI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace soi {

/// Splits `text` on `delimiter`, keeping empty fields. Splitting an empty
/// string yields one empty field (CSV semantics).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Lowercases ASCII characters.
std::string ToLowerAscii(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Formats `value` with the fewest significant digits that round-trip
/// bit-exactly through strtod. Distinct doubles always format to
/// distinct strings (std::to_string's fixed 6 digits collapse nearby
/// values such as cache keys 0.0005 and 0.0005000001). Non-finite
/// values render as "nan" / "inf" / "-inf". Shared by JsonWriter and
/// every error/log message that embeds a floating-point cache key.
std::string FormatDouble(double value);

/// Parses a double; rejects trailing garbage, empty input, and NaN.
Result<double> ParseDouble(std::string_view text);

/// Parses a non-negative 64-bit integer; rejects trailing garbage and
/// empty input.
Result<int64_t> ParseInt64(std::string_view text);

}  // namespace soi

#endif  // SOI_COMMON_STRING_UTIL_H_
