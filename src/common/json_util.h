#ifndef SOI_COMMON_JSON_UTIL_H_
#define SOI_COMMON_JSON_UTIL_H_

#include <string_view>

#include "common/status.h"

namespace soi {

/// Validates that `text` is exactly one well-formed JSON document
/// (RFC 8259: one value — object, array, string, number, true/false/null
/// — with arbitrary surrounding whitespace). Returns kInvalidArgument
/// with the byte offset and reason on the first violation.
///
/// This is a validator, not a parser: nothing is materialized, so it is
/// cheap enough for tests and tools (soi_obs check) to run over every
/// produced document. Writing stays the job of JsonWriter; the library
/// deliberately has no JSON DOM.
[[nodiscard]] Status ValidateJson(std::string_view text);

}  // namespace soi

#endif  // SOI_COMMON_JSON_UTIL_H_
