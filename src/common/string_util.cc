#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace soi {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest representation that round-trips: raise the precision until
  // strtod reads back the exact same bits. 17 significant digits always
  // suffice for IEEE-754 binary64, so the loop cannot fall through.
  char buffer[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE ||
      std::isnan(value)) {
    return Status::InvalidArgument("not a double: '" + buffer + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return Status::InvalidArgument("not an integer: '" + buffer + "'");
  }
  return static_cast<int64_t>(value);
}

}  // namespace soi
