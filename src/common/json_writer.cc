#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace soi {

JsonWriter::JsonWriter(std::ostream* out, bool pretty)
    : out_(out), pretty_(pretty) {
  SOI_CHECK(out != nullptr);
}

bool JsonWriter::done() const { return root_written_ && scopes_.empty(); }

void JsonWriter::Newline() {
  if (!pretty_) return;
  *out_ << '\n';
  for (size_t i = 0; i < scopes_.size(); ++i) *out_ << "  ";
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) {
    SOI_CHECK(!root_written_) << "JsonWriter: more than one root value";
    root_written_ = true;
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    SOI_CHECK(key_pending_) << "JsonWriter: value in object without a key";
    key_pending_ = false;
    return;
  }
  if (has_entry_.back()) *out_ << ',';
  has_entry_.back() = true;
  Newline();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  *out_ << '{';
  scopes_.push_back(Scope::kObject);
  has_entry_.push_back(false);
}

void JsonWriter::EndObject() {
  SOI_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject &&
            !key_pending_)
      << "JsonWriter: mismatched EndObject";
  bool had_entry = has_entry_.back();
  scopes_.pop_back();
  has_entry_.pop_back();
  if (had_entry) Newline();
  *out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  *out_ << '[';
  scopes_.push_back(Scope::kArray);
  has_entry_.push_back(false);
}

void JsonWriter::EndArray() {
  SOI_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray)
      << "JsonWriter: mismatched EndArray";
  bool had_entry = has_entry_.back();
  scopes_.pop_back();
  has_entry_.pop_back();
  if (had_entry) Newline();
  *out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  SOI_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject &&
            !key_pending_)
      << "JsonWriter: key outside an object";
  if (has_entry_.back()) *out_ << ',';
  has_entry_.back() = true;
  Newline();
  WriteEscaped(key);
  *out_ << (pretty_ ? ": " : ":");
  key_pending_ = true;
}

void JsonWriter::WriteEscaped(std::string_view text) {
  *out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        *out_ << "\\\"";
        break;
      case '\\':
        *out_ << "\\\\";
        break;
      case '\n':
        *out_ << "\\n";
        break;
      case '\t':
        *out_ << "\\t";
        break;
      case '\r':
        *out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out_ << buffer;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  WriteEscaped(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  *out_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    *out_ << "null";
    return;
  }
  *out_ << FormatDouble(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  *out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  *out_ << "null";
}

void JsonWriter::KeyValue(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}
void JsonWriter::KeyValue(std::string_view key, const char* value) {
  Key(key);
  String(value);
}
void JsonWriter::KeyValue(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::KeyValue(std::string_view key, int32_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::KeyValue(std::string_view key, uint64_t value) {
  Key(key);
  Int(static_cast<int64_t>(value));
}
void JsonWriter::KeyValue(std::string_view key, double value) {
  Key(key);
  Double(value);
}
void JsonWriter::KeyValue(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace soi
