#ifndef SOI_COMMON_STATUS_H_
#define SOI_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace soi {

/// Error categories used across the library. The library does not use
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  // Serving-path codes (DESIGN.md "Failure model"): a query past its
  // deadline, a query cancelled by its caller, and a query shed by
  // admission control under overload.
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  // The endpoint is temporarily not taking new work (a draining soid
  // instance); retrying against another replica — or the same one after
  // it restarts — is expected to succeed. Distinct from kCancelled
  // (work that was admitted and then abandoned).
  kUnavailable,
};

/// Number of StatusCode enumerators. Keep in sync when adding codes; the
/// static_assert in status.cc and the exhaustiveness test in
/// tests/common_test.cc both key off this.
inline constexpr int kNumStatusCodes = 11;

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Mirrors the Status idiom of Arrow/RocksDB: cheap to copy in the OK case,
/// explicit at call sites, and usable with the SOI_RETURN_NOT_OK macro.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// compile error under -Werror (every discarded Status is a swallowed
/// failure). Deliberate discards — e.g. a best-effort cleanup write —
/// must say so with an explicit `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats the status as "<code name>: <message>", or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored result is a checked fatal error. [[nodiscard]] like Status: a
/// discarded Result drops an error silently.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a result holding a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a result holding an error (implicit, so functions can
  /// `return Status::IOError(...);`). The status must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    SOI_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK if a value is present.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    SOI_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(payload_).ToString();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    SOI_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(payload_).ToString();
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    SOI_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(payload_).ToString();
    return std::move(std::get<T>(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace soi

/// Propagates a non-OK Status to the caller.
#define SOI_RETURN_NOT_OK(expr)         \
  do {                                  \
    ::soi::Status _soi_st = (expr);     \
    if (!_soi_st.ok()) return _soi_st;  \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define SOI_ASSIGN_OR_RETURN(lhs, rexpr)               \
  SOI_ASSIGN_OR_RETURN_IMPL_(                          \
      SOI_STATUS_MACRO_CONCAT_(_soi_res, __COUNTER__), lhs, rexpr)

#define SOI_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).ValueOrDie()

#define SOI_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define SOI_STATUS_MACRO_CONCAT_(x, y) SOI_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // SOI_COMMON_STATUS_H_
