#include "common/json_util.h"

#include <cctype>
#include <string>

namespace soi {

namespace {

// Recursive-descent JSON validator. Holds the cursor; every Expect*
// method either advances past one construct or records the first error.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  Status Run() {
    SkipWhitespace();
    SOI_RETURN_NOT_OK(ExpectValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the document");
    }
    return Status::OK();
  }

 private:
  // Deep-enough for any document the library writes; a bound makes the
  // validator safe to point at arbitrary (adversarial) files without
  // risking stack exhaustion.
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& reason) const {
    return Status::InvalidArgument("invalid JSON at byte " +
                                   std::to_string(pos_) + ": " + reason);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status ExpectChar(char expected) {
    if (AtEnd() || Peek() != expected) {
      return Error(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ExpectString() {
    SOI_RETURN_NOT_OK(ExpectChar('"'));
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Error("unterminated escape");
        char escape = text_[pos_];
        switch (escape) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i) {
              if (AtEnd() ||
                  !std::isxdigit(static_cast<unsigned char>(Peek()))) {
                return Error("\\u needs four hex digits");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Error("invalid escape");
        }
      } else {
        ++pos_;
      }
    }
  }

  Status ExpectNumber() {
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected a digit");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected a digit after '.'");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected a digit in the exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  Status ExpectObject(int depth) {
    SOI_RETURN_NOT_OK(ExpectChar('{'));
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      SOI_RETURN_NOT_OK(ExpectString());
      SkipWhitespace();
      SOI_RETURN_NOT_OK(ExpectChar(':'));
      SkipWhitespace();
      SOI_RETURN_NOT_OK(ExpectValue(depth));
      SkipWhitespace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      return ExpectChar('}');
    }
  }

  Status ExpectArray(int depth) {
    SOI_RETURN_NOT_OK(ExpectChar('['));
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      SOI_RETURN_NOT_OK(ExpectValue(depth));
      SkipWhitespace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      return ExpectChar(']');
    }
  }

  Status ExpectValue(int depth) {
    if (depth >= kMaxDepth) return Error("nesting deeper than 256");
    if (AtEnd()) return Error("expected a value");
    switch (Peek()) {
      case '{':
        return ExpectObject(depth + 1);
      case '[':
        return ExpectArray(depth + 1);
      case '"':
        return ExpectString();
      case 't':
        return ExpectLiteral("true");
      case 'f':
        return ExpectLiteral("false");
      case 'n':
        return ExpectLiteral("null");
      default:
        return ExpectNumber();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return Validator(text).Run();
}

}  // namespace soi
