#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace soi {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  Next32();
  state_ += seed;
  Next32();
}

uint32_t Rng::Next32() {
  uint64_t old_state = state_;
  state_ = old_state * kPcgMultiplier + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((old_state >> 18u) ^ old_state) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old_state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::Next64() {
  uint64_t hi = Next32();
  return (hi << 32) | Next32();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SOI_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SOI_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // Full 64-bit range.
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double rate) {
  SOI_DCHECK(rate > 0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  SOI_CHECK(n > 0) << "ZipfSampler requires n > 0";
  SOI_CHECK(theta >= 0) << "ZipfSampler requires theta >= 0";
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    sum += 1.0 / std::pow(static_cast<double>(rank), theta);
    cdf_[rank - 1] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  SOI_DCHECK(rng != nullptr);
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace soi
