#ifndef SOI_DATAGEN_PHOTO_GENERATOR_H_
#define SOI_DATAGEN_PHOTO_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "datagen/city_profile.h"
#include "datagen/poi_generator.h"
#include "network/road_network.h"
#include "objects/photo.h"
#include "text/vocabulary.h"

namespace soi {

/// Generates profile.target_photos geo-tagged photos with the three
/// redundancy patterns the paper's Figure 3 discussion relies on:
///
///  * street topic clusters — photos spread along popular (hotspot)
///    streets sharing a small per-street topic tag set (the
///    "demonstration along Oxford Street" effect);
///  * point events — tight spatial clusters with near-duplicate tag sets
///    (the "everyone photographs the HMV storefront" effect);
///  * uniform background photos with Zipf noise tags.
///
/// Cluster streets are chosen among the ground-truth hotspot streets, so
/// the top SOIs returned for the planted categories have photo sets large
/// enough to describe.
std::vector<Photo> GeneratePhotos(const CityProfile& profile,
                                  const RoadNetwork& network,
                                  const GroundTruth& ground_truth,
                                  Vocabulary* vocabulary, Rng* rng);

}  // namespace soi

#endif  // SOI_DATAGEN_PHOTO_GENERATOR_H_
