#include "datagen/city_profile.h"

#include <cmath>

#include "common/check.h"

namespace soi {

namespace {

// Categories common to all cities. The four Table 4 query categories get
// per-city fractions (passed in); the rest are shared filler so the total
// keyword distribution is realistic.
std::vector<CategorySpec> MakeCategories(double religion, double education,
                                         double food, double services,
                                         double shop) {
  std::vector<CategorySpec> categories = {
      // The Table 4 query categories. Real cities have many genuinely
      // dense streets per category — that heavy tail is what makes the
      // SOI bounds effective. Counts are for scale 1.0 and shrink with
      // sqrt(scale) in ApplyScale.
      {"religion", religion, 60, 0.75},
      {"education", education, 160, 0.8},
      {"food", food, 450, 0.85},
      {"services", services, 450, 0.85},
      // The Table 2 effectiveness category.
      {"shop", shop, 32, 0.85},
      // Background-heavy filler categories.
      {"entertainment", 0.04, 50, 0.6},
      {"culture", 0.03, 30, 0.5},
      {"hotel", 0.03, 20, 0.5},
      {"transport", 0.06, 0, 0.0},
      {"parking", 0.06, 0, 0.0},
      {"office", 0.10, 0, 0.0},
      {"residence", 0.20, 0, 0.0},
      {"bank", 0.02, 0, 0.0},
      {"pharmacy", 0.02, 0, 0.0},
      {"monument", 0.02, 4, 0.30},
  };
  return categories;
}

void ApplyScale(CityProfile* profile, double scale) {
  SOI_CHECK(scale > 0 && scale <= 1) << "scale must be in (0, 1]";
  profile->target_segments =
      static_cast<int64_t>(std::llround(profile->target_segments * scale));
  profile->target_pois =
      static_cast<int64_t>(std::llround(profile->target_pois * scale));
  profile->target_photos =
      static_cast<int64_t>(std::llround(profile->target_photos * scale));
  // Shrink the bounding box sides by sqrt(scale) so spatial densities
  // (POIs per area, block and segment lengths, masses per grid cell) stay
  // at the paper's real-data levels — a scaled city is a smaller city,
  // not a sparser one. The algorithms' pruning behaviour depends on those
  // densities, so this is what keeps the Figure 4/6 shapes intact at
  // small scales.
  double side = std::sqrt(scale);
  // Hotspot street counts shrink with the linear city size (they are a
  // roughly constant fraction of all streets); floors keep the ground
  // truth meaningful at tiny scales.
  for (CategorySpec& category : profile->categories) {
    if (category.num_hotspot_streets > 0) {
      category.num_hotspot_streets = std::max<int32_t>(
          4, static_cast<int32_t>(
                 std::llround(category.num_hotspot_streets * side)));
    }
  }
  Point center{(profile->bbox.min.x + profile->bbox.max.x) / 2,
               (profile->bbox.min.y + profile->bbox.max.y) / 2};
  double half_width = profile->bbox.Width() / 2 * side;
  double half_height = profile->bbox.Height() / 2 * side;
  profile->bbox =
      Box::FromCorners(Point{center.x - half_width, center.y - half_height},
                       Point{center.x + half_width, center.y + half_height});
}

}  // namespace

CityProfile LondonProfile(double scale) {
  CityProfile profile;
  profile.name = "London";
  profile.seed = 20160315;
  profile.bbox = Box::FromCorners(Point{-0.25, 51.45}, Point{0.05, 51.60});
  profile.target_segments = 113885;
  profile.target_pois = 2114264;
  profile.target_photos = 500000;
  // Table 4 London fractions: 10445 / 22237 / 80529 / 88916 of 2114264.
  profile.categories =
      MakeCategories(0.0049, 0.0105, 0.0381, 0.0421, 0.030);
  ApplyScale(&profile, scale);
  return profile;
}

CityProfile BerlinProfile(double scale) {
  CityProfile profile;
  profile.name = "Berlin";
  profile.seed = 20160316;
  profile.bbox = Box::FromCorners(Point{13.25, 52.45}, Point{13.55, 52.58});
  profile.target_segments = 47755;
  profile.target_pois = 797244;
  profile.target_photos = 120000;
  // Table 4 Berlin fractions: 1969 / 8537 / 37444 / 30360 of 797244.
  profile.categories =
      MakeCategories(0.0025, 0.0107, 0.0470, 0.0381, 0.028);
  ApplyScale(&profile, scale);
  return profile;
}

CityProfile ViennaProfile(double scale) {
  CityProfile profile;
  profile.name = "Vienna";
  profile.seed = 20160317;
  profile.bbox = Box::FromCorners(Point{16.28, 48.15}, Point{16.45, 48.25});
  profile.target_segments = 22211;
  profile.target_pois = 408712;
  profile.target_photos = 200000;
  // Table 4 Vienna fractions: 1678 / 5982 / 18035 / 15789 of 408712.
  profile.categories =
      MakeCategories(0.0041, 0.0146, 0.0441, 0.0386, 0.026);
  ApplyScale(&profile, scale);
  return profile;
}

std::vector<CityProfile> AllCityProfiles(double scale) {
  return {LondonProfile(scale), BerlinProfile(scale), ViennaProfile(scale)};
}

}  // namespace soi
