#include "datagen/photo_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace soi {

namespace {

constexpr const char* kTopicWords[] = {
    "shopping", "fashion",  "crowd",    "night",   "facade", "window",
    "sale",     "festival", "concert",  "protest", "parade", "market",
    "tourists", "historic", "christmas", "lights", "rain",   "summer",
    "food",     "coffee",   "architecture", "graffiti", "bus", "bike",
};

// Synthetic visual descriptors: a base embedding plus per-photo jitter,
// clamped into [0, 1]^dim.
std::vector<float> RandomDescriptor(int32_t dim, Rng* rng) {
  std::vector<float> descriptor(static_cast<size_t>(dim));
  for (float& v : descriptor) {
    v = static_cast<float>(rng->UniformDouble());
  }
  return descriptor;
}

std::vector<float> JitteredDescriptor(const std::vector<float>& base,
                                      double sigma, Rng* rng) {
  std::vector<float> descriptor = base;
  for (float& v : descriptor) {
    v = static_cast<float>(std::clamp(
        static_cast<double>(v) + rng->Normal(0, sigma), 0.0, 1.0));
  }
  return descriptor;
}

std::vector<KeywordId> InternNoise(const CityProfile& profile,
                                   Vocabulary* vocabulary) {
  std::vector<KeywordId> ids;
  ids.reserve(static_cast<size_t>(profile.noise_vocabulary));
  for (int32_t i = 0; i < profile.noise_vocabulary; ++i) {
    // Shares the POI noise vocabulary ("tagN"), so photo tags and POI
    // keywords overlap like real Flickr tags and POI descriptions do.
    ids.push_back(vocabulary->Intern("tag" + std::to_string(i)));
  }
  return ids;
}

}  // namespace

std::vector<Photo> GeneratePhotos(const CityProfile& profile,
                                  const RoadNetwork& network,
                                  const GroundTruth& ground_truth,
                                  Vocabulary* vocabulary, Rng* rng) {
  SOI_CHECK(vocabulary != nullptr);
  SOI_CHECK(rng != nullptr);
  std::vector<Photo> photos;
  photos.reserve(static_cast<size_t>(profile.target_photos));

  std::vector<KeywordId> noise = InternNoise(profile, vocabulary);
  ZipfSampler noise_sampler(noise.size(), profile.noise_zipf_theta);
  std::vector<KeywordId> topics;
  for (const char* word : kTopicWords) {
    topics.push_back(vocabulary->Intern(word));
  }

  auto noise_tags = [&](std::vector<KeywordId>* ids, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      ids->push_back(noise[noise_sampler.Sample(rng)]);
    }
  };
  auto tag_budget = [&]() {
    return rng->UniformInt(profile.min_photo_tags, profile.max_photo_tags);
  };

  // --- cluster streets: hotspot streets of the planted categories, ranked
  // best-first across categories, so SOI winners have rich photo sets.
  // The "shop" category leads (its top street is the city's "Oxford
  // Street": the most photographed place and the benches' query target).
  std::vector<const CategoryGroundTruth*> ordered_categories;
  for (const CategoryGroundTruth& category : ground_truth.categories) {
    if (category.keyword == "shop") {
      ordered_categories.insert(ordered_categories.begin(), &category);
    } else {
      ordered_categories.push_back(&category);
    }
  }
  std::vector<std::pair<StreetId, KeywordId>> cluster_streets;
  for (size_t rank = 0; cluster_streets.size() <
                        static_cast<size_t>(profile.num_photo_street_clusters);
       ++rank) {
    bool any = false;
    for (const CategoryGroundTruth* category : ordered_categories) {
      if (rank < category->hotspots.size() &&
          cluster_streets.size() <
              static_cast<size_t>(profile.num_photo_street_clusters)) {
        cluster_streets.emplace_back(category->hotspots[rank],
                                     vocabulary->Intern(category->keyword));
        any = true;
      }
    }
    if (!any) break;  // Ground truth exhausted.
  }

  // --- street topic clusters ------------------------------------------------
  if (!cluster_streets.empty()) {
    int64_t street_photos = static_cast<int64_t>(
        std::llround(profile.photo_street_share * profile.target_photos));
    // The first cluster street (the "Oxford Street") is 3x as photographed.
    std::vector<double> weights(cluster_streets.size(), 1.0);
    weights[0] = 3.0;
    double weight_sum = 0.0;
    for (double weight : weights) weight_sum += weight;
    for (size_t c = 0; c < cluster_streets.size(); ++c) {
      auto [street, category_keyword] = cluster_streets[c];
      // Per-street topic tag pool.
      std::vector<KeywordId> street_topics;
      int64_t num_topics = rng->UniformInt(2, 4);
      for (int64_t i = 0; i < num_topics; ++i) {
        street_topics.push_back(
            topics[static_cast<size_t>(rng->UniformInt(topics.size()))]);
      }
      street_topics.push_back(
          vocabulary->Intern("street" + std::to_string(street)));
      std::vector<float> street_descriptor;
      if (profile.visual_descriptor_dim > 0) {
        street_descriptor =
            RandomDescriptor(profile.visual_descriptor_dim, rng);
      }
      int64_t n = static_cast<int64_t>(
          std::llround(street_photos * weights[c] / weight_sum));
      for (int64_t i = 0; i < n; ++i) {
        Photo photo;
        photo.position = RandomPointNearStreet(network, street,
                                               profile.hotspot_sigma, rng);
        if (profile.visual_descriptor_dim > 0) {
          photo.visual = JitteredDescriptor(street_descriptor, 0.12, rng);
        }
        std::vector<KeywordId> ids;
        ids.push_back(category_keyword);
        // Mostly-shared street topic tags: cluster photos are textually
        // redundant with each other and distinct from background photos.
        for (KeywordId topic : street_topics) {
          if (rng->Bernoulli(0.85)) ids.push_back(topic);
        }
        noise_tags(&ids, std::max<int64_t>(
                             1, tag_budget() -
                                    static_cast<int64_t>(ids.size())));
        photo.keywords = KeywordSet(std::move(ids));
        photos.push_back(std::move(photo));
      }
    }

    // --- point events (near-duplicate tag sets) ----------------------------
    int64_t event_photos = static_cast<int64_t>(
        std::llround(profile.photo_event_share * profile.target_photos));
    int32_t num_events = profile.num_photo_events;
    for (int32_t e = 0; e < num_events; ++e) {
      // Events sit on the cluster streets, biased to the first one.
      size_t which = rng->Bernoulli(0.4)
                         ? 0
                         : static_cast<size_t>(
                               rng->UniformInt(cluster_streets.size()));
      StreetId street = cluster_streets[which].first;
      Point center = RandomPointNearStreet(network, street,
                                           profile.hotspot_sigma / 2, rng);
      // The shared near-duplicate tag template.
      std::vector<KeywordId> base_tags;
      base_tags.push_back(vocabulary->Intern("event" + std::to_string(e)));
      base_tags.push_back(cluster_streets[which].second);
      int64_t num_topics = rng->UniformInt(3, 5);
      for (int64_t i = 0; i < num_topics; ++i) {
        base_tags.push_back(
            topics[static_cast<size_t>(rng->UniformInt(topics.size()))]);
      }
      std::vector<float> event_descriptor;
      if (profile.visual_descriptor_dim > 0) {
        event_descriptor =
            RandomDescriptor(profile.visual_descriptor_dim, rng);
      }
      int64_t n = event_photos / num_events;
      for (int64_t i = 0; i < n; ++i) {
        Photo photo;
        photo.position = Point{center.x + rng->Normal(0, 0.00001),
                               center.y + rng->Normal(0, 0.00001)};
        if (profile.visual_descriptor_dim > 0) {
          // Near-duplicate shots of the same scene: nearly identical
          // embeddings.
          photo.visual = JitteredDescriptor(event_descriptor, 0.015, rng);
        }
        std::vector<KeywordId> ids = base_tags;
        // At most one tag of variation: near-duplicates.
        if (rng->Bernoulli(0.3)) noise_tags(&ids, 1);
        photo.keywords = KeywordSet(std::move(ids));
        photos.push_back(std::move(photo));
      }
    }
  }

  // --- uniform background -----------------------------------------------------
  const Box& bbox = profile.bbox;
  while (static_cast<int64_t>(photos.size()) < profile.target_photos) {
    Photo photo;
    photo.position = Point{rng->UniformDouble(bbox.min.x, bbox.max.x),
                           rng->UniformDouble(bbox.min.y, bbox.max.y)};
    if (profile.visual_descriptor_dim > 0) {
      photo.visual = RandomDescriptor(profile.visual_descriptor_dim, rng);
    }
    std::vector<KeywordId> ids;
    if (rng->Bernoulli(0.3)) {
      ids.push_back(
          topics[static_cast<size_t>(rng->UniformInt(topics.size()))]);
    }
    noise_tags(&ids, std::max<int64_t>(1, tag_budget() -
                                              static_cast<int64_t>(
                                                  ids.size())));
    photo.keywords = KeywordSet(std::move(ids));
    photos.push_back(std::move(photo));
  }
  return photos;
}

}  // namespace soi
