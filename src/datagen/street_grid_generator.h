#ifndef SOI_DATAGEN_STREET_GRID_GENERATOR_H_
#define SOI_DATAGEN_STREET_GRID_GENERATOR_H_

#include "common/random.h"
#include "common/status.h"
#include "datagen/city_profile.h"
#include "network/road_network.h"

namespace soi {

/// Generates a synthetic urban road network: a jittered street grid whose
/// rows/columns are partitioned into named streets of a few blocks each,
/// with random breakpoints subdividing blocks into segments, plus a few
/// long diagonal arterials. Sized to approximate
/// profile.target_segments.
///
/// This is the stand-in for the paper's OpenStreetMap networks: the SOI
/// algorithms consume only segment geometry and segment->street grouping,
/// both of which this generator produces with realistic distributions
/// (see DESIGN.md, Substitutions).
Result<RoadNetwork> GenerateStreetGrid(const CityProfile& profile, Rng* rng);

}  // namespace soi

#endif  // SOI_DATAGEN_STREET_GRID_GENERATOR_H_
