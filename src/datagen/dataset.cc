#include "datagen/dataset.h"

#include <utility>

#include "datagen/photo_generator.h"
#include "datagen/street_grid_generator.h"
#include "network/network_io.h"
#include "objects/object_io.h"

namespace soi {

Result<Dataset> GenerateCity(const CityProfile& profile) {
  Dataset dataset;
  dataset.name = profile.name;
  Rng rng(profile.seed);
  SOI_ASSIGN_OR_RETURN(dataset.network, GenerateStreetGrid(profile, &rng));
  PoiGenerationResult pois =
      GeneratePois(profile, dataset.network, &dataset.vocabulary, &rng);
  dataset.pois = std::move(pois.pois);
  dataset.ground_truth = std::move(pois.ground_truth);
  dataset.photos = GeneratePhotos(profile, dataset.network,
                                  dataset.ground_truth,
                                  &dataset.vocabulary, &rng);
  return dataset;
}

Box ComputeDatasetBounds(const Dataset& dataset) {
  Box bounds = dataset.network.bounds();
  for (const Poi& poi : dataset.pois) bounds.ExtendToCover(poi.position);
  for (const Photo& photo : dataset.photos) {
    bounds.ExtendToCover(photo.position);
  }
  return bounds;
}

std::unique_ptr<DatasetIndexes> BuildIndexes(const Dataset& dataset,
                                             double cell_size,
                                             ThreadPool* pool) {
  Box bounds = ComputeDatasetBounds(dataset);
  GridGeometry geometry(bounds, cell_size);

  std::vector<Point> photo_positions;
  photo_positions.reserve(dataset.photos.size());
  for (const Photo& photo : dataset.photos) {
    photo_positions.push_back(photo.position);
  }

  PoiGridIndex poi_grid(bounds, cell_size, dataset.pois);
  GlobalInvertedIndex global_index(poi_grid);
  SegmentCellIndex segment_cells(dataset.network, geometry, pool);
  PointGrid<PhotoId> photo_grid(geometry, photo_positions);
  return std::make_unique<DatasetIndexes>(DatasetIndexes{
      std::move(geometry), std::move(poi_grid), std::move(global_index),
      std::move(segment_cells), std::move(photo_grid)});
}

Status SaveDataset(const Dataset& dataset, const std::string& prefix) {
  SOI_RETURN_NOT_OK(
      WriteNetworkToFile(dataset.network, prefix + ".network"));
  SOI_RETURN_NOT_OK(
      WritePoisToFile(dataset.pois, dataset.vocabulary, prefix + ".pois"));
  SOI_RETURN_NOT_OK(WritePhotosToFile(dataset.photos, dataset.vocabulary,
                                      prefix + ".photos"));
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& name,
                            const std::string& prefix) {
  Dataset dataset;
  dataset.name = name;
  SOI_ASSIGN_OR_RETURN(dataset.network,
                       ReadNetworkFromFile(prefix + ".network"));
  SOI_ASSIGN_OR_RETURN(
      dataset.pois,
      ReadPoisFromFile(prefix + ".pois", &dataset.vocabulary));
  SOI_ASSIGN_OR_RETURN(
      dataset.photos,
      ReadPhotosFromFile(prefix + ".photos", &dataset.vocabulary));
  return dataset;
}

}  // namespace soi
