#ifndef SOI_DATAGEN_DATASET_H_
#define SOI_DATAGEN_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/city_profile.h"
#include "datagen/poi_generator.h"
#include "grid/global_inverted_index.h"
#include "grid/point_grid.h"
#include "grid/poi_grid_index.h"
#include "grid/segment_cell_index.h"
#include "network/road_network.h"
#include "objects/photo.h"
#include "objects/poi.h"
#include "text/vocabulary.h"

namespace soi {

/// A complete city dataset: road network, POIs, photos, their shared
/// vocabulary, and (for generated cities) the planted ground truth.
struct Dataset {
  std::string name;
  Vocabulary vocabulary;
  RoadNetwork network;
  std::vector<Poi> pois;
  std::vector<Photo> photos;
  GroundTruth ground_truth;
};

/// Deterministically generates the full dataset of a city profile
/// (network, POIs, photos, ground truth) from profile.seed.
[[nodiscard]] Result<Dataset> GenerateCity(const CityProfile& profile);

/// The offline index suite of Sections 3.2.1 / 4.2.1 over one dataset:
/// shared grid geometry, POI grid with local inverted indices, global
/// inverted index, segment<->cell maps, and a bucketed photo grid for R_s
/// extraction. Holds pointers into the dataset, which must outlive it.
struct DatasetIndexes {
  GridGeometry geometry;
  PoiGridIndex poi_grid;
  GlobalInvertedIndex global_index;
  SegmentCellIndex segment_cells;
  PointGrid<PhotoId> photo_grid;
};

/// The grid extent BuildIndexes covers: the union of the network, POI,
/// and photo bounding boxes. Exposed so warm-start consumers
/// (src/snapshot, tests) can check a restored geometry against the one a
/// fresh build would derive.
Box ComputeDatasetBounds(const Dataset& dataset);

/// Builds all offline indices with square grid cells of side `cell_size`.
/// The grid covers ComputeDatasetBounds(dataset).
/// `pool` (may be null) parallelizes the segment<->cell map construction;
/// it is not retained.
std::unique_ptr<DatasetIndexes> BuildIndexes(const Dataset& dataset,
                                             double cell_size,
                                             ThreadPool* pool = nullptr);

/// Persists a dataset as <prefix>.network / <prefix>.pois / <prefix>.photos
/// (the planted ground truth is derivable by regenerating; it is not
/// serialized).
[[nodiscard]] Status SaveDataset(const Dataset& dataset,
                                 const std::string& prefix);

/// Loads a dataset written by SaveDataset.
[[nodiscard]] Result<Dataset> LoadDataset(const std::string& name,
                                          const std::string& prefix);

}  // namespace soi

#endif  // SOI_DATAGEN_DATASET_H_
