#include "datagen/street_grid_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "network/network_builder.h"

namespace soi {

namespace {

// Name pools for generated streets.
constexpr const char* kNameBases[] = {
    "Oxford",   "Regent",    "Baker",     "Camden",   "Kings",
    "Victoria", "Albert",    "Station",   "Church",   "Market",
    "Mill",     "Park",      "High",      "Bridge",   "Castle",
    "Garden",   "River",     "Harbor",    "Linden",   "Rose",
    "Maple",    "Cedar",     "Willow",    "Elm",      "Chestnut",
    "Granite",  "Crown",     "Imperial",  "Liberty",  "Union",
    "Central",  "North",     "South",     "East",     "West",
    "Old",      "New",       "Grand",     "Little",   "Upper",
};
constexpr const char* kNameTypes[] = {"Street", "Road", "Avenue", "Lane",
                                      "Boulevard"};

class GridBuilder {
 public:
  GridBuilder(const CityProfile& profile, Rng* rng)
      : profile_(profile), rng_(rng) {}

  Result<RoadNetwork> Build();

 private:
  void ComputeDimensions();
  void PlaceIntersections();
  Status BuildLine(bool horizontal, int32_t line_index);
  Status BuildArterial(int32_t index);
  std::string NextName();
  VertexId IntersectionVertex(int32_t row, int32_t col);
  // Appends `count` breakpoint vertices strictly between `a` and `b`.
  void AppendBreakpoints(const Point& a, const Point& b, double lateral_scale,
                         std::vector<VertexId>* path);

  const CityProfile& profile_;
  Rng* rng_;
  NetworkBuilder builder_;
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  double dx_ = 0.0;
  double dy_ = 0.0;
  std::vector<Point> intersections_;   // rows_ x cols_, row-major.
  std::vector<VertexId> vertex_ids_;   // Lazily created, -1 = absent.
  int64_t name_counter_ = 0;
};

void GridBuilder::ComputeDimensions() {
  double width = profile_.bbox.Width();
  double height = profile_.bbox.Height();
  SOI_CHECK(width > 0 && height > 0);
  double aspect = width / height;
  double blocks_needed = static_cast<double>(profile_.target_segments) /
                         (1.0 + profile_.breakpoints_per_block);
  // rows*(cols-1) + cols*(rows-1) ~ 2*rows*cols blocks.
  double rows = std::sqrt(blocks_needed / (2.0 * aspect));
  rows_ = std::max<int32_t>(3, static_cast<int32_t>(std::llround(rows)));
  cols_ = std::max<int32_t>(
      3, static_cast<int32_t>(std::llround(rows * aspect)));
  dx_ = width / (cols_ - 1);
  dy_ = height / (rows_ - 1);
}

void GridBuilder::PlaceIntersections() {
  intersections_.resize(static_cast<size_t>(rows_) * cols_);
  vertex_ids_.assign(intersections_.size(), -1);
  double sx = profile_.jitter * dx_;
  double sy = profile_.jitter * dy_;
  for (int32_t i = 0; i < rows_; ++i) {
    for (int32_t j = 0; j < cols_; ++j) {
      Point p{profile_.bbox.min.x + j * dx_ + rng_->Normal(0, sx),
              profile_.bbox.min.y + i * dy_ + rng_->Normal(0, sy)};
      intersections_[static_cast<size_t>(i) * cols_ + j] = p;
    }
  }
}

VertexId GridBuilder::IntersectionVertex(int32_t row, int32_t col) {
  size_t idx = static_cast<size_t>(row) * cols_ + col;
  if (vertex_ids_[idx] < 0) {
    vertex_ids_[idx] = builder_.AddVertex(intersections_[idx]);
  }
  return vertex_ids_[idx];
}

std::string GridBuilder::NextName() {
  size_t base = static_cast<size_t>(
      rng_->UniformInt(std::size(kNameBases)));
  size_t type = static_cast<size_t>(
      rng_->UniformInt(std::size(kNameTypes)));
  // A numeric suffix keeps names unique without a lookup table.
  return std::string(kNameBases[base]) + " " + kNameTypes[type] + " " +
         std::to_string(++name_counter_);
}

void GridBuilder::AppendBreakpoints(const Point& a, const Point& b,
                                    double lateral_scale,
                                    std::vector<VertexId>* path) {
  double expected = profile_.breakpoints_per_block;
  int32_t count = static_cast<int32_t>(expected);
  if (rng_->Bernoulli(expected - count)) ++count;
  if (count <= 0) return;
  std::vector<double> ts;
  ts.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    ts.push_back(rng_->UniformDouble(0.15, 0.85));
  }
  std::sort(ts.begin(), ts.end());
  Point dir = b - a;
  // Unit normal for a slight lateral wiggle at each breakpoint.
  double len = a.DistanceTo(b);
  Point normal =
      len > 0 ? Point{-dir.y / len, dir.x / len} : Point{0.0, 0.0};
  for (double t : ts) {
    double offset = rng_->Normal(0, lateral_scale);
    Point p = Point{a.x + dir.x * t, a.y + dir.y * t} + normal * offset;
    path->push_back(builder_.AddVertex(p));
  }
}

Status GridBuilder::BuildLine(bool horizontal, int32_t line_index) {
  int32_t span = horizontal ? cols_ : rows_;
  double lateral = 0.04 * (horizontal ? dy_ : dx_);
  int32_t pos = 0;
  while (pos + 1 < span) {
    int32_t blocks = static_cast<int32_t>(
        rng_->UniformInt(profile_.min_blocks_per_street,
                         profile_.max_blocks_per_street));
    int32_t end = std::min(pos + blocks, span - 1);
    std::vector<VertexId> path;
    for (int32_t j = pos; j < end; ++j) {
      int32_t r0 = horizontal ? line_index : j;
      int32_t c0 = horizontal ? j : line_index;
      int32_t r1 = horizontal ? line_index : j + 1;
      int32_t c1 = horizontal ? j + 1 : line_index;
      path.push_back(IntersectionVertex(r0, c0));
      AppendBreakpoints(intersections_[static_cast<size_t>(r0) * cols_ + c0],
                        intersections_[static_cast<size_t>(r1) * cols_ + c1],
                        lateral, &path);
    }
    int32_t rl = horizontal ? line_index : end;
    int32_t cl = horizontal ? end : line_index;
    path.push_back(IntersectionVertex(rl, cl));
    SOI_ASSIGN_OR_RETURN(StreetId unused,
                         builder_.AddStreet(NextName(), path));
    (void)unused;
    pos = end;
  }
  return Status::OK();
}

Status GridBuilder::BuildArterial(int32_t /*index*/) {
  // A long polyline crossing the city with few, long segments; these
  // produce the large max-segment-length tail of Table 1.
  bool west_east = rng_->Bernoulli(0.5);
  const Box& bbox = profile_.bbox;
  Point start;
  Point end;
  if (west_east) {
    start = Point{bbox.min.x, rng_->UniformDouble(bbox.min.y, bbox.max.y)};
    end = Point{bbox.max.x, rng_->UniformDouble(bbox.min.y, bbox.max.y)};
  } else {
    start = Point{rng_->UniformDouble(bbox.min.x, bbox.max.x), bbox.min.y};
    end = Point{rng_->UniformDouble(bbox.min.x, bbox.max.x), bbox.max.y};
  }
  int32_t pieces = static_cast<int32_t>(rng_->UniformInt(3, 7));
  std::vector<VertexId> path;
  path.push_back(builder_.AddVertex(start));
  Point dir = end - start;
  double len = start.DistanceTo(end);
  Point normal = len > 0 ? Point{-dir.y / len, dir.x / len} : Point{0, 0};
  for (int32_t i = 1; i < pieces; ++i) {
    double t = static_cast<double>(i) / pieces;
    double offset = rng_->Normal(0, 0.01 * len);
    Point p = Point{start.x + dir.x * t, start.y + dir.y * t} +
              normal * offset;
    path.push_back(builder_.AddVertex(p));
  }
  path.push_back(builder_.AddVertex(end));
  SOI_ASSIGN_OR_RETURN(StreetId unused,
                       builder_.AddStreet(NextName(), path));
  (void)unused;
  return Status::OK();
}

Result<RoadNetwork> GridBuilder::Build() {
  ComputeDimensions();
  PlaceIntersections();
  for (int32_t i = 0; i < rows_; ++i) {
    SOI_RETURN_NOT_OK(BuildLine(/*horizontal=*/true, i));
  }
  for (int32_t j = 0; j < cols_; ++j) {
    SOI_RETURN_NOT_OK(BuildLine(/*horizontal=*/false, j));
  }
  for (int32_t a = 0; a < profile_.num_arterials; ++a) {
    SOI_RETURN_NOT_OK(BuildArterial(a));
  }
  return std::move(builder_).Build();
}

}  // namespace

Result<RoadNetwork> GenerateStreetGrid(const CityProfile& profile, Rng* rng) {
  SOI_CHECK(rng != nullptr);
  GridBuilder builder(profile, rng);
  return builder.Build();
}

}  // namespace soi
