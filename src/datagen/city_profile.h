#ifndef SOI_DATAGEN_CITY_PROFILE_H_
#define SOI_DATAGEN_CITY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/box.h"

namespace soi {

/// One POI/photo category of a synthetic city.
struct CategorySpec {
  /// The category keyword attached to every POI of the category (and used
  /// in queries, e.g. "shop").
  std::string keyword;
  /// Fraction of all POIs belonging to the category.
  double poi_fraction = 0.0;
  /// Number of planted hotspot streets (the ground-truth "streets of
  /// interest" for this category). 0 = background-only category.
  int32_t num_hotspot_streets = 0;
  /// Fraction of the category's POIs placed along the hotspot streets
  /// (the rest are uniform background).
  double hotspot_share = 0.0;
};

/// Full parameterization of a synthetic city. The three bundled presets
/// (London / Berlin / Vienna) are tuned so the generated datasets match
/// the paper's Table 1 and Table 4 statistics at `scale` = 1 and shrink
/// proportionally below it.
struct CityProfile {
  std::string name;
  uint64_t seed = 1;

  /// Geographic extent in degree-like planar units.
  Box bbox;

  // --- road network -------------------------------------------------------
  /// Approximate number of street segments to generate.
  int64_t target_segments = 10000;
  /// Expected extra breakpoints inserted per city block (subdividing the
  /// block's segment).
  double breakpoints_per_block = 0.3;
  /// Positional jitter of intersections, as a fraction of the block size.
  double jitter = 0.15;
  /// Streets span this many consecutive blocks (uniform range).
  int32_t min_blocks_per_street = 2;
  int32_t max_blocks_per_street = 6;
  /// Long diagonal arterial streets laid over the grid.
  int32_t num_arterials = 6;

  // --- POIs ----------------------------------------------------------------
  int64_t target_pois = 100000;
  std::vector<CategorySpec> categories;
  /// Lateral placement spread of hotspot POIs around their street, in
  /// coordinate units (the paper's eps = 0.0005 is a natural scale).
  double hotspot_sigma = 0.00025;
  /// Fraction of non-hotspot POIs placed along streets (the rest are
  /// uniform over the bounding box). Real-world POIs line the streets, so
  /// this defaults high.
  double background_street_share = 0.95;
  /// Zipf exponent of street popularity for background placement: a few
  /// streets accumulate many POIs, most get few — the heavy spatial skew
  /// the SOI bounds exploit on real data.
  double street_popularity_theta = 1.3;
  /// Number of generic noise keywords in the vocabulary and the Zipf skew
  /// of their assignment.
  int32_t noise_vocabulary = 2000;
  double noise_zipf_theta = 1.1;
  /// Extra noise keywords per POI (uniform in [min, max]).
  int32_t min_noise_keywords = 1;
  int32_t max_noise_keywords = 3;

  // --- photos ---------------------------------------------------------------
  int64_t target_photos = 30000;
  /// Photo topic clusters along popular streets, and point-like "event"
  /// hotspots producing near-duplicate tag sets (the HMV effect of
  /// Figure 3).
  int32_t num_photo_street_clusters = 12;
  int32_t num_photo_events = 8;
  double photo_street_share = 0.35;
  double photo_event_share = 0.25;
  int32_t min_photo_tags = 3;
  int32_t max_photo_tags = 8;
  /// Dimension of the synthetic visual descriptors attached to photos
  /// (the visual-features extension); 0 disables them. Photos of the same
  /// event get near-identical descriptors, street-cluster photos get
  /// similar ones, background photos random ones.
  int32_t visual_descriptor_dim = 8;
};

/// Presets matching the paper's datasets (Table 1), scaled by `scale`
/// (1.0 = the paper's sizes; the bench default of 0.1 keeps full
/// experiment sweeps in seconds). Requires 0 < scale <= 1.
CityProfile LondonProfile(double scale);
CityProfile BerlinProfile(double scale);
CityProfile ViennaProfile(double scale);

/// All three presets.
std::vector<CityProfile> AllCityProfiles(double scale);

}  // namespace soi

#endif  // SOI_DATAGEN_CITY_PROFILE_H_
