#ifndef SOI_DATAGEN_POI_GENERATOR_H_
#define SOI_DATAGEN_POI_GENERATOR_H_

#include <array>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/city_profile.h"
#include "network/road_network.h"
#include "objects/poi.h"
#include "text/vocabulary.h"

namespace soi {

/// Planted ground truth of one category: the hotspot streets the generator
/// concentrated the category's POIs around, ranked by decreasing planted
/// POI count. `web_sources` are two derived noisy 5-street lists standing
/// in for the paper's authoritative web sources of Table 2.
struct CategoryGroundTruth {
  std::string keyword;
  std::vector<StreetId> hotspots;
  std::vector<int64_t> planted_counts;  // Parallel to `hotspots`.
  std::array<std::vector<StreetId>, 2> web_sources;
};

/// Ground truth for all hotspot categories of a generated city.
struct GroundTruth {
  std::vector<CategoryGroundTruth> categories;

  /// The entry for `keyword`, or nullptr.
  const CategoryGroundTruth* Find(const std::string& keyword) const;
};

/// Generated POIs plus the planted ground truth.
struct PoiGenerationResult {
  std::vector<Poi> pois;
  GroundTruth ground_truth;
};

/// A uniformly random point on the street's polyline (segments weighted by
/// length).
Point RandomPointOnStreet(const RoadNetwork& network, StreetId street,
                          Rng* rng);

/// A point laterally offset from a random point of the street by
/// Normal(0, sigma) along the segment normal. With `concentrated`, the
/// along-street position bunches around the street's middle stretch
/// (Normal(0.5, 0.18) of the street length) instead of being uniform.
Point RandomPointNearStreet(const RoadNetwork& network, StreetId street,
                            double sigma, Rng* rng,
                            bool concentrated = false);

/// Generates profile.target_pois POIs: per category, a hotspot share is
/// clustered around planted streets (recorded as ground truth) and the
/// rest is uniform background; the remaining mass becomes generic "place"
/// POIs. Every POI carries its category keyword plus Zipf-distributed
/// noise keywords interned into `vocabulary`.
PoiGenerationResult GeneratePois(const CityProfile& profile,
                                 const RoadNetwork& network,
                                 Vocabulary* vocabulary, Rng* rng);

}  // namespace soi

#endif  // SOI_DATAGEN_POI_GENERATOR_H_
