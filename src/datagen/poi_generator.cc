#include "datagen/poi_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace soi {

namespace {

// Picks a random segment of the street, weighted by length, and a random
// parameter along it. Returns the segment id and point.
std::pair<SegmentId, Point> RandomStreetLocation(const RoadNetwork& network,
                                                 StreetId street, Rng* rng,
                                                 bool concentrated = false) {
  const Street& s = network.street(street);
  SOI_DCHECK(!s.segments.empty());
  double along = rng->UniformDouble();
  if (concentrated) {
    // Hotspot POIs bunch around the street's commercial core rather than
    // spreading evenly (real shopping streets peak near one stretch).
    along = std::clamp(rng->Normal(0.5, 0.18), 0.0, 1.0);
  }
  double target = along * s.length;
  double acc = 0.0;
  SegmentId chosen = s.segments.back();
  for (SegmentId id : s.segments) {
    acc += network.segment(id).length;
    if (target <= acc) {
      chosen = id;
      break;
    }
  }
  const NetworkSegment& seg = network.segment(chosen);
  return {chosen, seg.geometry.Interpolate(rng->UniformDouble())};
}

// Noise keyword ids, pre-interned once so generation does not hash strings.
std::vector<KeywordId> InternNoiseKeywords(const CityProfile& profile,
                                           Vocabulary* vocabulary) {
  std::vector<KeywordId> ids;
  ids.reserve(static_cast<size_t>(profile.noise_vocabulary));
  for (int32_t i = 0; i < profile.noise_vocabulary; ++i) {
    ids.push_back(vocabulary->Intern("tag" + std::to_string(i)));
  }
  return ids;
}

// Streets eligible as hotspots: mid-length multi-segment streets (very
// short streets have too little area; arterials are atypical shopping
// streets).
std::vector<StreetId> EligibleHotspotStreets(const RoadNetwork& network) {
  std::vector<StreetId> ids;
  std::vector<double> lengths;
  for (StreetId id = 0; id < network.num_streets(); ++id) {
    lengths.push_back(network.street(id).length);
  }
  std::vector<double> sorted = lengths;
  std::sort(sorted.begin(), sorted.end());
  double p25 = sorted[sorted.size() / 4];
  double p90 = sorted[sorted.size() * 9 / 10];
  for (StreetId id = 0; id < network.num_streets(); ++id) {
    const Street& s = network.street(id);
    if (s.segments.size() >= 2 && lengths[static_cast<size_t>(id)] >= p25 &&
        lengths[static_cast<size_t>(id)] <= p90) {
      ids.push_back(id);
    }
  }
  if (ids.empty()) {
    for (StreetId id = 0; id < network.num_streets(); ++id) ids.push_back(id);
  }
  return ids;
}

}  // namespace

const CategoryGroundTruth* GroundTruth::Find(
    const std::string& keyword) const {
  for (const CategoryGroundTruth& category : categories) {
    if (category.keyword == keyword) return &category;
  }
  return nullptr;
}

Point RandomPointOnStreet(const RoadNetwork& network, StreetId street,
                          Rng* rng) {
  return RandomStreetLocation(network, street, rng).second;
}

Point RandomPointNearStreet(const RoadNetwork& network, StreetId street,
                            double sigma, Rng* rng, bool concentrated) {
  auto [segment_id, point] =
      RandomStreetLocation(network, street, rng, concentrated);
  const Segment& seg = network.segment(segment_id).geometry;
  Point dir = seg.b - seg.a;
  double len = seg.Length();
  if (len == 0) return point;
  Point normal{-dir.y / len, dir.x / len};
  return point + normal * rng->Normal(0, sigma);
}

PoiGenerationResult GeneratePois(const CityProfile& profile,
                                 const RoadNetwork& network,
                                 Vocabulary* vocabulary, Rng* rng) {
  SOI_CHECK(vocabulary != nullptr);
  SOI_CHECK(rng != nullptr);
  PoiGenerationResult result;
  result.pois.reserve(static_cast<size_t>(profile.target_pois));

  std::vector<KeywordId> noise = InternNoiseKeywords(profile, vocabulary);
  ZipfSampler noise_sampler(noise.size(), profile.noise_zipf_theta);
  std::vector<KeywordId> category_keywords;
  for (const CategorySpec& category : profile.categories) {
    category_keywords.push_back(vocabulary->Intern(category.keyword));
  }
  KeywordId generic_keyword = vocabulary->Intern("place");

  std::vector<StreetId> eligible = EligibleHotspotStreets(network);
  rng->Shuffle(&eligible);
  size_t next_eligible = 0;
  auto take_street = [&]() {
    if (next_eligible >= eligible.size()) next_eligible = 0;  // Recycle.
    return eligible[next_eligible++];
  };

  // Cumulative category fractions, for sampling a secondary category
  // proportionally to category size (so small categories are not swamped
  // by cross-assignment noise).
  std::vector<double> category_cdf;
  double cdf_acc = 0.0;
  for (const CategorySpec& category : profile.categories) {
    cdf_acc += category.poi_fraction;
    category_cdf.push_back(cdf_acc);
  }
  auto sample_category = [&]() {
    double u = rng->UniformDouble() * cdf_acc;
    auto it = std::lower_bound(category_cdf.begin(), category_cdf.end(), u);
    size_t idx = static_cast<size_t>(it - category_cdf.begin());
    if (idx >= category_keywords.size()) idx = category_keywords.size() - 1;
    return category_keywords[idx];
  };

  auto make_keywords = [&](KeywordId category_keyword) {
    std::vector<KeywordId> ids;
    ids.push_back(category_keyword);
    // Occasional secondary category creates realistic keyword overlap.
    if (profile.categories.size() > 1 && rng->Bernoulli(0.1)) {
      ids.push_back(sample_category());
    }
    int64_t extra = rng->UniformInt(profile.min_noise_keywords,
                                    profile.max_noise_keywords);
    for (int64_t i = 0; i < extra; ++i) {
      ids.push_back(noise[noise_sampler.Sample(rng)]);
    }
    return KeywordSet(std::move(ids));
  };
  // Background placement: most POIs line the streets, with street
  // popularity following a Zipf law (downtown streets accumulate many
  // POIs) — real geodata is heavily skewed, which is exactly what the SOI
  // source-list bounds exploit. A shuffled street order decouples
  // popularity rank from street id.
  std::vector<StreetId> popularity_order(
      static_cast<size_t>(network.num_streets()));
  for (StreetId s = 0; s < network.num_streets(); ++s) {
    popularity_order[static_cast<size_t>(s)] = s;
  }
  rng->Shuffle(&popularity_order);
  ZipfSampler street_sampler(popularity_order.size(),
                             profile.street_popularity_theta);
  auto background_point = [&]() {
    const Box& bbox = profile.bbox;
    if (rng->Bernoulli(profile.background_street_share)) {
      StreetId street = popularity_order[street_sampler.Sample(rng)];
      return RandomPointNearStreet(network, street, profile.hotspot_sigma,
                                   rng);
    }
    return Point{rng->UniformDouble(bbox.min.x, bbox.max.x),
                 rng->UniformDouble(bbox.min.y, bbox.max.y)};
  };

  double total_fraction = 0.0;
  for (const CategorySpec& category : profile.categories) {
    total_fraction += category.poi_fraction;
  }
  SOI_CHECK(total_fraction <= 1.0)
      << "category fractions sum to " << total_fraction;

  for (size_t ci = 0; ci < profile.categories.size(); ++ci) {
    const CategorySpec& category = profile.categories[ci];
    KeywordId keyword = category_keywords[ci];
    int64_t count = static_cast<int64_t>(
        std::llround(category.poi_fraction * profile.target_pois));
    int64_t hotspot_count = 0;

    CategoryGroundTruth truth;
    truth.keyword = category.keyword;
    if (category.num_hotspot_streets > 0 && category.hotspot_share > 0) {
      hotspot_count = static_cast<int64_t>(
          std::llround(category.hotspot_share * count));
      // Rank weights ~ 1/(rank+1)^0.7: the top street is markedly denser,
      // later ones taper off (makes recall@k meaningful).
      std::vector<double> weights;
      double weight_sum = 0.0;
      for (int32_t h = 0; h < category.num_hotspot_streets; ++h) {
        truth.hotspots.push_back(take_street());
        weights.push_back(1.0 / std::pow(h + 1.0, 0.7));
        weight_sum += weights.back();
      }
      // Two sparse "prestige" streets (the paper's Kurfuerstendamm
      // effect): famous enough that the authoritative web sources list
      // them, but with a low POI density, so they tend to fall outside
      // the top-10 SOIs — reproducing the paper's recall of 0.8.
      constexpr int32_t kNumPrestige = 2;
      for (int32_t p = 0; p < kNumPrestige; ++p) {
        truth.hotspots.push_back(take_street());
        weights.push_back(0.08);
        weight_sum += weights.back();
      }
      truth.planted_counts.assign(truth.hotspots.size(), 0);
      for (size_t h = 0; h < truth.hotspots.size(); ++h) {
        int64_t n = static_cast<int64_t>(
            std::llround(hotspot_count * weights[h] / weight_sum));
        truth.planted_counts[h] = n;
        for (int64_t i = 0; i < n; ++i) {
          Poi poi;
          poi.position =
              RandomPointNearStreet(network, truth.hotspots[h],
                                    profile.hotspot_sigma, rng,
                                    /*concentrated=*/true);
          poi.keywords = make_keywords(keyword);
          result.pois.push_back(std::move(poi));
        }
      }
      // Two noisy "authoritative web source" lists: 4 streets drawn from
      // the top planted hotspots plus one prestige street, mirroring the
      // paper's Table 2 where each real source listed one street the
      // 10-SOIs missed.
      size_t num_dense = truth.hotspots.size() - kNumPrestige;
      for (size_t s = 0; s < truth.web_sources.size(); ++s) {
        std::vector<StreetId> pool(
            truth.hotspots.begin(),
            truth.hotspots.begin() + std::min<size_t>(num_dense, 4));
        rng->Shuffle(&pool);
        pool.push_back(truth.hotspots[num_dense + s % kNumPrestige]);
        truth.web_sources[s] = std::move(pool);
      }
      result.ground_truth.categories.push_back(std::move(truth));
    }
    // Background POIs of the category.
    for (int64_t i = hotspot_count; i < count; ++i) {
      Poi poi;
      poi.position = background_point();
      poi.keywords = make_keywords(keyword);
      result.pois.push_back(std::move(poi));
    }
  }

  // Fill the remainder with generic background places.
  while (static_cast<int64_t>(result.pois.size()) < profile.target_pois) {
    Poi poi;
    poi.position = background_point();
    poi.keywords = make_keywords(generic_keyword);
    result.pois.push_back(std::move(poi));
  }
  return result;
}

}  // namespace soi
