#ifndef SOI_GEOMETRY_SEGMENT_H_
#define SOI_GEOMETRY_SEGMENT_H_

#include <ostream>

#include "geometry/box.h"
#include "geometry/point.h"

namespace soi {

/// A line segment between two endpoints. The paper's street segments
/// (links l in L) are represented this way; len(l) is the Euclidean
/// distance between the endpoints (Section 3.1).
struct Segment {
  Point a;
  Point b;

  double Length() const { return a.DistanceTo(b); }

  Point Midpoint() const { return Point{(a.x + b.x) / 2, (a.y + b.y) / 2}; }

  /// Minimum bounding rectangle of the segment.
  Box BoundingBox() const { return Box::FromCorners(a, b); }

  /// The point on the segment closest to `p`.
  Point ClosestPointTo(const Point& p) const;

  /// Minimum Euclidean distance from `p` to any point on the segment
  /// (dist(p, l) of Section 3.1).
  double DistanceTo(const Point& p) const;

  /// The point at parameter t in [0, 1] along the segment (0 -> a, 1 -> b).
  Point Interpolate(double t) const {
    return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
  }
};

inline bool operator==(const Segment& s, const Segment& t) {
  return s.a == t.a && s.b == t.b;
}

std::ostream& operator<<(std::ostream& os, const Segment& s);

}  // namespace soi

#endif  // SOI_GEOMETRY_SEGMENT_H_
