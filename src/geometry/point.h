#ifndef SOI_GEOMETRY_POINT_H_
#define SOI_GEOMETRY_POINT_H_

#include <cmath>
#include <ostream>

namespace soi {

/// A point in the plane. Coordinates are in arbitrary planar units; the
/// bundled city presets use degree-like units so the paper's parameter
/// values (eps = 0.0005, rho = 0.0001) carry over directly.
struct Point {
  double x = 0.0;
  double y = 0.0;

  /// Euclidean distance to `other`.
  double DistanceTo(const Point& other) const {
    double dx = x - other.x;
    double dy = y - other.y;
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Squared Euclidean distance to `other` (avoids the sqrt on hot paths).
  double SquaredDistanceTo(const Point& other) const {
    double dx = x - other.x;
    double dy = y - other.y;
    return dx * dx + dy * dy;
  }
};

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}
inline bool operator!=(const Point& a, const Point& b) { return !(a == b); }

inline Point operator+(const Point& a, const Point& b) {
  return Point{a.x + b.x, a.y + b.y};
}
inline Point operator-(const Point& a, const Point& b) {
  return Point{a.x - b.x, a.y - b.y};
}
inline Point operator*(const Point& p, double s) {
  return Point{p.x * s, p.y * s};
}

/// Dot product of the vectors represented by `a` and `b`.
inline double Dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// Z component of the cross product of the vectors `a` and `b`.
inline double Cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace soi

#endif  // SOI_GEOMETRY_POINT_H_
