#include "geometry/box.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace soi {

Box Box::FromCorners(const Point& a, const Point& b) {
  Box box;
  box.min = Point{std::min(a.x, b.x), std::min(a.y, b.y)};
  box.max = Point{std::max(a.x, b.x), std::max(a.y, b.y)};
  return box;
}

double Box::Diagonal() const {
  if (IsEmpty()) return 0.0;
  return min.DistanceTo(max);
}

Box Box::Expanded(double margin) const {
  SOI_DCHECK(margin >= 0);
  if (IsEmpty()) return *this;
  Box box = *this;
  box.min.x -= margin;
  box.min.y -= margin;
  box.max.x += margin;
  box.max.y += margin;
  return box;
}

void Box::ExtendToCover(const Point& p) {
  if (IsEmpty()) {
    min = max = p;
    return;
  }
  min.x = std::min(min.x, p.x);
  min.y = std::min(min.y, p.y);
  max.x = std::max(max.x, p.x);
  max.y = std::max(max.y, p.y);
}

void Box::ExtendToCover(const Box& other) {
  if (other.IsEmpty()) return;
  ExtendToCover(other.min);
  ExtendToCover(other.max);
}

double Box::MinDistanceTo(const Point& p) const {
  SOI_DCHECK(!IsEmpty());
  double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
  double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
  return std::sqrt(dx * dx + dy * dy);
}

double Box::MaxDistanceTo(const Point& p) const {
  SOI_DCHECK(!IsEmpty());
  double dx = std::max(std::abs(p.x - min.x), std::abs(p.x - max.x));
  double dy = std::max(std::abs(p.y - min.y), std::abs(p.y - max.y));
  return std::sqrt(dx * dx + dy * dy);
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << "[" << b.min << " - " << b.max << "]";
}

}  // namespace soi
