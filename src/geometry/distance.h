#ifndef SOI_GEOMETRY_DISTANCE_H_
#define SOI_GEOMETRY_DISTANCE_H_

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"

namespace soi {

/// True iff segments `s` and `t` share at least one point (handles
/// collinear overlap and degenerate segments).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// Minimum Euclidean distance between two segments (0 if they intersect).
double SegmentSegmentDistance(const Segment& s, const Segment& t);

/// Minimum Euclidean distance between a segment and a box (0 if the segment
/// touches or crosses the box). Used by the query-time eps augmentation of
/// the cell-to-segment maps: cell c belongs to C_eps(l) iff this distance
/// is at most eps (Section 3.2.1). Requires a non-empty box.
double SegmentBoxDistance(const Segment& s, const Box& box);

}  // namespace soi

#endif  // SOI_GEOMETRY_DISTANCE_H_
