#include "geometry/segment.h"

#include <algorithm>

namespace soi {

Point Segment::ClosestPointTo(const Point& p) const {
  Point d = b - a;
  double len_sq = Dot(d, d);
  // Exact check: a degenerate (zero-length) segment projects to its
  // endpoint; any nonzero length, however tiny, divides fine.
  if (len_sq == 0.0) return a;  // soi-lint: float-eq
  double t = Dot(p - a, d) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return Interpolate(t);
}

double Segment::DistanceTo(const Point& p) const {
  return ClosestPointTo(p).DistanceTo(p);
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << "->" << s.b;
}

}  // namespace soi
