#ifndef SOI_GEOMETRY_BOX_H_
#define SOI_GEOMETRY_BOX_H_

#include <ostream>

#include "geometry/point.h"

namespace soi {

/// An axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
///
/// A default-constructed Box is empty (inverted bounds); extend it with
/// ExtendToCover. Used for grid cells, segment MBRs, and the
/// eps-buffered street MBR whose diagonal is maxD(s) (Definition 5).
struct Box {
  Point min{1.0, 1.0};
  Point max{-1.0, -1.0};

  /// Creates an empty box (contains nothing; union identity).
  static Box Empty() { return Box{}; }

  /// Creates the box spanning the two corner points (in any order).
  static Box FromCorners(const Point& a, const Point& b);

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  double Width() const { return IsEmpty() ? 0.0 : max.x - min.x; }
  double Height() const { return IsEmpty() ? 0.0 : max.y - min.y; }

  /// Length of the box diagonal; 0 for an empty box.
  double Diagonal() const;

  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True iff the boxes share at least a boundary point.
  bool Intersects(const Box& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return min.x <= other.max.x && other.min.x <= max.x &&
           min.y <= other.max.y && other.min.y <= max.y;
  }

  /// Grows the box by `margin` on every side. Requires margin >= 0.
  Box Expanded(double margin) const;

  /// Extends the box to cover `p`.
  void ExtendToCover(const Point& p);

  /// Extends the box to cover `other`.
  void ExtendToCover(const Box& other);

  /// Minimum distance from `p` to any point of the box (0 if inside).
  double MinDistanceTo(const Point& p) const;

  /// Maximum distance from `p` to any point of the box. Requires a
  /// non-empty box.
  double MaxDistanceTo(const Point& p) const;
};

inline bool operator==(const Box& a, const Box& b) {
  return a.min == b.min && a.max == b.max;
}

std::ostream& operator<<(std::ostream& os, const Box& b);

}  // namespace soi

#endif  // SOI_GEOMETRY_BOX_H_
