#include "geometry/distance.h"

#include <algorithm>

#include "common/check.h"

namespace soi {

namespace {

// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
// 0 collinear.
int Orientation(const Point& a, const Point& b, const Point& c) {
  double cross = Cross(b - a, c - a);
  if (cross > 0) return 1;
  if (cross < 0) return -1;
  return 0;
}

// True iff collinear point c lies within the bounding box of segment (a, b).
bool OnSegment(const Point& a, const Point& b, const Point& c) {
  return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  int o1 = Orientation(s.a, s.b, t.a);
  int o2 = Orientation(s.a, s.b, t.b);
  int o3 = Orientation(t.a, t.b, s.a);
  int o4 = Orientation(t.a, t.b, s.b);

  if (o1 != o2 && o3 != o4) return true;

  if (o1 == 0 && OnSegment(s.a, s.b, t.a)) return true;
  if (o2 == 0 && OnSegment(s.a, s.b, t.b)) return true;
  if (o3 == 0 && OnSegment(t.a, t.b, s.a)) return true;
  if (o4 == 0 && OnSegment(t.a, t.b, s.b)) return true;
  return false;
}

double SegmentSegmentDistance(const Segment& s, const Segment& t) {
  if (SegmentsIntersect(s, t)) return 0.0;
  // Disjoint segments attain their minimum distance at an endpoint of one
  // of them against the other segment.
  double d = s.DistanceTo(t.a);
  d = std::min(d, s.DistanceTo(t.b));
  d = std::min(d, t.DistanceTo(s.a));
  d = std::min(d, t.DistanceTo(s.b));
  return d;
}

double SegmentBoxDistance(const Segment& s, const Box& box) {
  SOI_DCHECK(!box.IsEmpty());
  if (box.Contains(s.a) || box.Contains(s.b)) return 0.0;
  Point bl = box.min;
  Point br{box.max.x, box.min.y};
  Point tr = box.max;
  Point tl{box.min.x, box.max.y};
  const Segment edges[4] = {
      Segment{bl, br}, Segment{br, tr}, Segment{tr, tl}, Segment{tl, bl}};
  double d = SegmentSegmentDistance(s, edges[0]);
  for (int i = 1; i < 4 && d > 0.0; ++i) {
    d = std::min(d, SegmentSegmentDistance(s, edges[i]));
  }
  return d;
}

}  // namespace soi
