#include "snapshot/byte_io.h"

#include <array>
#include <bit>

namespace soi {

namespace {

// Truncation is the one failure this layer can produce; section decoders
// add their own context on top.
Status Truncated(size_t wanted, size_t remaining) {
  return Status::IOError("snapshot payload truncated: need " +
                         std::to_string(wanted) + " bytes, " +
                         std::to_string(remaining) + " remain");
}

}  // namespace

void ByteWriter::PutU8(uint8_t value) {
  data_.push_back(static_cast<char>(value));
}

void ByteWriter::PutU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    data_.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void ByteWriter::PutU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    data_.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void ByteWriter::PutI32(int32_t value) {
  PutU32(static_cast<uint32_t>(value));
}

void ByteWriter::PutI64(int64_t value) {
  PutU64(static_cast<uint64_t>(value));
}

void ByteWriter::PutFloat(float value) {
  PutU32(std::bit_cast<uint32_t>(value));
}

void ByteWriter::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void ByteWriter::PutString(std::string_view value) {
  PutU64(value.size());
  data_.append(value);
}

Status ByteReader::Take(size_t n, const char** out) {
  if (n > remaining()) return Truncated(n, remaining());
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* out) {
  const char* bytes = nullptr;
  SOI_RETURN_NOT_OK(Take(1, &bytes));
  *out = static_cast<uint8_t>(bytes[0]);
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  const char* bytes = nullptr;
  SOI_RETURN_NOT_OK(Take(4, &bytes));
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
             << (8 * i);
  }
  *out = value;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  const char* bytes = nullptr;
  SOI_RETURN_NOT_OK(Take(8, &bytes));
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i]))
             << (8 * i);
  }
  *out = value;
  return Status::OK();
}

Status ByteReader::ReadI32(int32_t* out) {
  uint32_t bits = 0;
  SOI_RETURN_NOT_OK(ReadU32(&bits));
  *out = static_cast<int32_t>(bits);
  return Status::OK();
}

Status ByteReader::ReadI64(int64_t* out) {
  uint64_t bits = 0;
  SOI_RETURN_NOT_OK(ReadU64(&bits));
  *out = static_cast<int64_t>(bits);
  return Status::OK();
}

Status ByteReader::ReadFloat(float* out) {
  uint32_t bits = 0;
  SOI_RETURN_NOT_OK(ReadU32(&bits));
  *out = std::bit_cast<float>(bits);
  return Status::OK();
}

Status ByteReader::ReadDouble(double* out) {
  uint64_t bits = 0;
  SOI_RETURN_NOT_OK(ReadU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::OK();
}

Status ByteReader::ReadString(std::string* out) {
  uint64_t length = 0;
  SOI_RETURN_NOT_OK(ReadU64(&length));
  // The length prefix of a truncated payload can claim more bytes than
  // the section holds; bound it by what actually remains before
  // allocating.
  if (length > remaining()) {
    return Truncated(static_cast<size_t>(length), remaining());
  }
  const char* bytes = nullptr;
  SOI_RETURN_NOT_OK(Take(static_cast<size_t>(length), &bytes));
  out->assign(bytes, static_cast<size_t>(length));
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xffu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace soi
