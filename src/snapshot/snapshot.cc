#include "snapshot/snapshot.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include <bit>
#include <cstdio>
#include <cmath>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/csr.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "network/network_builder.h"
#include "network/network_io.h"
#include "objects/object_io.h"
#include "obs/obs.h"
#include "snapshot/byte_io.h"

namespace soi {

namespace {

enum SectionId : uint32_t {
  kSectionMeta = 1,
  kSectionVocabulary = 2,
  kSectionNetwork = 3,
  kSectionGeometry = 4,
  kSectionPois = 5,
  kSectionPhotos = 6,
  kSectionSegmentCells = 7,
  kSectionGlobalIndex = 8,
  kSectionEpsMaps = 9,
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionMeta: return "meta";
    case kSectionVocabulary: return "vocabulary";
    case kSectionNetwork: return "network";
    case kSectionGeometry: return "geometry";
    case kSectionPois: return "pois";
    case kSectionPhotos: return "photos";
    case kSectionSegmentCells: return "segment_cells";
    case kSectionGlobalIndex: return "global_index";
    case kSectionEpsMaps: return "eps_maps";
    default: return "unknown";
  }
}

// The fixed non-eps section sequence; eps_maps sections follow, one per
// cached EpsAugmentedMaps.
constexpr uint32_t kSectionOrder[] = {
    kSectionMeta,         kSectionVocabulary, kSectionNetwork,
    kSectionGeometry,     kSectionPois,       kSectionPhotos,
    kSectionSegmentCells, kSectionGlobalIndex,
};
constexpr size_t kNumFixedSections =
    sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);

struct Meta {
  std::string name;
  uint64_t num_vertices = 0;
  uint64_t num_segments = 0;
  uint64_t num_streets = 0;
  uint64_t num_pois = 0;
  uint64_t num_photos = 0;
  uint64_t num_keywords = 0;
  uint64_t num_eps_maps = 0;
  // Format v2 trailing fields (zero when reading a v1 file).
  uint64_t ingest_epoch = 0;
  uint64_t ingest_applied_ops = 0;
};

// ---------------------------------------------------------------------
// Section encoders.

std::string EncodeMeta(const SnapshotContents& contents) {
  const Dataset& dataset = *contents.dataset;
  ByteWriter w;
  w.PutString(dataset.name);
  w.PutU64(static_cast<uint64_t>(dataset.network.num_vertices()));
  w.PutU64(static_cast<uint64_t>(dataset.network.num_segments()));
  w.PutU64(static_cast<uint64_t>(dataset.network.num_streets()));
  w.PutU64(dataset.pois.size());
  w.PutU64(dataset.photos.size());
  w.PutU64(static_cast<uint64_t>(dataset.vocabulary.size()));
  w.PutU64(contents.eps_maps.size());
  // v2 trailing fields; writers always emit the current version.
  w.PutU64(contents.ingest_epoch);
  w.PutU64(contents.ingest_applied_ops);
  return w.TakeData();
}

std::string EncodeVocabulary(const Vocabulary& vocabulary) {
  ByteWriter w;
  w.PutU64(static_cast<uint64_t>(vocabulary.size()));
  for (KeywordId id = 0; id < vocabulary.size(); ++id) {
    w.PutString(vocabulary.Name(id));
  }
  return w.TakeData();
}

std::string EncodeNetwork(const RoadNetwork& network) {
  ByteWriter w;
  w.PutU64(network.vertices().size());
  for (const Vertex& v : network.vertices()) {
    w.PutDouble(v.position.x);
    w.PutDouble(v.position.y);
  }
  w.PutU64(network.streets().size());
  for (const Street& s : network.streets()) {
    w.PutString(s.name);
    // A street's vertex path is its first segment's endpoints followed
    // by the `to` vertex of each further segment (as in WriteNetwork);
    // segments, lengths, and geometry are recomputed deterministically
    // by NetworkBuilder on load.
    w.PutU64(s.segments.size() + 1);
    for (size_t i = 0; i < s.segments.size(); ++i) {
      const NetworkSegment& seg = network.segment(s.segments[i]);
      if (i == 0) w.PutI32(seg.from);
      w.PutI32(seg.to);
    }
  }
  return w.TakeData();
}

std::string EncodeGeometry(const GridGeometry& geometry) {
  ByteWriter w;
  w.PutDouble(geometry.bounds().min.x);
  w.PutDouble(geometry.bounds().min.y);
  w.PutDouble(geometry.bounds().max.x);
  w.PutDouble(geometry.bounds().max.y);
  w.PutDouble(geometry.cell_size());
  return w.TakeData();
}

std::string EncodePois(const std::vector<Poi>& pois) {
  ByteWriter w;
  w.PutU64(pois.size());
  for (const Poi& poi : pois) {
    w.PutDouble(poi.position.x);
    w.PutDouble(poi.position.y);
    w.PutU32(static_cast<uint32_t>(poi.keywords.size()));
    for (KeywordId id : poi.keywords.ids()) w.PutI32(id);
    w.PutDouble(poi.weight);
  }
  return w.TakeData();
}

std::string EncodePhotos(const std::vector<Photo>& photos) {
  ByteWriter w;
  w.PutU64(photos.size());
  for (const Photo& photo : photos) {
    w.PutDouble(photo.position.x);
    w.PutDouble(photo.position.y);
    w.PutU32(static_cast<uint32_t>(photo.keywords.size()));
    for (KeywordId id : photo.keywords.ids()) w.PutI32(id);
    w.PutU32(static_cast<uint32_t>(photo.visual.size()));
    for (float value : photo.visual) w.PutFloat(value);
  }
  return w.TakeData();
}

// Shared by segment_cells and eps_maps sections: only the per-segment
// cell lists are persisted; the per-cell inversion is recomputed on load
// (deterministic, cheap relative to the geometric dilation it replaces).
template <typename IndexT>
void EncodeSegmentLists(const IndexT& index, int64_t num_segments,
                        ByteWriter* w) {
  w->PutU64(static_cast<uint64_t>(num_segments));
  for (SegmentId id = 0; id < num_segments; ++id) {
    Span<CellId> cells = index.SegmentCells(id);
    w->PutU64(cells.size());
    for (CellId cell : cells) w->PutI32(cell);
  }
}

std::string EncodeSegmentCells(const SegmentCellIndex& index) {
  ByteWriter w;
  EncodeSegmentLists(index, index.network().num_segments(), &w);
  return w.TakeData();
}

std::string EncodeGlobalIndex(const GlobalInvertedIndex& index,
                              int64_t vocab_size) {
  ByteWriter w;
  std::vector<KeywordId> keywords;
  for (KeywordId id = 0; id < vocab_size; ++id) {
    if (!index.Entries(id).empty()) keywords.push_back(id);
  }
  w.PutU64(keywords.size());
  for (KeywordId keyword : keywords) {
    Span<GlobalInvertedIndex::Entry> entries = index.Entries(keyword);
    w.PutI32(keyword);
    w.PutU64(entries.size());
    for (const GlobalInvertedIndex::Entry& entry : entries) {
      w.PutI32(entry.cell);
      w.PutI64(entry.num_pois);
      w.PutDouble(entry.weight);
    }
  }
  return w.TakeData();
}

std::string EncodeEpsMaps(const EpsAugmentedMaps& maps,
                          int64_t num_segments) {
  ByteWriter w;
  w.PutDouble(maps.eps());
  EncodeSegmentLists(maps, num_segments, &w);
  return w.TakeData();
}

// ---------------------------------------------------------------------
// Section decoders. Structural damage -> kIOError; semantic violations
// (duplicates, mirroring the text readers) -> kInvalidArgument.

Status SectionError(uint32_t id, const std::string& detail) {
  return Status::IOError(std::string("corrupt snapshot section '") +
                         SectionName(id) + "': " + detail);
}

Status DecodeMeta(ByteReader* r, uint32_t format_version, Meta* meta) {
  SOI_RETURN_NOT_OK(r->ReadString(&meta->name));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_vertices));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_segments));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_streets));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_pois));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_photos));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_keywords));
  SOI_RETURN_NOT_OK(r->ReadU64(&meta->num_eps_maps));
  if (format_version >= 2) {
    SOI_RETURN_NOT_OK(r->ReadU64(&meta->ingest_epoch));
    SOI_RETURN_NOT_OK(r->ReadU64(&meta->ingest_applied_ops));
  }
  // Strict per-version length check: a v1 meta with v2 trailing bytes
  // (or any extra bytes) is corruption, not forward compat.
  if (!r->AtEnd()) return SectionError(kSectionMeta, "trailing bytes");
  return Status::OK();
}

Status DecodeVocabulary(ByteReader* r, const Meta& meta,
                        Vocabulary* vocabulary) {
  uint64_t count = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&count));
  if (count != meta.num_keywords) {
    return SectionError(kSectionVocabulary,
                        "keyword count disagrees with meta");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    SOI_RETURN_NOT_OK(r->ReadString(&name));
    if (name.empty()) {
      return SectionError(kSectionVocabulary, "empty keyword");
    }
    if (vocabulary->Intern(name) != static_cast<KeywordId>(i)) {
      return SectionError(kSectionVocabulary,
                          "duplicate keyword '" + name + "'");
    }
  }
  if (!r->AtEnd()) {
    return SectionError(kSectionVocabulary, "trailing bytes");
  }
  return Status::OK();
}

Status DecodeNetwork(ByteReader* r, const Meta& meta,
                     RoadNetwork* network) {
  uint64_t num_vertices = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&num_vertices));
  if (num_vertices != meta.num_vertices) {
    return SectionError(kSectionNetwork,
                        "vertex count disagrees with meta");
  }
  NetworkBuilder builder;
  for (uint64_t i = 0; i < num_vertices; ++i) {
    double x = 0.0;
    double y = 0.0;
    SOI_RETURN_NOT_OK(r->ReadDouble(&x));
    SOI_RETURN_NOT_OK(r->ReadDouble(&y));
    if (!std::isfinite(x) || !std::isfinite(y)) {
      return SectionError(kSectionNetwork,
                          "non-finite vertex coordinate");
    }
    builder.AddVertex(Point{x, y});
  }
  uint64_t num_streets = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&num_streets));
  if (num_streets != meta.num_streets) {
    return SectionError(kSectionNetwork,
                        "street count disagrees with meta");
  }
  for (uint64_t s = 0; s < num_streets; ++s) {
    std::string name;
    SOI_RETURN_NOT_OK(r->ReadString(&name));
    uint64_t path_len = 0;
    SOI_RETURN_NOT_OK(r->ReadU64(&path_len));
    if (path_len > r->remaining() / 4) {
      return SectionError(kSectionNetwork, "street path truncated");
    }
    std::vector<VertexId> path;
    path.reserve(static_cast<size_t>(path_len));
    for (uint64_t i = 0; i < path_len; ++i) {
      int32_t vertex = 0;
      SOI_RETURN_NOT_OK(r->ReadI32(&vertex));
      if (vertex < 0 || static_cast<uint64_t>(vertex) >= num_vertices) {
        return SectionError(kSectionNetwork, "vertex id out of range");
      }
      path.push_back(vertex);
    }
    SOI_ASSIGN_OR_RETURN(StreetId unused,
                         builder.AddStreet(std::move(name), path));
    (void)unused;
  }
  if (!r->AtEnd()) return SectionError(kSectionNetwork, "trailing bytes");
  SOI_ASSIGN_OR_RETURN(*network, std::move(builder).Build());
  if (static_cast<uint64_t>(network->num_segments()) !=
      meta.num_segments) {
    return SectionError(kSectionNetwork,
                        "segment count disagrees with meta");
  }
  // The same duplicate detection the text reader applies
  // (network_io.h): duplicated records are input corruption here too.
  return ValidateNetworkUniqueness(*network);
}

Status DecodeGeometry(ByteReader* r, std::optional<GridGeometry>* out) {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;
  double cell_size = 0.0;
  SOI_RETURN_NOT_OK(r->ReadDouble(&min_x));
  SOI_RETURN_NOT_OK(r->ReadDouble(&min_y));
  SOI_RETURN_NOT_OK(r->ReadDouble(&max_x));
  SOI_RETURN_NOT_OK(r->ReadDouble(&max_y));
  SOI_RETURN_NOT_OK(r->ReadDouble(&cell_size));
  if (!r->AtEnd()) return SectionError(kSectionGeometry, "trailing bytes");
  // Pre-validate everything GridGeometry's constructor would SOI_CHECK:
  // corrupted input must surface as a Status, never a crash.
  if (!std::isfinite(min_x) || !std::isfinite(min_y) ||
      !std::isfinite(max_x) || !std::isfinite(max_y) ||
      !std::isfinite(cell_size)) {
    return SectionError(kSectionGeometry, "non-finite geometry field");
  }
  Box bounds = Box{Point{min_x, min_y}, Point{max_x, max_y}};
  if (bounds.IsEmpty() || cell_size <= 0.0) {
    return SectionError(kSectionGeometry,
                        "empty bounds or non-positive cell size");
  }
  double nx = std::max(1.0, std::ceil(bounds.Width() / cell_size));
  double ny = std::max(1.0, std::ceil(bounds.Height() / cell_size));
  if (!(nx * ny < 2147483648.0)) {
    return SectionError(kSectionGeometry, "grid too fine");
  }
  out->emplace(bounds, cell_size);
  return Status::OK();
}

template <typename T>
Status DecodeObjectCommon(ByteReader* r, const Meta& meta, uint32_t section,
                          T* object) {
  double x = 0.0;
  double y = 0.0;
  SOI_RETURN_NOT_OK(r->ReadDouble(&x));
  SOI_RETURN_NOT_OK(r->ReadDouble(&y));
  if (!std::isfinite(x) || !std::isfinite(y)) {
    return SectionError(section, "non-finite coordinate");
  }
  uint32_t num_keywords = 0;
  SOI_RETURN_NOT_OK(r->ReadU32(&num_keywords));
  if (num_keywords > r->remaining() / 4) {
    return SectionError(section, "keyword list truncated");
  }
  std::vector<KeywordId> ids;
  ids.reserve(num_keywords);
  for (uint32_t i = 0; i < num_keywords; ++i) {
    int32_t id = 0;
    SOI_RETURN_NOT_OK(r->ReadI32(&id));
    if (id < 0 || static_cast<uint64_t>(id) >= meta.num_keywords) {
      return SectionError(section, "keyword id out of range");
    }
    ids.push_back(id);
  }
  object->position = Point{x, y};
  object->keywords = KeywordSet(std::move(ids));
  return Status::OK();
}

Status DecodePois(ByteReader* r, const Meta& meta,
                  std::vector<Poi>* pois) {
  uint64_t count = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&count));
  if (count != meta.num_pois) {
    return SectionError(kSectionPois, "POI count disagrees with meta");
  }
  pois->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Poi poi;
    SOI_RETURN_NOT_OK(DecodeObjectCommon(r, meta, kSectionPois, &poi));
    SOI_RETURN_NOT_OK(r->ReadDouble(&poi.weight));
    if (!std::isfinite(poi.weight) || poi.weight < 0) {
      return SectionError(kSectionPois,
                          "POI weight must be finite and non-negative");
    }
    pois->push_back(std::move(poi));
  }
  if (!r->AtEnd()) return SectionError(kSectionPois, "trailing bytes");
  return ValidatePoiUniqueness(*pois);
}

Status DecodePhotos(ByteReader* r, const Meta& meta,
                    std::vector<Photo>* photos) {
  uint64_t count = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&count));
  if (count != meta.num_photos) {
    return SectionError(kSectionPhotos,
                        "photo count disagrees with meta");
  }
  photos->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Photo photo;
    SOI_RETURN_NOT_OK(
        DecodeObjectCommon(r, meta, kSectionPhotos, &photo));
    uint32_t visual_dim = 0;
    SOI_RETURN_NOT_OK(r->ReadU32(&visual_dim));
    if (visual_dim > r->remaining() / 4) {
      return SectionError(kSectionPhotos, "visual descriptor truncated");
    }
    photo.visual.reserve(visual_dim);
    for (uint32_t d = 0; d < visual_dim; ++d) {
      float value = 0.0f;
      SOI_RETURN_NOT_OK(r->ReadFloat(&value));
      photo.visual.push_back(value);
    }
    if (!photos->empty() &&
        photo.visual.size() != photos->front().visual.size()) {
      return SectionError(kSectionPhotos,
                          "inconsistent visual descriptor dimension");
    }
    photos->push_back(std::move(photo));
  }
  if (!r->AtEnd()) return SectionError(kSectionPhotos, "trailing bytes");
  return ValidatePhotoUniqueness(*photos);
}

// Shared by segment_cells and eps_maps: per-segment cell lists, each
// strictly ascending with every cell inside the grid (the invariants the
// fresh build guarantees and the inversion pass indexes by). Decodes
// straight into the CSR arena the adoption constructors ingest — the
// nested-vector staging copy is gone.
Status DecodeSegmentLists(ByteReader* r, uint32_t section, const Meta& meta,
                          int64_t num_cells, CsrArray<CellId>* lists) {
  uint64_t num_segments = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&num_segments));
  if (num_segments != meta.num_segments) {
    return SectionError(section, "segment count disagrees with meta");
  }
  *lists = CsrArray<CellId>();
  for (uint64_t s = 0; s < num_segments; ++s) {
    uint64_t count = 0;
    SOI_RETURN_NOT_OK(r->ReadU64(&count));
    if (count > r->remaining() / 4) {
      return SectionError(section, "cell list truncated");
    }
    int32_t previous = -1;
    for (uint64_t i = 0; i < count; ++i) {
      int32_t cell = 0;
      SOI_RETURN_NOT_OK(r->ReadI32(&cell));
      if (cell < 0 || cell >= num_cells) {
        return SectionError(section, "cell id out of range");
      }
      if (cell <= previous) {
        return SectionError(section, "cell list not strictly ascending");
      }
      previous = cell;
      lists->PushValue(cell);
    }
    lists->FinishRow();
  }
  if (!r->AtEnd()) return SectionError(section, "trailing bytes");
  return Status::OK();
}

// Decodes into the dense KeywordId-indexed CSR the adoption constructor
// ingests: keywords absent from the snapshot become empty rows.
Status DecodeGlobalIndex(ByteReader* r, const Meta& meta, int64_t num_cells,
                         CsrArray<GlobalInvertedIndex::Entry>* lists) {
  uint64_t num_lists = 0;
  SOI_RETURN_NOT_OK(r->ReadU64(&num_lists));
  if (num_lists > meta.num_keywords) {
    return SectionError(kSectionGlobalIndex,
                        "more entry lists than keywords");
  }
  *lists = CsrArray<GlobalInvertedIndex::Entry>();
  int64_t previous_keyword = -1;
  for (uint64_t k = 0; k < num_lists; ++k) {
    int32_t keyword = 0;
    SOI_RETURN_NOT_OK(r->ReadI32(&keyword));
    if (keyword <= previous_keyword ||
        static_cast<uint64_t>(keyword) >= meta.num_keywords) {
      return SectionError(kSectionGlobalIndex,
                          "keyword ids not ascending or out of range");
    }
    // Empty rows for the keywords skipped between two present ones.
    for (int64_t gap = previous_keyword + 1; gap < keyword; ++gap) {
      lists->FinishRow();
    }
    previous_keyword = keyword;
    uint64_t num_entries = 0;
    SOI_RETURN_NOT_OK(r->ReadU64(&num_entries));
    if (num_entries == 0 || num_entries > r->remaining() / 20) {
      return SectionError(kSectionGlobalIndex, "entry list truncated");
    }
    GlobalInvertedIndex::Entry prev{};
    for (uint64_t i = 0; i < num_entries; ++i) {
      GlobalInvertedIndex::Entry entry{};
      SOI_RETURN_NOT_OK(r->ReadI32(&entry.cell));
      SOI_RETURN_NOT_OK(r->ReadI64(&entry.num_pois));
      SOI_RETURN_NOT_OK(r->ReadDouble(&entry.weight));
      if (entry.cell < 0 || entry.cell >= num_cells) {
        return SectionError(kSectionGlobalIndex, "cell id out of range");
      }
      if (entry.num_pois <= 0 || !std::isfinite(entry.weight)) {
        return SectionError(kSectionGlobalIndex,
                            "non-positive count or non-finite weight");
      }
      if (i > 0) {
        // The fresh-build order: weight descending, ascending cell id
        // as the deterministic tie-break.
        bool ordered = prev.weight > entry.weight ||
                       (prev.weight == entry.weight &&
                        prev.cell < entry.cell);
        if (!ordered) {
          return SectionError(kSectionGlobalIndex,
                              "entries not sorted by weight");
        }
      }
      prev = entry;
      lists->PushValue(entry);
    }
    lists->FinishRow();
  }
  if (!r->AtEnd()) {
    return SectionError(kSectionGlobalIndex, "trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Stream plumbing.

Status ReadExact(std::istream* in, size_t n, std::string* out) {
  out->resize(n);
  in->read(out->data(), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in->gcount()) != n) {
    return Status::IOError("snapshot truncated: expected " +
                           std::to_string(n) + " bytes, got " +
                           std::to_string(in->gcount()));
  }
  return Status::OK();
}

struct SectionHeader {
  uint32_t id = 0;
  uint64_t payload_bytes = 0;
  uint32_t crc32 = 0;
};

Status ReadSectionHeader(std::istream* in, SectionHeader* header) {
  std::string bytes;
  SOI_RETURN_NOT_OK(ReadExact(in, 16, &bytes));
  ByteReader r(bytes);
  SOI_RETURN_NOT_OK(r.ReadU32(&header->id));
  SOI_RETURN_NOT_OK(r.ReadU64(&header->payload_bytes));
  SOI_RETURN_NOT_OK(r.ReadU32(&header->crc32));
  return Status::OK();
}

// Reads and CRC-verifies one section. The payload size comes from an
// unprotected header field, so bound it against the bytes actually left
// in the stream before allocating.
Status ReadSectionPayload(std::istream* in, const SectionHeader& header,
                          std::string* payload) {
  Status read = ReadExact(in, static_cast<size_t>(header.payload_bytes),
                          payload);
  if (!read.ok()) {
    return Status::IOError(std::string("section '") +
                           SectionName(header.id) +
                           "' truncated: " + std::string(read.message()));
  }
  if (Crc32(*payload) != header.crc32) {
    return Status::IOError(std::string("CRC mismatch in section '") +
                           SectionName(header.id) +
                           "' (snapshot corrupted)");
  }
  return Status::OK();
}

// Validates magic + version and returns the section count.
Status ReadFileHeader(std::istream* in, uint32_t* version,
                      uint32_t* section_count) {
  std::string magic;
  SOI_RETURN_NOT_OK(ReadExact(in, sizeof(kSnapshotMagic), &magic));
  if (magic != std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic))) {
    return Status::IOError("not a snapshot file (bad magic)");
  }
  std::string rest;
  SOI_RETURN_NOT_OK(ReadExact(in, 8, &rest));
  ByteReader r(rest);
  SOI_RETURN_NOT_OK(r.ReadU32(version));
  SOI_RETURN_NOT_OK(r.ReadU32(section_count));
  if (*version < kMinSnapshotFormatVersion ||
      *version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(*version) +
        " (this build reads versions " +
        std::to_string(kMinSnapshotFormatVersion) + ".." +
        std::to_string(kSnapshotFormatVersion) +
        "); regenerate the snapshot");
  }
  // 8 fixed sections plus one eps section per cached map; anything past
  // this bound is header corruption, not a plausible snapshot.
  constexpr uint32_t kMaxSections = 1u << 20;
  if (*section_count < kNumFixedSections ||
      *section_count > kMaxSections) {
    return Status::IOError("implausible section count: " +
                           std::to_string(*section_count));
  }
  return Status::OK();
}

Status WriteSection(std::ostream* out, uint32_t id,
                    const std::string& payload) {
  SOI_FAULT_POINT("snapshot.write_section");
  ByteWriter header;
  header.PutU32(id);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  out->write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
  out->write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
  if (!out->good()) {
    return Status::IOError(std::string("failed writing section '") +
                           SectionName(id) + "'");
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const SnapshotContents& contents, std::ostream* out) {
  SOI_CHECK(out != nullptr);
  SOI_CHECK(contents.dataset != nullptr && contents.indexes != nullptr)
      << "SaveSnapshot: dataset and indexes are required";
  SOI_TRACE_SPAN("snapshot.save");
  Stopwatch timer;
  const Dataset& dataset = *contents.dataset;
  const DatasetIndexes& indexes = *contents.indexes;

  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(kSectionMeta, EncodeMeta(contents));
  sections.emplace_back(kSectionVocabulary,
                        EncodeVocabulary(dataset.vocabulary));
  sections.emplace_back(kSectionNetwork, EncodeNetwork(dataset.network));
  sections.emplace_back(kSectionGeometry,
                        EncodeGeometry(indexes.geometry));
  sections.emplace_back(kSectionPois, EncodePois(dataset.pois));
  sections.emplace_back(kSectionPhotos, EncodePhotos(dataset.photos));
  sections.emplace_back(kSectionSegmentCells,
                        EncodeSegmentCells(indexes.segment_cells));
  sections.emplace_back(
      kSectionGlobalIndex,
      EncodeGlobalIndex(indexes.global_index, dataset.vocabulary.size()));
  for (const EpsAugmentedMaps* maps : contents.eps_maps) {
    SOI_CHECK(maps != nullptr) << "SaveSnapshot: null eps maps";
    sections.emplace_back(
        kSectionEpsMaps,
        EncodeEpsMaps(*maps, dataset.network.num_segments()));
  }

  ByteWriter header;
  for (char c : kSnapshotMagic) header.PutU8(static_cast<uint8_t>(c));
  header.PutU32(kSnapshotFormatVersion);
  header.PutU32(static_cast<uint32_t>(sections.size()));
  out->write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
  if (!out->good()) {
    return Status::IOError("failed writing snapshot header");
  }

  uint64_t total_bytes = header.data().size();
  try {
    for (const auto& [id, payload] : sections) {
      SOI_RETURN_NOT_OK(WriteSection(out, id, payload));
      total_bytes += 16 + payload.size();
    }
  } catch (const fault::FaultInjectedError& e) {
    return Status::Internal(e.what());
  }
  out->flush();
  if (!out->good()) return Status::IOError("failed flushing snapshot");
  SOI_OBS_COUNTER_ADD("soi.snapshot.saves", 1);
  SOI_OBS_COUNTER_ADD("soi.snapshot.bytes_written",
                      static_cast<int64_t>(total_bytes));
  SOI_OBS_HISTOGRAM_OBSERVE("soi.snapshot.save_seconds",
                            timer.ElapsedSeconds());
  return Status::OK();
}

namespace {

/// fsync a file by path (POSIX). Durability matters here: an atomic
/// rename without a preceding fsync can leave a zero-length or torn file
/// after a crash on journaled filesystems — exactly the failure the
/// temp+rename dance exists to prevent.
Status SyncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot reopen for fsync: " + path);
  }
  int rc = ::fsync(fd);
  (void)::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + path);
#else
  (void)path;  // best effort: no fsync on this platform
#endif
  return Status::OK();
}

}  // namespace

Status SaveSnapshotToFile(const SnapshotContents& contents,
                          const std::string& path) {
  // Crash-safe save: write a temp file in the *target* directory (rename
  // is only atomic within one filesystem), fsync it, then rename over
  // the destination. Every failure path removes the temp file and leaves
  // any existing snapshot at `path` untouched — a crash or injected
  // fault mid-save can never destroy the last good snapshot
  // (tests/snapshot_fault_test.cc pins this).
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IOError("cannot open for writing: " + temp_path);
    }
    Status saved = SaveSnapshot(contents, &file);
    if (!saved.ok()) {
      file.close();
      (void)std::remove(temp_path.c_str());
      return saved;
    }
    file.close();
    if (!file.good()) {
      (void)std::remove(temp_path.c_str());
      return Status::IOError("failed closing " + temp_path);
    }
  }
  if (Status synced = SyncFile(temp_path); !synced.ok()) {
    (void)std::remove(temp_path.c_str());
    return synced;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    (void)std::remove(temp_path.c_str());
    return Status::IOError("cannot rename " + temp_path + " -> " + path);
  }
  return Status::OK();
}

Result<LoadedSnapshot> LoadSnapshot(std::istream* in, ThreadPool* pool) {
  SOI_CHECK(in != nullptr);
  SOI_TRACE_SPAN("snapshot.load");
  Stopwatch timer;

  uint32_t version = 0;
  uint32_t section_count = 0;
  SOI_RETURN_NOT_OK(ReadFileHeader(in, &version, &section_count));

  Meta meta;
  auto dataset = std::make_unique<Dataset>();
  std::optional<GridGeometry> geometry;
  CsrArray<CellId> segment_lists;
  CsrArray<GlobalInvertedIndex::Entry> global_lists;
  std::vector<std::pair<double, CsrArray<CellId>>> eps_sections;
  std::unordered_set<uint64_t> seen_eps_bits;
  uint64_t total_bytes = 16;

  try {
    for (uint32_t s = 0; s < section_count; ++s) {
      SOI_FAULT_POINT("snapshot.read_section");
      SectionHeader header;
      SOI_RETURN_NOT_OK(ReadSectionHeader(in, &header));
      // Fixed prefix order, then only eps_maps sections.
      uint32_t expected = s < kNumFixedSections
                              ? kSectionOrder[s]
                              : static_cast<uint32_t>(kSectionEpsMaps);
      if (header.id != expected) {
        return Status::IOError(
            std::string("unexpected section '") + SectionName(header.id) +
            "' (wanted '" + SectionName(expected) +
            "'); snapshot corrupted or written by an incompatible "
            "version");
      }
      std::string payload;
      SOI_RETURN_NOT_OK(ReadSectionPayload(in, header, &payload));
      total_bytes += 16 + payload.size();
      ByteReader r(payload);
      switch (header.id) {
        case kSectionMeta:
          SOI_RETURN_NOT_OK(DecodeMeta(&r, version, &meta));
          dataset->name = meta.name;
          if (section_count !=
              kNumFixedSections + meta.num_eps_maps) {
            return Status::IOError(
                "section count disagrees with meta eps map count");
          }
          break;
        case kSectionVocabulary:
          SOI_RETURN_NOT_OK(
              DecodeVocabulary(&r, meta, &dataset->vocabulary));
          break;
        case kSectionNetwork:
          SOI_RETURN_NOT_OK(DecodeNetwork(&r, meta, &dataset->network));
          break;
        case kSectionGeometry:
          SOI_RETURN_NOT_OK(DecodeGeometry(&r, &geometry));
          break;
        case kSectionPois:
          SOI_RETURN_NOT_OK(DecodePois(&r, meta, &dataset->pois));
          break;
        case kSectionPhotos:
          SOI_RETURN_NOT_OK(DecodePhotos(&r, meta, &dataset->photos));
          break;
        case kSectionSegmentCells:
          SOI_RETURN_NOT_OK(DecodeSegmentLists(
              &r, kSectionSegmentCells, meta, geometry->num_cells(),
              &segment_lists));
          break;
        case kSectionGlobalIndex:
          SOI_RETURN_NOT_OK(DecodeGlobalIndex(
              &r, meta, geometry->num_cells(), &global_lists));
          break;
        case kSectionEpsMaps: {
          double eps = 0.0;
          SOI_RETURN_NOT_OK(r.ReadDouble(&eps));
          if (!std::isfinite(eps) || eps < 0) {
            return SectionError(kSectionEpsMaps, "invalid eps");
          }
          if (!seen_eps_bits.insert(std::bit_cast<uint64_t>(eps))
                   .second) {
            return SectionError(kSectionEpsMaps,
                                "duplicate eps " + FormatDouble(eps));
          }
          CsrArray<CellId> lists;
          SOI_RETURN_NOT_OK(DecodeSegmentLists(&r, kSectionEpsMaps, meta,
                                               geometry->num_cells(),
                                               &lists));
          eps_sections.emplace_back(eps, std::move(lists));
          break;
        }
        default:
          return Status::IOError("unreachable section id");
      }
    }
  } catch (const fault::FaultInjectedError& e) {
    return Status::Internal(e.what());
  } catch (const std::bad_alloc&) {
    return Status::IOError(
        "snapshot load failed: allocation rejected (corrupt size field?)");
  }

  // Reassemble the index suite. The grid-derived members (POI grid,
  // photo grid, per-cell inversions) are recomputed from the restored
  // data — deterministic and bit-identical to a cold BuildIndexes.
  std::vector<Point> photo_positions;
  photo_positions.reserve(dataset->photos.size());
  for (const Photo& photo : dataset->photos) {
    photo_positions.push_back(photo.position);
  }
  PoiGridIndex poi_grid(geometry->bounds(), geometry->cell_size(),
                        dataset->pois);
  GlobalInvertedIndex global_index(std::move(global_lists));
  SegmentCellIndex segment_cells(dataset->network, *geometry,
                                 std::move(segment_lists), pool);
  PointGrid<PhotoId> photo_grid(*geometry, photo_positions);

  LoadedSnapshot loaded;
  loaded.ingest_epoch = meta.ingest_epoch;
  loaded.ingest_applied_ops = meta.ingest_applied_ops;
  loaded.dataset = std::move(dataset);
  loaded.indexes = std::make_unique<DatasetIndexes>(DatasetIndexes{
      *geometry, std::move(poi_grid), std::move(global_index),
      std::move(segment_cells), std::move(photo_grid)});
  loaded.eps_maps.reserve(eps_sections.size());
  for (auto& [eps, lists] : eps_sections) {
    loaded.eps_maps.push_back(std::make_shared<const EpsAugmentedMaps>(
        loaded.indexes->segment_cells, eps, std::move(lists), pool));
  }

  SOI_OBS_COUNTER_ADD("soi.snapshot.loads", 1);
  SOI_OBS_COUNTER_ADD("soi.snapshot.bytes_read",
                      static_cast<int64_t>(total_bytes));
  SOI_OBS_HISTOGRAM_OBSERVE("soi.snapshot.load_seconds",
                            timer.ElapsedSeconds());
  return loaded;
}

Result<LoadedSnapshot> LoadSnapshotFromFile(const std::string& path,
                                            ThreadPool* pool) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return LoadSnapshot(&file, pool);
}

Result<SnapshotInfo> InspectSnapshot(std::istream* in) {
  SOI_CHECK(in != nullptr);
  SnapshotInfo info;
  uint32_t section_count = 0;
  SOI_RETURN_NOT_OK(
      ReadFileHeader(in, &info.format_version, &section_count));
  info.total_bytes = 16;
  Meta meta;
  try {
    for (uint32_t s = 0; s < section_count; ++s) {
      SectionHeader header;
      SOI_RETURN_NOT_OK(ReadSectionHeader(in, &header));
      if (SectionName(header.id) == std::string_view("unknown")) {
        return Status::IOError("unknown section id " +
                               std::to_string(header.id));
      }
      std::string payload;
      SOI_RETURN_NOT_OK(ReadSectionPayload(in, header, &payload));
      info.total_bytes += 16 + payload.size();
      ByteReader r(payload);
      if (header.id == kSectionMeta) {
        SOI_RETURN_NOT_OK(DecodeMeta(&r, info.format_version, &meta));
        info.dataset_name = meta.name;
        info.num_vertices = meta.num_vertices;
        info.num_segments = meta.num_segments;
        info.num_streets = meta.num_streets;
        info.num_pois = meta.num_pois;
        info.num_photos = meta.num_photos;
        info.num_keywords = meta.num_keywords;
        info.ingest_epoch = meta.ingest_epoch;
        info.ingest_applied_ops = meta.ingest_applied_ops;
      } else if (header.id == kSectionEpsMaps) {
        double eps = 0.0;
        SOI_RETURN_NOT_OK(r.ReadDouble(&eps));
        info.eps_values.push_back(eps);
      }
      info.sections.push_back(SnapshotSectionInfo{
          SectionName(header.id), payload.size(), header.crc32});
    }
  } catch (const std::bad_alloc&) {
    return Status::IOError(
        "snapshot inspect failed: allocation rejected "
        "(corrupt size field?)");
  }
  return info;
}

Result<SnapshotInfo> InspectSnapshotFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return InspectSnapshot(&file);
}

}  // namespace soi
