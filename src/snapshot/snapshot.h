#ifndef SOI_SNAPSHOT_SNAPSHOT_H_
#define SOI_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "grid/segment_cell_index.h"

namespace soi {

class ThreadPool;

/// Versioned, checksummed binary snapshots of one dataset plus its index
/// suite — the checkpoint/restore path of the serving stack (DESIGN.md
/// "Persistence & warm start").
///
/// File layout (all integers little-endian, floats/doubles as IEEE-754
/// bit patterns, see snapshot/byte_io.h):
///
///   magic[8] = "SOISNAP1"
///   u32 format_version
///   u32 section_count
///   section_count x { u32 section_id, u64 payload_bytes,
///                     u32 payload_crc32, payload }
///
/// Sections appear in the fixed order meta, vocabulary, network,
/// geometry, pois, photos, segment_cells, global_index, then one
/// eps_maps section per cached EpsAugmentedMaps. Loading verifies magic,
/// version, section order, and every CRC, then revalidates the decoded
/// data with the same range/finiteness/uniqueness checks the text
/// readers apply — corruption always surfaces as a typed Status
/// (kIOError for structural damage, kInvalidArgument for semantic
/// violations such as duplicate records), never a crash.
///
/// Versioning/compat policy: writers always emit kSnapshotFormatVersion;
/// readers accept any version in [kMinSnapshotFormatVersion,
/// kSnapshotFormatVersion] and fail closed on anything else (including
/// unknown section ids). Version history:
///   1 — original format.
///   2 — meta section gains two trailing u64s (ingest_epoch,
///       ingest_applied_ops) stamped by LiveWorld::Save; absent in v1
///       files, which load with both fields zero.
/// Snapshots are rebuildable artifacts — on a version this build cannot
/// read, regenerate from source data rather than migrating in place.

inline constexpr char kSnapshotMagic[8] = {'S', 'O', 'I', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotFormatVersion = 2;
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// What SaveSnapshot serializes: one dataset, its offline index suite,
/// and any eps-augmented maps worth shipping to pre-seed the serving
/// cache (may be empty). All pointers are borrowed and must stay valid
/// for the duration of the call. The planted ground truth is not
/// serialized (it is derivable by regenerating, mirroring SaveDataset).
struct SnapshotContents {
  const Dataset* dataset = nullptr;
  const DatasetIndexes* indexes = nullptr;
  std::vector<const EpsAugmentedMaps*> eps_maps;
  /// Ingest provenance (format v2): the LiveWorld epoch and applied-op
  /// count at save time. Zero for cold (never-mutated) snapshots.
  uint64_t ingest_epoch = 0;
  uint64_t ingest_applied_ops = 0;
};

/// What LoadSnapshot restores. `indexes` holds pointers into `*dataset`
/// and the eps maps point into `indexes->segment_cells`, so the members
/// must be kept together and destroyed in reverse order (which the
/// declaration order below guarantees). The eps maps are shared_ptr so
/// they can be handed to QueryEngine's warm-start constructor directly.
struct LoadedSnapshot {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<DatasetIndexes> indexes;
  std::vector<std::shared_ptr<const EpsAugmentedMaps>> eps_maps;
  /// Ingest provenance from the meta section (zero for v1 files and for
  /// cold snapshots).
  uint64_t ingest_epoch = 0;
  uint64_t ingest_applied_ops = 0;
};

/// One section's entry in SnapshotInfo.
struct SnapshotSectionInfo {
  std::string name;
  uint64_t bytes = 0;    // payload only, excluding the section header
  uint32_t crc32 = 0;
};

/// Header + per-section summary returned by InspectSnapshot. Counts come
/// from the meta section; `eps_values` lists the eps of each eps_maps
/// section in file order.
struct SnapshotInfo {
  uint32_t format_version = 0;
  std::string dataset_name;
  uint64_t num_vertices = 0;
  uint64_t num_segments = 0;
  uint64_t num_streets = 0;
  uint64_t num_pois = 0;
  uint64_t num_photos = 0;
  uint64_t num_keywords = 0;
  uint64_t ingest_epoch = 0;        // zero for v1 files
  uint64_t ingest_applied_ops = 0;  // zero for v1 files
  std::vector<double> eps_values;
  std::vector<SnapshotSectionInfo> sections;
  uint64_t total_bytes = 0;
};

/// Serializes `contents` to `out` (a binary stream). Fault point
/// "snapshot.write_section" fires once per section in fault-injection
/// builds and surfaces as kInternal.
[[nodiscard]] Status SaveSnapshot(const SnapshotContents& contents,
                                  std::ostream* out);
[[nodiscard]] Status SaveSnapshotToFile(const SnapshotContents& contents,
                                        const std::string& path);

/// Restores a snapshot written by SaveSnapshot. The restored indices are
/// bit-identical to a fresh BuildIndexes over the restored dataset, and
/// the restored eps maps to fresh EpsAugmentedMaps builds — the
/// warm-start determinism contract (asserted by tests/snapshot_test.cc).
/// `pool` (may be null) parallelizes the index inversion passes only.
/// Fault point "snapshot.read_section" fires once per section in
/// fault-injection builds and surfaces as kInternal.
[[nodiscard]] Result<LoadedSnapshot> LoadSnapshot(std::istream* in,
                                                  ThreadPool* pool = nullptr);
[[nodiscard]] Result<LoadedSnapshot> LoadSnapshotFromFile(
    const std::string& path, ThreadPool* pool = nullptr);

/// Reads the header and section table, verifying magic, version, and
/// every section CRC, but decodes only the meta and eps headers — the
/// cheap integrity check behind `soi_snapshot inspect`/`verify`.
[[nodiscard]] Result<SnapshotInfo> InspectSnapshot(std::istream* in);
[[nodiscard]] Result<SnapshotInfo> InspectSnapshotFile(
    const std::string& path);

}  // namespace soi

#endif  // SOI_SNAPSHOT_SNAPSHOT_H_
