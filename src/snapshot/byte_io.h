#ifndef SOI_SNAPSHOT_BYTE_IO_H_
#define SOI_SNAPSHOT_BYTE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace soi {

/// Little-endian binary encoding primitives for the snapshot format
/// (DESIGN.md "Persistence & warm start"). Integers are written
/// byte-by-byte in little-endian order (independent of host endianness);
/// floats and doubles are written as their IEEE-754 bit patterns, so
/// every value round-trips bit-exactly — the property the warm-start
/// determinism contract rests on.
class ByteWriter {
 public:
  void PutU8(uint8_t value);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI32(int32_t value);
  void PutI64(int64_t value);
  void PutFloat(float value);
  void PutDouble(double value);
  /// u64 length prefix followed by the raw bytes.
  void PutString(std::string_view value);

  const std::string& data() const { return data_; }
  std::string TakeData() { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounded reader over one encoded section payload. Every read is
/// range-checked: reading past the end returns kIOError instead of
/// touching out-of-bounds memory, so a truncated or bit-flipped payload
/// that slips past the CRC surfaces as a typed error, never a crash.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] Status ReadU8(uint8_t* out);
  [[nodiscard]] Status ReadU32(uint32_t* out);
  [[nodiscard]] Status ReadU64(uint64_t* out);
  [[nodiscard]] Status ReadI32(int32_t* out);
  [[nodiscard]] Status ReadI64(int64_t* out);
  [[nodiscard]] Status ReadFloat(float* out);
  [[nodiscard]] Status ReadDouble(double* out);
  [[nodiscard]] Status ReadString(std::string* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  /// Advances past `n` bytes, or fails with kIOError if fewer remain.
  [[nodiscard]] Status Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) of `data` — the
/// per-section checksum of the snapshot format.
uint32_t Crc32(std::string_view data);

}  // namespace soi

#endif  // SOI_SNAPSHOT_BYTE_IO_H_
