#ifndef SOI_ANALYSIS_LOCK_GRAPH_H_
#define SOI_ANALYSIS_LOCK_GRAPH_H_

/// Runtime lock-order deadlock detection (the "lock graph").
///
/// Every named soi::Mutex registers a *lock class* node here keyed by its
/// name (not its address, so short-lived locks like the per-ParallelFor
/// ForkJoinState share one node). Each thread tracks the stack of locks
/// it currently holds; whenever a thread acquires lock B while holding
/// lock A, the directed edge A -> B is added to a process-global graph.
/// A cycle in that graph is a *potential* deadlock — two threads taking
/// the same pair of locks in opposite orders can deadlock on some
/// interleaving even if this run never did — and is reported on the
/// first acquisition that closes the cycle, with the held-lock stack
/// captured when each participating edge was first recorded.
///
/// Locks may additionally declare a *rank*: acquisition order must be
/// strictly increasing in rank, so a rank violation is reported even
/// before a second thread ever takes the reversed order. Leaf locks
/// (never held across another acquisition) share the highest rank; see
/// DESIGN.md "Lock ordering & layering" for the rank table.
///
/// Compile-out contract (mirrors obs/obs.h): the soi::Mutex hooks that
/// feed this registry are compiled in only under -DSOI_DEADLOCK_DETECT=ON
/// (the `deadlock` preset), which defines SOI_DEADLOCK_DETECT_ENABLED.
/// In a default build the hooks vanish, sizeof(soi::Mutex) equals
/// sizeof(std::mutex), and nothing registers — guarded by
/// tests/deadlock_compile_out_test.cc. The registry classes themselves
/// compile in every build so tests can drive the detector directly.
///
/// Layering: this header is the instrumentation substrate below
/// common/ (common/mutex.h includes it), so it depends on the C++
/// standard library only. The registry's own lock is a raw std::mutex —
/// instrumenting the instrumenter would recurse — which is allowlisted
/// for the lock-hygiene lint rule.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace soi {
namespace lock_graph {

#ifdef SOI_DEADLOCK_DETECT_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Rank ladder for the named locks in this codebase. Acquisition order
/// must strictly ascend, so a lock may only be taken while holding locks
/// of *lower* rank; two locks of equal rank must never nest. kRankLeaf
/// marks locks that never have another lock acquired under them.
/// kNoRank opts a lock out of rank checking (cycle detection still
/// applies). The full table lives in DESIGN.md "Lock ordering &
/// layering".
inline constexpr int kNoRank = -1;
inline constexpr int kRankServe = 10;        // soid queue/conns/tokens
inline constexpr int kRankIngest = 15;       // LiveWorld writer/compactor
inline constexpr int kRankThreadPool = 20;   // pool work queue
inline constexpr int kRankObsOuter = 30;     // TraceRecorder buffer list
inline constexpr int kRankObsRegistry = 40;  // metrics Registry maps
inline constexpr int kRankLeaf = 50;         // terminal locks

/// One lock class. Stable address for the lifetime of the process
/// (owned by the LockGraph that registered it).
struct LockNode {
  std::string name;
  int rank = kNoRank;
  int id = 0;
};

/// Per-thread held-lock stack. Fixed-size POD so the thread_local
/// instance is trivially destructible (no TLS destruction-order hazard
/// when threads exit during static teardown). Tests construct their own
/// instances to simulate threads deterministically.
struct ThreadState {
  static constexpr int kMaxHeld = 32;
  struct Held {
    const void* instance;
    const LockNode* node;
  };
  Held held[kMaxHeld];
  int depth = 0;
  // Acquisitions not tracked because the stack was full; release of an
  // untracked lock is ignored.
  int64_t overflowed = 0;
};

/// A detected lock-discipline violation. `edges` carries one line per
/// participating edge, each with the held-lock stack captured when that
/// edge was first recorded — for a cycle this names both (all)
/// acquisition sites of the potential deadlock.
struct Violation {
  enum class Kind { kCycle, kRankInversion, kSelfDeadlock };
  Kind kind = Kind::kCycle;
  std::string summary;
  std::vector<std::string> edges;
};

const char* ViolationKindName(Violation::Kind kind);

struct NodeSnapshot {
  std::string name;
  int rank = kNoRank;
};

struct EdgeSnapshot {
  std::string from;
  std::string to;
  // Held-lock stack of the thread that first recorded the edge.
  std::string context;
};

struct GraphSnapshot {
  std::vector<NodeSnapshot> nodes;
  std::vector<EdgeSnapshot> edges;
  std::vector<Violation> violations;
};

/// The lock-order graph. Instrumented soi::Mutex hooks feed Global()
/// through the free functions below; tests instantiate their own graph
/// and drive RecordAcquire/RecordRelease with synthetic ThreadStates.
/// All methods are thread-safe.
class LockGraph {
 public:
  LockGraph() = default;
  LockGraph(const LockGraph&) = delete;
  LockGraph& operator=(const LockGraph&) = delete;

  /// The process-wide graph the Mutex instrumentation reports into.
  static LockGraph& Global();

  /// Interns the lock class `name`, returning its stable node. The first
  /// registration wins; a later registration with a different explicit
  /// rank records a rank-conflict violation (one name must mean one
  /// place in the order).
  const LockNode* RegisterNode(const char* name, int rank);

  /// Records `thread` acquiring `node` on mutex instance `instance`:
  /// adds held -> node edges, runs rank and cycle checks, and pushes the
  /// hold. `blocking` is false for a successful try_lock, which cannot
  /// deadlock and therefore records the hold without adding edges.
  void RecordAcquire(ThreadState& thread, const void* instance,
                     const LockNode* node, bool blocking = true);

  /// Pops the hold for `instance` from `thread` (no-op if untracked).
  void RecordRelease(ThreadState& thread, const void* instance);

  GraphSnapshot Snapshot() const;
  std::size_t violation_count() const;

  /// When fatal (the default), any violation prints a full report to
  /// stderr and aborts — this is what makes "the suite runs report-clean
  /// under the deadlock preset" an enforced property rather than a log
  /// to remember to read. Tests that plant violations turn it off.
  void SetFatalOnViolation(bool fatal);

  /// Clears edges and violations but keeps registered nodes (live
  /// Mutexes hold node pointers). Test-only.
  void ResetForTest();

 private:
  struct EdgeInfo {
    std::string context;
  };

  void AddEdgeLocked(const LockNode* from, const LockNode* to,
                     const std::string& context);
  bool FindPathLocked(int from, int to, std::vector<int>* path) const;
  void ReportLocked(Violation violation);
  std::string HeldStackString(const ThreadState& thread) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<LockNode>> nodes_;
  std::map<std::string, int> name_to_id_;
  // Adjacency by node id, plus first-recording context per edge.
  std::vector<std::vector<int>> adj_;
  std::map<std::pair<int, int>, EdgeInfo> edges_;
  // Each (from, to) pair reports a cycle / rank inversion at most once.
  std::set<std::pair<int, int>> reported_cycles_;
  std::set<std::pair<int, int>> reported_ranks_;
  std::set<int> reported_self_;
  std::vector<Violation> violations_;
  bool fatal_on_violation_ = true;
};

/// The calling thread's held-lock stack (thread_local, trivially
/// destructible).
ThreadState& CurrentThreadState();

/// Hooks called by the instrumented soi::Mutex / CondVar (only under
/// SOI_DEADLOCK_DETECT_ENABLED); they report into LockGraph::Global().
void OnMutexAcquire(const void* instance, const LockNode* node);
void OnMutexTryAcquired(const void* instance, const LockNode* node);
void OnMutexRelease(const void* instance);

}  // namespace lock_graph
}  // namespace soi

#endif  // SOI_ANALYSIS_LOCK_GRAPH_H_
