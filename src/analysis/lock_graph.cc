#include "analysis/lock_graph.h"

#include <cstdio>
#include <cstdlib>

namespace soi {
namespace lock_graph {

const char* ViolationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kCycle:
      return "cycle";
    case Violation::Kind::kRankInversion:
      return "rank-inversion";
    case Violation::Kind::kSelfDeadlock:
      return "self-deadlock";
  }
  return "unknown";
}

LockGraph& LockGraph::Global() {
  // Leaked: threads may release locks during static teardown, after a
  // function-local static would have been destroyed.
  static LockGraph* const global = new LockGraph();  // soi-lint: naked-new
  return *global;
}

const LockNode* LockGraph::RegisterNode(const char* name, int rank) {
  std::string key(name == nullptr ? "" : name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = name_to_id_.find(key);
  if (it != name_to_id_.end()) {
    LockNode* node = nodes_[static_cast<std::size_t>(it->second)].get();
    if (node->rank == kNoRank && rank != kNoRank) {
      node->rank = rank;
    } else if (rank != kNoRank && rank != node->rank) {
      Violation violation;
      violation.kind = Violation::Kind::kRankInversion;
      violation.summary = "conflicting rank declaration for lock class '" +
                          key + "': registered " +
                          std::to_string(node->rank) + ", redeclared " +
                          std::to_string(rank) +
                          " (one name must mean one place in the order)";
      ReportLocked(std::move(violation));
    }
    return node;
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<LockNode>(LockNode{key, rank, id}));
  name_to_id_.emplace(std::move(key), id);
  adj_.emplace_back();
  return nodes_.back().get();
}

std::string LockGraph::HeldStackString(const ThreadState& thread) const {
  std::string out = "[";
  for (int i = 0; i < thread.depth; ++i) {
    if (i > 0) out += ", ";
    out += thread.held[i].node->name;
  }
  out += "]";
  return out;
}

void LockGraph::RecordAcquire(ThreadState& thread, const void* instance,
                              const LockNode* node, bool blocking) {
  if (node == nullptr) return;
  if (blocking && thread.depth > 0) {
    std::string context;
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < thread.depth; ++i) {
      const ThreadState::Held& held = thread.held[i];
      if (held.node == node) {
        if (held.instance == instance &&
            reported_self_.insert(node->id).second) {
          Violation violation;
          violation.kind = Violation::Kind::kSelfDeadlock;
          violation.summary = "mutex '" + node->name +
                              "' acquired twice by the same thread "
                              "(guaranteed deadlock on std::mutex)";
          violation.edges.push_back(node->name + " -> " + node->name +
                                    " (held stack " +
                                    HeldStackString(thread) + ")");
          ReportLocked(std::move(violation));
        }
        // Two *instances* of one class nesting (e.g. two ForkJoinStates)
        // would need per-instance ordering to model; not flagged.
        continue;
      }
      if (context.empty()) {
        context = "acquired '" + node->name + "' while holding " +
                  HeldStackString(thread);
      }
      AddEdgeLocked(held.node, node, context);
    }
  }
  if (thread.depth < ThreadState::kMaxHeld) {
    thread.held[thread.depth].instance = instance;
    thread.held[thread.depth].node = node;
    ++thread.depth;
  } else {
    ++thread.overflowed;
  }
}

void LockGraph::RecordRelease(ThreadState& thread, const void* instance) {
  // Scan from the top: releases are usually LIFO, but CondVar::Wait and
  // hand-over-hand patterns may release out of order.
  for (int i = thread.depth - 1; i >= 0; --i) {
    if (thread.held[i].instance != instance) continue;
    for (int j = i; j + 1 < thread.depth; ++j) {
      thread.held[j] = thread.held[j + 1];
    }
    --thread.depth;
    return;
  }
  // Untracked (stack overflowed at acquire, or an unnamed mutex): ignore.
}

void LockGraph::AddEdgeLocked(const LockNode* from, const LockNode* to,
                              const std::string& context) {
  std::pair<int, int> key(from->id, to->id);
  bool inserted = edges_.emplace(key, EdgeInfo{context}).second;
  if (inserted) {
    adj_[static_cast<std::size_t>(from->id)].push_back(to->id);
  }

  // Rank discipline: acquisition order must strictly ascend, so a
  // same-or-lower-ranked lock under a held one is an inversion even if
  // no second thread ever takes the reversed order.
  if (from->rank != kNoRank && to->rank != kNoRank && to->rank <= from->rank &&
      reported_ranks_.insert(key).second) {
    Violation violation;
    violation.kind = Violation::Kind::kRankInversion;
    violation.summary = "rank inversion: acquired '" + to->name + "' (rank " +
                        std::to_string(to->rank) + ") while holding '" +
                        from->name + "' (rank " + std::to_string(from->rank) +
                        "); ranks must strictly increase";
    violation.edges.push_back(from->name + " -> " + to->name + " (" + context +
                              ")");
    ReportLocked(std::move(violation));
  }

  if (!inserted) return;
  // The new edge from -> to closes a cycle iff `from` is reachable from
  // `to` along existing edges. Report each closing pair once.
  std::vector<int> path;
  if (!FindPathLocked(to->id, from->id, &path)) return;
  if (!reported_cycles_.insert(key).second) return;
  Violation violation;
  violation.kind = Violation::Kind::kCycle;
  std::string names = from->name + " -> " + to->name;
  for (std::size_t i = 1; i < path.size(); ++i) {
    names += " -> " + nodes_[static_cast<std::size_t>(path[i])]->name;
  }
  violation.summary =
      "lock-order cycle (potential deadlock): " + names;
  violation.edges.push_back(from->name + " -> " + to->name + " (" + context +
                            ")");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    std::pair<int, int> leg(path[i], path[i + 1]);
    auto it = edges_.find(leg);
    std::string leg_context = it == edges_.end() ? "" : it->second.context;
    violation.edges.push_back(
        nodes_[static_cast<std::size_t>(leg.first)]->name + " -> " +
        nodes_[static_cast<std::size_t>(leg.second)]->name + " (" +
        leg_context + ")");
  }
  ReportLocked(std::move(violation));
}

bool LockGraph::FindPathLocked(int from, int to,
                               std::vector<int>* path) const {
  // Iterative DFS recording parents so the cycle report can name every
  // edge on the path.
  std::vector<int> parent(nodes_.size(), -1);
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<int> stack;
  stack.push_back(from);
  visited[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    int current = stack.back();
    stack.pop_back();
    if (current == to) {
      std::vector<int> reversed;
      for (int walk = to; walk != -1; walk = parent[static_cast<std::size_t>(walk)]) {
        reversed.push_back(walk);
      }
      path->assign(reversed.rbegin(), reversed.rend());
      return true;
    }
    for (int next : adj_[static_cast<std::size_t>(current)]) {
      if (visited[static_cast<std::size_t>(next)]) continue;
      visited[static_cast<std::size_t>(next)] = true;
      parent[static_cast<std::size_t>(next)] = current;
      stack.push_back(next);
    }
  }
  return false;
}

void LockGraph::ReportLocked(Violation violation) {
  violations_.push_back(violation);
  if (!fatal_on_violation_) return;
  // Fatal report on the violating thread, while the evidence is fresh.
  // Raw stderr (allowlisted for the io-stream lint rule, like
  // common/check.h): the obs dump path takes locks of its own, which a
  // lock-discipline reporter must not depend on.
  std::fprintf(stderr, "lock_graph: FATAL %s: %s\n",
               ViolationKindName(violation.kind), violation.summary.c_str());
  for (const std::string& edge : violation.edges) {
    std::fprintf(stderr, "lock_graph:   edge %s\n", edge.c_str());
  }
  std::fprintf(stderr,
               "lock_graph: build with -DSOI_DEADLOCK_DETECT=OFF to compile "
               "the detector out, or SetFatalOnViolation(false) to collect "
               "reports instead\n");
  std::fflush(stderr);
  std::abort();
}

GraphSnapshot LockGraph::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  GraphSnapshot snapshot;
  snapshot.nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    snapshot.nodes.push_back(NodeSnapshot{node->name, node->rank});
  }
  snapshot.edges.reserve(edges_.size());
  for (const auto& [key, info] : edges_) {
    snapshot.edges.push_back(
        EdgeSnapshot{nodes_[static_cast<std::size_t>(key.first)]->name,
                     nodes_[static_cast<std::size_t>(key.second)]->name,
                     info.context});
  }
  snapshot.violations = violations_;
  return snapshot;
}

std::size_t LockGraph::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.size();
}

void LockGraph::SetFatalOnViolation(bool fatal) {
  std::lock_guard<std::mutex> lock(mu_);
  fatal_on_violation_ = fatal;
}

void LockGraph::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& neighbors : adj_) neighbors.clear();
  edges_.clear();
  reported_cycles_.clear();
  reported_ranks_.clear();
  reported_self_.clear();
  violations_.clear();
}

ThreadState& CurrentThreadState() {
  thread_local ThreadState state;
  return state;
}

void OnMutexAcquire(const void* instance, const LockNode* node) {
  LockGraph::Global().RecordAcquire(CurrentThreadState(), instance, node,
                                    /*blocking=*/true);
}

void OnMutexTryAcquired(const void* instance, const LockNode* node) {
  LockGraph::Global().RecordAcquire(CurrentThreadState(), instance, node,
                                    /*blocking=*/false);
}

void OnMutexRelease(const void* instance) {
  LockGraph::Global().RecordRelease(CurrentThreadState(), instance);
}

}  // namespace lock_graph
}  // namespace soi
