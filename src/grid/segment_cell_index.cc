#include "grid/segment_cell_index.h"

#include <algorithm>

#include "common/check.h"
#include "geometry/distance.h"

namespace soi {

namespace {

const std::vector<SegmentId>& EmptySegments() {
  static const std::vector<SegmentId>* empty = new std::vector<SegmentId>();
  return *empty;
}

}  // namespace

SegmentCellIndex::SegmentCellIndex(const RoadNetwork& network,
                                   GridGeometry geometry)
    : geometry_(std::move(geometry)), network_(&network) {
  segment_cells_.resize(static_cast<size_t>(network.num_segments()));
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    const Segment& seg = network.segment(id).geometry;
    std::vector<CellId>& cells = segment_cells_[static_cast<size_t>(id)];
    // Probe one cell beyond the segment MBR so cells the segment merely
    // touches on a shared boundary are not missed; the exact distance
    // test below filters the rest out.
    Box probe = seg.BoundingBox().Expanded(geometry_.cell_size());
    geometry_.ForEachCellInBox(probe, [&](CellId cell) {
      if (SegmentBoxDistance(seg, geometry_.CellBox(cell)) == 0.0) {
        cells.push_back(cell);
        cell_segments_[cell].push_back(id);
      }
    });
    // ForEachCellInBox iterates row-major, so `cells` is already sorted.
  }
}

const std::vector<CellId>& SegmentCellIndex::SegmentCells(SegmentId id) const {
  SOI_DCHECK(id >= 0 &&
             static_cast<size_t>(id) < segment_cells_.size());
  return segment_cells_[static_cast<size_t>(id)];
}

const std::vector<SegmentId>& SegmentCellIndex::CellSegments(
    CellId id) const {
  auto it = cell_segments_.find(id);
  return it == cell_segments_.end() ? EmptySegments() : it->second;
}

EpsAugmentedMaps::EpsAugmentedMaps(const SegmentCellIndex& base, double eps)
    : eps_(eps), geometry_(&base.geometry()) {
  SOI_CHECK(eps >= 0) << "eps must be non-negative";
  const RoadNetwork& network = base.network();
  segment_cells_.resize(static_cast<size_t>(network.num_segments()));
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    const Segment& seg = network.segment(id).geometry;
    std::vector<CellId>& cells = segment_cells_[static_cast<size_t>(id)];
    // Pad by one cell beyond eps for the same boundary-touch reason as in
    // SegmentCellIndex (distance exactly eps to a cell across a boundary).
    Box probe = seg.BoundingBox().Expanded(eps + geometry_->cell_size());
    geometry_->ForEachCellInBox(probe, [&](CellId cell) {
      if (SegmentBoxDistance(seg, geometry_->CellBox(cell)) <= eps) {
        cells.push_back(cell);
        cell_segments_[cell].push_back(id);
      }
    });
  }
}

const std::vector<CellId>& EpsAugmentedMaps::SegmentCells(
    SegmentId id) const {
  SOI_DCHECK(id >= 0 &&
             static_cast<size_t>(id) < segment_cells_.size());
  return segment_cells_[static_cast<size_t>(id)];
}

const std::vector<SegmentId>& EpsAugmentedMaps::CellSegments(
    CellId id) const {
  auto it = cell_segments_.find(id);
  return it == cell_segments_.end() ? EmptySegments() : it->second;
}

}  // namespace soi
