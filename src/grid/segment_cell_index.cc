#include "grid/segment_cell_index.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "geometry/distance.h"
#include "obs/obs.h"

namespace soi {

namespace {

// Inverts the segment -> cells CSR into cell -> segments, in parallel,
// without locks, deterministically. A sequential counting pass over the
// flat values arena sizes every per-cell row exactly; the fill pass then
// statically partitions the cell-id space and each chunk scans the
// (sorted) per-segment rows in segment-id order, claiming only the cells
// it owns, so every per-cell row comes out ascending by segment id for
// any thread count — matching the sequential inversion order.
void InvertSegmentCells(const CsrArray<CellId>& segment_cells,
                        int64_t num_cells, ThreadPool* pool,
                        CsrArray<SegmentId>* cell_segments) {
  std::vector<int64_t> counts(static_cast<size_t>(num_cells), 0);
  for (CellId cell : segment_cells.values()) {
    ++counts[static_cast<size_t>(cell)];
  }
  *cell_segments = CsrArray<SegmentId>::FromRowCounts(counts);
  // Reuse `counts` as per-cell fill cursors. Each cell is owned by
  // exactly one chunk, so the cursor updates are race-free.
  std::fill(counts.begin(), counts.end(), 0);
  const int64_t num_segments = segment_cells.num_rows();
  ParallelForChunks(pool, 0, num_cells, [&](int64_t lo, int64_t hi) {
    for (int64_t id = 0; id < num_segments; ++id) {
      Span<CellId> cells = segment_cells.Row(id);
      auto first = std::lower_bound(cells.begin(), cells.end(),
                                    static_cast<CellId>(lo));
      for (auto it = first; it != cells.end() && *it < hi; ++it) {
        const size_t cell = static_cast<size_t>(*it);
        cell_segments->mutable_row(*it)[counts[cell]++] =
            static_cast<SegmentId>(id);
      }
    }
  });
}

// Builds per-segment rows [lo, hi) of `build_row` into chunk-local CSR
// parts merged in chunk order: concatenating rows in segment order makes
// the merged arena independent of the chunking, hence of the thread
// count.
template <typename BuildRow>
CsrArray<CellId> BuildSegmentRows(int64_t num_segments, ThreadPool* pool,
                                  BuildRow&& build_row) {
  int threads = pool ? pool->num_threads() : 1;
  const int64_t chunks =
      std::max<int64_t>(1, std::min<int64_t>(threads, num_segments));
  std::vector<CsrArray<CellId>> parts(static_cast<size_t>(chunks));
  ParallelFor(pool, 0, chunks, [&](int64_t c) {
    CsrArray<CellId>& part = parts[static_cast<size_t>(c)];
    const int64_t lo = c * num_segments / chunks;
    const int64_t hi = (c + 1) * num_segments / chunks;
    for (int64_t id = lo; id < hi; ++id) {
      build_row(static_cast<SegmentId>(id), &part);
      part.FinishRow();
    }
  });
  size_t total_values = 0;
  for (const auto& part : parts) {
    total_values += static_cast<size_t>(part.num_values());
  }
  CsrArray<CellId> merged;
  merged.Reserve(static_cast<size_t>(num_segments), total_values);
  for (const auto& part : parts) merged.AppendAll(part);
  return merged;
}

}  // namespace

SegmentCellIndex::SegmentCellIndex(const RoadNetwork& network,
                                   GridGeometry geometry, ThreadPool* pool)
    : geometry_(std::move(geometry)), network_(&network) {
  SOI_TRACE_SPAN("grid.build_segment_cells");
  Stopwatch build_timer;
  segment_cells_ = BuildSegmentRows(
      network.num_segments(), pool,
      [&](SegmentId id, CsrArray<CellId>* row) {
        const Segment& seg = network.segment(id).geometry;
        // Probe one cell beyond the segment MBR so cells the segment
        // merely touches on a shared boundary are not missed; the exact
        // distance test below filters the rest out.
        Box probe = seg.BoundingBox().Expanded(geometry_.cell_size());
        geometry_.ForEachCellInBox(probe, [&](CellId cell) {
          // Exact zero: SegmentBoxDistance returns 0.0 identically when
          // the segment touches the (closed) box.
          // soi-lint: float-eq
          if (SegmentBoxDistance(seg, geometry_.CellBox(cell)) == 0.0) {
            row->PushValue(cell);
          }
        });
        // ForEachCellInBox iterates row-major, so the row is sorted.
      });
  InvertSegmentCells(segment_cells_, geometry_.num_cells(), pool,
                     &cell_segments_);
  SOI_OBS_COUNTER_ADD("soi.index.segment_cells_builds", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.index.segment_cells_build_seconds",
                            build_timer.ElapsedSeconds());
}

SegmentCellIndex::SegmentCellIndex(const RoadNetwork& network,
                                   GridGeometry geometry,
                                   CsrArray<CellId> segment_cells,
                                   ThreadPool* pool)
    : geometry_(std::move(geometry)),
      network_(&network),
      segment_cells_(std::move(segment_cells)) {
  SOI_CHECK(segment_cells_.num_rows() == network.num_segments())
      << "adopted segment cell lists do not match the network: "
      << segment_cells_.num_rows() << " rows for "
      << network.num_segments() << " segments";
  InvertSegmentCells(segment_cells_, geometry_.num_cells(), pool,
                     &cell_segments_);
}

EpsAugmentedMaps::EpsAugmentedMaps(const SegmentCellIndex& base, double eps,
                                   ThreadPool* pool,
                                   const CancellationToken* cancel)
    : eps_(eps), geometry_(&base.geometry()) {
  SOI_CHECK(eps >= 0) << "eps must be non-negative";
  SOI_TRACE_SPAN("grid.eps_augment");
  Stopwatch build_timer;
  const RoadNetwork& network = base.network();
  segment_cells_ = BuildSegmentRows(
      network.num_segments(), pool,
      [&](SegmentId id, CsrArray<CellId>* row) {
        if (cancel != nullptr) ThrowIfCancelled(*cancel);
        const Segment& seg = network.segment(id).geometry;
        // Pad by one cell beyond eps for the same boundary-touch reason
        // as in SegmentCellIndex (distance exactly eps to a cell across
        // a boundary).
        Box probe = seg.BoundingBox().Expanded(eps + geometry_->cell_size());
        geometry_->ForEachCellInBox(probe, [&](CellId cell) {
          if (SegmentBoxDistance(seg, geometry_->CellBox(cell)) <= eps) {
            row->PushValue(cell);
          }
        });
      });
  InvertSegmentCells(segment_cells_, geometry_->num_cells(), pool,
                     &cell_segments_);
  SOI_OBS_COUNTER_ADD("soi.index.eps_augment_builds", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.index.eps_augment_seconds",
                            build_timer.ElapsedSeconds());
}

EpsAugmentedMaps::EpsAugmentedMaps(const SegmentCellIndex& base, double eps,
                                   CsrArray<CellId> segment_cells,
                                   ThreadPool* pool)
    : eps_(eps),
      geometry_(&base.geometry()),
      segment_cells_(std::move(segment_cells)) {
  SOI_CHECK(eps >= 0) << "eps must be non-negative";
  SOI_CHECK(segment_cells_.num_rows() == base.network().num_segments())
      << "adopted eps cell lists do not match the network: "
      << segment_cells_.num_rows() << " rows for "
      << base.network().num_segments() << " segments";
  InvertSegmentCells(segment_cells_, geometry_->num_cells(), pool,
                     &cell_segments_);
}

}  // namespace soi
