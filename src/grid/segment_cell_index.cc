#include "grid/segment_cell_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "geometry/distance.h"
#include "obs/obs.h"

namespace soi {

namespace {

// Inverts segment -> cells into cell -> segments, in parallel, without
// locks, deterministically: the cell-id space is statically partitioned
// and each chunk scans the (sorted) per-segment lists in segment-id order,
// claiming only the cells it owns. Every per-cell list therefore comes out
// ascending by segment id for any thread count, matching the sequential
// inversion order.
void InvertSegmentCells(
    const std::vector<std::vector<CellId>>& segment_cells,
    int64_t num_cells, ThreadPool* pool,
    std::vector<std::vector<SegmentId>>* cell_segments) {
  cell_segments->assign(static_cast<size_t>(num_cells), {});
  ParallelForChunks(pool, 0, num_cells, [&](int64_t lo, int64_t hi) {
    for (size_t id = 0; id < segment_cells.size(); ++id) {
      const std::vector<CellId>& cells = segment_cells[id];
      auto first = std::lower_bound(cells.begin(), cells.end(),
                                    static_cast<CellId>(lo));
      for (auto it = first; it != cells.end() && *it < hi; ++it) {
        (*cell_segments)[static_cast<size_t>(*it)].push_back(
            static_cast<SegmentId>(id));
      }
    }
  });
}

}  // namespace

SegmentCellIndex::SegmentCellIndex(const RoadNetwork& network,
                                   GridGeometry geometry, ThreadPool* pool)
    : geometry_(std::move(geometry)), network_(&network) {
  SOI_TRACE_SPAN("grid.build_segment_cells");
  Stopwatch build_timer;
  segment_cells_.resize(static_cast<size_t>(network.num_segments()));
  ParallelFor(pool, 0, network.num_segments(), [&](int64_t id) {
    const Segment& seg =
        network.segment(static_cast<SegmentId>(id)).geometry;
    std::vector<CellId>& cells = segment_cells_[static_cast<size_t>(id)];
    // Probe one cell beyond the segment MBR so cells the segment merely
    // touches on a shared boundary are not missed; the exact distance
    // test below filters the rest out.
    Box probe = seg.BoundingBox().Expanded(geometry_.cell_size());
    geometry_.ForEachCellInBox(probe, [&](CellId cell) {
      // Exact zero: SegmentBoxDistance returns 0.0 identically when
      // the segment touches the (closed) box.
      // soi-lint: float-eq
      if (SegmentBoxDistance(seg, geometry_.CellBox(cell)) == 0.0) {
        cells.push_back(cell);
      }
    });
    // ForEachCellInBox iterates row-major, so `cells` is already sorted.
  });
  InvertSegmentCells(segment_cells_, geometry_.num_cells(), pool,
                     &cell_segments_);
  SOI_OBS_COUNTER_ADD("soi.index.segment_cells_builds", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.index.segment_cells_build_seconds",
                            build_timer.ElapsedSeconds());
}

SegmentCellIndex::SegmentCellIndex(
    const RoadNetwork& network, GridGeometry geometry,
    std::vector<std::vector<CellId>> segment_cells, ThreadPool* pool)
    : geometry_(std::move(geometry)),
      network_(&network),
      segment_cells_(std::move(segment_cells)) {
  SOI_CHECK(segment_cells_.size() ==
            static_cast<size_t>(network.num_segments()))
      << "adopted segment cell lists do not match the network: "
      << segment_cells_.size() << " lists for " << network.num_segments()
      << " segments";
  InvertSegmentCells(segment_cells_, geometry_.num_cells(), pool,
                     &cell_segments_);
}

const std::vector<CellId>& SegmentCellIndex::SegmentCells(SegmentId id) const {
  SOI_DCHECK(id >= 0 &&
             static_cast<size_t>(id) < segment_cells_.size());
  return segment_cells_[static_cast<size_t>(id)];
}

const std::vector<SegmentId>& SegmentCellIndex::CellSegments(
    CellId id) const {
  SOI_DCHECK(id >= 0 && static_cast<size_t>(id) < cell_segments_.size());
  return cell_segments_[static_cast<size_t>(id)];
}

EpsAugmentedMaps::EpsAugmentedMaps(const SegmentCellIndex& base, double eps,
                                   ThreadPool* pool,
                                   const CancellationToken* cancel)
    : eps_(eps), geometry_(&base.geometry()) {
  SOI_CHECK(eps >= 0) << "eps must be non-negative";
  SOI_TRACE_SPAN("grid.eps_augment");
  Stopwatch build_timer;
  const RoadNetwork& network = base.network();
  segment_cells_.resize(static_cast<size_t>(network.num_segments()));
  ParallelFor(pool, 0, network.num_segments(), [&](int64_t id) {
    if (cancel != nullptr) ThrowIfCancelled(*cancel);
    const Segment& seg =
        network.segment(static_cast<SegmentId>(id)).geometry;
    std::vector<CellId>& cells = segment_cells_[static_cast<size_t>(id)];
    // Pad by one cell beyond eps for the same boundary-touch reason as in
    // SegmentCellIndex (distance exactly eps to a cell across a boundary).
    Box probe = seg.BoundingBox().Expanded(eps + geometry_->cell_size());
    geometry_->ForEachCellInBox(probe, [&](CellId cell) {
      if (SegmentBoxDistance(seg, geometry_->CellBox(cell)) <= eps) {
        cells.push_back(cell);
      }
    });
  });
  InvertSegmentCells(segment_cells_, geometry_->num_cells(), pool,
                     &cell_segments_);
  SOI_OBS_COUNTER_ADD("soi.index.eps_augment_builds", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.index.eps_augment_seconds",
                            build_timer.ElapsedSeconds());
}

EpsAugmentedMaps::EpsAugmentedMaps(
    const SegmentCellIndex& base, double eps,
    std::vector<std::vector<CellId>> segment_cells, ThreadPool* pool)
    : eps_(eps),
      geometry_(&base.geometry()),
      segment_cells_(std::move(segment_cells)) {
  SOI_CHECK(eps >= 0) << "eps must be non-negative";
  SOI_CHECK(segment_cells_.size() ==
            static_cast<size_t>(base.network().num_segments()))
      << "adopted eps cell lists do not match the network: "
      << segment_cells_.size() << " lists for "
      << base.network().num_segments() << " segments";
  InvertSegmentCells(segment_cells_, geometry_->num_cells(), pool,
                     &cell_segments_);
}

const std::vector<CellId>& EpsAugmentedMaps::SegmentCells(
    SegmentId id) const {
  SOI_DCHECK(id >= 0 &&
             static_cast<size_t>(id) < segment_cells_.size());
  return segment_cells_[static_cast<size_t>(id)];
}

const std::vector<SegmentId>& EpsAugmentedMaps::CellSegments(
    CellId id) const {
  SOI_DCHECK(id >= 0 && static_cast<size_t>(id) < cell_segments_.size());
  return cell_segments_[static_cast<size_t>(id)];
}

}  // namespace soi
