#ifndef SOI_GRID_PHOTO_GRID_INDEX_H_
#define SOI_GRID_PHOTO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/grid_geometry.h"
#include "objects/photo.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// The diversification index of Section 4.2.1: a grid with cell side rho/2
/// over a street's photos R_s, holding per cell the photo list, a local
/// inverted index, the cell keyword set c.Psi, and the min/max tag-set
/// cardinalities psi_min / psi_max used by the textual bounds.
///
/// Photo ids are local: indices into the `photos` vector the index was
/// built over (normally StreetPhotos::photos).
class PhotoGridIndex {
 public:
  struct Cell {
    /// Photo ids in the cell, ascending.
    std::vector<PhotoId> photos;
    /// Local inverted index c.I: keyword -> photos carrying it, ascending.
    std::unordered_map<KeywordId, std::vector<PhotoId>> postings;
    /// c.Psi: the keywords present in this cell.
    KeywordSet keywords;
    /// Minimum / maximum |Psi_r| over the cell's photos.
    int64_t psi_min = 0;
    int64_t psi_max = 0;
    /// Componentwise bounding box of the cell's visual descriptors
    /// (empty when photos carry none) — the visual-extension analogue of
    /// the cell keyword aggregates.
    std::vector<float> visual_min;
    std::vector<float> visual_max;
  };

  /// Builds over `photos` with cells of side `cell_size` (= rho/2 in the
  /// paper). Requires a non-empty photo set.
  PhotoGridIndex(double cell_size, const std::vector<Photo>& photos);

  const GridGeometry& geometry() const { return geometry_; }
  const std::vector<Photo>& photos() const { return *photos_; }

  /// Ids of all non-empty cells, ascending (the candidate list C of
  /// Algorithm 2).
  const std::vector<CellId>& non_empty_cells() const {
    return non_empty_cells_;
  }

  /// Cell bucket, or nullptr if empty.
  const Cell* FindCell(CellId id) const;

  /// Number of photos in `cell` (0 if empty).
  int64_t NumPhotosInCell(CellId id) const;

  /// Sum of photo counts over the (2*radius+1)^2 block of cells centered
  /// on `cell` (clipped at the grid edges). radius=2 gives the numerator
  /// of the spatial relevance upper bound, Equation 12.
  int64_t NeighborhoodCount(CellId cell, int32_t radius) const;

 private:
  GridGeometry geometry_;
  const std::vector<Photo>* photos_;
  std::unordered_map<CellId, Cell> cells_;
  std::vector<CellId> non_empty_cells_;
};

}  // namespace soi

#endif  // SOI_GRID_PHOTO_GRID_INDEX_H_
