#ifndef SOI_GRID_GLOBAL_INVERTED_INDEX_H_
#define SOI_GRID_GLOBAL_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "grid/grid_geometry.h"
#include "grid/poi_grid_index.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// The global inverted index of Section 3.2.1: for each keyword psi, the
/// list of <cell, numPOIs> entries sorted decreasingly on numPOIs, where
/// numPOIs is the number of POIs in the cell carrying psi.
///
/// The entry list for the query keyword is (after per-cell aggregation for
/// multi-keyword queries) the source list SL1 of Algorithm 1.
class GlobalInvertedIndex {
 public:
  struct Entry {
    CellId cell;
    /// Number of POIs in the cell carrying the keyword.
    int64_t num_pois;
    /// Total weight of those POIs (equals num_pois with unit weights);
    /// the quantity the SL1 ordering and the unseen upper bound use, so
    /// the weighted-mass extension stays sound.
    double weight;
  };

  /// Builds from an already-built POI grid (offline, once per dataset).
  explicit GlobalInvertedIndex(const PoiGridIndex& grid);

  /// Snapshot adoption path (src/snapshot): wraps restored per-keyword
  /// entry lists, which must already be sorted decreasingly on weight
  /// with the ascending-cell-id tie-break (the order a fresh build
  /// produces and the snapshot writer preserves).
  explicit GlobalInvertedIndex(
      std::unordered_map<KeywordId, std::vector<Entry>> lists);

  /// Entries for `keyword`, sorted decreasingly on weight. Empty if the
  /// keyword occurs nowhere.
  const std::vector<Entry>& Entries(KeywordId keyword) const;

  /// Builds the SL1 aggregation for a multi-keyword query: for every cell
  /// that appears in some query keyword's list, the upper bound
  /// |P_Psi(c)| = min(|P_c|, sum over psi of I[psi][c]) on the number
  /// (and, in `weight`, the min of the analogous weight sums on the total
  /// weight) of POIs in the cell relevant to the query (Algorithm 1,
  /// lines 1-3). Returned sorted decreasingly on the weight bound.
  std::vector<Entry> BuildQueryCellList(const KeywordSet& query,
                                        const PoiGridIndex& grid) const;

  int64_t num_keywords() const {
    return static_cast<int64_t>(lists_.size());
  }

 private:
  std::unordered_map<KeywordId, std::vector<Entry>> lists_;
};

}  // namespace soi

#endif  // SOI_GRID_GLOBAL_INVERTED_INDEX_H_
