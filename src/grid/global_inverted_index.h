#ifndef SOI_GRID_GLOBAL_INVERTED_INDEX_H_
#define SOI_GRID_GLOBAL_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/csr.h"
#include "common/span.h"
#include "grid/grid_geometry.h"
#include "grid/poi_grid_index.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// The global inverted index of Section 3.2.1: for each keyword psi, the
/// list of <cell, numPOIs> entries sorted decreasingly on numPOIs, where
/// numPOIs is the number of POIs in the cell carrying psi.
///
/// Storage is a dense KeywordId-indexed CSR arena (common/csr.h): the
/// per-keyword entry lists live contiguously and Entries() is two offset
/// loads — no per-call hash lookup on the hot path. Keywords that occur
/// nowhere (including ids beyond the indexed range and negative ids)
/// yield an empty span, preserving the old empty-list fallback.
///
/// The entry list for the query keyword is (after per-cell aggregation for
/// multi-keyword queries) the source list SL1 of Algorithm 1.
class GlobalInvertedIndex {
 public:
  struct Entry {
    CellId cell;
    /// Number of POIs in the cell carrying the keyword.
    int64_t num_pois;
    /// Total weight of those POIs (equals num_pois with unit weights);
    /// the quantity the SL1 ordering and the unseen upper bound use, so
    /// the weighted-mass extension stays sound.
    double weight;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.cell == b.cell && a.num_pois == b.num_pois &&
             a.weight == b.weight;
    }
  };

  /// Reusable per-query scratch for BuildQueryCellList: dense per-cell
  /// accumulators plus the list of touched cells, so repeated queries on
  /// one thread allocate nothing steady-state. The dense arrays are
  /// all-zero between calls (BuildQueryCellList restores them).
  struct QueryCellScratch {
    std::vector<int64_t> counts;
    std::vector<double> weights;
    std::vector<CellId> touched;
  };

  /// Builds from an already-built POI grid (offline, once per dataset).
  explicit GlobalInvertedIndex(const PoiGridIndex& grid);

  /// Snapshot adoption path (src/snapshot): wraps restored per-keyword
  /// entry rows in a dense KeywordId-indexed CSR (absent keywords are
  /// empty rows). Every row must already be sorted decreasingly on
  /// weight with the ascending-cell-id tie-break (the order a fresh
  /// build produces and the snapshot writer preserves).
  explicit GlobalInvertedIndex(CsrArray<Entry> lists);

  /// Entries for `keyword`, sorted decreasingly on weight. Empty if the
  /// keyword occurs nowhere (also for out-of-range or negative ids).
  Span<Entry> Entries(KeywordId keyword) const {
    if (keyword < 0 || keyword >= lists_.num_rows()) return Span<Entry>();
    return lists_.Row(keyword);
  }

  /// Builds the SL1 aggregation for a multi-keyword query: for every cell
  /// that appears in some query keyword's list, the upper bound
  /// |P_Psi(c)| = min(|P_c|, sum over psi of I[psi][c]) on the number
  /// (and, in `weight`, the min of the analogous weight sums on the total
  /// weight) of POIs in the cell relevant to the query (Algorithm 1,
  /// lines 1-3). Returned sorted decreasingly on the weight bound.
  std::vector<Entry> BuildQueryCellList(const KeywordSet& query,
                                        const PoiGridIndex& grid) const;

  /// Allocation-free variant for the serving path: accumulates through
  /// `scratch` (resized to the grid once, zero-restored on return) and
  /// writes the sorted list into `*result` (cleared first, capacity
  /// retained). Produces bit-identical results to the allocating
  /// overload.
  void BuildQueryCellList(const KeywordSet& query, const PoiGridIndex& grid,
                          QueryCellScratch* scratch,
                          std::vector<Entry>* result) const;

  /// Sorts a row into the canonical order every reader assumes: weight
  /// descending, ascending cell id as the tie-break. Cells are unique
  /// within a row, so this is a strict total order — two inputs with the
  /// same entry set always sort to the same sequence, which is what lets
  /// the ingest overlay rebuild a dirty row and land bit-identical to a
  /// cold rebuild (grid/live_poi_view.h).
  static void SortByWeightDesc(std::vector<Entry>* entries);

  /// Number of distinct keywords with at least one entry.
  int64_t num_keywords() const { return num_nonempty_; }

  /// The full dense CSR arena (snapshot writer, determinism tests).
  const CsrArray<Entry>& lists() const { return lists_; }

 private:
  CsrArray<Entry> lists_;
  int64_t num_nonempty_ = 0;
};

}  // namespace soi

#endif  // SOI_GRID_GLOBAL_INVERTED_INDEX_H_
