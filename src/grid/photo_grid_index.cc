#include "grid/photo_grid_index.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace soi {

namespace {

Box BoundsOf(const std::vector<Photo>& photos) {
  Box box = Box::Empty();
  for (const Photo& photo : photos) box.ExtendToCover(photo.position);
  return box;
}

}  // namespace

PhotoGridIndex::PhotoGridIndex(double cell_size,
                               const std::vector<Photo>& photos)
    : geometry_(BoundsOf(photos), cell_size), photos_(&photos) {
  SOI_CHECK(!photos.empty()) << "PhotoGridIndex over an empty photo set";
  for (size_t i = 0; i < photos.size(); ++i) {
    PhotoId id = static_cast<PhotoId>(i);
    CellId cell_id = geometry_.CellOf(photos[i].position);
    Cell& cell = cells_[cell_id];
    cell.photos.push_back(id);
    for (KeywordId keyword : photos[i].keywords.ids()) {
      cell.postings[keyword].push_back(id);
    }
  }
  for (auto& [id, cell] : cells_) {
    non_empty_cells_.push_back(id);
    cell.psi_min = std::numeric_limits<int64_t>::max();
    cell.psi_max = 0;
    std::vector<KeywordId> cell_keywords;
    cell_keywords.reserve(cell.postings.size());
    for (const auto& [keyword, postings] : cell.postings) {
      cell_keywords.push_back(keyword);
    }
    cell.keywords = KeywordSet(std::move(cell_keywords));
    for (PhotoId photo : cell.photos) {
      int64_t n = photos[static_cast<size_t>(photo)].keywords.size();
      cell.psi_min = std::min(cell.psi_min, n);
      cell.psi_max = std::max(cell.psi_max, n);
      const std::vector<float>& visual =
          photos[static_cast<size_t>(photo)].visual;
      if (!visual.empty()) {
        if (cell.visual_min.empty()) {
          cell.visual_min = visual;
          cell.visual_max = visual;
        } else {
          SOI_CHECK(visual.size() == cell.visual_min.size())
              << "inconsistent visual descriptor dimensions";
          for (size_t d = 0; d < visual.size(); ++d) {
            cell.visual_min[d] = std::min(cell.visual_min[d], visual[d]);
            cell.visual_max[d] = std::max(cell.visual_max[d], visual[d]);
          }
        }
      }
    }
  }
  std::sort(non_empty_cells_.begin(), non_empty_cells_.end());
}

const PhotoGridIndex::Cell* PhotoGridIndex::FindCell(CellId id) const {
  auto it = cells_.find(id);
  return it == cells_.end() ? nullptr : &it->second;
}

int64_t PhotoGridIndex::NumPhotosInCell(CellId id) const {
  const Cell* cell = FindCell(id);
  return cell == nullptr ? 0 : static_cast<int64_t>(cell->photos.size());
}

int64_t PhotoGridIndex::NeighborhoodCount(CellId cell, int32_t radius) const {
  CellCoord center = geometry_.ToCoord(cell);
  int64_t count = 0;
  for (int32_t dy = -radius; dy <= radius; ++dy) {
    for (int32_t dx = -radius; dx <= radius; ++dx) {
      CellCoord c{center.ix + dx, center.iy + dy};
      if (c.ix < 0 || c.ix >= geometry_.nx() || c.iy < 0 ||
          c.iy >= geometry_.ny()) {
        continue;
      }
      count += NumPhotosInCell(geometry_.ToId(c));
    }
  }
  return count;
}

}  // namespace soi
