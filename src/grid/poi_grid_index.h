#ifndef SOI_GRID_POI_GRID_INDEX_H_
#define SOI_GRID_POI_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "grid/grid_geometry.h"
#include "objects/poi.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace soi {

/// The POI-side spatial grid index of Section 3.2.1: buckets all POIs into
/// uniform cells and keeps, per cell, a local inverted index mapping each
/// keyword to the cell's POIs that carry it, sorted increasingly by POI id.
///
/// Built offline once per dataset (POIs are static); the SOI algorithm and
/// the BL baseline both read it.
class PoiGridIndex {
 public:
  /// Bucket data of one non-empty grid cell.
  struct Cell {
    /// All POI ids in the cell, ascending.
    std::vector<PoiId> pois;
    /// Local inverted index: keyword -> POI ids in this cell carrying it,
    /// ascending (the c.I(psi) lists of Algorithm 1).
    std::unordered_map<KeywordId, std::vector<PoiId>> postings;
  };

  /// Buckets `pois` into cells of side `cell_size` covering `bounds`.
  /// `bounds` must cover every POI position (outliers are clamped into
  /// border cells).
  PoiGridIndex(const Box& bounds, double cell_size,
               const std::vector<Poi>& pois);

  const GridGeometry& geometry() const { return geometry_; }

  /// The indexed POIs (the index stores ids into this vector).
  const std::vector<Poi>& pois() const { return *pois_; }

  /// Cell bucket, or nullptr if the cell is empty.
  const Cell* FindCell(CellId id) const;

  /// |P_c|: number of POIs in the cell (0 if empty).
  int64_t NumPoisInCell(CellId id) const;

  /// The posting list c.I(psi), or nullptr if absent.
  const std::vector<PoiId>* FindPostings(CellId cell, KeywordId keyword) const;

  /// Ids of all non-empty cells (unordered).
  std::vector<CellId> NonEmptyCells() const;

  /// Number of POIs in `cell` that carry at least one keyword of `query`,
  /// counted exactly by merging the per-keyword posting lists (each POI
  /// counted once). This is the synchronized traversal of procedure
  /// UpdateInterest for multi-keyword queries.
  int64_t CountRelevantInCell(CellId cell, const KeywordSet& query) const;

  /// Invokes `fn(PoiId)` once per POI in `cell` relevant to `query`
  /// (merged across the query's posting lists, ascending by id).
  template <typename Fn>
  void ForEachRelevantInCell(CellId cell, const KeywordSet& query,
                             Fn&& fn) const {
    const Cell* c = FindCell(cell);
    if (c == nullptr) return;
    MergeRelevantInCell(*c, query, fn);
  }

 private:
  GridGeometry geometry_;
  const std::vector<Poi>* pois_;
  std::unordered_map<CellId, Cell> cells_;
};

/// The shared posting-list merge behind ForEachRelevantInCell: invokes
/// `fn(PoiId)` once per POI of `cell` carrying at least one keyword of
/// `query`, ascending by id. A free function (not a PoiGridIndex method)
/// so overlay readers (grid/live_poi_view.h) run the identical merge —
/// same cursor order, same emission order — on delta-replacement cells,
/// which is what keeps live reads bit-identical to a cold rebuild.
template <typename Fn>
void MergeRelevantInCell(const PoiGridIndex::Cell& cell,
                         const KeywordSet& query, Fn&& fn) {
  // k-way merge over the (sorted) posting lists of the query keywords,
  // emitting each POI id exactly once. Query keyword counts are tiny
  // (|Psi| <= ~4 in the paper), so a fixed-size cursor array scan beats a
  // heap — and avoids a heap allocation on this very hot path (it runs
  // once per (segment, cell) pair in both SOI and BL).
  struct Cursor {
    const std::vector<PoiId>* list;
    size_t pos;
  };
  constexpr size_t kMaxQueryKeywords = 16;
  SOI_DCHECK(static_cast<size_t>(query.size()) <= kMaxQueryKeywords)
      << "queries of more than 16 keywords are not supported";
  Cursor cursors[kMaxQueryKeywords];
  size_t num_cursors = 0;
  for (KeywordId keyword : query.ids()) {
    auto it = cell.postings.find(keyword);
    if (it != cell.postings.end() && !it->second.empty()) {
      cursors[num_cursors++] = Cursor{&it->second, 0};
    }
  }
  // Single-list fast path: most cells hold few of the query's keywords.
  if (num_cursors == 1) {
    for (PoiId id : *cursors[0].list) fn(id);
    return;
  }
  while (num_cursors > 0) {
    PoiId smallest = (*cursors[0].list)[cursors[0].pos];
    for (size_t i = 1; i < num_cursors; ++i) {
      smallest = std::min(smallest, (*cursors[i].list)[cursors[i].pos]);
    }
    fn(smallest);
    // Advance every cursor past `smallest`; drop exhausted cursors.
    for (size_t i = 0; i < num_cursors;) {
      Cursor& cur = cursors[i];
      if ((*cur.list)[cur.pos] == smallest) ++cur.pos;
      if (cur.pos >= cur.list->size()) {
        cursors[i] = cursors[--num_cursors];
      } else {
        ++i;
      }
    }
  }
}

}  // namespace soi

#endif  // SOI_GRID_POI_GRID_INDEX_H_
