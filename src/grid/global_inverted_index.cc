#include "grid/global_inverted_index.h"

#include <algorithm>

namespace soi {

namespace {

void SortByWeightDesc(std::vector<GlobalInvertedIndex::Entry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const GlobalInvertedIndex::Entry& a,
               const GlobalInvertedIndex::Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.cell < b.cell;  // Deterministic tie-break.
            });
}

}  // namespace

GlobalInvertedIndex::GlobalInvertedIndex(const PoiGridIndex& grid) {
  const std::vector<Poi>& pois = grid.pois();
  // Build-time staging only: rows are gathered per keyword, sorted, then
  // flattened into the serving arena. Offline, once per dataset.
  std::vector<std::vector<Entry>> rows;
  for (CellId cell : grid.NonEmptyCells()) {
    const PoiGridIndex::Cell* bucket = grid.FindCell(cell);
    for (const auto& [keyword, postings] : bucket->postings) {
      if (static_cast<size_t>(keyword) >= rows.size()) {
        rows.resize(static_cast<size_t>(keyword) + 1);
      }
      double weight = 0.0;
      for (PoiId id : postings) {
        weight += pois[static_cast<size_t>(id)].weight;
      }
      rows[static_cast<size_t>(keyword)].push_back(
          Entry{cell, static_cast<int64_t>(postings.size()), weight});
    }
  }
  for (auto& row : rows) {
    if (row.empty()) continue;
    ++num_nonempty_;
    SortByWeightDesc(&row);
  }
  lists_ = CsrArray<Entry>::FromRows(rows);
}

GlobalInvertedIndex::GlobalInvertedIndex(CsrArray<Entry> lists)
    : lists_(std::move(lists)) {
  for (int64_t k = 0; k < lists_.num_rows(); ++k) {
    if (lists_.RowSize(k) > 0) ++num_nonempty_;
  }
}

std::vector<GlobalInvertedIndex::Entry>
GlobalInvertedIndex::BuildQueryCellList(const KeywordSet& query,
                                        const PoiGridIndex& grid) const {
  QueryCellScratch scratch;
  std::vector<Entry> result;
  BuildQueryCellList(query, grid, &scratch, &result);
  return result;
}

void GlobalInvertedIndex::BuildQueryCellList(
    const KeywordSet& query, const PoiGridIndex& grid,
    QueryCellScratch* scratch, std::vector<Entry>* result) const {
  const size_t num_cells =
      static_cast<size_t>(grid.geometry().num_cells());
  if (scratch->counts.size() < num_cells) {
    scratch->counts.assign(num_cells, 0);
    scratch->weights.assign(num_cells, 0.0);
  }
  scratch->touched.clear();
  // Per-cell accumulation visits (keyword, entry) pairs in exactly the
  // order the nested-map implementation did, so the summed doubles are
  // bit-identical. Every entry has num_pois >= 1, so a zero count marks
  // a first touch.
  for (KeywordId keyword : query.ids()) {
    for (const Entry& entry : Entries(keyword)) {
      const size_t cell = static_cast<size_t>(entry.cell);
      if (scratch->counts[cell] == 0) {
        scratch->touched.push_back(entry.cell);
      }
      scratch->counts[cell] += entry.num_pois;
      scratch->weights[cell] += entry.weight;
    }
  }
  const std::vector<Poi>& pois = grid.pois();
  result->clear();
  result->reserve(scratch->touched.size());
  for (CellId cell : scratch->touched) {
    // min(per-keyword sum, whole-cell total) is a valid upper bound for
    // counts and weights alike.
    double cell_weight = 0.0;
    const PoiGridIndex::Cell* bucket = grid.FindCell(cell);
    for (PoiId id : bucket->pois) {
      cell_weight += pois[static_cast<size_t>(id)].weight;
    }
    const size_t c = static_cast<size_t>(cell);
    result->push_back(Entry{cell,
                            std::min(scratch->counts[c],
                                     grid.NumPoisInCell(cell)),
                            std::min(scratch->weights[c], cell_weight)});
    // Restore the all-zero invariant for the next query.
    scratch->counts[c] = 0;
    scratch->weights[c] = 0.0;
  }
  SortByWeightDesc(result);
}

}  // namespace soi
