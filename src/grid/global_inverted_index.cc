#include "grid/global_inverted_index.h"

#include <algorithm>

namespace soi {

namespace {

const std::vector<GlobalInvertedIndex::Entry>& EmptyEntries() {
  // Intentionally leaked singleton.
  static const std::vector<GlobalInvertedIndex::Entry>* empty =
      new std::vector<GlobalInvertedIndex::Entry>();  // soi-lint: naked-new
  return *empty;
}

void SortByWeightDesc(std::vector<GlobalInvertedIndex::Entry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const GlobalInvertedIndex::Entry& a,
               const GlobalInvertedIndex::Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.cell < b.cell;  // Deterministic tie-break.
            });
}

}  // namespace

GlobalInvertedIndex::GlobalInvertedIndex(const PoiGridIndex& grid) {
  const std::vector<Poi>& pois = grid.pois();
  for (CellId cell : grid.NonEmptyCells()) {
    const PoiGridIndex::Cell* bucket = grid.FindCell(cell);
    for (const auto& [keyword, postings] : bucket->postings) {
      double weight = 0.0;
      for (PoiId id : postings) {
        weight += pois[static_cast<size_t>(id)].weight;
      }
      lists_[keyword].push_back(
          Entry{cell, static_cast<int64_t>(postings.size()), weight});
    }
  }
  for (auto& [keyword, entries] : lists_) {
    SortByWeightDesc(&entries);
  }
}

GlobalInvertedIndex::GlobalInvertedIndex(
    std::unordered_map<KeywordId, std::vector<Entry>> lists)
    : lists_(std::move(lists)) {}

const std::vector<GlobalInvertedIndex::Entry>& GlobalInvertedIndex::Entries(
    KeywordId keyword) const {
  auto it = lists_.find(keyword);
  return it == lists_.end() ? EmptyEntries() : it->second;
}

std::vector<GlobalInvertedIndex::Entry>
GlobalInvertedIndex::BuildQueryCellList(const KeywordSet& query,
                                        const PoiGridIndex& grid) const {
  struct Sums {
    int64_t count = 0;
    double weight = 0.0;
  };
  std::unordered_map<CellId, Sums> sums;
  for (KeywordId keyword : query.ids()) {
    for (const Entry& entry : Entries(keyword)) {
      Sums& cell_sums = sums[entry.cell];
      cell_sums.count += entry.num_pois;
      cell_sums.weight += entry.weight;
    }
  }
  const std::vector<Poi>& pois = grid.pois();
  std::vector<Entry> result;
  result.reserve(sums.size());
  for (const auto& [cell, cell_sums] : sums) {
    // min(per-keyword sum, whole-cell total) is a valid upper bound for
    // counts and weights alike.
    double cell_weight = 0.0;
    const PoiGridIndex::Cell* bucket = grid.FindCell(cell);
    for (PoiId id : bucket->pois) {
      cell_weight += pois[static_cast<size_t>(id)].weight;
    }
    result.push_back(Entry{cell,
                           std::min(cell_sums.count,
                                    grid.NumPoisInCell(cell)),
                           std::min(cell_sums.weight, cell_weight)});
  }
  SortByWeightDesc(&result);
  return result;
}

}  // namespace soi
