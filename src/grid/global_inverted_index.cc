#include "grid/global_inverted_index.h"

#include <algorithm>

#include "grid/live_poi_view.h"

namespace soi {

void GlobalInvertedIndex::SortByWeightDesc(std::vector<Entry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const Entry& a, const Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.cell < b.cell;  // Deterministic tie-break.
            });
}

GlobalInvertedIndex::GlobalInvertedIndex(const PoiGridIndex& grid) {
  const std::vector<Poi>& pois = grid.pois();
  // Build-time staging only: rows are gathered per keyword, sorted, then
  // flattened into the serving arena. Offline, once per dataset.
  std::vector<std::vector<Entry>> rows;
  for (CellId cell : grid.NonEmptyCells()) {
    const PoiGridIndex::Cell* bucket = grid.FindCell(cell);
    for (const auto& [keyword, postings] : bucket->postings) {
      if (static_cast<size_t>(keyword) >= rows.size()) {
        rows.resize(static_cast<size_t>(keyword) + 1);
      }
      double weight = 0.0;
      for (PoiId id : postings) {
        weight += pois[static_cast<size_t>(id)].weight;
      }
      rows[static_cast<size_t>(keyword)].push_back(
          Entry{cell, static_cast<int64_t>(postings.size()), weight});
    }
  }
  for (auto& row : rows) {
    if (row.empty()) continue;
    ++num_nonempty_;
    SortByWeightDesc(&row);
  }
  lists_ = CsrArray<Entry>::FromRows(rows);
}

GlobalInvertedIndex::GlobalInvertedIndex(CsrArray<Entry> lists)
    : lists_(std::move(lists)) {
  for (int64_t k = 0; k < lists_.num_rows(); ++k) {
    if (lists_.RowSize(k) > 0) ++num_nonempty_;
  }
}

std::vector<GlobalInvertedIndex::Entry>
GlobalInvertedIndex::BuildQueryCellList(const KeywordSet& query,
                                        const PoiGridIndex& grid) const {
  QueryCellScratch scratch;
  std::vector<Entry> result;
  BuildQueryCellList(query, grid, &scratch, &result);
  return result;
}

void GlobalInvertedIndex::BuildQueryCellList(
    const KeywordSet& query, const PoiGridIndex& grid,
    QueryCellScratch* scratch, std::vector<Entry>* result) const {
  // The static path is the null-overlay special case of the live view;
  // delegating keeps the two read paths one implementation (and so
  // trivially bit-identical to each other).
  LivePoiView(grid, *this).BuildQueryCellList(query, scratch, result);
}

}  // namespace soi
