#include "grid/grid_geometry.h"

#include <algorithm>
#include <cmath>

namespace soi {

GridGeometry::GridGeometry(const Box& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  SOI_CHECK(!bounds.IsEmpty()) << "grid over empty bounds";
  SOI_CHECK(cell_size > 0) << "grid cell size must be positive";
  nx_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(bounds.Width() / cell_size)));
  ny_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(bounds.Height() / cell_size)));
  SOI_CHECK(num_cells() < (int64_t{1} << 31))
      << "grid too fine: " << num_cells() << " cells";
}

CellCoord GridGeometry::CoordOf(const Point& p) const {
  int32_t ix =
      static_cast<int32_t>(std::floor((p.x - bounds_.min.x) / cell_size_));
  int32_t iy =
      static_cast<int32_t>(std::floor((p.y - bounds_.min.y) / cell_size_));
  ix = std::clamp(ix, 0, nx_ - 1);
  iy = std::clamp(iy, 0, ny_ - 1);
  return CellCoord{ix, iy};
}

Box GridGeometry::CellBox(CellId id) const {
  CellCoord c = ToCoord(id);
  Box box;
  box.min = Point{bounds_.min.x + c.ix * cell_size_,
                  bounds_.min.y + c.iy * cell_size_};
  box.max = Point{box.min.x + cell_size_, box.min.y + cell_size_};
  return box;
}

}  // namespace soi
