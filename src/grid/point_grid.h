#ifndef SOI_GRID_POINT_GRID_H_
#define SOI_GRID_POINT_GRID_H_

#include <unordered_map>
#include <vector>

#include "grid/grid_geometry.h"

namespace soi {

/// A simple bucketed point index: maps grid cells to the ids of the points
/// they contain. Generic over the id type; used for global photo lookups
/// (extracting R_s) and as a building block in tests.
template <typename Id>
class PointGrid {
 public:
  /// Builds over `positions[i]` for i in [0, positions.size()); the id of
  /// point i is static_cast<Id>(i).
  PointGrid(GridGeometry geometry, const std::vector<Point>& positions)
      : geometry_(std::move(geometry)) {
    for (size_t i = 0; i < positions.size(); ++i) {
      cells_[geometry_.CellOf(positions[i])].push_back(static_cast<Id>(i));
    }
  }

  const GridGeometry& geometry() const { return geometry_; }

  /// Ids bucketed in `cell` (empty if none).
  const std::vector<Id>& CellContents(CellId cell) const {
    auto it = cells_.find(cell);
    return it == cells_.end() ? kEmpty() : it->second;
  }

  /// Invokes `fn(Id)` for every point bucketed in a cell overlapping `box`.
  /// Callers apply their own exact geometric filter.
  template <typename Fn>
  void ForEachCandidateInBox(const Box& box, Fn&& fn) const {
    geometry_.ForEachCellInBox(box, [&](CellId cell) {
      for (Id id : CellContents(cell)) fn(id);
    });
  }

 private:
  static const std::vector<Id>& kEmpty() {
    // soi-lint: naked-new (intentionally leaked singleton)
    static const std::vector<Id>* empty = new std::vector<Id>();
    return *empty;
  }

  GridGeometry geometry_;
  std::unordered_map<CellId, std::vector<Id>> cells_;
};

}  // namespace soi

#endif  // SOI_GRID_POINT_GRID_H_
