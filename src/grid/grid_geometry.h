#ifndef SOI_GRID_GRID_GEOMETRY_H_
#define SOI_GRID_GRID_GEOMETRY_H_

#include <cstdint>

#include "common/check.h"
#include "geometry/box.h"
#include "geometry/point.h"

namespace soi {

/// Dense index of a grid cell; row-major (iy * nx + ix).
using CellId = int32_t;

/// Integer coordinates of a grid cell.
struct CellCoord {
  int32_t ix = 0;
  int32_t iy = 0;
};

inline bool operator==(const CellCoord& a, const CellCoord& b) {
  return a.ix == b.ix && a.iy == b.iy;
}

/// Geometry of a uniform grid covering a bounding box: coordinate <->
/// cell-id mapping and cell rectangles.
///
/// All spatio-textual indices in the library (the POI grid of Section 3.2.1
/// and the photo grid of Section 4.2.1) share this cell arithmetic. Points
/// outside the covered box are clamped into the border cells, so the grid
/// must be built over a box covering the data.
class GridGeometry {
 public:
  /// Covers `bounds` with square cells of side `cell_size`. Requires a
  /// non-empty bounds box and cell_size > 0.
  GridGeometry(const Box& bounds, double cell_size);

  const Box& bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }
  int32_t nx() const { return nx_; }
  int32_t ny() const { return ny_; }
  int64_t num_cells() const {
    return static_cast<int64_t>(nx_) * static_cast<int64_t>(ny_);
  }

  /// Cell containing `p` (clamped to the grid).
  CellId CellOf(const Point& p) const {
    return ToId(CoordOf(p));
  }

  CellCoord CoordOf(const Point& p) const;

  CellId ToId(const CellCoord& c) const {
    SOI_DCHECK(c.ix >= 0 && c.ix < nx_ && c.iy >= 0 && c.iy < ny_);
    return static_cast<CellId>(c.iy) * nx_ + c.ix;
  }

  CellCoord ToCoord(CellId id) const {
    SOI_DCHECK(id >= 0 && id < num_cells());
    return CellCoord{id % nx_, id / nx_};
  }

  /// The rectangle covered by cell `id`.
  Box CellBox(CellId id) const;

  /// Invokes `fn(CellId)` for every cell overlapping `box` (clamped to the
  /// grid). No-op for an empty box.
  template <typename Fn>
  void ForEachCellInBox(const Box& box, Fn&& fn) const {
    if (box.IsEmpty()) return;
    CellCoord lo = CoordOf(box.min);
    CellCoord hi = CoordOf(box.max);
    for (int32_t iy = lo.iy; iy <= hi.iy; ++iy) {
      for (int32_t ix = lo.ix; ix <= hi.ix; ++ix) {
        fn(ToId(CellCoord{ix, iy}));
      }
    }
  }

 private:
  Box bounds_;
  double cell_size_;
  int32_t nx_;
  int32_t ny_;
};

}  // namespace soi

#endif  // SOI_GRID_GRID_GEOMETRY_H_
