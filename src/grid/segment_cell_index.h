#ifndef SOI_GRID_SEGMENT_CELL_INDEX_H_
#define SOI_GRID_SEGMENT_CELL_INDEX_H_

#include "common/cancellation.h"
#include "common/csr.h"
#include "common/span.h"
#include "grid/grid_geometry.h"
#include "network/road_network.h"

namespace soi {

class ThreadPool;

/// The offline cell <-> segment maps of Section 3.2.1: which grid cells
/// each street segment passes through and, inversely, which segments cross
/// each cell (distance 0).
///
/// Storage is flat CSR (common/csr.h): one contiguous arena per direction
/// instead of one heap block per segment/cell, so the PopCell hot path
/// walks contiguous memory with no per-row pointer chase. Accessors
/// return span views over the arenas.
///
/// Construction is data-parallel when a ThreadPool is supplied: the
/// per-segment cell lists are computed in deterministic fixed chunks,
/// then inverted into the per-cell lists with a count/cursor
/// owner-partition pass. The built index is bit-identical for every
/// thread count (see DESIGN.md "Threading model").
class SegmentCellIndex {
 public:
  /// Requires the grid geometry to cover the network bounds. `pool` (may
  /// be null) parallelizes construction only; it is not retained.
  SegmentCellIndex(const RoadNetwork& network, GridGeometry geometry,
                   ThreadPool* pool = nullptr);

  /// Snapshot adoption path (src/snapshot): wraps already-computed
  /// per-segment cell lists — one sorted CSR row per segment of
  /// `network`, validated by the caller against `geometry` — and
  /// re-derives only the per-cell inversion. Bit-identical to a fresh
  /// build over the same network/geometry for any thread count.
  SegmentCellIndex(const RoadNetwork& network, GridGeometry geometry,
                   CsrArray<CellId> segment_cells,
                   ThreadPool* pool = nullptr);

  const GridGeometry& geometry() const { return geometry_; }
  const RoadNetwork& network() const { return *network_; }

  /// Cells intersected by segment `id`, ascending by cell id.
  Span<CellId> SegmentCells(SegmentId id) const {
    return segment_cells_.Row(id);
  }

  /// Segments intersecting cell `id` (empty if none), ascending by
  /// segment id.
  Span<SegmentId> CellSegments(CellId id) const {
    return cell_segments_.Row(id);
  }

  /// The full segment -> cells arena (snapshot writer, determinism
  /// tests).
  const CsrArray<CellId>& segment_cells() const { return segment_cells_; }

 private:
  GridGeometry geometry_;
  const RoadNetwork* network_;
  CsrArray<CellId> segment_cells_;
  // Dense, indexed by CellId (the algorithm already keeps dense per-cell
  // arrays per query, so this costs nothing new and avoids hash lookups
  // on the PopCell hot path).
  CsrArray<SegmentId> cell_segments_;
};

/// The query-time eps augmentation of the maps: C_eps(l) = cells within
/// distance eps of segment l, and L_eps(c) = segments within distance eps
/// of cell c (Section 3.2.1). Constructed once per (dataset, eps); its
/// construction cost is part of the list-construction phase the paper
/// reports in Figure 4, and is the cost QueryEngine memoizes per eps.
class EpsAugmentedMaps {
 public:
  /// `pool` (may be null) parallelizes the per-segment eps dilation and
  /// the inversion into L_eps(c); the result is bit-identical to the
  /// sequential construction for every thread count. `cancel` (may be
  /// null) is checked once per segment during the dilation pass; a fired
  /// token aborts construction by throwing CancelledError, which the
  /// serving path (QueryEngine::TryRun) converts back to a Status — this
  /// is the one sanctioned use of exceptions besides parallel-chunk
  /// capture (DESIGN.md "Failure model").
  EpsAugmentedMaps(const SegmentCellIndex& base, double eps,
                   ThreadPool* pool = nullptr,
                   const CancellationToken* cancel = nullptr);

  /// Snapshot adoption path (src/snapshot): wraps restored per-segment
  /// eps-dilated cell lists (one sorted CSR row per segment, validated
  /// by the caller) and re-derives only the inversion. Bit-identical to
  /// a fresh build for the same base/eps.
  EpsAugmentedMaps(const SegmentCellIndex& base, double eps,
                   CsrArray<CellId> segment_cells,
                   ThreadPool* pool = nullptr);

  double eps() const { return eps_; }
  const GridGeometry& geometry() const { return *geometry_; }

  /// C_eps(l): cells within eps of segment `id`, ascending by cell id.
  Span<CellId> SegmentCells(SegmentId id) const {
    return segment_cells_.Row(id);
  }

  /// L_eps(c): segments within eps of cell `id` (empty if none),
  /// ascending by segment id.
  Span<SegmentId> CellSegments(CellId id) const {
    return cell_segments_.Row(id);
  }

  /// |C_eps(l)| for every segment (the key of source list SL2).
  int64_t NumSegmentCells(SegmentId id) const {
    return segment_cells_.RowSize(id);
  }

  /// The full segment -> cells arena (snapshot writer, determinism
  /// tests).
  const CsrArray<CellId>& segment_cells() const { return segment_cells_; }

 private:
  double eps_;
  const GridGeometry* geometry_;
  CsrArray<CellId> segment_cells_;
  CsrArray<SegmentId> cell_segments_;
};

}  // namespace soi

#endif  // SOI_GRID_SEGMENT_CELL_INDEX_H_
