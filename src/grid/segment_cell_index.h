#ifndef SOI_GRID_SEGMENT_CELL_INDEX_H_
#define SOI_GRID_SEGMENT_CELL_INDEX_H_

#include <unordered_map>
#include <vector>

#include "grid/grid_geometry.h"
#include "network/road_network.h"

namespace soi {

/// The offline cell <-> segment maps of Section 3.2.1: which grid cells
/// each street segment passes through and, inversely, which segments cross
/// each cell (distance 0).
class SegmentCellIndex {
 public:
  /// Requires the grid geometry to cover the network bounds.
  SegmentCellIndex(const RoadNetwork& network, GridGeometry geometry);

  const GridGeometry& geometry() const { return geometry_; }
  const RoadNetwork& network() const { return *network_; }

  /// Cells intersected by segment `id`, ascending by cell id.
  const std::vector<CellId>& SegmentCells(SegmentId id) const;

  /// Segments intersecting cell `id` (empty if none).
  const std::vector<SegmentId>& CellSegments(CellId id) const;

 private:
  GridGeometry geometry_;
  const RoadNetwork* network_;
  std::vector<std::vector<CellId>> segment_cells_;
  std::unordered_map<CellId, std::vector<SegmentId>> cell_segments_;
};

/// The query-time eps augmentation of the maps: C_eps(l) = cells within
/// distance eps of segment l, and L_eps(c) = segments within distance eps
/// of cell c (Section 3.2.1). Constructed once per (dataset, eps); its
/// construction cost is part of the list-construction phase the paper
/// reports in Figure 4.
class EpsAugmentedMaps {
 public:
  EpsAugmentedMaps(const SegmentCellIndex& base, double eps);

  double eps() const { return eps_; }
  const GridGeometry& geometry() const { return *geometry_; }

  /// C_eps(l): cells within eps of segment `id`, ascending by cell id.
  const std::vector<CellId>& SegmentCells(SegmentId id) const;

  /// L_eps(c): segments within eps of cell `id` (empty if none).
  const std::vector<SegmentId>& CellSegments(CellId id) const;

  /// |C_eps(l)| for every segment (the key of source list SL2).
  int64_t NumSegmentCells(SegmentId id) const {
    return static_cast<int64_t>(SegmentCells(id).size());
  }

 private:
  double eps_;
  const GridGeometry* geometry_;
  std::vector<std::vector<CellId>> segment_cells_;
  std::unordered_map<CellId, std::vector<SegmentId>> cell_segments_;
};

}  // namespace soi

#endif  // SOI_GRID_SEGMENT_CELL_INDEX_H_
