#ifndef SOI_GRID_POI_OVERLAY_H_
#define SOI_GRID_POI_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "grid/global_inverted_index.h"
#include "grid/poi_grid_index.h"
#include "objects/poi.h"

namespace soi {

/// One epoch's delta state over a base PoiGridIndex/GlobalInvertedIndex
/// pair: the incremental-update substrate of src/ingest (DESIGN.md
/// "Ingest & epochs"). Immutable once published — the writer builds a
/// fresh overlay per update batch (copy-on-write of the two hash maps;
/// replacement cells and rows are shared_ptr so untouched ones are
/// shared across epochs) and publishes it atomically; readers pinned to
/// an older epoch keep their overlay alive through the shared_ptr.
///
/// Live-id scheme: base POIs keep their original ids; every inserted POI
/// gets the next id in arrival order (base_size, base_size + 1, ...) and
/// ids are never reused, so the relative order of live ids equals the id
/// order a cold rebuild of the final dataset assigns. Combined with
/// replacement cells/rows that are *fully recomputed* (not base ± delta
/// sums), this makes every floating-point accumulation on the read path
/// visit the same operands in the same order as the cold rebuild —
/// the bit-identity contract of the ingest subsystem.
struct PoiDeltaOverlay {
  /// Size of the base POI table; live ids >= base_size index `added`.
  size_t base_size = 0;

  /// All POIs ever inserted over this base, by insert sequence (live id
  /// = base_size + index). Deleted adds stay in the table — nothing
  /// references them once the replacement cells drop them — so earlier
  /// epochs' cells keep valid ids and ids stay stable across batches.
  std::shared_ptr<const std::vector<Poi>> added;

  /// Live ids (base or added) deleted so far. Only the writer and the
  /// compactor consult this; the read path never does (deleted POIs are
  /// already absent from the replacement cells).
  std::shared_ptr<const std::unordered_set<PoiId>> deleted;

  /// Cells touched by any insert/delete, fully rematerialized: survivors
  /// of the base cell in ascending id order followed by surviving adds
  /// in ascending id order (all base ids < all added ids, so the
  /// concatenation is sorted), postings likewise. A reader uses the
  /// replacement verbatim; an absent key means the base cell is intact.
  std::unordered_map<CellId,
                     std::shared_ptr<const PoiGridIndex::Cell>>
      cells;

  /// Global-index rows for keywords whose entry set changed, recomputed
  /// from the replacement cells and re-sorted with SortByWeightDesc. An
  /// absent key means the base row is intact.
  std::unordered_map<
      KeywordId,
      std::shared_ptr<const std::vector<GlobalInvertedIndex::Entry>>>
      rows;

  /// Number of live POIs (base_size + inserts - deletes).
  int64_t num_live_pois = 0;
};

}  // namespace soi

#endif  // SOI_GRID_POI_OVERLAY_H_
