#ifndef SOI_GRID_LIVE_POI_VIEW_H_
#define SOI_GRID_LIVE_POI_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/span.h"
#include "grid/global_inverted_index.h"
#include "grid/poi_grid_index.h"
#include "grid/poi_overlay.h"
#include "text/keyword_set.h"

namespace soi {

/// The epoch-pinned read surface of the POI indexes: a base
/// PoiGridIndex/GlobalInvertedIndex pair plus an optional PoiDeltaOverlay
/// merged in at read time. Every POI-side read the SOI algorithm performs
/// (cell buckets, posting merges, global-index rows, the SL1 query cell
/// list) goes through this view, so a query sees one consistent epoch for
/// its whole evaluation.
///
/// With a null overlay the view is a zero-cost pass-through to the base
/// indexes — GlobalInvertedIndex::BuildQueryCellList itself delegates
/// here, so the static and live read paths are one implementation and
/// cannot drift apart. With an overlay, lookups consult the overlay's
/// replacement cells/rows first (one hash probe) and fall back to the
/// base; merged reads are bit-identical to a cold rebuild of the live
/// dataset (see grid/poi_overlay.h for the id-order argument).
///
/// Plain value type: three borrowed pointers. The referenced indexes and
/// overlay must outlive the view — the ingest layer guarantees this by
/// handing views out only through pinned PoiEpochSnapshots.
class LivePoiView {
 public:
  /// Base-only view (the static read path).
  LivePoiView(const PoiGridIndex& grid, const GlobalInvertedIndex& global)
      : grid_(&grid), global_(&global), overlay_(nullptr) {}

  /// Overlay view; `overlay` may be null (equivalent to base-only).
  LivePoiView(const PoiGridIndex& grid, const GlobalInvertedIndex& global,
              const PoiDeltaOverlay* overlay)
      : grid_(&grid), global_(&global), overlay_(overlay) {}

  const GridGeometry& geometry() const { return grid_->geometry(); }
  const PoiGridIndex& base_grid() const { return *grid_; }

  /// The POI for a live id: base table for ids below the base size, the
  /// overlay's insert table above it.
  const Poi& PoiById(PoiId id) const {
    const std::vector<Poi>& base = grid_->pois();
    if (overlay_ == nullptr ||
        static_cast<size_t>(id) < overlay_->base_size) {
      return base[static_cast<size_t>(id)];
    }
    return (*overlay_->added)[static_cast<size_t>(id) -
                              overlay_->base_size];
  }

  /// Cell bucket merged through the overlay, or nullptr if the cell is
  /// empty in this epoch.
  const PoiGridIndex::Cell* FindCell(CellId id) const {
    if (overlay_ != nullptr) {
      auto it = overlay_->cells.find(id);
      if (it != overlay_->cells.end()) return it->second.get();
    }
    return grid_->FindCell(id);
  }

  /// |P_c| in this epoch (0 if empty).
  int64_t NumPoisInCell(CellId id) const {
    const PoiGridIndex::Cell* cell = FindCell(id);
    return cell == nullptr ? 0 : static_cast<int64_t>(cell->pois.size());
  }

  /// Global-index entries for `keyword` in this epoch, sorted
  /// decreasingly on weight (the base row unless the overlay replaced
  /// it). Empty for out-of-range ids, like the base accessor.
  Span<GlobalInvertedIndex::Entry> Entries(KeywordId keyword) const {
    if (overlay_ != nullptr) {
      auto it = overlay_->rows.find(keyword);
      if (it != overlay_->rows.end()) {
        return Span<GlobalInvertedIndex::Entry>(*it->second);
      }
    }
    return global_->Entries(keyword);
  }

  /// Invokes `fn(PoiId)` once per POI in `cell` relevant to `query`,
  /// ascending by live id — the same merge (MergeRelevantInCell) the
  /// base index runs, applied to this epoch's effective cell.
  template <typename Fn>
  void ForEachRelevantInCell(CellId cell, const KeywordSet& query,
                             Fn&& fn) const {
    const PoiGridIndex::Cell* c = FindCell(cell);
    if (c == nullptr) return;
    MergeRelevantInCell(*c, query, fn);
  }

  /// The SL1 aggregation of Algorithm 1 over this epoch: identical
  /// accumulation order to (and, with a null overlay, the single
  /// implementation behind) GlobalInvertedIndex::BuildQueryCellList.
  void BuildQueryCellList(const KeywordSet& query,
                          GlobalInvertedIndex::QueryCellScratch* scratch,
                          std::vector<GlobalInvertedIndex::Entry>* result)
      const;

  bool has_overlay() const { return overlay_ != nullptr; }

 private:
  const PoiGridIndex* grid_;
  const GlobalInvertedIndex* global_;
  const PoiDeltaOverlay* overlay_;
};

/// One published epoch: the index pointers a reader may dereference for
/// as long as it holds the snapshot's shared_ptr. After a compaction the
/// overlay is null and grid/global point at the freshly built arenas,
/// whose ownership rides along in `retain`.
struct PoiEpochSnapshot {
  uint64_t epoch = 0;
  const PoiGridIndex* grid = nullptr;
  const GlobalInvertedIndex* global = nullptr;
  /// Null in compacted epochs.
  std::shared_ptr<const PoiDeltaOverlay> overlay;
  /// Keeps whatever arena `grid`/`global` point into alive (the
  /// compacted index bundle); null for the epoch-0 base.
  std::shared_ptr<const void> retain;

  LivePoiView View() const {
    SOI_DCHECK(grid != nullptr && global != nullptr);
    return LivePoiView(*grid, *global, overlay.get());
  }
};

/// Where QueryEngine pins an epoch per query. Pin() is wait-free for
/// readers (the ingest implementation mirrors the RCU-style hit-table of
/// QueryEngine: atomic generation pointer + reader counter, never a
/// lock) and the returned snapshot stays valid until released.
class PoiEpochSource {
 public:
  virtual ~PoiEpochSource() = default;
  virtual std::shared_ptr<const PoiEpochSnapshot> Pin() const = 0;
};

}  // namespace soi

#endif  // SOI_GRID_LIVE_POI_VIEW_H_
