#include "grid/poi_grid_index.h"

#include <algorithm>

namespace soi {

PoiGridIndex::PoiGridIndex(const Box& bounds, double cell_size,
                           const std::vector<Poi>& pois)
    : geometry_(bounds, cell_size), pois_(&pois) {
  for (size_t i = 0; i < pois.size(); ++i) {
    PoiId id = static_cast<PoiId>(i);
    CellId cell_id = geometry_.CellOf(pois[i].position);
    Cell& cell = cells_[cell_id];
    cell.pois.push_back(id);
    for (KeywordId keyword : pois[i].keywords.ids()) {
      cell.postings[keyword].push_back(id);
    }
  }
  // POIs are inserted in ascending id order, so every list is sorted.
}

const PoiGridIndex::Cell* PoiGridIndex::FindCell(CellId id) const {
  auto it = cells_.find(id);
  return it == cells_.end() ? nullptr : &it->second;
}

int64_t PoiGridIndex::NumPoisInCell(CellId id) const {
  const Cell* cell = FindCell(id);
  return cell == nullptr ? 0 : static_cast<int64_t>(cell->pois.size());
}

const std::vector<PoiId>* PoiGridIndex::FindPostings(
    CellId cell_id, KeywordId keyword) const {
  const Cell* cell = FindCell(cell_id);
  if (cell == nullptr) return nullptr;
  auto it = cell->postings.find(keyword);
  return it == cell->postings.end() ? nullptr : &it->second;
}

std::vector<CellId> PoiGridIndex::NonEmptyCells() const {
  std::vector<CellId> ids;
  ids.reserve(cells_.size());
  for (const auto& [id, cell] : cells_) ids.push_back(id);
  return ids;
}

int64_t PoiGridIndex::CountRelevantInCell(CellId cell,
                                          const KeywordSet& query) const {
  int64_t count = 0;
  ForEachRelevantInCell(cell, query, [&count](PoiId) { ++count; });
  return count;
}

}  // namespace soi
