#include "grid/live_poi_view.h"

#include <algorithm>

namespace soi {

void LivePoiView::BuildQueryCellList(
    const KeywordSet& query, GlobalInvertedIndex::QueryCellScratch* scratch,
    std::vector<GlobalInvertedIndex::Entry>* result) const {
  using Entry = GlobalInvertedIndex::Entry;
  const size_t num_cells = static_cast<size_t>(geometry().num_cells());
  if (scratch->counts.size() < num_cells) {
    scratch->counts.assign(num_cells, 0);
    scratch->weights.assign(num_cells, 0.0);
  }
  scratch->touched.clear();
  // Per-cell accumulation visits (keyword, entry) pairs in exactly the
  // order a cold-built index would: query keywords in query order, each
  // row's entries in its canonical sorted order (SortByWeightDesc makes
  // that order a pure function of the entry set, so a rebuilt overlay row
  // iterates like its cold-rebuild twin). Every entry has num_pois >= 1,
  // so a zero count marks a first touch.
  for (KeywordId keyword : query.ids()) {
    for (const Entry& entry : Entries(keyword)) {
      const size_t cell = static_cast<size_t>(entry.cell);
      if (scratch->counts[cell] == 0) {
        scratch->touched.push_back(entry.cell);
      }
      scratch->counts[cell] += entry.num_pois;
      scratch->weights[cell] += entry.weight;
    }
  }
  result->clear();
  result->reserve(scratch->touched.size());
  for (CellId cell : scratch->touched) {
    // min(per-keyword sum, whole-cell total) is a valid upper bound for
    // counts and weights alike. The whole-cell weight sums this epoch's
    // live ids ascending — the same operand order as a cold rebuild.
    double cell_weight = 0.0;
    const PoiGridIndex::Cell* bucket = FindCell(cell);
    for (PoiId id : bucket->pois) {
      cell_weight += PoiById(id).weight;
    }
    const size_t c = static_cast<size_t>(cell);
    result->push_back(
        Entry{cell,
              std::min(scratch->counts[c],
                       static_cast<int64_t>(bucket->pois.size())),
              std::min(scratch->weights[c], cell_weight)});
    // Restore the all-zero invariant for the next query.
    scratch->counts[c] = 0;
    scratch->weights[c] = 0.0;
  }
  GlobalInvertedIndex::SortByWeightDesc(result);
}

}  // namespace soi
