#include "core/query_engine.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace soi {

QueryEngine::QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
                         const GlobalInvertedIndex& global_index,
                         const SegmentCellIndex& segment_cells,
                         QueryEngineOptions options)
    : segment_cells_(&segment_cells),
      options_(std::move(options)),
      pool_(options_.num_threads > 1
                ? std::make_unique<ThreadPool>(options_.num_threads)
                : nullptr),
      algorithm_(network, grid, global_index, pool_.get()) {
  SOI_CHECK(options_.num_threads >= 1) << "num_threads must be >= 1";
  SOI_CHECK(options_.eps_cache_capacity >= 1)
      << "eps_cache_capacity must be >= 1";
  options_.algorithm.pool = pool_.get();
}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const {
  return pool_ ? options_.num_threads : 1;
}

std::shared_ptr<const EpsAugmentedMaps> QueryEngine::GetMaps(double eps) {
  std::promise<std::shared_ptr<const EpsAugmentedMaps>> promise;
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    ++cache_tick_;
    auto it = cache_.find(eps);
    if (it != cache_.end()) {
      ++cache_stats_.hits;
      it->second.last_used = cache_tick_;
      MapsFuture future = it->second.maps;
      lock.unlock();
      return future.get();  // may block on a build in flight
    }
    ++cache_stats_.misses;
    if (cache_.size() >= options_.eps_cache_capacity) {
      auto victim = cache_.begin();
      for (auto entry = cache_.begin(); entry != cache_.end(); ++entry) {
        if (entry->second.last_used < victim->second.last_used) {
          victim = entry;
        }
      }
      cache_.erase(victim);  // holders keep the maps via their shared_ptr
      ++cache_stats_.evictions;
    }
    cache_.emplace(eps,
                   CacheEntry{promise.get_future().share(), cache_tick_});
  }
  // Build outside the lock so other eps values proceed concurrently;
  // same-eps requesters block on the shared future instead of duplicating
  // the build. From a batch worker the inner parallel loops run inline.
  auto maps =
      std::make_shared<const EpsAugmentedMaps>(*segment_cells_, eps,
                                               pool_.get());
  promise.set_value(maps);
  return maps;
}

SoiResult QueryEngine::Run(const SoiQuery& query) {
  std::shared_ptr<const EpsAugmentedMaps> maps = GetMaps(query.eps);
  return algorithm_.TopK(query, *maps, options_.algorithm);
}

std::vector<SoiResult> QueryEngine::RunBatch(
    const std::vector<SoiQuery>& queries) {
  std::vector<SoiResult> results(queries.size());
  ParallelFor(pool_.get(), 0, static_cast<int64_t>(queries.size()),
              [&](int64_t i) {
                results[static_cast<size_t>(i)] =
                    Run(queries[static_cast<size_t>(i)]);
              });
  return results;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

}  // namespace soi
