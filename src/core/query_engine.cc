#include "core/query_engine.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/json_export.h"
#include "obs/obs.h"

namespace soi {

QueryEngine::QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
                         const GlobalInvertedIndex& global_index,
                         const SegmentCellIndex& segment_cells,
                         QueryEngineOptions options)
    : segment_cells_(&segment_cells),
      options_(std::move(options)),
      pool_(options_.num_threads > 1
                ? std::make_unique<ThreadPool>(options_.num_threads)
                : nullptr),
      algorithm_(network, grid, global_index, pool_.get()) {
  SOI_CHECK(options_.num_threads >= 1) << "num_threads must be >= 1";
  SOI_CHECK(options_.eps_cache_capacity >= 1)
      << "eps_cache_capacity must be >= 1";
  options_.algorithm.pool = pool_.get();
}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const {
  return pool_ ? options_.num_threads : 1;
}

std::shared_ptr<const EpsAugmentedMaps> QueryEngine::GetMaps(double eps) {
  std::promise<std::shared_ptr<const EpsAugmentedMaps>> promise;
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    ++cache_tick_;
    auto it = cache_.find(eps);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.cache.hits", 1);
      it->second.last_used = cache_tick_;
      MapsFuture future = it->second.maps;
      lock.unlock();
      return future.get();  // may block on a build in flight
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.cache.misses", 1);
    if (cache_.size() >= options_.eps_cache_capacity) {
      auto victim = cache_.begin();
      for (auto entry = cache_.begin(); entry != cache_.end(); ++entry) {
        if (entry->second.last_used < victim->second.last_used) {
          victim = entry;
        }
      }
      cache_.erase(victim);  // holders keep the maps via their shared_ptr
      cache_evictions_.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.cache.evictions", 1);
    }
    cache_.emplace(eps,
                   CacheEntry{promise.get_future().share(), cache_tick_});
    SOI_OBS_GAUGE_SET("soi.cache.size",
                      static_cast<int64_t>(cache_.size()));
  }
  // Build outside the lock so other eps values proceed concurrently;
  // same-eps requesters block on the shared future instead of duplicating
  // the build. From a batch worker the inner parallel loops run inline.
  SOI_TRACE_SPAN("cache.build_maps");
  Stopwatch build_timer;
  auto maps =
      std::make_shared<const EpsAugmentedMaps>(*segment_cells_, eps,
                                               pool_.get());
  SOI_OBS_COUNTER_ADD("soi.cache.builds", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.cache.build_seconds",
                            build_timer.ElapsedSeconds());
  promise.set_value(maps);
  return maps;
}

SoiResult QueryEngine::Run(const SoiQuery& query) {
  SOI_TRACE_SPAN("engine.query");
  Stopwatch timer;
  std::shared_ptr<const EpsAugmentedMaps> maps = GetMaps(query.eps);
  SoiResult result = algorithm_.TopK(query, *maps, options_.algorithm);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.engine.query_seconds",
                            timer.ElapsedSeconds());
  return result;
}

std::vector<SoiResult> QueryEngine::RunBatch(
    const std::vector<SoiQuery>& queries) {
  SOI_TRACE_SPAN("engine.run_batch");
  Stopwatch timer;
  SOI_OBS_COUNTER_ADD("soi.engine.batches", 1);
  SOI_OBS_COUNTER_ADD("soi.engine.batch_queries",
                      static_cast<int64_t>(queries.size()));
  std::vector<SoiResult> results(queries.size());
  ParallelFor(pool_.get(), 0, static_cast<int64_t>(queries.size()),
              [&](int64_t i) {
                results[static_cast<size_t>(i)] =
                    Run(queries[static_cast<size_t>(i)]);
              });
  SOI_OBS_HISTOGRAM_OBSERVE("soi.engine.batch_seconds",
                            timer.ElapsedSeconds());
  return results;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  stats.evictions = cache_evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::string QueryEngine::MetricsJson() const {
  CacheStats cache = cache_stats();
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("cache");
  json.BeginObject();
  json.KeyValue("hits", cache.hits);
  json.KeyValue("misses", cache.misses);
  json.KeyValue("evictions", cache.evictions);
  json.KeyValue("hit_rate", cache.HitRate());
  json.EndObject();
  json.KeyValue("num_threads", static_cast<int64_t>(num_threads()));
  json.Key("registry");
  obs::WriteMetricsJson(obs::Registry::Global().Snapshot(), &json);
  json.EndObject();
  return out.str();
}

}  // namespace soi
