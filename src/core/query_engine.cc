#include "core/query_engine.h"

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "grid/live_poi_view.h"
#include "obs/json_export.h"
#include "obs/obs.h"

namespace soi {

namespace {

// Bumps the per-failure-class serving counters and passes the status
// through, so failure paths read `return CountQueryFailure(st);`.
Status CountQueryFailure(Status status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      SOI_OBS_COUNTER_ADD("soi.engine.deadline_exceeded", 1);
      break;
    case StatusCode::kCancelled:
      SOI_OBS_COUNTER_ADD("soi.engine.cancelled", 1);
      break;
    default:
      break;
  }
  return status;
}

// RAII decrement of the in-flight query gauge.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<int64_t>* counter) : counter_(counter) {}
  ~InflightGuard() {
    counter_->fetch_sub(1, std::memory_order_relaxed);
    // Last-write-wins level for introspection; a racing Set from a
    // concurrent query only blurs the gauge by one, never the admission
    // check (which reads the atomic, not the gauge).
    SOI_OBS_GAUGE_SET("soi.engine.inflight",
                      counter_->load(std::memory_order_relaxed));
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<int64_t>* counter_;
};

// Flight-recorder identity fields of one query (and its fresh id).
// Callers gate on obs::kEnabled: under SOI_OBSERVABILITY=OFF the id
// macro yields 0 and nothing is recorded.
obs::QueryRecord MakeQueryRecord(const SoiQuery& query) {
  obs::QueryRecord record;
  record.query_id = SOI_OBS_NEXT_QUERY_ID();
  record.psi_size = static_cast<int32_t>(query.keywords.size());
  record.k = query.k;
  record.eps = query.eps;
  record.keyword_ids = query.keywords.ids();
  return record;
}

// Copies the per-query evaluation stats into the flight record.
void FillRecordFromStats(const SoiQueryStats& stats,
                         obs::QueryRecord* record) {
  record->lists_seconds = stats.list_construction_seconds;
  record->filter_seconds = stats.filtering_seconds;
  record->refine_seconds = stats.refinement_seconds;
  record->iterations = stats.iterations;
  record->cells_popped = stats.cells_popped;
  record->segments_popped = stats.segments_popped;
  record->segments_seen = stats.segments_seen;
  record->segments_finalized = stats.segments_finalized_in_refinement;
  record->poi_distance_checks = stats.poi_distance_checks;
}

// Canonical byte key of a query's full identity <Psi, k, eps> for batch
// coalescing. KeywordSet ids are sorted and deduplicated, so identical
// queries produce identical keys. Raw double bits keep the key exact
// (coalescing must never merge queries whose eps merely prints alike).
std::string QueryIdentityKey(const SoiQuery& query) {
  const std::vector<KeywordId>& ids = query.keywords.ids();
  std::string key;
  key.reserve(sizeof(query.eps) + sizeof(query.k) +
              ids.size() * sizeof(KeywordId));
  auto append = [&key](const void* bytes, size_t n) {
    key.append(static_cast<const char*>(bytes), n);
  };
  append(&query.eps, sizeof(query.eps));
  append(&query.k, sizeof(query.k));
  for (KeywordId id : ids) append(&id, sizeof(id));
  return key;
}

}  // namespace

QueryEngine::QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
                         const GlobalInvertedIndex& global_index,
                         const SegmentCellIndex& segment_cells,
                         QueryEngineOptions options)
    : segment_cells_(&segment_cells),
      options_(std::move(options)),
      pool_(options_.num_threads > 1
                ? std::make_unique<ThreadPool>(options_.num_threads)
                : nullptr),
      algorithm_(network, grid, global_index, pool_.get()) {
  SOI_CHECK(options_.num_threads >= 1) << "num_threads must be >= 1";
  SOI_CHECK(options_.eps_cache_capacity >= 1)
      << "eps_cache_capacity must be >= 1";
  options_.algorithm.pool = pool_.get();
}

QueryEngine::QueryEngine(
    const RoadNetwork& network, const PoiGridIndex& grid,
    const GlobalInvertedIndex& global_index,
    const SegmentCellIndex& segment_cells, QueryEngineOptions options,
    std::vector<std::shared_ptr<const EpsAugmentedMaps>> preloaded)
    : QueryEngine(network, grid, global_index, segment_cells,
                  std::move(options)) {
  SOI_CHECK(preloaded.size() <= options_.eps_cache_capacity)
      << "warm start: " << preloaded.size()
      << " preloaded maps exceed eps_cache_capacity="
      << options_.eps_cache_capacity;
  [[maybe_unused]] size_t cache_size_after = 0;
  {
    MutexLock lock(cache_mutex_);
    for (std::shared_ptr<const EpsAugmentedMaps>& maps : preloaded) {
      SOI_CHECK(maps != nullptr) << "warm start: null preloaded maps";
      double eps = maps->eps();
      std::promise<MapsPayload> promise;
      CacheEntry entry;
      entry.maps = promise.get_future().share();
      entry.ready_maps = maps;
      promise.set_value(MapsPayload{std::move(maps), Status::OK()});
      entry.last_used = std::make_shared<std::atomic<uint64_t>>(
          cache_tick_.fetch_add(1, std::memory_order_relaxed) + 1);
      entry.id = ++next_entry_id_;
      bool inserted = cache_.emplace(eps, std::move(entry)).second;
      SOI_CHECK(inserted) << "warm start: duplicate preloaded eps="
                          << FormatDouble(eps);
    }
    RebuildHitTableLocked();
    cache_size_after = cache_.size();
  }
  SOI_OBS_GAUGE_SET("soi.cache.size",
                    static_cast<int64_t>(cache_size_after));
}

void QueryEngine::RebuildHitTableLocked() {
  auto table = std::make_unique<HitTable>();
  table->reserve(cache_.size());
  for (const auto& [eps, entry] : cache_) {
    if (entry.ready_maps == nullptr) continue;  // still building
    table->emplace(eps, HitEntry{entry.ready_maps, entry.last_used});
  }
  hit_table_.store(table.get(), std::memory_order_seq_cst);
  hit_table_storage_.push_back(std::move(table));
  // Grace-period reclamation. Every reader increments hit_readers_
  // (seq_cst) *before* loading hit_table_ (seq_cst); we stored the new
  // generation (seq_cst) before loading the counter (seq_cst). So in the
  // single total order on seq_cst operations, a reader not visible in
  // the counter here either finished (its release decrement
  // happens-before this load, so its table use is done) or has not yet
  // loaded the pointer — and will then observe this store or a later
  // one, never a retired generation. Observing 0 therefore proves no
  // reader can reach any generation but the newest. If readers are in
  // flight, retired generations simply survive until a later rebuild
  // observes quiescence.
  if (hit_table_storage_.size() > 1 &&
      hit_readers_.load(std::memory_order_seq_cst) == 0) {
    std::unique_ptr<const HitTable> current =
        std::move(hit_table_storage_.back());
    hit_table_storage_.clear();
    hit_table_storage_.push_back(std::move(current));
  }
}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const {
  return pool_ ? options_.num_threads : 1;
}

std::shared_ptr<const EpsAugmentedMaps> QueryEngine::GetMaps(double eps) {
  Result<std::shared_ptr<const EpsAugmentedMaps>> maps = TryGetMaps(eps);
  SOI_CHECK(maps.ok()) << "eps augmentation build failed: "
                       << maps.status().ToString();
  return std::move(maps).ValueOrDie();
}

Result<std::shared_ptr<const EpsAugmentedMaps>> QueryEngine::TryGetMaps(
    double eps, const CancellationToken* cancel, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  // Contention-free hit path: resolve against the read-mostly snapshot
  // of completed entries. In the steady state (the cache warmed to the
  // serving eps values) every query takes this branch and the batch
  // threads never serialize on cache_mutex_. A hit racing an eviction
  // may resolve against the just-evicted snapshot — the maps stay alive
  // through the shared_ptr, so this only blurs LRU recency by one tick.
  {
    // Wait-free reader registration: the increment must precede the
    // pointer load (both seq_cst) for the grace-period argument in
    // RebuildHitTableLocked to hold. The shared_ptr is copied out of the
    // table before deregistering, so the maps outlive any reclamation.
    hit_readers_.fetch_add(1, std::memory_order_seq_cst);
    const HitTable* table = hit_table_.load(std::memory_order_seq_cst);
    std::shared_ptr<const EpsAugmentedMaps> maps;
    if (table != nullptr) {
      auto hit = table->find(eps);
      if (hit != table->end()) {
        hit->second.last_used->store(
            cache_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        maps = hit->second.maps;
      }
    }
    hit_readers_.fetch_sub(1, std::memory_order_release);
    if (maps != nullptr) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.cache.hits", 1);
      if (cache_hit != nullptr) *cache_hit = true;
      return maps;
    }
  }

  // Bounded retry: a waiter that observes a peer's failed build loops
  // around and — the failed entry having been evicted by its builder —
  // typically becomes the new builder. The bound only guards against a
  // pathological fault plan failing every rebuild.
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::promise<MapsPayload> promise;
    MapsFuture future;
    uint64_t my_id = 0;
    bool builder = false;
    bool hit = false;
    bool evicted = false;
    [[maybe_unused]] size_t cache_size_after = 0;
    uint64_t tick = cache_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Contention proxy for the bench: how often the serving path had to
    // take cache_mutex_ at all (0 per batch once the cache is warm).
    SOI_OBS_COUNTER_ADD("soi.cache.locked_path", 1);
    {
      // Critical section: map bookkeeping only (cache_mutex_ is a leaf
      // lock — see query_engine.h); counters and gauges are emitted
      // after release.
      MutexLock lock(cache_mutex_);
      auto it = cache_.find(eps);
      if (it != cache_.end()) {
        // In-flight entry (completed ones resolve lock-free above, but
        // an entry completed between the snapshot load and here also
        // lands in this branch — both count as hits).
        hit = true;
        it->second.last_used->store(tick, std::memory_order_relaxed);
        future = it->second.maps;
      } else {
        if (cache_.size() >= options_.eps_cache_capacity) {
          // LRU among *completed* entries only: evicting an in-flight
          // build would detach the shared future concurrent same-eps
          // requesters are about to wait on, and the next same-eps
          // request would start a duplicate build. If every entry is in
          // flight, nothing is evictable and the cache temporarily runs
          // over capacity (bounded by the number of concurrent
          // distinct-eps builds).
          auto victim = cache_.end();
          for (auto entry = cache_.begin(); entry != cache_.end();
               ++entry) {
            if (entry->second.building) continue;
            if (victim == cache_.end() ||
                entry->second.last_used->load(std::memory_order_relaxed) <
                    victim->second.last_used->load(
                        std::memory_order_relaxed)) {
              victim = entry;
            }
          }
          if (victim != cache_.end()) {
            cache_.erase(victim);  // holders keep maps via their shared_ptr
            RebuildHitTableLocked();
            evicted = true;
          }
        }
        my_id = ++next_entry_id_;
        future = promise.get_future().share();
        CacheEntry entry;
        entry.maps = future;
        entry.last_used = std::make_shared<std::atomic<uint64_t>>(tick);
        entry.id = my_id;
        entry.building = true;
        cache_.emplace(eps, std::move(entry));
        builder = true;
        cache_size_after = cache_.size();
      }
    }
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.cache.hits", 1);
    } else {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.cache.misses", 1);
      if (evicted) {
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
        SOI_OBS_COUNTER_ADD("soi.cache.evictions", 1);
      }
      SOI_OBS_GAUGE_SET("soi.cache.size",
                        static_cast<int64_t>(cache_size_after));
    }

    if (!builder) {
      MapsPayload payload = future.get();  // may block on build in flight
      if (payload.status.ok()) {
        if (cache_hit != nullptr) *cache_hit = true;
        return payload.maps;
      }
      continue;  // peer's build failed and was evicted; retry
    }

    // Build outside the lock so other eps values proceed concurrently;
    // same-eps requesters block on the shared future instead of
    // duplicating the build. From a batch worker the inner parallel
    // loops run inline. Exceptions are the two sanctioned unwinding
    // paths (DESIGN.md "Failure model"): cooperative cancellation and
    // injected faults, both converted to Status right here.
    MapsPayload payload;
    if (options_.build_observer) options_.build_observer(eps);
    try {
      SOI_TRACE_SPAN("cache.build_maps");
      Stopwatch build_timer;
      SOI_FAULT_POINT("cache.build_maps");
      payload.maps = std::make_shared<const EpsAugmentedMaps>(
          *segment_cells_, eps, pool_.get(), cancel);
      SOI_OBS_COUNTER_ADD("soi.cache.builds", 1);
      SOI_OBS_HISTOGRAM_OBSERVE("soi.cache.build_seconds",
                                build_timer.ElapsedSeconds());
    } catch (const CancelledError& e) {
      payload.status = e.status();
    } catch (const std::exception& e) {
      payload.status = Status::Internal(
          std::string("eps augmentation build failed: ") + e.what());
    }

    if (!payload.status.ok()) {
      // Evict our own entry BEFORE publishing the failure, so a waiter
      // that wakes on the failed payload retries against a clean slot.
      // The id check keeps a healthy replacement entry (raced in after
      // our eviction by a retrying waiter) untouched. No hit-table
      // republish: an in-flight entry was never in the snapshot.
      [[maybe_unused]] size_t size_after = 0;
      bool erased = false;
      {
        MutexLock lock(cache_mutex_);
        auto it = cache_.find(eps);
        if (it != cache_.end() && it->second.id == my_id) {
          cache_.erase(it);
          erased = true;
          size_after = cache_.size();
        }
      }
      if (erased) {
        SOI_OBS_GAUGE_SET("soi.cache.size",
                          static_cast<int64_t>(size_after));
      }
    } else {
      // Mark the build complete BEFORE publishing the value: once
      // waiters can see the payload the entry must already be a normal
      // evictable cache resident — and in the lock-free hit snapshot.
      // The id check is defensive — eviction skips in-flight entries
      // and only this builder erases its own, so the entry is still
      // ours here.
      MutexLock lock(cache_mutex_);
      auto it = cache_.find(eps);
      if (it != cache_.end() && it->second.id == my_id) {
        it->second.building = false;
        it->second.ready_maps = payload.maps;
        RebuildHitTableLocked();
      }
    }
    promise.set_value(payload);
    if (payload.status.ok()) return payload.maps;
    return payload.status;  // the builder reports its own failure
  }
  return Status::Internal("eps augmentation build failed repeatedly for "
                          "eps=" + FormatDouble(eps));
}

SoiResult QueryEngine::Run(const SoiQuery& query) {
  Result<SoiResult> result = TryRun(query);
  SOI_CHECK(result.ok()) << "Run failed: " << result.status().ToString()
                         << " (use TryRun for per-query Status)";
  return std::move(result).ValueOrDie();
}

Result<SoiResult> QueryEngine::TryRun(const SoiQuery& query) {
  return TryRun(query, options_.algorithm.cancel);
}

Result<SoiResult> QueryEngine::TryRun(const SoiQuery& query,
                                      const CancellationToken& cancel) {
  return TryRunCounted(query, cancel, /*preadmitted=*/false);
}

Result<SoiResult> QueryEngine::TryRunCounted(const SoiQuery& query,
                                             const CancellationToken& cancel,
                                             bool preadmitted) {
  // The observability envelope around the evaluation: every TryRun —
  // success, invalid, shed, expired, faulted — leaves one QueryRecord
  // in the flight recorder, and successful queries additionally stamp
  // their id as the soi.engine.query_seconds exemplar of their latency
  // bucket. Under SOI_OBSERVABILITY=OFF kEnabled is constexpr false and
  // all of this folds away.
  obs::QueryRecord record;
  if (obs::kEnabled) record = MakeQueryRecord(query);
  Stopwatch timer;
  Result<SoiResult> result =
      TryRunInternal(query, cancel, &record, preadmitted);
  if (obs::kEnabled) {
    record.total_seconds = timer.ElapsedSeconds();
    record.status =
        result.ok() ? StatusCode::kOk : result.status().code();
    SOI_OBS_FLIGHT_RECORD(record);
    if (result.ok()) {
      SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("soi.engine.query_seconds",
                                         record.total_seconds,
                                         record.query_id);
    }
  }
  return result;
}

Result<SoiResult> QueryEngine::TryRunInternal(
    const SoiQuery& query, const CancellationToken& cancel,
    obs::QueryRecord* record, bool preadmitted) {
  // Validation precedes every other step — in particular the eps cache
  // lookup, so a NaN eps (NaN != NaN would miss and insert on every
  // call) can never become a cache key.
  SOI_RETURN_NOT_OK(query.Validate());

  // Admission control — unless the caller (a coalesced TryRunBatch
  // group) already charged one slot per logical query it represents.
  std::optional<InflightGuard> guard;
  if (!preadmitted) {
    int64_t inflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    SOI_OBS_GAUGE_SET("soi.engine.inflight", inflight);
    guard.emplace(&inflight_);
    if (options_.max_inflight_queries > 0 &&
        inflight > static_cast<int64_t>(options_.max_inflight_queries)) {
      SOI_OBS_COUNTER_ADD("soi.engine.shed", 1);
      return Status::ResourceExhausted(
          "query shed: " + std::to_string(inflight) +
          " in-flight queries exceeds max_inflight_queries=" +
          std::to_string(options_.max_inflight_queries));
    }
  }

  SOI_TRACE_SPAN("engine.query");
  Status admitted = cancel.Check();
  if (!admitted.ok()) return CountQueryFailure(std::move(admitted));

  std::shared_ptr<const EpsAugmentedMaps> maps;
  {
    auto maps_result =
        TryGetMaps(query.eps, cancel.cancellable() ? &cancel : nullptr,
                   &record->cache_hit);
    if (!maps_result.ok()) {
      return CountQueryFailure(maps_result.status());
    }
    maps = std::move(maps_result).ValueOrDie();
  }

  // Live ingest: pin one epoch for the whole evaluation. The snapshot's
  // shared_ptr (and through it the overlay / compacted arenas) stays
  // alive until this frame returns, so the view's borrowed pointers are
  // valid for every read the algorithm performs. Pinned after admission
  // so shed queries never delay overlay reclamation.
  std::shared_ptr<const PoiEpochSnapshot> epoch;
  std::optional<LivePoiView> live_view;
  if (options_.epoch_source != nullptr) {
    epoch = options_.epoch_source->Pin();
    live_view.emplace(epoch->View());
    record->ingest_epoch = epoch->epoch;
  }

  SoiAlgorithmOptions algorithm_options = options_.algorithm;
  algorithm_options.cancel = cancel;
  if (live_view.has_value()) {
    algorithm_options.live_view = &*live_view;
  }
  // Exemplar attribution for the per-phase latency histograms (plain
  // data; 0 under SOI_OBSERVABILITY=OFF).
  algorithm_options.query_id = record->query_id;
  // TryTopK is Status-based, but an injected fault inside its parallel
  // refinement still unwinds as an exception; convert it here so the
  // serving boundary is exception-free.
  try {
    Result<SoiResult> result =
        algorithm_.TryTopK(query, *maps, algorithm_options);
    if (!result.ok()) return CountQueryFailure(result.status());
    if (obs::kEnabled) {
      FillRecordFromStats(result.ValueOrDie().stats, record);
    }
    return result;
  } catch (const CancelledError& e) {
    return CountQueryFailure(e.status());
  } catch (const std::exception& e) {
    return CountQueryFailure(Status::Internal(
        std::string("query evaluation failed: ") + e.what()));
  }
}

std::vector<SoiResult> QueryEngine::RunBatch(
    const std::vector<SoiQuery>& queries) {
  std::vector<Result<SoiResult>> tried = TryRunBatch(queries);
  std::vector<SoiResult> results;
  results.reserve(tried.size());
  for (Result<SoiResult>& result : tried) {
    SOI_CHECK(result.ok())
        << "RunBatch failed: " << result.status().ToString()
        << " (use TryRunBatch for per-query Status)";
    results.push_back(std::move(result).ValueOrDie());
  }
  return results;
}

std::vector<Result<SoiResult>> QueryEngine::TryRunBatch(
    const std::vector<SoiQuery>& queries) {
  return TryRunBatch(queries, {});
}

std::vector<Result<SoiResult>> QueryEngine::TryRunBatch(
    const std::vector<SoiQuery>& queries,
    const std::vector<CancellationToken>& cancels) {
  SOI_CHECK(cancels.empty() || cancels.size() == queries.size())
      << "TryRunBatch: cancels must be empty or one per query, got "
      << cancels.size() << " tokens for " << queries.size() << " queries";
  SOI_TRACE_SPAN("engine.run_batch");
  Stopwatch timer;
  SOI_OBS_COUNTER_ADD("soi.engine.batches", 1);
  SOI_OBS_COUNTER_ADD("soi.engine.batch_queries",
                      static_cast<int64_t>(queries.size()));
  // Coalesce duplicates (identical <Psi, k, eps>) onto one evaluation.
  // leader[i] == i marks an entry that runs; a duplicate points at the
  // earlier identical query (always a smaller index, so the forward
  // fan-out pass below is well-ordered). Per-query tokens disable
  // coalescing: two duplicates may differ in when their tokens fire.
  std::vector<int64_t> leader(queries.size());
  int64_t coalesced = 0;
  if (cancels.empty() && queries.size() > 1) {
    std::unordered_map<std::string, int64_t> first_by_key;
    first_by_key.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto [it, inserted] = first_by_key.emplace(
          QueryIdentityKey(queries[i]), static_cast<int64_t>(i));
      leader[i] = it->second;
      if (!inserted) ++coalesced;
    }
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      leader[i] = static_cast<int64_t>(i);
    }
  }
  if (coalesced > 0) {
    SOI_OBS_COUNTER_ADD("soi.engine.batch_coalesced", coalesced);
  }
  // Members of each coalesced group, ascending (a leader's own index
  // comes first). Admission control charges per member below.
  std::vector<std::vector<int64_t>> group_members(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    group_members[static_cast<size_t>(leader[i])].push_back(
        static_cast<int64_t>(i));
  }

  std::vector<Result<SoiResult>> results(
      queries.size(),
      Result<SoiResult>(Status::Internal(
          "query not evaluated: batch aborted before this entry ran")));
  try {
    // Dynamic work-grabbing (not static chunking): per-query cost is
    // wildly uneven — a cold eps build can take orders of magnitude
    // longer than a warm-cache query — and a static chunk containing
    // one slow query serializes every query behind it in that chunk.
    // Each entry writes only results[i], so the timing-dependent claim
    // order cannot affect the (bit-identical) per-query results.
    ParallelForDynamic(
        pool_.get(), 0, static_cast<int64_t>(queries.size()),
        [&](int64_t i) {
          size_t idx = static_cast<size_t>(i);
          if (leader[idx] != i) return;  // coalesced dup
          const CancellationToken& cancel =
              cancels.empty() ? options_.algorithm.cancel : cancels[idx];
          const std::vector<int64_t>& group = group_members[idx];
          if (group.size() == 1) {
            // No duplicates: the single-query path (admission inside).
            results[idx] = TryRun(queries[idx], cancel);
            return;
          }
          // Coalesced group under a bounded engine: admission control is
          // per *logical query* — each duplicate occupies one in-flight
          // slot for the duration of the shared evaluation, exactly as
          // if it had been submitted alone. Slots are claimed in input
          // order; a member that finds the engine full is shed
          // individually while admitted members still share the one
          // evaluation.
          std::vector<char> shed;
          size_t num_admitted = group.size();
          if (options_.max_inflight_queries > 0) {
            shed.assign(group.size(), 0);
            num_admitted = 0;
            for (size_t g = 0; g < group.size(); ++g) {
              int64_t inflight =
                  inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
              SOI_OBS_GAUGE_SET("soi.engine.inflight", inflight);
              if (inflight > static_cast<int64_t>(
                                 options_.max_inflight_queries)) {
                inflight_.fetch_sub(1, std::memory_order_relaxed);
                shed[g] = 1;
                SOI_OBS_COUNTER_ADD("soi.engine.shed", 1);
              } else {
                ++num_admitted;
              }
            }
          }
          Result<SoiResult> eval = Result<SoiResult>(
              Status::ResourceExhausted(
                  "query shed: coalesced batch group exceeds "
                  "max_inflight_queries=" +
                  std::to_string(options_.max_inflight_queries)));
          if (num_admitted > 0) {
            // preadmitted when this group claimed slots above.
            eval = TryRunCounted(queries[idx], cancel,
                                 /*preadmitted=*/!shed.empty());
          }
          if (!shed.empty() && num_admitted > 0) {
            inflight_.fetch_sub(static_cast<int64_t>(num_admitted),
                                std::memory_order_relaxed);
            SOI_OBS_GAUGE_SET(
                "soi.engine.inflight",
                inflight_.load(std::memory_order_relaxed));
          }
          for (size_t g = 0; g < group.size(); ++g) {
            if (!shed.empty() && shed[g]) {
              results[static_cast<size_t>(group[g])] =
                  Result<SoiResult>(Status::ResourceExhausted(
                      "query shed: " +
                      std::to_string(options_.max_inflight_queries) +
                      " in-flight queries exceeds "
                      "max_inflight_queries=" +
                      std::to_string(options_.max_inflight_queries)));
            } else {
              results[static_cast<size_t>(group[g])] = eval;
            }
          }
        });
  } catch (const std::exception&) {
    // Only reachable when an injected "pool.run_chunk" fault hits the
    // batch's own outer loop: TryRun itself never throws. The loop's
    // unevaluated entries keep their placeholder Internal status;
    // entries evaluated by sibling participants are unaffected.
  }
  // Flight records for the coalesced duplicates. The group lambda
  // already assigned every member's result (the shared evaluation, or a
  // per-member shed status; a group aborted by a pool fault leaves all
  // its members on the placeholder). Each duplicate gets its own record
  // — marked coalesced, carrying the phase stats of the evaluation that
  // served it but no wall time of its own.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (leader[i] != static_cast<int64_t>(i)) {
      if (obs::kEnabled) {
        obs::QueryRecord record = MakeQueryRecord(queries[i]);
        record.coalesced = true;
        record.status = results[i].ok() ? StatusCode::kOk
                                        : results[i].status().code();
        if (results[i].ok()) {
          FillRecordFromStats(results[i].ValueOrDie().stats, &record);
        }
        SOI_OBS_FLIGHT_RECORD(record);
      }
    }
  }
  SOI_OBS_HISTOGRAM_OBSERVE("soi.engine.batch_seconds",
                            timer.ElapsedSeconds());
  return results;
}

size_t QueryEngine::cache_size() const {
  // Test/diagnostic hook. Must count in-flight entries too, so it reads
  // cache_ (not the completed-only hit snapshot); the critical section
  // is a single size() read.
  MutexLock lock(cache_mutex_);
  return cache_.size();
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  stats.evictions = cache_evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::string QueryEngine::MetricsJson() const {
  CacheStats cache = cache_stats();
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("cache");
  json.BeginObject();
  json.KeyValue("hits", cache.hits);
  json.KeyValue("misses", cache.misses);
  json.KeyValue("evictions", cache.evictions);
  json.KeyValue("hit_rate", cache.HitRate());
  json.EndObject();
  json.KeyValue("num_threads", static_cast<int64_t>(num_threads()));
  json.Key("registry");
  obs::WriteMetricsJson(obs::Registry::Global().Snapshot(), &json);
  json.EndObject();
  return out.str();
}

}  // namespace soi
