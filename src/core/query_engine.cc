#include "core/query_engine.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/json_export.h"
#include "obs/obs.h"

namespace soi {

namespace {

// Bumps the per-failure-class serving counters and passes the status
// through, so failure paths read `return CountQueryFailure(st);`.
Status CountQueryFailure(Status status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      SOI_OBS_COUNTER_ADD("soi.engine.deadline_exceeded", 1);
      break;
    case StatusCode::kCancelled:
      SOI_OBS_COUNTER_ADD("soi.engine.cancelled", 1);
      break;
    default:
      break;
  }
  return status;
}

// RAII decrement of the in-flight query gauge.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<int64_t>* counter) : counter_(counter) {}
  ~InflightGuard() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<int64_t>* counter_;
};

}  // namespace

QueryEngine::QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
                         const GlobalInvertedIndex& global_index,
                         const SegmentCellIndex& segment_cells,
                         QueryEngineOptions options)
    : segment_cells_(&segment_cells),
      options_(std::move(options)),
      pool_(options_.num_threads > 1
                ? std::make_unique<ThreadPool>(options_.num_threads)
                : nullptr),
      algorithm_(network, grid, global_index, pool_.get()) {
  SOI_CHECK(options_.num_threads >= 1) << "num_threads must be >= 1";
  SOI_CHECK(options_.eps_cache_capacity >= 1)
      << "eps_cache_capacity must be >= 1";
  options_.algorithm.pool = pool_.get();
}

QueryEngine::QueryEngine(
    const RoadNetwork& network, const PoiGridIndex& grid,
    const GlobalInvertedIndex& global_index,
    const SegmentCellIndex& segment_cells, QueryEngineOptions options,
    std::vector<std::shared_ptr<const EpsAugmentedMaps>> preloaded)
    : QueryEngine(network, grid, global_index, segment_cells,
                  std::move(options)) {
  SOI_CHECK(preloaded.size() <= options_.eps_cache_capacity)
      << "warm start: " << preloaded.size()
      << " preloaded maps exceed eps_cache_capacity="
      << options_.eps_cache_capacity;
  MutexLock lock(cache_mutex_);
  for (std::shared_ptr<const EpsAugmentedMaps>& maps : preloaded) {
    SOI_CHECK(maps != nullptr) << "warm start: null preloaded maps";
    double eps = maps->eps();
    std::promise<MapsPayload> promise;
    MapsFuture future = promise.get_future().share();
    promise.set_value(MapsPayload{std::move(maps), Status::OK()});
    ++cache_tick_;
    bool inserted =
        cache_
            .emplace(eps, CacheEntry{std::move(future), cache_tick_,
                                     ++next_entry_id_, /*building=*/false})
            .second;
    SOI_CHECK(inserted) << "warm start: duplicate preloaded eps="
                        << FormatDouble(eps);
  }
  SOI_OBS_GAUGE_SET("soi.cache.size", static_cast<int64_t>(cache_.size()));
}

QueryEngine::~QueryEngine() = default;

int QueryEngine::num_threads() const {
  return pool_ ? options_.num_threads : 1;
}

std::shared_ptr<const EpsAugmentedMaps> QueryEngine::GetMaps(double eps) {
  Result<std::shared_ptr<const EpsAugmentedMaps>> maps = TryGetMaps(eps);
  SOI_CHECK(maps.ok()) << "eps augmentation build failed: "
                       << maps.status().ToString();
  return std::move(maps).ValueOrDie();
}

Result<std::shared_ptr<const EpsAugmentedMaps>> QueryEngine::TryGetMaps(
    double eps, const CancellationToken* cancel) {
  // Bounded retry: a waiter that observes a peer's failed build loops
  // around and — the failed entry having been evicted by its builder —
  // typically becomes the new builder. The bound only guards against a
  // pathological fault plan failing every rebuild.
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::promise<MapsPayload> promise;
    MapsFuture future;
    uint64_t my_id = 0;
    bool builder = false;
    {
      MutexLock lock(cache_mutex_);
      ++cache_tick_;
      auto it = cache_.find(eps);
      if (it != cache_.end()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        SOI_OBS_COUNTER_ADD("soi.cache.hits", 1);
        it->second.last_used = cache_tick_;
        future = it->second.maps;
      } else {
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        SOI_OBS_COUNTER_ADD("soi.cache.misses", 1);
        if (cache_.size() >= options_.eps_cache_capacity) {
          // LRU among *completed* entries only: evicting an in-flight
          // build would detach the shared future concurrent same-eps
          // requesters are about to wait on, and the next same-eps
          // request would start a duplicate build. If every entry is in
          // flight, nothing is evictable and the cache temporarily runs
          // over capacity (bounded by the number of concurrent
          // distinct-eps builds).
          auto victim = cache_.end();
          for (auto entry = cache_.begin(); entry != cache_.end();
               ++entry) {
            if (entry->second.building) continue;
            if (victim == cache_.end() ||
                entry->second.last_used < victim->second.last_used) {
              victim = entry;
            }
          }
          if (victim != cache_.end()) {
            cache_.erase(victim);  // holders keep maps via their shared_ptr
            cache_evictions_.fetch_add(1, std::memory_order_relaxed);
            SOI_OBS_COUNTER_ADD("soi.cache.evictions", 1);
          }
        }
        my_id = ++next_entry_id_;
        future = promise.get_future().share();
        cache_.emplace(eps, CacheEntry{future, cache_tick_, my_id,
                                       /*building=*/true});
        builder = true;
        SOI_OBS_GAUGE_SET("soi.cache.size",
                          static_cast<int64_t>(cache_.size()));
      }
    }

    if (!builder) {
      MapsPayload payload = future.get();  // may block on build in flight
      if (payload.status.ok()) return payload.maps;
      continue;  // peer's build failed and was evicted; retry
    }

    // Build outside the lock so other eps values proceed concurrently;
    // same-eps requesters block on the shared future instead of
    // duplicating the build. From a batch worker the inner parallel
    // loops run inline. Exceptions are the two sanctioned unwinding
    // paths (DESIGN.md "Failure model"): cooperative cancellation and
    // injected faults, both converted to Status right here.
    MapsPayload payload;
    if (options_.build_observer) options_.build_observer(eps);
    try {
      SOI_TRACE_SPAN("cache.build_maps");
      Stopwatch build_timer;
      SOI_FAULT_POINT("cache.build_maps");
      payload.maps = std::make_shared<const EpsAugmentedMaps>(
          *segment_cells_, eps, pool_.get(), cancel);
      SOI_OBS_COUNTER_ADD("soi.cache.builds", 1);
      SOI_OBS_HISTOGRAM_OBSERVE("soi.cache.build_seconds",
                                build_timer.ElapsedSeconds());
    } catch (const CancelledError& e) {
      payload.status = e.status();
    } catch (const std::exception& e) {
      payload.status = Status::Internal(
          std::string("eps augmentation build failed: ") + e.what());
    }

    if (!payload.status.ok()) {
      // Evict our own entry BEFORE publishing the failure, so a waiter
      // that wakes on the failed payload retries against a clean slot.
      // The id check keeps a healthy replacement entry (raced in after
      // our eviction by a retrying waiter) untouched.
      MutexLock lock(cache_mutex_);
      auto it = cache_.find(eps);
      if (it != cache_.end() && it->second.id == my_id) {
        cache_.erase(it);
        SOI_OBS_GAUGE_SET("soi.cache.size",
                          static_cast<int64_t>(cache_.size()));
      }
    } else {
      // Mark the build complete BEFORE publishing the value: once
      // waiters can see the payload the entry must already be a normal
      // evictable cache resident. The id check is defensive — eviction
      // skips in-flight entries and only this builder erases its own,
      // so the entry is still ours here.
      MutexLock lock(cache_mutex_);
      auto it = cache_.find(eps);
      if (it != cache_.end() && it->second.id == my_id) {
        it->second.building = false;
      }
    }
    promise.set_value(payload);
    if (payload.status.ok()) return payload.maps;
    return payload.status;  // the builder reports its own failure
  }
  return Status::Internal("eps augmentation build failed repeatedly for "
                          "eps=" + FormatDouble(eps));
}

SoiResult QueryEngine::Run(const SoiQuery& query) {
  Result<SoiResult> result = TryRun(query);
  SOI_CHECK(result.ok()) << "Run failed: " << result.status().ToString()
                         << " (use TryRun for per-query Status)";
  return std::move(result).ValueOrDie();
}

Result<SoiResult> QueryEngine::TryRun(const SoiQuery& query) {
  return TryRun(query, options_.algorithm.cancel);
}

Result<SoiResult> QueryEngine::TryRun(const SoiQuery& query,
                                      const CancellationToken& cancel) {
  // Validation precedes every other step — in particular the eps cache
  // lookup, so a NaN eps (NaN != NaN would miss and insert on every
  // call) can never become a cache key.
  SOI_RETURN_NOT_OK(query.Validate());

  int64_t inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  InflightGuard guard(&inflight_);
  if (options_.max_inflight_queries > 0 &&
      inflight > static_cast<int64_t>(options_.max_inflight_queries)) {
    SOI_OBS_COUNTER_ADD("soi.engine.shed", 1);
    return Status::ResourceExhausted(
        "query shed: " + std::to_string(inflight) + " in-flight queries "
        "exceeds max_inflight_queries=" +
        std::to_string(options_.max_inflight_queries));
  }

  SOI_TRACE_SPAN("engine.query");
  Stopwatch timer;
  Status admitted = cancel.Check();
  if (!admitted.ok()) return CountQueryFailure(std::move(admitted));

  std::shared_ptr<const EpsAugmentedMaps> maps;
  {
    auto maps_result =
        TryGetMaps(query.eps, cancel.cancellable() ? &cancel : nullptr);
    if (!maps_result.ok()) {
      return CountQueryFailure(maps_result.status());
    }
    maps = std::move(maps_result).ValueOrDie();
  }

  SoiAlgorithmOptions algorithm_options = options_.algorithm;
  algorithm_options.cancel = cancel;
  // TryTopK is Status-based, but an injected fault inside its parallel
  // refinement still unwinds as an exception; convert it here so the
  // serving boundary is exception-free.
  try {
    Result<SoiResult> result =
        algorithm_.TryTopK(query, *maps, algorithm_options);
    if (!result.ok()) return CountQueryFailure(result.status());
    SOI_OBS_HISTOGRAM_OBSERVE("soi.engine.query_seconds",
                              timer.ElapsedSeconds());
    return result;
  } catch (const CancelledError& e) {
    return CountQueryFailure(e.status());
  } catch (const std::exception& e) {
    return CountQueryFailure(Status::Internal(
        std::string("query evaluation failed: ") + e.what()));
  }
}

std::vector<SoiResult> QueryEngine::RunBatch(
    const std::vector<SoiQuery>& queries) {
  std::vector<Result<SoiResult>> tried = TryRunBatch(queries);
  std::vector<SoiResult> results;
  results.reserve(tried.size());
  for (Result<SoiResult>& result : tried) {
    SOI_CHECK(result.ok())
        << "RunBatch failed: " << result.status().ToString()
        << " (use TryRunBatch for per-query Status)";
    results.push_back(std::move(result).ValueOrDie());
  }
  return results;
}

std::vector<Result<SoiResult>> QueryEngine::TryRunBatch(
    const std::vector<SoiQuery>& queries) {
  return TryRunBatch(queries, {});
}

std::vector<Result<SoiResult>> QueryEngine::TryRunBatch(
    const std::vector<SoiQuery>& queries,
    const std::vector<CancellationToken>& cancels) {
  SOI_CHECK(cancels.empty() || cancels.size() == queries.size())
      << "TryRunBatch: cancels must be empty or one per query, got "
      << cancels.size() << " tokens for " << queries.size() << " queries";
  SOI_TRACE_SPAN("engine.run_batch");
  Stopwatch timer;
  SOI_OBS_COUNTER_ADD("soi.engine.batches", 1);
  SOI_OBS_COUNTER_ADD("soi.engine.batch_queries",
                      static_cast<int64_t>(queries.size()));
  std::vector<Result<SoiResult>> results(
      queries.size(),
      Result<SoiResult>(Status::Internal(
          "query not evaluated: batch aborted before this entry ran")));
  try {
    ParallelFor(pool_.get(), 0, static_cast<int64_t>(queries.size()),
                [&](int64_t i) {
                  size_t idx = static_cast<size_t>(i);
                  const CancellationToken& cancel =
                      cancels.empty() ? options_.algorithm.cancel
                                      : cancels[idx];
                  results[idx] = TryRun(queries[idx], cancel);
                });
  } catch (const std::exception&) {
    // Only reachable when an injected "pool.run_chunk" fault hits the
    // batch's own outer loop: TryRun itself never throws. The chunk's
    // unevaluated entries keep their placeholder Internal status;
    // entries evaluated by sibling chunks are unaffected.
  }
  SOI_OBS_HISTOGRAM_OBSERVE("soi.engine.batch_seconds",
                            timer.ElapsedSeconds());
  return results;
}

size_t QueryEngine::cache_size() const {
  MutexLock lock(cache_mutex_);
  return cache_.size();
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  stats.evictions = cache_evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::string QueryEngine::MetricsJson() const {
  CacheStats cache = cache_stats();
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("cache");
  json.BeginObject();
  json.KeyValue("hits", cache.hits);
  json.KeyValue("misses", cache.misses);
  json.KeyValue("evictions", cache.evictions);
  json.KeyValue("hit_rate", cache.HitRate());
  json.EndObject();
  json.KeyValue("num_threads", static_cast<int64_t>(num_threads()));
  json.Key("registry");
  obs::WriteMetricsJson(obs::Registry::Global().Snapshot(), &json);
  json.EndObject();
  return out.str();
}

}  // namespace soi
