#include "core/street_photos.h"

#include <algorithm>

#include "common/check.h"

namespace soi {

namespace {

StreetPhotos AssembleFromIds(const RoadNetwork& network, StreetId street,
                             const std::vector<Photo>& photos,
                             std::vector<PhotoId> ids, double eps) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  StreetPhotos result;
  result.street = street;
  result.eps = eps;
  result.global_ids = std::move(ids);
  result.photos.reserve(result.global_ids.size());
  for (PhotoId id : result.global_ids) {
    const Photo& photo = photos[static_cast<size_t>(id)];
    result.photos.push_back(photo);
    result.street_terms.AddAll(photo.keywords);
  }
  result.max_distance = network.StreetBounds(street).Expanded(eps).Diagonal();
  return result;
}

}  // namespace

StreetPhotos ExtractStreetPhotos(const RoadNetwork& network, StreetId street,
                                 const std::vector<Photo>& photos,
                                 const PointGrid<PhotoId>& photo_grid,
                                 double eps) {
  SOI_CHECK(eps > 0);
  Box probe = network.StreetBounds(street).Expanded(eps);
  std::vector<PhotoId> ids;
  photo_grid.ForEachCandidateInBox(probe, [&](PhotoId id) {
    const Photo& photo = photos[static_cast<size_t>(id)];
    if (network.StreetDistanceTo(street, photo.position) <= eps) {
      ids.push_back(id);
    }
  });
  return AssembleFromIds(network, street, photos, std::move(ids), eps);
}

StreetPhotos ExtractStreetPhotosBruteForce(const RoadNetwork& network,
                                           StreetId street,
                                           const std::vector<Photo>& photos,
                                           double eps) {
  SOI_CHECK(eps > 0);
  std::vector<PhotoId> ids;
  for (size_t i = 0; i < photos.size(); ++i) {
    if (network.StreetDistanceTo(street, photos[i].position) <= eps) {
      ids.push_back(static_cast<PhotoId>(i));
    }
  }
  return AssembleFromIds(network, street, photos, std::move(ids), eps);
}

}  // namespace soi
