#include "core/interest.h"

#include <cmath>

#include "common/check.h"

namespace soi {

double SegmentNeighborhoodArea(double length, double eps) {
  SOI_DCHECK(length >= 0);
  SOI_DCHECK(eps > 0);
  return 2.0 * eps * length + M_PI * eps * eps;
}

double SegmentInterest(double mass, double length, double eps) {
  SOI_DCHECK(mass >= 0);
  double area = SegmentNeighborhoodArea(length, eps);
  // Degenerate guard (UBSan float-divide-by-zero): a zero-length segment
  // with eps == 0 has an empty neighborhood — the DCHECKs reject it in
  // debug builds, but in release the density would be 0/0. Define the
  // interest of an empty neighborhood as 0 rather than dividing.
  if (!(area > 0.0)) return 0.0;
  return mass / area;
}

double BruteForceSegmentMass(const Segment& segment,
                             const std::vector<Poi>& pois,
                             const KeywordSet& query, double eps) {
  double mass = 0;
  for (const Poi& poi : pois) {
    if (poi.IsRelevantTo(query) && segment.DistanceTo(poi.position) <= eps) {
      mass += poi.weight;
    }
  }
  return mass;
}

}  // namespace soi
