#include "core/interest.h"

#include <cmath>

#include "common/check.h"

namespace soi {

double SegmentNeighborhoodArea(double length, double eps) {
  SOI_DCHECK(length >= 0);
  SOI_DCHECK(eps > 0);
  return 2.0 * eps * length + M_PI * eps * eps;
}

double SegmentInterest(double mass, double length, double eps) {
  SOI_DCHECK(mass >= 0);
  return mass / SegmentNeighborhoodArea(length, eps);
}

double BruteForceSegmentMass(const Segment& segment,
                             const std::vector<Poi>& pois,
                             const KeywordSet& query, double eps) {
  double mass = 0;
  for (const Poi& poi : pois) {
    if (poi.IsRelevantTo(query) && segment.DistanceTo(poi.position) <= eps) {
      mass += poi.weight;
    }
  }
  return mass;
}

}  // namespace soi
