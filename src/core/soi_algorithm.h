#ifndef SOI_CORE_SOI_ALGORITHM_H_
#define SOI_CORE_SOI_ALGORITHM_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "core/soi_query.h"
#include "grid/global_inverted_index.h"
#include "grid/poi_grid_index.h"
#include "grid/segment_cell_index.h"
#include "network/road_network.h"

namespace soi {

class LivePoiView;
class ThreadPool;

/// Pool of reusable per-query scratch arenas (dense per-segment /
/// per-street arrays, candidate heaps, source-list buffers). Defined in
/// soi_algorithm.cc; sized by the bound dataset and shared by concurrent
/// TopK calls so the serving hot path performs no steady-state heap
/// allocation.
struct SoiScratchPool;

/// Order in which the filtering phase consumes the three ranked source
/// lists of Section 3.2.2.
///
/// SL1 holds cells sorted by decreasing relevant-POI count, SL2 segments by
/// decreasing neighboring-cell count, SL3 segments by increasing length.
/// Correctness is independent of the strategy (asserted by tests); the
/// strategies differ only in how fast the bounds converge.
enum class SourceListStrategy {
  /// The paper's practical default: alternate SL1 (cells) and SL3 (short
  /// segments), consulting SL2 only when its top segment neighbors an
  /// outsized number of cells.
  kAlternateCellsSegments,
  /// Strict SL1 -> SL2 -> SL3 rotation (the pseudocode of Algorithm 1).
  kRoundRobin,
  /// Drain SL1 before touching segments (ablation).
  kCellsFirst,
};

/// Tuning knobs and instrumentation hooks for SoiAlgorithm::TopK.
struct SoiAlgorithmOptions {
  SourceListStrategy strategy = SourceListStrategy::kAlternateCellsSegments;

  /// When true (default), the refinement phase computes exact interests
  /// "as necessary" (Algorithm 1's wording): a seen segment is finalized
  /// only if its optimistic interest bound can still displace the current
  /// k-th street. The returned top-k is unchanged (see DESIGN.md); setting
  /// false finalizes every seen segment (ablation).
  bool pruned_refinement = true;

  /// Optional pool for intra-query parallelism (source-list sorts, the
  /// refinement bound/finalize work). Not owned; may be null. The result
  /// is bit-identical for every pool size (DESIGN.md "Threading model"),
  /// so this is purely a latency knob.
  ThreadPool* pool = nullptr;

  /// Observability attribution: when nonzero, this query's latency
  /// histogram samples carry the id as their exemplar, linking the
  /// bucket back to the query's flight-recorder record. Assigned by
  /// QueryEngine (FlightRecorder::NextQueryId); 0 = unattributed.
  /// Plain data — has no effect on the evaluation or its result.
  uint64_t query_id = 0;

  /// Cooperative cancellation/deadline handle, checked once per
  /// filtering iteration and once per refinement segment. The default
  /// inert token never fires and costs one null test per check, so the
  /// determinism contract and hot-path cost are untouched for callers
  /// that don't use it. TryTopK surfaces a fired token as
  /// kCancelled / kDeadlineExceeded; TopK (the ValueOrDie wrapper)
  /// treats firing as a fatal error — serve cancellable queries through
  /// TryTopK / QueryEngine::TryRun.
  CancellationToken cancel;

  /// Epoch-pinned POI read surface for this evaluation (grid/live_poi_view.h).
  /// When null the run reads the indexes the SoiAlgorithm was constructed
  /// over — the static path. When set, every POI-side read (cell buckets,
  /// posting merges, SL1) goes through the view instead, so live-ingest
  /// callers (QueryEngine over an ingest::LiveWorld) evaluate against one
  /// consistent epoch. The view's base indexes must share the constructed
  /// grid's geometry; the caller keeps the view's targets alive for the
  /// duration of the call.
  const LivePoiView* live_view = nullptr;

  /// Test/diagnostic hook invoked once per filtering iteration, after the
  /// bounds are recomputed and before the termination check.
  struct FilterSnapshot {
    double upper_bound = 0.0;
    double lower_bound = 0.0;
    /// seen[id] != 0 iff segment id has been encountered. Valid only
    /// during the callback.
    const std::vector<char>* segment_seen = nullptr;
  };
  std::function<void(const FilterSnapshot&)> observer;
};

/// The SOI algorithm of Section 3.2 (Algorithm 1): top-k street retrieval
/// by progressive examination of cells and segments with a seen lower
/// bound LB_k and an unseen upper bound UB, followed by a refinement phase
/// that computes exact interests for the seen segments.
///
/// The instance is bound to one dataset's indices and is immutable /
/// thread-compatible; each TopK call carries its own state.
class SoiAlgorithm {
 public:
  /// All three indices must be built over the same grid geometry. `pool`
  /// (may be null) parallelizes the offline by-length sort only; it is
  /// not retained.
  SoiAlgorithm(const RoadNetwork& network, const PoiGridIndex& grid,
               const GlobalInvertedIndex& global_index,
               ThreadPool* pool = nullptr);

  /// Out of line: SoiScratchPool is incomplete here.
  ~SoiAlgorithm();

  SoiAlgorithm(const SoiAlgorithm&) = delete;
  SoiAlgorithm& operator=(const SoiAlgorithm&) = delete;

  /// Evaluates the query. `maps` must be the eps augmentation for
  /// query.eps over the same network and grid geometry. Malformed
  /// queries and a fired cancellation token are fatal here; use TryTopK
  /// for per-query Status.
  SoiResult TopK(const SoiQuery& query, const EpsAugmentedMaps& maps,
                 const SoiAlgorithmOptions& options = {}) const;

  /// The Status-returning serving-path variant of TopK: kInvalidArgument
  /// for a query that fails SoiQuery::Validate() or maps built for a
  /// different eps/geometry, kCancelled / kDeadlineExceeded when
  /// options.cancel fires mid-run (checked per filtering iteration and
  /// per refinement segment). On success the result is bit-identical to
  /// TopK's.
  [[nodiscard]] Result<SoiResult> TryTopK(
      const SoiQuery& query, const EpsAugmentedMaps& maps,
      const SoiAlgorithmOptions& options = {}) const;

  /// Segment ids sorted by increasing length (the offline SL3 list).
  const std::vector<SegmentId>& segments_by_length() const {
    return segments_by_length_;
  }

 private:
  const RoadNetwork* network_;
  const PoiGridIndex* grid_;
  const GlobalInvertedIndex* global_index_;
  std::vector<SegmentId> segments_by_length_;
  // Reused across queries; internally synchronized (leases are handed to
  // concurrent TopK calls under the pool's own mutex).
  std::unique_ptr<SoiScratchPool> scratch_pool_;
};

}  // namespace soi

#endif  // SOI_CORE_SOI_ALGORITHM_H_
