#ifndef SOI_CORE_STREET_PHOTOS_H_
#define SOI_CORE_STREET_PHOTOS_H_

#include <vector>

#include "grid/point_grid.h"
#include "network/road_network.h"
#include "objects/photo.h"
#include "text/term_vector.h"

namespace soi {

/// The photo context of one street to be described (Section 4.1): the
/// relevant photos R_s = {r : dist(r, s) <= eps}, the street keyword
/// frequency vector Phi_s, and the normalizer maxD(s).
///
/// Photos are copied out of the dataset; ids in the diversification
/// algorithms are *local* (indices into `photos`), with `global_ids`
/// mapping back to the dataset photo vector.
struct StreetPhotos {
  StreetId street = -1;
  double eps = 0.0;
  /// R_s, ordered by ascending global id.
  std::vector<Photo> photos;
  /// global_ids[i] is the dataset id of photos[i].
  std::vector<PhotoId> global_ids;
  /// Phi_s: keyword frequencies over R_s (the default derivation; the
  /// paper allows others, e.g. from neighboring POIs).
  TermVector street_terms;
  /// maxD(s): the diagonal of the street MBR extended by an eps buffer
  /// (Definition 5 normalizer).
  double max_distance = 0.0;

  int64_t size() const { return static_cast<int64_t>(photos.size()); }
};

/// Extracts R_s for `street` from `photos` using the bucketed `photo_grid`
/// (built over the same photo vector) and assembles the description
/// context. Phi_s is derived from the keywords of R_s.
StreetPhotos ExtractStreetPhotos(const RoadNetwork& network, StreetId street,
                                 const std::vector<Photo>& photos,
                                 const PointGrid<PhotoId>& photo_grid,
                                 double eps);

/// As above but scanning all photos (no index); the test oracle.
StreetPhotos ExtractStreetPhotosBruteForce(const RoadNetwork& network,
                                           StreetId street,
                                           const std::vector<Photo>& photos,
                                           double eps);

}  // namespace soi

#endif  // SOI_CORE_STREET_PHOTOS_H_
