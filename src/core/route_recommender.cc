#include "core/route_recommender.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace soi {

RouteRecommender::RouteRecommender(const RoadNetwork& network,
                                   const ShortestPathEngine& engine)
    : network_(&network), engine_(&engine) {}

std::pair<VertexId, VertexId> RouteRecommender::StreetEndpoints(
    StreetId street) const {
  const Street& s = network_->street(street);
  SOI_DCHECK(!s.segments.empty());
  return {network_->segment(s.segments.front()).from,
          network_->segment(s.segments.back()).to};
}

RecommendedRoute RouteRecommender::PlanTour(
    const std::vector<RankedStreet>& streets) const {
  SOI_CHECK(!streets.empty()) << "PlanTour needs at least one street";
  RecommendedRoute route;

  // Deduplicate, keeping the first (highest-ranked) occurrence order.
  std::vector<StreetId> pending;
  std::unordered_set<StreetId> seen;
  for (const RankedStreet& entry : streets) {
    if (seen.insert(entry.street).second) pending.push_back(entry.street);
  }

  // Start at the top-ranked street, walking it front to back.
  StreetId current = pending.front();
  pending.erase(pending.begin());
  route.street_order.push_back(current);
  route.street_length += network_->street(current).length;
  VertexId position = StreetEndpoints(current).second;

  while (!pending.empty()) {
    std::vector<double> distances = engine_->DistancesFrom(position);
    // Nearest unvisited street, measured to its closer endpoint.
    size_t best_index = pending.size();
    VertexId best_entry = -1;
    double best_distance = ShortestPathEngine::kUnreachable;
    for (size_t i = 0; i < pending.size(); ++i) {
      auto [front, back] = StreetEndpoints(pending[i]);
      double d_front = distances[static_cast<size_t>(front)];
      double d_back = distances[static_cast<size_t>(back)];
      double d = std::min(d_front, d_back);
      if (d < best_distance) {
        best_distance = d;
        best_index = i;
        best_entry = d_front <= d_back ? front : back;
      }
    }
    if (best_index == pending.size()) {
      // Everything left is in another component.
      route.unreachable.insert(route.unreachable.end(), pending.begin(),
                               pending.end());
      break;
    }
    StreetId next = pending[static_cast<size_t>(best_index)];
    pending.erase(pending.begin() + static_cast<int64_t>(best_index));

    RouteLeg leg;
    leg.from_street = current;
    leg.to_street = next;
    auto path = engine_->FindPath(position, best_entry);
    SOI_CHECK(path.ok()) << path.status().ToString();
    leg.path = std::move(path).ValueOrDie();
    route.connecting_length += leg.path.length;
    route.legs.push_back(std::move(leg));

    // Traverse the street from the entry endpoint to the other end.
    auto [front, back] = StreetEndpoints(next);
    position = best_entry == front ? back : front;
    route.street_order.push_back(next);
    route.street_length += network_->street(next).length;
    current = next;
  }
  return route;
}

}  // namespace soi
