#ifndef SOI_CORE_QUERY_ENGINE_H_
#define SOI_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/soi_algorithm.h"
#include "core/soi_query.h"
#include "grid/segment_cell_index.h"

namespace soi {

class PoiEpochSource;
class ThreadPool;

namespace obs {
// Forward declaration only: the layering rule (DESIGN.md
// "Observability") keeps obs headers out of non-obs headers. The
// record is filled and published in query_engine.cc.
struct QueryRecord;
}  // namespace obs

/// Tuning knobs for QueryEngine.
struct QueryEngineOptions {
  /// Total concurrency: RunBatch evaluates up to this many queries at
  /// once, and single-query work (index augmentation, sorts, refinement)
  /// uses the same pool. 1 = fully sequential, no threads spawned.
  int num_threads = 1;

  /// Maximum number of memoized EpsAugmentedMaps (one per distinct eps).
  /// The LRU *completed* entry is evicted beyond this; entries whose
  /// build is still in flight are exempt (evicting one would detach the
  /// shared future concurrent same-eps requesters wait on and force a
  /// duplicate build). When every entry is in flight the cache briefly
  /// exceeds capacity — bounded by the number of concurrent distinct-eps
  /// builds — and shrinks back as builds complete and become evictable.
  /// In-flight queries keep their maps alive through shared_ptr handoff.
  /// Must be >= 1.
  size_t eps_cache_capacity = 8;

  /// Admission control (DESIGN.md "Failure model"): when positive,
  /// TryRun sheds any query that would raise the number of in-flight
  /// queries beyond this bound, returning kResourceExhausted without
  /// touching the cache or the pool. 0 (default) = unbounded. Run and
  /// RunBatch treat shedding as fatal, so bounded configurations should
  /// serve through TryRun/TryRunBatch.
  size_t max_inflight_queries = 0;

  /// Per-query algorithm options. The `pool` field is overridden by the
  /// engine's own pool.
  SoiAlgorithmOptions algorithm;

  /// Live-ingest integration (grid/live_poi_view.h): when set, every
  /// admitted query pins one epoch from this source for its whole
  /// evaluation — Pin() is wait-free, the pinned snapshot is released
  /// when the query finishes, and the query's POI reads all see that
  /// epoch's index state. Null (default) = the static indexes the
  /// engine was constructed over. Not owned; must outlive the engine.
  /// Overrides algorithm.live_view per query when set.
  const PoiEpochSource* epoch_source = nullptr;

  /// Test/diagnostic hook: invoked outside the cache lock at the start
  /// of every eps-maps cache build, with the eps being built. The
  /// eviction regression tests use it to hold a build in flight
  /// deterministically; it must not call back into the engine.
  std::function<void(double)> build_observer;
};

/// The multi-query front end of the reproduction (the serving-path
/// substrate of ROADMAP.md): binds one dataset's network + indices, keeps
/// the per-eps augmented maps memoized behind a bounded LRU cache, and
/// evaluates query batches concurrently on an internal fixed-size
/// ThreadPool.
///
/// Determinism contract (DESIGN.md "Threading model"): for every query,
/// Run/RunBatch return results bit-identical to
/// `SoiAlgorithm::TopK(query, EpsAugmentedMaps(segment_cells, query.eps))`
/// evaluated sequentially — for any num_threads, cache capacity, or batch
/// composition. Timing fields of SoiQueryStats are excluded (wall-clock).
///
/// Thread-safe: Run/RunBatch, TryRun/TryRunBatch, and GetMaps/TryGetMaps
/// may be called from multiple threads. The referenced network and
/// indices must outlive the engine.
///
/// Failure semantics of the Try* serving path — validation, admission
/// control, deadlines/cancellation, and the no-cache-poisoning guarantee
/// for failed eps builds — are specified in DESIGN.md "Failure model".
class QueryEngine {
 public:
  /// All indices must be built over the same grid geometry (checked per
  /// query by SoiAlgorithm::TopK).
  QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
              const GlobalInvertedIndex& global_index,
              const SegmentCellIndex& segment_cells,
              QueryEngineOptions options = {});

  /// Warm-start construction (DESIGN.md "Persistence & warm start"):
  /// like the primary constructor, but pre-seeds the eps cache with
  /// already-built augmented maps — typically restored from a snapshot
  /// (src/snapshot) — so the first queries skip the augmentation build.
  /// Every entry must be non-null and built over `segment_cells`'s grid
  /// geometry, the eps values must be distinct, and preloaded.size()
  /// must not exceed options.eps_cache_capacity. Serving through a
  /// warm-started engine is bit-identical to a cold engine that built
  /// the same maps itself; the seeded entries count as neither hits nor
  /// misses until first use.
  QueryEngine(
      const RoadNetwork& network, const PoiGridIndex& grid,
      const GlobalInvertedIndex& global_index,
      const SegmentCellIndex& segment_cells, QueryEngineOptions options,
      std::vector<std::shared_ptr<const EpsAugmentedMaps>> preloaded);

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Evaluates one query through the eps cache. A query TryRun would
  /// reject (validation failure, shed, deadline, cancellation, injected
  /// fault) is a fatal error here; this is the convenience entry point
  /// for trusted, unbounded configurations.
  SoiResult Run(const SoiQuery& query);

  /// Evaluates the batch, up to num_threads queries concurrently, and
  /// returns the results in input order. Fatal on any per-query failure,
  /// like Run.
  std::vector<SoiResult> RunBatch(const std::vector<SoiQuery>& queries);

  /// The hardened serving entry point (DESIGN.md "Failure model").
  /// Returns, instead of the result:
  ///  - kInvalidArgument if the query fails SoiQuery::Validate() —
  ///    checked before the eps cache is consulted, so a NaN eps can
  ///    never be used as a cache key;
  ///  - kResourceExhausted if admission control sheds the query
  ///    (see QueryEngineOptions::max_inflight_queries);
  ///  - kDeadlineExceeded / kCancelled if `cancel` fires before or
  ///    during evaluation (checked cooperatively per filtering
  ///    iteration, per refinement segment, and per segment of an eps
  ///    augmentation build);
  ///  - kInternal for an injected fault (SOI_FAULT_INJECTION builds).
  /// A failed eps-cache build never leaves a poisoned entry behind:
  /// the builder evicts its own entry before publishing the failure,
  /// and concurrent waiters retry against a clean slot.
  [[nodiscard]] Result<SoiResult> TryRun(const SoiQuery& query);

  /// TryRun with a per-query cancellation/deadline token (overrides the
  /// engine-wide options.algorithm.cancel for this query only).
  [[nodiscard]] Result<SoiResult> TryRun(const SoiQuery& query,
                                         const CancellationToken& cancel);

  /// Evaluates the batch through TryRun, up to num_threads queries
  /// concurrently, returning one Result per query in input order.
  /// Failures are per-entry: invalid, shed, expired, or faulted queries
  /// report their Status while the rest return results bit-identical to
  /// the sequential reference.
  [[nodiscard]] std::vector<Result<SoiResult>> TryRunBatch(
      const std::vector<SoiQuery>& queries);

  /// TryRunBatch with one cancellation token per query. `cancels` must
  /// be empty (engine-wide token for all) or match queries.size().
  ///
  /// Duplicate coalescing: when `cancels` is empty, queries with the same
  /// full identity <Psi, k, eps> are evaluated once — the first occurrence
  /// (the leader) runs, and the later duplicates receive a copy of its
  /// Result. Bit-identity is preserved because an identical query yields
  /// an identical evaluation (only the wall-clock timing fields, excluded
  /// from the contract, are shared instead of re-measured). With per-query
  /// tokens nothing is coalesced: two duplicates may legitimately differ
  /// in when their tokens fire. Coalesced duplicates are counted in
  /// soi.engine.batch_coalesced.
  [[nodiscard]] std::vector<Result<SoiResult>> TryRunBatch(
      const std::vector<SoiQuery>& queries,
      const std::vector<CancellationToken>& cancels);

  /// The memoized eps augmentation for `eps`, building (and caching) it
  /// on first use. Concurrent requests for the same eps share one build.
  /// A hit on a completed entry is contention-free: it resolves against a
  /// read-mostly snapshot of the completed-entry table without touching
  /// cache_mutex_ (see hit_table_ below). Fatal on a failed build;
  /// serving paths use TryGetMaps.
  std::shared_ptr<const EpsAugmentedMaps> GetMaps(double eps)
      SOI_EXCLUDES(cache_mutex_);

  /// Status-returning GetMaps: a build aborted by `cancel` (may be
  /// null) or an injected fault surfaces as kCancelled /
  /// kDeadlineExceeded / kInternal, after the failed entry has been
  /// evicted so later requests rebuild from scratch. When `cache_hit`
  /// is non-null it reports whether the lookup resolved without this
  /// call building (fast-path hit or a wait on an in-flight entry) —
  /// the per-query flight-recorder view of soi.cache.hits/misses.
  [[nodiscard]] Result<std::shared_ptr<const EpsAugmentedMaps>> TryGetMaps(
      double eps, const CancellationToken* cancel = nullptr,
      bool* cache_hit = nullptr) SOI_EXCLUDES(cache_mutex_);

  /// Cumulative eps-cache counters (monotone since construction).
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;

    double HitRate() const {
      int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  /// Reads the cache counters without taking `cache_mutex_`: each field
  /// is a relaxed atomic load, so scraping metrics never blocks (nor is
  /// blocked by) an in-flight batch. Consistency contract: every counter
  /// is individually monotone and exact; a read concurrent with a lookup
  /// may observe the hit/miss of that lookup before or after — there is
  /// no cross-counter atomicity, which scrapers must (and do) tolerate.
  CacheStats cache_stats() const;

  /// A JSON object with this engine's cache counters plus a snapshot of
  /// the global metrics registry (counters/gauges/histograms; empty
  /// sections under SOI_OBSERVABILITY=OFF). This is the serving-path
  /// metrics export the bench harnesses embed in BENCH_*.json.
  std::string MetricsJson() const;

  int num_threads() const;
  const SoiAlgorithm& algorithm() const { return algorithm_; }

  /// Number of live eps-cache entries (test/diagnostic hook; takes
  /// cache_mutex_).
  size_t cache_size() const SOI_EXCLUDES(cache_mutex_);

 private:
  /// What a cache entry's future resolves to: the maps on success, or
  /// the build failure. Publishing a Status (rather than broken-promise
  /// exceptions) keeps waiters on the no-exceptions serving path.
  struct MapsPayload {
    std::shared_ptr<const EpsAugmentedMaps> maps;
    Status status;
  };
  using MapsFuture = std::shared_future<MapsPayload>;

  struct CacheEntry {
    MapsFuture maps;
    /// Set under cache_mutex_ once the build has succeeded; non-null is
    /// the "completed" signal RebuildHitTableLocked keys on (it must
    /// never block on the future while holding the lock).
    std::shared_ptr<const EpsAugmentedMaps> ready_maps;
    /// LRU clock, shared with the hit-table snapshot so contention-free
    /// hits keep the recency the evictor reads. Heap-allocated because
    /// the snapshot may outlive the cache entry across an eviction.
    std::shared_ptr<std::atomic<uint64_t>> last_used;
    /// Distinguishes this entry from any later entry for the same eps,
    /// so a failed builder evicts only its own entry (never a healthy
    /// replacement raced in by a retrying waiter).
    uint64_t id = 0;
    /// True while the builder is still producing the future's value.
    /// In-flight entries are exempt from eviction (see
    /// QueryEngineOptions::eps_cache_capacity); the builder clears the
    /// flag under cache_mutex_ on success, and erases the entry on
    /// failure.
    bool building = false;
  };

  /// The contention-free hit path: an immutable map of the *completed*
  /// cache entries, republished copy-on-write whenever that set changes
  /// — build completion, eviction, warm-start preload. A hit registers
  /// itself in hit_readers_, loads the current generation pointer, looks
  /// up eps, bumps the shared LRU clock, and returns — wait-free, no
  /// mutex. Misses and in-flight entries fall through to the locked slow
  /// path. A lookup racing an eviction may still hit the just-retired
  /// generation; the maps stay alive through the HitEntry shared_ptr and
  /// the counters tolerate the blur (see cache_stats()).
  ///
  /// Why not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic
  /// releases its embedded spinlock with a *relaxed* RMW, so its plain
  /// control-block accesses carry no happens-before edge — formally a
  /// data race, and TSan reports it. Publication here uses a plain
  /// atomic pointer instead, with generation ownership kept in
  /// hit_table_storage_ under cache_mutex_ and retired generations
  /// reclaimed only after hit_readers_ is observed at zero (see
  /// RebuildHitTableLocked for the seq_cst argument).
  struct HitEntry {
    std::shared_ptr<const EpsAugmentedMaps> maps;
    std::shared_ptr<std::atomic<uint64_t>> last_used;
  };
  using HitTable = std::unordered_map<double, HitEntry>;

  /// Republishes hit_table_ from the completed entries of cache_.
  void RebuildHitTableLocked() SOI_REQUIRES(cache_mutex_);

  /// TryRun with an explicit admission mode: the shared body behind the
  /// public TryRun (preadmitted = false, admission control inside) and
  /// TryRunBatch's coalesced groups (preadmitted = true — the batch has
  /// already charged one in-flight slot per coalesced logical query, so
  /// the evaluation itself must not charge again).
  Result<SoiResult> TryRunCounted(const SoiQuery& query,
                                  const CancellationToken& cancel,
                                  bool preadmitted);

  /// TryRunCounted's body. `record` (never null; ignored when
  /// observability is compiled out) accumulates the per-query
  /// flight-recorder fields the evaluation path knows — cache hit/miss
  /// and the phase stats — while the caller owns identity, total wall
  /// time, final status, and publication to the FlightRecorder.
  Result<SoiResult> TryRunInternal(const SoiQuery& query,
                                   const CancellationToken& cancel,
                                   obs::QueryRecord* record,
                                   bool preadmitted);

  const SegmentCellIndex* segment_cells_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  SoiAlgorithm algorithm_;

  // Lock-ordering invariant: cache_mutex_ is a LEAF lock. While holding
  // it, the engine never submits pool work, never blocks on a future,
  // never runs user callbacks (build_observer runs before the build,
  // outside the lock), and never takes another engine lock. Builds and
  // observability exports happen outside the critical sections, which
  // are limited to map bookkeeping.
  mutable Mutex cache_mutex_{"core.QueryEngine.eps_cache",
                             lock_graph::kRankLeaf};
  std::unordered_map<double, CacheEntry> cache_ SOI_GUARDED_BY(cache_mutex_);
  // Fast-path view: the current hit-table generation (null until the
  // first entry completes). Points into hit_table_storage_, whose last
  // element is the current generation and whose earlier elements are
  // retired generations a concurrent reader may still be traversing.
  std::atomic<const HitTable*> hit_table_{nullptr};
  // Readers currently inside the fast-path lookup (wait-free guard for
  // generation reclamation).
  std::atomic<int64_t> hit_readers_{0};
  std::vector<std::unique_ptr<const HitTable>> hit_table_storage_
      SOI_GUARDED_BY(cache_mutex_);
  // Monotone logical clock for LRU recency; atomic so lock-free hits can
  // bump it without cache_mutex_.
  std::atomic<uint64_t> cache_tick_{0};
  uint64_t next_entry_id_ SOI_GUARDED_BY(cache_mutex_) = 0;
  // Queries currently inside TryRun (admission control).
  std::atomic<int64_t> inflight_{0};
  // Updated under cache_mutex_ (writers), read lock-free by
  // cache_stats() (see its contract above).
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
};

}  // namespace soi

#endif  // SOI_CORE_QUERY_ENGINE_H_
