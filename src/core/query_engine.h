#ifndef SOI_CORE_QUERY_ENGINE_H_
#define SOI_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/soi_algorithm.h"
#include "core/soi_query.h"
#include "grid/segment_cell_index.h"

namespace soi {

class ThreadPool;

/// Tuning knobs for QueryEngine.
struct QueryEngineOptions {
  /// Total concurrency: RunBatch evaluates up to this many queries at
  /// once, and single-query work (index augmentation, sorts, refinement)
  /// uses the same pool. 1 = fully sequential, no threads spawned.
  int num_threads = 1;

  /// Maximum number of memoized EpsAugmentedMaps (one per distinct eps).
  /// The LRU entry is evicted beyond this; in-flight queries keep their
  /// maps alive through shared_ptr handoff. Must be >= 1.
  size_t eps_cache_capacity = 8;

  /// Per-query algorithm options. The `pool` field is overridden by the
  /// engine's own pool.
  SoiAlgorithmOptions algorithm;
};

/// The multi-query front end of the reproduction (the serving-path
/// substrate of ROADMAP.md): binds one dataset's network + indices, keeps
/// the per-eps augmented maps memoized behind a bounded LRU cache, and
/// evaluates query batches concurrently on an internal fixed-size
/// ThreadPool.
///
/// Determinism contract (DESIGN.md "Threading model"): for every query,
/// Run/RunBatch return results bit-identical to
/// `SoiAlgorithm::TopK(query, EpsAugmentedMaps(segment_cells, query.eps))`
/// evaluated sequentially — for any num_threads, cache capacity, or batch
/// composition. Timing fields of SoiQueryStats are excluded (wall-clock).
///
/// Thread-safe: Run, RunBatch, and GetMaps may be called from multiple
/// threads. The referenced network and indices must outlive the engine.
class QueryEngine {
 public:
  /// All indices must be built over the same grid geometry (checked per
  /// query by SoiAlgorithm::TopK).
  QueryEngine(const RoadNetwork& network, const PoiGridIndex& grid,
              const GlobalInvertedIndex& global_index,
              const SegmentCellIndex& segment_cells,
              QueryEngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Evaluates one query through the eps cache.
  SoiResult Run(const SoiQuery& query);

  /// Evaluates the batch, up to num_threads queries concurrently, and
  /// returns the results in input order.
  std::vector<SoiResult> RunBatch(const std::vector<SoiQuery>& queries);

  /// The memoized eps augmentation for `eps`, building (and caching) it
  /// on first use. Concurrent requests for the same eps share one build.
  std::shared_ptr<const EpsAugmentedMaps> GetMaps(double eps);

  /// Cumulative eps-cache counters (monotone since construction).
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;

    double HitRate() const {
      int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  /// Reads the cache counters without taking `cache_mutex_`: each field
  /// is a relaxed atomic load, so scraping metrics never blocks (nor is
  /// blocked by) an in-flight batch. Consistency contract: every counter
  /// is individually monotone and exact; a read concurrent with a lookup
  /// may observe the hit/miss of that lookup before or after — there is
  /// no cross-counter atomicity, which scrapers must (and do) tolerate.
  CacheStats cache_stats() const;

  /// A JSON object with this engine's cache counters plus a snapshot of
  /// the global metrics registry (counters/gauges/histograms; empty
  /// sections under SOI_OBSERVABILITY=OFF). This is the serving-path
  /// metrics export the bench harnesses embed in BENCH_*.json.
  std::string MetricsJson() const;

  int num_threads() const;
  const SoiAlgorithm& algorithm() const { return algorithm_; }

 private:
  using MapsFuture =
      std::shared_future<std::shared_ptr<const EpsAugmentedMaps>>;

  struct CacheEntry {
    MapsFuture maps;
    uint64_t last_used = 0;
  };

  const SegmentCellIndex* segment_cells_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  SoiAlgorithm algorithm_;

  mutable std::mutex cache_mutex_;
  std::unordered_map<double, CacheEntry> cache_;
  uint64_t cache_tick_ = 0;
  // Updated under cache_mutex_ (writers), read lock-free by
  // cache_stats() (see its contract above).
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
};

}  // namespace soi

#endif  // SOI_CORE_QUERY_ENGINE_H_
