#include "core/diversify/cell_bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace soi {

CellBoundsCalculator::CellBoundsCalculator(const StreetPhotos& street_photos,
                                           const PhotoGridIndex& index)
    : street_photos_(&street_photos), index_(&index) {
  const std::vector<CellId>& cells = index.non_empty_cells();
  spatial_rel_.resize(cells.size());
  textual_rel_.resize(cells.size());
  cell_slot_.reserve(cells.size());

  double inv_total = 1.0 / static_cast<double>(street_photos.size());
  const TermVector& terms = street_photos.street_terms;
  double inv_norm = terms.L1Norm() > 0 ? 1.0 / terms.L1Norm() : 0.0;

  for (size_t slot = 0; slot < cells.size(); ++slot) {
    CellId cell = cells[slot];
    cell_slot_[cell] = slot;
    const PhotoGridIndex::Cell* bucket = index.FindCell(cell);
    SOI_DCHECK(bucket != nullptr);

    // Equations 11-12. The cell side is rho/2, so a photo covers at least
    // its own cell and at most the two surrounding rings.
    spatial_rel_[slot].lower =
        static_cast<double>(bucket->photos.size()) * inv_total;
    spatial_rel_[slot].upper =
        static_cast<double>(index.NeighborhoodCount(cell, 2)) * inv_total;

    // Equations 13-14 via the keyword sets Psi^-(c|s) / Psi^+(c|s): the
    // psi_min lowest-frequency and psi_max highest-frequency keywords of
    // c.Psi under Phi_s.
    std::vector<double> weights;
    weights.reserve(static_cast<size_t>(bucket->keywords.size()));
    for (KeywordId keyword : bucket->keywords.ids()) {
      weights.push_back(terms.Get(keyword));
    }
    std::sort(weights.begin(), weights.end());
    double lower_sum = 0.0;
    for (int64_t i = 0;
         i < bucket->psi_min && i < static_cast<int64_t>(weights.size());
         ++i) {
      lower_sum += weights[static_cast<size_t>(i)];
    }
    double upper_sum = 0.0;
    for (int64_t i = 0;
         i < bucket->psi_max && i < static_cast<int64_t>(weights.size());
         ++i) {
      upper_sum += weights[weights.size() - 1 - static_cast<size_t>(i)];
    }
    textual_rel_[slot].lower = lower_sum * inv_norm;
    textual_rel_[slot].upper = upper_sum * inv_norm;
  }
}

Bounds CellBoundsCalculator::SpatialRel(CellId cell) const {
  auto it = cell_slot_.find(cell);
  SOI_DCHECK(it != cell_slot_.end());
  return spatial_rel_[it->second];
}

Bounds CellBoundsCalculator::TextualRel(CellId cell) const {
  auto it = cell_slot_.find(cell);
  SOI_DCHECK(it != cell_slot_.end());
  return textual_rel_[it->second];
}

Bounds CellBoundsCalculator::SpatialDiv(CellId cell, PhotoId r) const {
  const Point& position =
      street_photos_->photos[static_cast<size_t>(r)].position;
  Box box = index_->geometry().CellBox(cell);
  double inv_maxd = 1.0 / street_photos_->max_distance;
  Bounds bounds;
  bounds.lower = box.MinDistanceTo(position) * inv_maxd;
  bounds.upper = box.MaxDistanceTo(position) * inv_maxd;
  return bounds;
}

Bounds CellBoundsCalculator::TextualDiv(CellId cell, PhotoId r) const {
  const PhotoGridIndex::Cell* bucket = index_->FindCell(cell);
  SOI_DCHECK(bucket != nullptr);
  const KeywordSet& photo_keywords =
      street_photos_->photos[static_cast<size_t>(r)].keywords;
  int64_t nr = photo_keywords.size();
  int64_t psi_min = bucket->psi_min;
  int64_t psi_max = bucket->psi_max;

  Bounds bounds;
  if (nr == 0) {
    // Jaccard distance to an empty set is 0 against another empty set and
    // 1 otherwise; the cell's cardinality range decides what is possible.
    bounds.lower = psi_min == 0 ? 0.0 : 1.0;
    bounds.upper = psi_max == 0 ? 0.0 : 1.0;
    return bounds;
  }

  int64_t intersection = bucket->keywords.IntersectionSize(photo_keywords);
  // Equation 17: the most-similar possible photo keeps as many common
  // keywords as the cell allows.
  if (intersection < psi_min) {
    bounds.lower = 1.0 - static_cast<double>(intersection) /
                             static_cast<double>(nr + psi_min - intersection);
  } else {
    bounds.lower = 1.0 - static_cast<double>(std::min(intersection, psi_max)) /
                             static_cast<double>(nr);
  }
  // Equation 18: the least-similar possible photo avoids Psi_r entirely if
  // the cell has enough foreign keywords.
  int64_t foreign = bucket->keywords.size() - intersection;
  if (foreign < psi_min) {
    bounds.upper = 1.0 - static_cast<double>(psi_min - foreign) /
                             static_cast<double>(nr + foreign);
  } else {
    bounds.upper = 1.0;
  }
  return bounds;
}

namespace {

// [min, max] RMS-normalized distance between a descriptor box and a point
// descriptor (the d-dimensional analogue of Box::Min/MaxDistanceTo).
Bounds DescriptorBoxDistance(const std::vector<float>& lo,
                             const std::vector<float>& hi,
                             const std::vector<float>& p) {
  SOI_DCHECK(!lo.empty());
  SOI_DCHECK(lo.size() == p.size());
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    double below = static_cast<double>(lo[d]) - static_cast<double>(p[d]);
    double above = static_cast<double>(p[d]) - static_cast<double>(hi[d]);
    double gap = std::max({below, above, 0.0});
    min_sum += gap * gap;
    double far_side = std::max(std::abs(static_cast<double>(p[d]) - lo[d]),
                               std::abs(static_cast<double>(p[d]) - hi[d]));
    max_sum += far_side * far_side;
  }
  double inv_dim = 1.0 / static_cast<double>(lo.size());
  return Bounds{std::sqrt(min_sum * inv_dim), std::sqrt(max_sum * inv_dim)};
}

}  // namespace

Bounds CellBoundsCalculator::VisualDiv(CellId cell, PhotoId r) const {
  const PhotoGridIndex::Cell* bucket = index_->FindCell(cell);
  SOI_DCHECK(bucket != nullptr);
  SOI_CHECK(!bucket->visual_min.empty())
      << "cell has no visual descriptors";
  const std::vector<float>& descriptor =
      street_photos_->photos[static_cast<size_t>(r)].visual;
  return DescriptorBoxDistance(bucket->visual_min, bucket->visual_max,
                               descriptor);
}

Bounds CellBoundsCalculator::CombinedRel(CellId cell,
                                         const DiversifyParams& params) const {
  Bounds srel = SpatialRel(cell);
  Bounds trel = TextualRel(cell);
  return Bounds{params.w * srel.lower + (1.0 - params.w) * trel.lower,
                params.w * srel.upper + (1.0 - params.w) * trel.upper};
}

Bounds CellBoundsCalculator::CombinedDiv(CellId cell, PhotoId r,
                                         const DiversifyParams& params) const {
  Bounds sdiv = SpatialDiv(cell, r);
  Bounds tdiv = TextualDiv(cell, r);
  Bounds div{params.w * sdiv.lower + (1.0 - params.w) * tdiv.lower,
             params.w * sdiv.upper + (1.0 - params.w) * tdiv.upper};
  if (params.visual_weight > 0) {
    Bounds vdiv = VisualDiv(cell, r);
    double v = params.visual_weight;
    div.lower = (1.0 - v) * div.lower + v * vdiv.lower;
    div.upper = (1.0 - v) * div.upper + v * vdiv.upper;
  }
  return div;
}

Bounds CellBoundsCalculator::MmrWithVisual(
    CellId cell, const std::vector<PhotoId>& selected,
    const DiversifyParams& params) const {
  Bounds rel = CombinedRel(cell, params);
  double rel_factor = 1.0 - params.lambda;
  Bounds mmr{rel_factor * rel.lower, rel_factor * rel.upper};
  if (params.k > 1 && !selected.empty()) {
    double lower_sum = 0.0;
    double upper_sum = 0.0;
    for (PhotoId r : selected) {
      Bounds div = CombinedDiv(cell, r, params);
      lower_sum += div.lower;
      upper_sum += div.upper;
    }
    double div_factor = params.lambda / static_cast<double>(params.k - 1);
    mmr.lower += div_factor * lower_sum;
    mmr.upper += div_factor * upper_sum;
  }
  return mmr;
}

Bounds CellBoundsCalculator::Mmr(CellId cell,
                                 const std::vector<PhotoId>& selected,
                                 const DiversifyParams& params) const {
  Bounds srel = SpatialRel(cell);
  Bounds trel = TextualRel(cell);
  double rel_factor = 1.0 - params.lambda;
  Bounds mmr;
  mmr.lower = rel_factor * (params.w * srel.lower +
                            (1.0 - params.w) * trel.lower);
  mmr.upper = rel_factor * (params.w * srel.upper +
                            (1.0 - params.w) * trel.upper);
  if (params.k > 1 && !selected.empty()) {
    double sdiv_lower = 0.0;
    double sdiv_upper = 0.0;
    double tdiv_lower = 0.0;
    double tdiv_upper = 0.0;
    for (PhotoId r : selected) {
      Bounds sdiv = SpatialDiv(cell, r);
      Bounds tdiv = TextualDiv(cell, r);
      sdiv_lower += sdiv.lower;
      sdiv_upper += sdiv.upper;
      tdiv_lower += tdiv.lower;
      tdiv_upper += tdiv.upper;
    }
    double div_factor = params.lambda / static_cast<double>(params.k - 1);
    mmr.lower += div_factor * (params.w * sdiv_lower +
                               (1.0 - params.w) * tdiv_lower);
    mmr.upper += div_factor * (params.w * sdiv_upper +
                               (1.0 - params.w) * tdiv_upper);
  }
  return mmr;
}

}  // namespace soi
