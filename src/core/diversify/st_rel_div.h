#ifndef SOI_CORE_DIVERSIFY_ST_REL_DIV_H_
#define SOI_CORE_DIVERSIFY_ST_REL_DIV_H_

#include "core/diversify/cell_bounds.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/objective.h"
#include "grid/photo_grid_index.h"

namespace soi {

/// The ST_Rel+Div algorithm of Section 4.2 (Algorithm 2): the same greedy
/// MaxSum construction as GreedyBaselineSelect, but at each iteration it
/// first computes lower/upper mmr bounds per grid cell (filtering), prunes
/// every cell whose upper bound is below the best lower bound, and only
/// evaluates exact mmr values for photos in the surviving cells in
/// decreasing upper-bound order (refinement).
///
/// Selects min(k, |R_s|) photos; the selection is identical to the
/// baseline's (both maximize the same exact mmr with ties by ascending
/// photo id), only faster.
///
/// `index` must be built over scorer.street_photos().photos with cell side
/// params.rho / 2, and `bounds` over the same index.
DiversifyResult StRelDivSelect(const PhotoScorer& scorer,
                               const CellBoundsCalculator& bounds,
                               const DiversifyParams& params);

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_ST_REL_DIV_H_
