#include "core/diversify/greedy_baseline.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace soi {

DiversifyResult GreedyBaselineSelect(const PhotoScorer& scorer,
                                     const DiversifyParams& params) {
  SOI_CHECK(params.k > 0);
  SOI_TRACE_SPAN("div.greedy_baseline");
  Stopwatch timer;
  DiversifyResult result;
  int64_t n = scorer.num_photos();
  std::vector<char> taken(static_cast<size_t>(n), 0);
  int64_t target = std::min<int64_t>(params.k, n);
  while (static_cast<int64_t>(result.selected.size()) < target) {
    PhotoId best = -1;
    double best_value = 0.0;
    for (PhotoId r = 0; r < n; ++r) {
      if (taken[static_cast<size_t>(r)]) continue;
      double value = scorer.Mmr(r, result.selected, params);
      ++result.stats.mmr_evaluations;
      if (best < 0 || value > best_value) {
        best = r;
        best_value = value;
      }
    }
    SOI_DCHECK(best >= 0);
    taken[static_cast<size_t>(best)] = 1;
    result.selected.push_back(best);
  }
  result.stats.seconds = timer.ElapsedSeconds();
  SOI_OBS_COUNTER_ADD("soi.div.greedy_baseline.selections", 1);
  SOI_OBS_COUNTER_ADD("soi.div.greedy_baseline.mmr_evaluations",
                      result.stats.mmr_evaluations);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.div.greedy_baseline.seconds",
                            result.stats.seconds);
  return result;
}

}  // namespace soi
