#include "core/diversify/objective.h"

#include "common/check.h"
#include "grid/point_grid.h"

namespace soi {

PhotoScorer::PhotoScorer(const StreetPhotos& street_photos, double rho)
    : street_photos_(&street_photos), rho_(rho) {
  SOI_CHECK(!street_photos.photos.empty())
      << "PhotoScorer over an empty R_s";
  SOI_CHECK(rho > 0) << "rho must be positive";
  SOI_CHECK(street_photos.max_distance > 0)
      << "maxD(s) must be positive";
  const std::vector<Photo>& photos = street_photos.photos;
  size_t n = photos.size();

  // Spatial relevance: neighbor counting through a transient grid of cell
  // side rho, so only the 3x3 block around a photo's cell is scanned.
  std::vector<Point> positions;
  positions.reserve(n);
  Box bounds = Box::Empty();
  for (const Photo& photo : photos) {
    positions.push_back(photo.position);
    bounds.ExtendToCover(photo.position);
  }
  // Degenerate single-point bounds still need a non-empty grid box.
  bounds = bounds.Expanded(rho);
  PointGrid<PhotoId> grid(GridGeometry(bounds, rho), positions);
  spatial_rel_.resize(n);
  double inv_total = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    Box probe = Box::FromCorners(
        Point{positions[i].x - rho, positions[i].y - rho},
        Point{positions[i].x + rho, positions[i].y + rho});
    int64_t neighbors = 0;
    grid.ForEachCandidateInBox(probe, [&](PhotoId other) {
      if (positions[i].DistanceTo(positions[static_cast<size_t>(other)]) <=
          rho) {
        ++neighbors;
      }
    });
    spatial_rel_[i] = static_cast<double>(neighbors) * inv_total;
  }

  // Textual relevance (Definition 6); an empty Phi_s yields 0 everywhere.
  textual_rel_.resize(n);
  const TermVector& terms = street_photos.street_terms;
  double inv_norm = terms.L1Norm() > 0 ? 1.0 / terms.L1Norm() : 0.0;
  for (size_t i = 0; i < n; ++i) {
    textual_rel_[i] = terms.WeightOf(photos[i].keywords) * inv_norm;
  }

  // Visual extension: centroid descriptor and per-photo visual relevance
  // (similarity to the centroid). All-or-nothing: either every photo has
  // a descriptor of the same dimension or none does.
  if (!photos[0].visual.empty()) {
    size_t dim = photos[0].visual.size();
    std::vector<double> sums(dim, 0.0);
    for (const Photo& photo : photos) {
      SOI_CHECK(photo.visual.size() == dim)
          << "inconsistent visual descriptor dimensions";
      for (size_t d = 0; d < dim; ++d) sums[d] += photo.visual[d];
    }
    centroid_.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      centroid_[d] = static_cast<float>(sums[d] / static_cast<double>(n));
    }
    visual_rel_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      visual_rel_[i] = 1.0 - VisualDistance(photos[i].visual, centroid_);
    }
  }
}

double PhotoScorer::VisualDiv(PhotoId r1, PhotoId r2) const {
  SOI_DCHECK(has_visual());
  const std::vector<Photo>& photos = street_photos_->photos;
  return VisualDistance(photos[static_cast<size_t>(r1)].visual,
                        photos[static_cast<size_t>(r2)].visual);
}

double PhotoScorer::SpatialDiv(PhotoId r1, PhotoId r2) const {
  const std::vector<Photo>& photos = street_photos_->photos;
  double d = photos[static_cast<size_t>(r1)].position.DistanceTo(
      photos[static_cast<size_t>(r2)].position);
  return d / street_photos_->max_distance;
}

double PhotoScorer::TextualDiv(PhotoId r1, PhotoId r2) const {
  const std::vector<Photo>& photos = street_photos_->photos;
  return photos[static_cast<size_t>(r1)].keywords.JaccardDistance(
      photos[static_cast<size_t>(r2)].keywords);
}

double PhotoScorer::Mmr(PhotoId r, const std::vector<PhotoId>& selected,
                        const DiversifyParams& params) const {
  SOI_DCHECK(params.visual_weight == 0 || has_visual())
      << "visual_weight > 0 requires photos with visual descriptors";
  double value = (1.0 - params.lambda) * Rel(r, params);
  if (params.k > 1 && !selected.empty()) {
    double div_sum = 0.0;
    for (PhotoId other : selected) div_sum += Div(r, other, params);
    value += params.lambda / static_cast<double>(params.k - 1) * div_sum;
  }
  return value;
}

double PhotoScorer::SetRelevance(const std::vector<PhotoId>& set,
                                 double w) const {
  if (set.empty()) return 0.0;
  double spatial = 0.0;
  double textual = 0.0;
  for (PhotoId r : set) {
    spatial += SpatialRel(r);
    textual += TextualRel(r);
  }
  double inv_k = 1.0 / static_cast<double>(set.size());
  return w * inv_k * spatial + (1.0 - w) * inv_k * textual;
}

double PhotoScorer::SetDiversity(const std::vector<PhotoId>& set,
                                 double w) const {
  size_t k = set.size();
  if (k < 2) return 0.0;
  double spatial = 0.0;
  double textual = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      spatial += SpatialDiv(set[i], set[j]);
      textual += TextualDiv(set[i], set[j]);
    }
  }
  double inv_pairs = 2.0 / (static_cast<double>(k) * (k - 1));
  return w * inv_pairs * spatial + (1.0 - w) * inv_pairs * textual;
}

double PhotoScorer::SetDiversity(const std::vector<PhotoId>& set,
                                 const DiversifyParams& params) const {
  double base = SetDiversity(set, params.w);
  size_t k = set.size();
  if (params.visual_weight == 0 || k < 2) return base;
  double visual = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      visual += VisualDiv(set[i], set[j]);
    }
  }
  visual *= 2.0 / (static_cast<double>(k) * (k - 1));
  return (1.0 - params.visual_weight) * base +
         params.visual_weight * visual;
}

double PhotoScorer::Objective(const std::vector<PhotoId>& set,
                              const DiversifyParams& params) const {
  return (1.0 - params.lambda) * SetRelevance(set, params) +
         params.lambda * SetDiversity(set, params);
}

}  // namespace soi
