#include "core/diversify/st_rel_div.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace soi {

namespace {

// A candidate cell of one iteration.
struct CellCandidate {
  CellId cell;
  double upper;
};

// Per-cell incremental state: the accumulated diversity-bound sums over
// the already-selected photos. Updated once per selection instead of being
// recomputed from scratch each iteration (the recomputation would cost
// O(|C| * |R|) per iteration and defeat the index).
struct CellDivSums {
  double lower = 0.0;
  double upper = 0.0;
};

}  // namespace

DiversifyResult StRelDivSelect(const PhotoScorer& scorer,
                               const CellBoundsCalculator& bounds,
                               const DiversifyParams& params) {
  SOI_CHECK(params.k > 0);
  SOI_TRACE_SPAN("div.st_rel_div");
  Stopwatch timer;
  const PhotoGridIndex& index = bounds.index();
  DiversifyResult result;
  int64_t n = scorer.num_photos();
  std::vector<char> taken(static_cast<size_t>(n), 0);

  // Cells whose photos are all selected must not contribute to the filter
  // threshold (their bound guarantees would be vacuous for candidates).
  const std::vector<CellId>& cells = index.non_empty_cells();
  std::unordered_map<CellId, size_t> cell_slot;
  cell_slot.reserve(cells.size());
  std::vector<int64_t> remaining(cells.size());
  std::vector<CellDivSums> div_sums(cells.size());
  for (size_t slot = 0; slot < cells.size(); ++slot) {
    cell_slot[cells[slot]] = slot;
    remaining[slot] = index.NumPhotosInCell(cells[slot]);
  }

  // Exact per-photo mmr bookkeeping: div_sum[r] accumulates
  // Div(r, selected[i], w) in selection order, exactly as the baseline's
  // inner loop does, so the two algorithms produce bit-identical scores;
  // synced[r] is how many selected photos are already folded in.
  std::vector<double> photo_div_sum(static_cast<size_t>(n), 0.0);
  std::vector<size_t> photo_synced(static_cast<size_t>(n), 0);
  auto exact_mmr = [&](PhotoId r,
                       const std::vector<PhotoId>& selected) {
    double& div_sum = photo_div_sum[static_cast<size_t>(r)];
    size_t& synced = photo_synced[static_cast<size_t>(r)];
    while (synced < selected.size()) {
      div_sum += scorer.Div(r, selected[synced], params);
      ++synced;
    }
    double value = (1.0 - params.lambda) * scorer.Rel(r, params);
    if (params.k > 1 && !selected.empty()) {
      value += params.lambda / static_cast<double>(params.k - 1) * div_sum;
    }
    ++result.stats.mmr_evaluations;
    return value;
  };

  double div_factor =
      params.k > 1 ? params.lambda / static_cast<double>(params.k - 1) : 0.0;
  double rel_factor = 1.0 - params.lambda;

  int64_t target = std::min<int64_t>(params.k, n);
  std::vector<CellCandidate> surviving;
  while (static_cast<int64_t>(result.selected.size()) < target) {
    SOI_TRACE_SPAN("div.iteration");
    // --- filtering phase: per-cell mmr bounds from the cached sums ------
    double mmr_min = 0.0;
    bool have_min = false;
    bool have_selection = !result.selected.empty();
    for (size_t slot = 0; slot < cells.size(); ++slot) {
      if (remaining[slot] == 0) continue;
      Bounds rel = bounds.CombinedRel(cells[slot], params);
      double lower = rel_factor * rel.lower;
      if (have_selection) lower += div_factor * div_sums[slot].lower;
      if (!have_min || lower > mmr_min) {
        mmr_min = lower;
        have_min = true;
      }
    }
    SOI_DCHECK(have_min);

    surviving.clear();
    for (size_t slot = 0; slot < cells.size(); ++slot) {
      if (remaining[slot] == 0) continue;
      Bounds rel = bounds.CombinedRel(cells[slot], params);
      double upper = rel_factor * rel.upper;
      if (have_selection) upper += div_factor * div_sums[slot].upper;
      if (upper >= mmr_min) {
        surviving.push_back(CellCandidate{cells[slot], upper});
      } else {
        ++result.stats.cells_pruned;
      }
    }
    std::sort(surviving.begin(), surviving.end(),
              [](const CellCandidate& a, const CellCandidate& b) {
                if (a.upper != b.upper) return a.upper > b.upper;
                return a.cell < b.cell;
              });

    // --- refinement phase: exact mmr inside surviving cells -------------
    PhotoId next_photo = -1;
    double next_value = 0.0;
    for (const CellCandidate& candidate : surviving) {
      if (next_photo >= 0 && candidate.upper < next_value) {
        // Cells are in decreasing upper-bound order: nothing further can
        // beat the best exact value already found.
        ++result.stats.cells_pruned;
        continue;
      }
      ++result.stats.cells_refined;
      const PhotoGridIndex::Cell* bucket = index.FindCell(candidate.cell);
      SOI_DCHECK(bucket != nullptr);
      for (PhotoId r : bucket->photos) {
        if (taken[static_cast<size_t>(r)]) continue;
        double value = exact_mmr(r, result.selected);
        // Same tie-break as the baseline: larger value, then smaller id.
        // (Cells arrive out of id order, so the id test is explicit.)
        if (next_photo < 0 || value > next_value ||
            (value == next_value && r < next_photo)) {
          next_photo = r;
          next_value = value;
        }
      }
    }
    SOI_DCHECK(next_photo >= 0);
    taken[static_cast<size_t>(next_photo)] = 1;
    size_t chosen_slot = cell_slot.at(index.geometry().CellOf(
        scorer.street_photos()
            .photos[static_cast<size_t>(next_photo)]
            .position));
    --remaining[chosen_slot];
    result.selected.push_back(next_photo);

    // Fold the new selection into every cell's cached diversity-bound
    // sums (one pass per selection; selection-order accumulation keeps
    // the sums equal to a from-scratch recomputation).
    if (params.k > 1 &&
        static_cast<int64_t>(result.selected.size()) < target) {
      for (size_t slot = 0; slot < cells.size(); ++slot) {
        if (remaining[slot] == 0) continue;
        Bounds div = bounds.CombinedDiv(cells[slot], next_photo, params);
        div_sums[slot].lower += div.lower;
        div_sums[slot].upper += div.upper;
      }
    }
  }
  result.stats.seconds = timer.ElapsedSeconds();
  SOI_OBS_COUNTER_ADD("soi.div.st_rel_div.selections", 1);
  SOI_OBS_COUNTER_ADD("soi.div.st_rel_div.mmr_evaluations",
                      result.stats.mmr_evaluations);
  SOI_OBS_COUNTER_ADD("soi.div.st_rel_div.cells_refined",
                      result.stats.cells_refined);
  SOI_OBS_COUNTER_ADD("soi.div.st_rel_div.cells_pruned",
                      result.stats.cells_pruned);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.div.st_rel_div.seconds",
                            result.stats.seconds);
  return result;
}

}  // namespace soi
