#include "core/diversify/variants.h"

#include "common/check.h"

namespace soi {

const std::vector<SelectionMethod>& AllSelectionMethods() {
  // Intentionally leaked singleton.
  static const std::vector<SelectionMethod>* methods =
      new std::vector<SelectionMethod>{  // soi-lint: naked-new
          SelectionMethod::kSRel,   SelectionMethod::kSDiv,
          SelectionMethod::kSRelDiv, SelectionMethod::kTRel,
          SelectionMethod::kTDiv,   SelectionMethod::kTRelDiv,
          SelectionMethod::kStRel,  SelectionMethod::kStDiv,
          SelectionMethod::kStRelDiv,
      };
  return *methods;
}

std::string SelectionMethodName(SelectionMethod method) {
  switch (method) {
    case SelectionMethod::kSRel:
      return "S_Rel";
    case SelectionMethod::kSDiv:
      return "S_Div";
    case SelectionMethod::kSRelDiv:
      return "S_Rel+Div";
    case SelectionMethod::kTRel:
      return "T_Rel";
    case SelectionMethod::kTDiv:
      return "T_Div";
    case SelectionMethod::kTRelDiv:
      return "T_Rel+Div";
    case SelectionMethod::kStRel:
      return "ST_Rel";
    case SelectionMethod::kStDiv:
      return "ST_Div";
    case SelectionMethod::kStRelDiv:
      return "ST_Rel+Div";
  }
  SOI_CHECK(false) << "unknown method";
  return "";
}

DiversifyParams SelectionMethodParams(SelectionMethod method,
                                      const DiversifyParams& base) {
  DiversifyParams params = base;
  switch (method) {
    case SelectionMethod::kSRel:
      params.w = 1.0;
      params.lambda = 0.0;
      break;
    case SelectionMethod::kSDiv:
      params.w = 1.0;
      params.lambda = 1.0;
      break;
    case SelectionMethod::kSRelDiv:
      params.w = 1.0;
      break;
    case SelectionMethod::kTRel:
      params.w = 0.0;
      params.lambda = 0.0;
      break;
    case SelectionMethod::kTDiv:
      params.w = 0.0;
      params.lambda = 1.0;
      break;
    case SelectionMethod::kTRelDiv:
      params.w = 0.0;
      break;
    case SelectionMethod::kStRel:
      params.lambda = 0.0;
      break;
    case SelectionMethod::kStDiv:
      params.lambda = 1.0;
      break;
    case SelectionMethod::kStRelDiv:
      break;
  }
  return params;
}

DiversifyResult SelectWithMethod(const PhotoScorer& scorer,
                                 SelectionMethod method,
                                 const DiversifyParams& base) {
  return GreedyBaselineSelect(scorer, SelectionMethodParams(method, base));
}

}  // namespace soi
