#ifndef SOI_CORE_DIVERSIFY_GREEDY_BASELINE_H_
#define SOI_CORE_DIVERSIFY_GREEDY_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/diversify/objective.h"

namespace soi {

/// Instrumentation of one diversified-selection run.
struct DiversifyStats {
  double seconds = 0.0;
  /// Exact mmr evaluations performed (the dominating cost).
  int64_t mmr_evaluations = 0;
  /// ST_Rel+Div only: cells surviving the per-iteration filter.
  int64_t cells_refined = 0;
  /// ST_Rel+Div only: cells discarded by the bound comparisons.
  int64_t cells_pruned = 0;
};

/// A selected photo summary (local photo ids) plus run statistics.
struct DiversifyResult {
  std::vector<PhotoId> selected;
  DiversifyStats stats;
};

/// The BL baseline of Section 5.2.2: standard greedy MaxSum
/// diversification that re-evaluates the mmr function (Eq. 10) for every
/// remaining photo at every iteration and inserts the maximizer (ties by
/// ascending photo id). Selects min(k, |R_s|) photos.
DiversifyResult GreedyBaselineSelect(const PhotoScorer& scorer,
                                     const DiversifyParams& params);

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_GREEDY_BASELINE_H_
