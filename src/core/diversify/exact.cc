#include "core/diversify/exact.h"

#include <algorithm>

#include "common/check.h"

namespace soi {

std::vector<PhotoId> ExactMaxSumSelect(const PhotoScorer& scorer,
                                       const DiversifyParams& params) {
  SOI_CHECK(params.k > 0);
  int64_t n = scorer.num_photos();
  SOI_CHECK(n <= 24) << "ExactMaxSumSelect is exponential; got " << n
                     << " photos";
  int64_t k = std::min<int64_t>(params.k, n);

  // Enumerate k-subsets in lexicographic order with the classic odometer.
  std::vector<PhotoId> current(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    current[static_cast<size_t>(i)] = static_cast<PhotoId>(i);
  }
  std::vector<PhotoId> best = current;
  double best_value = scorer.Objective(current, params);
  for (;;) {
    // Advance to the next combination.
    int64_t i = k - 1;
    while (i >= 0 &&
           current[static_cast<size_t>(i)] ==
               static_cast<PhotoId>(n - k + i)) {
      --i;
    }
    if (i < 0) break;
    ++current[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < k; ++j) {
      current[static_cast<size_t>(j)] =
          static_cast<PhotoId>(current[static_cast<size_t>(j - 1)] + 1);
    }
    double value = scorer.Objective(current, params);
    if (value > best_value) {
      best_value = value;
      best = current;
    }
  }
  return best;
}

}  // namespace soi
