#ifndef SOI_CORE_DIVERSIFY_CELL_BOUNDS_H_
#define SOI_CORE_DIVERSIFY_CELL_BOUNDS_H_

#include <vector>

#include "core/diversify/objective.h"
#include "core/street_photos.h"
#include "grid/photo_grid_index.h"

namespace soi {

/// A [lower, upper] interval.
struct Bounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// The cell-level bounds of Section 4.2.2: for every photo inside a grid
/// cell, each returned interval contains the photo's exact value of the
/// corresponding mmr component. The relevance bounds depend only on the
/// street, so CellBoundsCalculator precomputes them per cell at
/// construction; the per-selected-photo diversity bounds are evaluated on
/// demand.
class CellBoundsCalculator {
 public:
  /// `index` must be built over street_photos.photos with cell side rho/2.
  CellBoundsCalculator(const StreetPhotos& street_photos,
                       const PhotoGridIndex& index);

  const PhotoGridIndex& index() const { return *index_; }

  /// Equations 11-12: bounds on spatial_rel(r) for any r in the cell.
  Bounds SpatialRel(CellId cell) const;

  /// Equations 13-14: bounds on textual_rel(r) for any r in the cell.
  Bounds TextualRel(CellId cell) const;

  /// Equations 15-16: bounds on spatial_div(r', r) for any r' in the cell
  /// and the given photo r (local id).
  Bounds SpatialDiv(CellId cell, PhotoId r) const;

  /// Equations 17-18: bounds on textual_div(r', r) for any r' in the cell
  /// and the given photo r (local id).
  Bounds TextualDiv(CellId cell, PhotoId r) const;

  /// Visual extension: bounds on VisualDiv(r', r) for any r' in the cell.
  /// Requires descriptors.
  Bounds VisualDiv(CellId cell, PhotoId r) const;

  /// Combined relevance bounds under the full parameter set (the visual
  /// extension only affects diversity, so this is the w-weighted
  /// spatial/textual combination).
  Bounds CombinedRel(CellId cell, const DiversifyParams& params) const;

  /// Combined pairwise-diversity bounds of any r' in the cell against
  /// photo `r` under the full parameter set.
  Bounds CombinedDiv(CellId cell, PhotoId r,
                     const DiversifyParams& params) const;

  /// Bounds on mmr(r') of Eq. 10 for any r' in the cell, given the
  /// currently selected photos.
  Bounds Mmr(CellId cell, const std::vector<PhotoId>& selected,
             const DiversifyParams& params) const;

  /// Visual-aware variant of Mmr (equal when params.visual_weight is 0).
  Bounds MmrWithVisual(CellId cell, const std::vector<PhotoId>& selected,
                       const DiversifyParams& params) const;

 private:
  const StreetPhotos* street_photos_;
  const PhotoGridIndex* index_;
  // Precomputed per non-empty cell (dense in the order of
  // index.non_empty_cells()).
  std::vector<Bounds> spatial_rel_;
  std::vector<Bounds> textual_rel_;
  // Maps CellId to its position in non_empty_cells().
  std::unordered_map<CellId, size_t> cell_slot_;
};

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_CELL_BOUNDS_H_
