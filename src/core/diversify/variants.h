#ifndef SOI_CORE_DIVERSIFY_VARIANTS_H_
#define SOI_CORE_DIVERSIFY_VARIANTS_H_

#include <string>
#include <vector>

#include "core/diversify/greedy_baseline.h"
#include "core/diversify/objective.h"

namespace soi {

/// The nine photo-selection techniques compared in the paper's
/// effectiveness study (Section 5.1.2, Table 3). S/T/ST selects which
/// information is used (spatial, textual, both); Rel/Div/Rel+Div selects
/// which criteria are optimized.
enum class SelectionMethod {
  kSRel,
  kSDiv,
  kSRelDiv,
  kTRel,
  kTDiv,
  kTRelDiv,
  kStRel,
  kStDiv,
  kStRelDiv,
};

/// All nine methods in the paper's Table 3 order.
const std::vector<SelectionMethod>& AllSelectionMethods();

/// The paper's display name, e.g. "ST_Rel+Div".
std::string SelectionMethodName(SelectionMethod method);

/// Maps a method onto the mmr parameters it greedily optimizes: w = 1 / 0 /
/// base.w for S / T / ST, lambda = 0 / 1 / base.lambda for Rel / Div /
/// Rel+Div. k and rho are taken from `base`.
DiversifyParams SelectionMethodParams(SelectionMethod method,
                                      const DiversifyParams& base);

/// Greedily selects a photo summary under the method's criteria. All
/// methods share the greedy MaxSum machinery; they differ only in the
/// effective (lambda, w). Pure-Div methods (lambda = 1) start from an
/// all-zero first iteration, which ties break by ascending photo id.
DiversifyResult SelectWithMethod(const PhotoScorer& scorer,
                                 SelectionMethod method,
                                 const DiversifyParams& base);

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_VARIANTS_H_
