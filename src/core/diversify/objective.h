#ifndef SOI_CORE_DIVERSIFY_OBJECTIVE_H_
#define SOI_CORE_DIVERSIFY_OBJECTIVE_H_

#include <cstdint>
#include <vector>

#include "core/street_photos.h"
#include "objects/photo.h"

namespace soi {

/// Parameters of the SOI diversification problem (Problem 2 and Eq. 10):
/// summary size k, relevance/diversity trade-off lambda, spatial/textual
/// weight w, and the neighborhood radius rho of Definition 4.
struct DiversifyParams {
  int32_t k = 20;
  double lambda = 0.5;
  double w = 0.5;
  double rho = 0.0001;
  /// Weight of the visual-feature component in the *diversity* criteria
  /// (the paper's future work: "enhance the diversification criteria with
  /// visual features extracted from the photos"). 0 (default) reproduces
  /// the paper's purely spatio-textual diversity exactly; with v > 0 the
  /// pairwise diversity becomes
  /// (1-v) * (w * spatial + (1-w) * textual) + v * visual. Relevance
  /// stays spatio-textual. Requires photos with visual descriptors when
  /// positive.
  double visual_weight = 0.0;
};

/// Evaluates the spatio-textual relevance/diversity measures of Section
/// 4.1.2 for one street's photo set R_s. All selection algorithms (greedy
/// baseline, ST_Rel+Div, and the comparison variants) score through one
/// shared PhotoScorer instance, so their arithmetic is bit-identical and
/// result equality is exact.
///
/// Photo ids are local indices into StreetPhotos::photos.
class PhotoScorer {
 public:
  /// Precomputes per-photo spatial relevance (neighborhood counts within
  /// `rho`, Definition 4) and textual relevance (Definition 6). Requires a
  /// non-empty R_s and rho > 0.
  PhotoScorer(const StreetPhotos& street_photos, double rho);

  const StreetPhotos& street_photos() const { return *street_photos_; }
  double rho() const { return rho_; }
  int64_t num_photos() const {
    return static_cast<int64_t>(spatial_rel_.size());
  }

  /// spatial_rel(r) (Definition 4): photos of R_s within rho of r
  /// (including r itself), normalized by |R_s|.
  double SpatialRel(PhotoId r) const {
    return spatial_rel_[static_cast<size_t>(r)];
  }

  /// textual_rel(r) (Definition 6).
  double TextualRel(PhotoId r) const {
    return textual_rel_[static_cast<size_t>(r)];
  }

  /// True iff the photos carry visual descriptors.
  bool has_visual() const { return !centroid_.empty(); }

  /// Visual relevance (extension): similarity of the photo's descriptor
  /// to the street's centroid descriptor, in [0, 1]. Requires
  /// has_visual().
  double VisualRel(PhotoId r) const {
    return visual_rel_[static_cast<size_t>(r)];
  }

  /// The street's mean descriptor (empty when photos have none).
  const std::vector<float>& visual_centroid() const { return centroid_; }

  /// w-combined relevance of Eq. 4's summands.
  double Rel(PhotoId r, double w) const {
    return w * SpatialRel(r) + (1.0 - w) * TextualRel(r);
  }

  /// Relevance under the full parameter set. The visual extension only
  /// affects diversity, so this always equals Rel(r, params.w); it exists
  /// so callers can score uniformly through the parameter struct.
  double Rel(PhotoId r, const DiversifyParams& params) const {
    return Rel(r, params.w);
  }

  /// spatial_div(r, r') (Definition 5): distance normalized by maxD(s).
  double SpatialDiv(PhotoId r1, PhotoId r2) const;

  /// textual_div(r, r') (Definition 7): Jaccard distance of tag sets.
  double TextualDiv(PhotoId r1, PhotoId r2) const;

  /// Visual diversity (extension): normalized descriptor distance.
  /// Requires has_visual().
  double VisualDiv(PhotoId r1, PhotoId r2) const;

  /// w-combined pairwise diversity of Eq. 5's summands.
  double Div(PhotoId r1, PhotoId r2, double w) const {
    return w * SpatialDiv(r1, r2) + (1.0 - w) * TextualDiv(r1, r2);
  }

  /// Diversity under the full parameter set, including the visual
  /// extension. Identical to Div(r1, r2, params.w) when visual_weight
  /// is 0.
  double Div(PhotoId r1, PhotoId r2, const DiversifyParams& params) const {
    double div = Div(r1, r2, params.w);
    if (params.visual_weight > 0) {
      div = (1.0 - params.visual_weight) * div +
            params.visual_weight * VisualDiv(r1, r2);
    }
    return div;
  }

  /// The maximal marginal relevance of Eq. 10 for candidate `r` given the
  /// already-selected set: (1-lambda) rel(r) + lambda/(k-1) sum div(r, r').
  double Mmr(PhotoId r, const std::vector<PhotoId>& selected,
             const DiversifyParams& params) const;

  /// rel(R_k) of Eq. 4 for a selected set.
  double SetRelevance(const std::vector<PhotoId>& set, double w) const;

  /// rel(R_k) through the parameter struct; always equals the w-only
  /// version (the visual extension only affects diversity).
  double SetRelevance(const std::vector<PhotoId>& set,
                      const DiversifyParams& params) const {
    return SetRelevance(set, params.w);
  }

  /// div(R_k) of Eq. 5 for a selected set (0 for sets of size < 2).
  double SetDiversity(const std::vector<PhotoId>& set, double w) const;

  /// div(R_k) including the visual extension; equals the w-only version
  /// when visual_weight is 0.
  double SetDiversity(const std::vector<PhotoId>& set,
                      const DiversifyParams& params) const;

  /// The full objective F of Eq. 2.
  double Objective(const std::vector<PhotoId>& set,
                   const DiversifyParams& params) const;

 private:
  const StreetPhotos* street_photos_;
  double rho_;
  std::vector<double> spatial_rel_;
  std::vector<double> textual_rel_;
  // Visual extension (empty when photos carry no descriptors).
  std::vector<float> centroid_;
  std::vector<double> visual_rel_;
};

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_OBJECTIVE_H_
