#ifndef SOI_CORE_DIVERSIFY_EXACT_H_
#define SOI_CORE_DIVERSIFY_EXACT_H_

#include <vector>

#include "core/diversify/objective.h"

namespace soi {

/// Exhaustively maximizes the MaxSum objective F (Eq. 2 / Problem 2) over
/// all size-min(k, |R_s|) subsets. Exponential; the test oracle for the
/// greedy heuristics on tiny inputs (|R_s| <= ~20).
///
/// Returns the lexicographically smallest optimum, so results are
/// deterministic under ties.
std::vector<PhotoId> ExactMaxSumSelect(const PhotoScorer& scorer,
                                       const DiversifyParams& params);

}  // namespace soi

#endif  // SOI_CORE_DIVERSIFY_EXACT_H_
