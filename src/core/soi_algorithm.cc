#include "core/soi_algorithm.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/span.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/interest.h"
#include "core/soi_baseline.h"
#include "grid/live_poi_view.h"
#include "obs/obs.h"

namespace soi {

// ---------------------------------------------------------------------
// Reusable per-query scratch arenas.
//
// Every TopK call needs dense per-segment / per-street arrays, the three
// source-list buffers, and the refinement candidate heap. Allocating them
// per query dominated the allocator traffic of the serving hot path, so
// they live here instead: a query leases one QueryScratch from the pool,
// resets it with assign()/clear() (which preserve heap capacity), and
// returns it when done. Steady-state serving therefore allocates nothing.
struct SoiScratchPool {
  // Dense per-segment state of one run (validity gated by `seen`).
  struct SegmentState {
    double mass = 0;
    // Number of cells of C_eps(l) not yet visited for this segment.
    int64_t remaining = 0;
    // Bitmap over the positions of C_eps(l).
    std::vector<uint64_t> visited_bits;

    bool IsVisited(size_t pos) const {
      return (visited_bits[pos >> 6] >> (pos & 63)) & 1;
    }
    void MarkVisited(size_t pos) {
      visited_bits[pos >> 6] |= 1ull << (pos & 63);
    }
  };

  struct TrackerEntry {
    double value;
    StreetId street;
  };

  struct QueryScratch {
    // Filtering phase.
    std::vector<char> seen;
    std::vector<SegmentState> states;
    std::vector<double> street_best;
    std::vector<GlobalInvertedIndex::Entry> sl1;
    std::vector<double> cell_relevant_bound;
    std::vector<SegmentId> sl2;
    std::vector<double> lbk;
    GlobalInvertedIndex::QueryCellScratch cell_list;
    // FinalizeSegment parallel path.
    std::vector<size_t> unvisited;
    std::vector<double> finalize_mass;
    std::vector<int64_t> finalize_checks;
    // Refinement phase.
    std::vector<SegmentId> pending;
    std::vector<double> street_exact;
    std::vector<SegmentId> street_exact_segment;
    std::vector<double> optimistic;
    // KthBestTracker storage.
    std::vector<double> tracker_value;
    std::vector<char> tracker_live;
    std::vector<TrackerEntry> tracker_heap;
  };

  std::unique_ptr<QueryScratch> Acquire() SOI_EXCLUDES(mutex_) {
    std::unique_ptr<QueryScratch> scratch;
    [[maybe_unused]] size_t free_count = 0;
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        scratch = std::move(free_.back());
        free_.pop_back();
      }
      free_count = free_.size();
    }
    SOI_OBS_GAUGE_SET("soi.scratch.free", static_cast<int64_t>(free_count));
    if (scratch != nullptr) {
      SOI_OBS_COUNTER_ADD("soi.scratch.reused", 1);
      return scratch;
    }
    SOI_OBS_COUNTER_ADD("soi.scratch.created", 1);
    return std::make_unique<QueryScratch>();
  }

  void Release(std::unique_ptr<QueryScratch> scratch) SOI_EXCLUDES(mutex_) {
    [[maybe_unused]] size_t free_count = 0;
    {
      MutexLock lock(mutex_);
      free_.push_back(std::move(scratch));
      free_count = free_.size();
    }
    SOI_OBS_GAUGE_SET("soi.scratch.free", static_cast<int64_t>(free_count));
  }

 private:
  Mutex mutex_{"core.SoiScratchPool.pool", lock_graph::kRankLeaf};
  std::vector<std::unique_ptr<QueryScratch>> free_ SOI_GUARDED_BY(mutex_);
};

namespace {

// RAII lease so the scratch returns to the pool on every exit path
// (including the exceptions fault injection and parallel chunks may
// rethrow through Execute).
class ScratchLease {
 public:
  explicit ScratchLease(SoiScratchPool* pool)
      : pool_(pool), scratch_(pool->Acquire()) {}
  ~ScratchLease() { pool_->Release(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  SoiScratchPool::QueryScratch& operator*() { return *scratch_; }

 private:
  SoiScratchPool* pool_;
  std::unique_ptr<SoiScratchPool::QueryScratch> scratch_;
};

// Which source list an iteration consumes.
enum class Source { kSl1, kSl2, kSl3, kNone };

// Threshold tracker for the refinement phase: the k-th largest per-street
// exact interest under value-increasing updates. A bounded lazy-deletion
// min-heap holds the current top-k street values (entries superseded by a
// larger value for the same street, or displaced out of the top-k, go
// stale and are purged when they surface at the top). Amortized O(log k)
// per update, O(1) per threshold read — replacing the O(k) rbegin/advance
// walk of a full std::multiset. Heap and dense arrays live in the leased
// scratch, so constructing a tracker allocates nothing steady-state.
//
// Correctness rests on monotonicity: street values only grow and the heap
// minimum over live entries never decreases, so a value evicted as the
// minimum of k+1 live entries can never re-enter the top-k.
class KthBestTracker {
 public:
  KthBestTracker(int32_t k, int64_t num_streets,
                 SoiScratchPool::QueryScratch* scratch)
      : k_(k),
        value_(scratch->tracker_value),
        live_flag_(scratch->tracker_live),
        heap_(scratch->tracker_heap) {
    value_.assign(static_cast<size_t>(num_streets), -1.0);
    live_flag_.assign(static_cast<size_t>(num_streets), 0);
    heap_.clear();
  }

  // Raises `street`'s value to `value`; no-op unless it strictly grows
  // (first values are >= 0, so the initial -1 sentinel always grows).
  void Update(StreetId street, double value) {
    double& current = value_[static_cast<size_t>(street)];
    if (current < 0.0) {
      ++num_streets_;
    } else if (value <= current) {
      return;
    }
    if (live_flag_[static_cast<size_t>(street)]) {
      live_flag_[static_cast<size_t>(street)] = 0;  // entry goes stale
      --num_live_;
    }
    current = value;
    heap_.push_back(SoiScratchPool::TrackerEntry{value, street});
    std::push_heap(heap_.begin(), heap_.end(), MinOnTop());
    live_flag_[static_cast<size_t>(street)] = 1;
    ++num_live_;
    while (num_live_ > k_) EvictMinLive();
  }

  // The k-th largest street value, or 0 while fewer than k streets have
  // one (matching the refinement's "no threshold yet" semantics).
  double Kth() {
    if (num_streets_ < k_) return 0.0;
    while (!IsLive(heap_.front())) PopTop();
    return heap_.front().value;
  }

 private:
  // Min-heap: the smallest tracked value surfaces at front().
  struct MinOnTop {
    bool operator()(const SoiScratchPool::TrackerEntry& a,
                    const SoiScratchPool::TrackerEntry& b) const {
      return a.value > b.value;
    }
  };

  bool IsLive(const SoiScratchPool::TrackerEntry& e) const {
    return live_flag_[static_cast<size_t>(e.street)] &&
           value_[static_cast<size_t>(e.street)] == e.value;
  }

  void PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), MinOnTop());
    heap_.pop_back();
  }

  void EvictMinLive() {
    for (;;) {
      SoiScratchPool::TrackerEntry top = heap_.front();
      PopTop();
      if (IsLive(top)) {
        live_flag_[static_cast<size_t>(top.street)] = 0;
        --num_live_;
        return;
      }
    }
  }

  int32_t k_;
  std::vector<double>& value_;
  std::vector<char>& live_flag_;
  std::vector<SoiScratchPool::TrackerEntry>& heap_;
  int64_t num_streets_ = 0;
  int64_t num_live_ = 0;
};

// Mutable per-run state of Algorithm 1. Scoped to one TopK call so the
// SoiAlgorithm instance stays immutable; the backing storage comes from
// the leased QueryScratch and is reset here, never reallocated.
class Run {
 public:
  using SegmentState = SoiScratchPool::SegmentState;

  Run(const RoadNetwork& network, const PoiGridIndex& grid,
      const GlobalInvertedIndex& global_index,
      const std::vector<SegmentId>& segments_by_length,
      const SoiQuery& query, const EpsAugmentedMaps& maps,
      const SoiAlgorithmOptions& options,
      SoiScratchPool::QueryScratch* scratch)
      : network_(network),
        grid_(grid),
        view_(options.live_view != nullptr
                  ? *options.live_view
                  : LivePoiView(grid, global_index)),
        sl3_(segments_by_length),
        query_(query),
        maps_(maps),
        options_(options),
        s_(*scratch),
        seen_(s_.seen),
        states_(s_.states),
        street_best_(s_.street_best),
        sl1_(s_.sl1),
        cell_relevant_bound_(s_.cell_relevant_bound),
        sl2_(s_.sl2) {
    const size_t num_segments =
        static_cast<size_t>(network.num_segments());
    seen_.assign(num_segments, 0);
    // Element contents are stale from the previous lease; validity is
    // gated by seen_ and GetOrCreateState re-initializes on first touch.
    if (states_.size() < num_segments) states_.resize(num_segments);
    street_best_.assign(static_cast<size_t>(network.num_streets()), -1.0);
  }

  Result<SoiResult> Execute();

 private:
  SegmentState& GetOrCreateState(SegmentId id);
  // Relevant mass of `cell` for the query w.r.t. `geometry` (the body of
  // procedure UpdateInterest), accumulated locally so sequential and
  // parallel callers add per-cell sums to the segment mass in the same
  // order — the determinism contract's bit-identity hinges on this.
  double CellMass(const Segment& geometry, CellId cell,
                  int64_t* distance_checks) const;
  // Procedure UpdateInterest of Algorithm 1.
  void UpdateInterest(SegmentId id, CellId cell);
  void FinalizeSegment(SegmentId id);
  void UpdateStreetBest(StreetId street, double lower_bound);

  // --- source lists ------------------------------------------------------
  void BuildSourceLists();
  // Advances the cursors past already-seen segments; must be called before
  // reading the tops or popping.
  void SkipSeenSegments();
  bool Sl1Exhausted() const { return sl1_pos_ >= sl1_.size(); }
  bool Sl2Exhausted() const { return sl2_pos_ >= sl2_.size(); }
  bool Sl3Exhausted() const { return sl3_pos_ >= sl3_.size(); }

  double ComputeUpperBound();
  // Recomputes LB_k (the k-th largest per-street best lower bound) when
  // due. LB_k only grows, so a stale (smaller) cached value is a valid —
  // merely conservative — lower bound; recomputing every iteration would
  // dominate the filtering cost.
  void MaybeRefreshLowerBoundK();
  Source ChooseSource();
  void PopCell();
  void PopSegment(Source source);

  // --- phases ------------------------------------------------------------
  // Both phases check options_.cancel cooperatively and return its
  // kCancelled / kDeadlineExceeded status when it fires; partial state
  // is discarded by the caller.
  Status FilteringPhase();
  Status RefinementPhase();

  const RoadNetwork& network_;
  const PoiGridIndex& grid_;
  // Every POI-side read of the run goes through this view: the static
  // path wraps grid_/global_index_ with no overlay, the ingest path is
  // options.live_view's pinned epoch. Geometry stays grid_'s — it is
  // invariant across epochs (ingest rejects out-of-bounds inserts).
  const LivePoiView view_;
  const std::vector<SegmentId>& sl3_;
  const SoiQuery& query_;
  const EpsAugmentedMaps& maps_;
  const SoiAlgorithmOptions& options_;

  SoiScratchPool::QueryScratch& s_;
  std::vector<char>& seen_;
  // Dense per-segment state, lazily initialized on first touch (seen_
  // flags gate validity). A vector beats a hash map here: GetOrCreateState
  // runs once per (segment, cell) pair.
  std::vector<SegmentState>& states_;
  // street_best_[s] = best int^-(l) over seen segments of s; -1 if unseen.
  std::vector<double>& street_best_;
  // SL1: cells with relevant POIs, by decreasing |P_Psi(c)|.
  std::vector<GlobalInvertedIndex::Entry>& sl1_;
  // Relevant-weight upper bound per cell (0 for cells off SL1), for the
  // pruned refinement. Dense: indexed by CellId.
  std::vector<double>& cell_relevant_bound_;
  // SL2: segments by decreasing |C_eps(l)|.
  std::vector<SegmentId>& sl2_;

  size_t sl1_pos_ = 0;
  size_t sl2_pos_ = 0;
  size_t sl3_pos_ = 0;

  int64_t num_seen_streets_ = 0;
  int64_t next_lbk_refresh_ = 0;

  double upper_bound_ = 0.0;
  double lower_bound_k_ = 0.0;
  Source last_source_ = Source::kNone;

  SoiResult result_;
};

Run::SegmentState& Run::GetOrCreateState(SegmentId id) {
  SegmentState& state = states_[static_cast<size_t>(id)];
  if (seen_[static_cast<size_t>(id)]) return state;
  int64_t num_cells = maps_.NumSegmentCells(id);
  state.mass = 0.0;
  state.remaining = num_cells;
  state.visited_bits.assign(static_cast<size_t>((num_cells + 63) / 64), 0);
  seen_[static_cast<size_t>(id)] = 1;
  ++result_.stats.segments_seen;
  // A freshly seen segment contributes a zero lower bound to its street.
  UpdateStreetBest(network_.segment(id).street, 0.0);
  return state;
}

void Run::UpdateStreetBest(StreetId street, double lower_bound) {
  double& best = street_best_[static_cast<size_t>(street)];
  if (best < 0.0) {
    best = lower_bound;
    ++num_seen_streets_;
    return;
  }
  if (lower_bound > best) best = lower_bound;
}

double Run::CellMass(const Segment& geometry, CellId cell,
                     int64_t* distance_checks) const {
  double mass = 0.0;
  view_.ForEachRelevantInCell(cell, query_.keywords, [&](PoiId poi) {
    ++*distance_checks;
    const Poi& p = view_.PoiById(poi);
    if (geometry.DistanceTo(p.position) <= query_.eps) {
      mass += p.weight;
    }
  });
  return mass;
}

void Run::UpdateInterest(SegmentId id, CellId cell) {
  SegmentState& state = GetOrCreateState(id);
  Span<CellId> cells = maps_.SegmentCells(id);
  auto it = std::lower_bound(cells.begin(), cells.end(), cell);
  SOI_DCHECK(it != cells.end() && *it == cell)
      << "cell " << cell << " not in C_eps of segment " << id;
  size_t pos = static_cast<size_t>(it - cells.begin());
  if (state.IsVisited(pos)) return;
  state.MarkVisited(pos);
  --state.remaining;

  const NetworkSegment& segment = network_.segment(id);
  state.mass +=
      CellMass(segment.geometry, cell, &result_.stats.poi_distance_checks);
  UpdateStreetBest(segment.street,
                   SegmentInterest(state.mass, segment.length, query_.eps));
}

void Run::FinalizeSegment(SegmentId id) {
  SegmentState& state = GetOrCreateState(id);
  if (state.remaining == 0) return;
  Span<CellId> cells = maps_.SegmentCells(id);

  // Parallel path: the per-cell masses are pure reads, so compute them
  // concurrently and fold them into the segment state sequentially, in
  // cell order — the same order (and the same per-cell local sums) as the
  // sequential path, keeping the mass bit-identical. Only worthwhile for
  // segments with many unvisited cells.
  constexpr int64_t kMinParallelCells = 32;
  if (options_.pool != nullptr && state.remaining >= kMinParallelCells &&
      !ThreadPool::InParallelRegion()) {
    std::vector<size_t>& unvisited = s_.unvisited;
    unvisited.clear();
    for (size_t pos = 0; pos < cells.size(); ++pos) {
      if (!state.IsVisited(pos)) unvisited.push_back(pos);
    }
    const NetworkSegment& segment = network_.segment(id);
    std::vector<double>& cell_mass = s_.finalize_mass;
    cell_mass.assign(unvisited.size(), 0.0);
    std::vector<int64_t>& checks = s_.finalize_checks;
    checks.assign(unvisited.size(), 0);
    ParallelFor(options_.pool, 0, static_cast<int64_t>(unvisited.size()),
                [&](int64_t j) {
                  cell_mass[static_cast<size_t>(j)] = CellMass(
                      segment.geometry, cells[unvisited[static_cast<size_t>(j)]],
                      &checks[static_cast<size_t>(j)]);
                });
    for (size_t j = 0; j < unvisited.size(); ++j) {
      state.MarkVisited(unvisited[j]);
      --state.remaining;
      state.mass += cell_mass[j];
      result_.stats.poi_distance_checks += checks[j];
    }
    // The sequential path updates the street bound after every cell, but
    // the mass only grows, so the final update subsumes the rest.
    UpdateStreetBest(
        segment.street,
        SegmentInterest(state.mass, segment.length, query_.eps));
    return;
  }

  for (size_t pos = 0; pos < cells.size() && state.remaining > 0; ++pos) {
    if (!state.IsVisited(pos)) UpdateInterest(id, cells[pos]);
  }
}

void Run::BuildSourceLists() {
  view_.BuildQueryCellList(query_.keywords, &s_.cell_list, &sl1_);
  cell_relevant_bound_.assign(
      static_cast<size_t>(grid_.geometry().num_cells()), 0.0);
  for (const GlobalInvertedIndex::Entry& entry : sl1_) {
    cell_relevant_bound_[static_cast<size_t>(entry.cell)] = entry.weight;
  }
  // SL2: all segments by decreasing |C_eps(l)| (built at query time: the
  // augmentation depends on eps). Ties by ascending id for determinism.
  sl2_.resize(static_cast<size_t>(network_.num_segments()));
  for (SegmentId id = 0; id < network_.num_segments(); ++id) {
    sl2_[static_cast<size_t>(id)] = id;
  }
  ParallelSort(options_.pool, sl2_.begin(), sl2_.end(),
               [this](SegmentId a, SegmentId b) {
                 int64_t ca = maps_.NumSegmentCells(a);
                 int64_t cb = maps_.NumSegmentCells(b);
                 if (ca != cb) return ca > cb;
                 return a < b;
               });
  // SL3 (sl3_) is the offline by-length list, shared across queries.
}

void Run::SkipSeenSegments() {
  while (sl2_pos_ < sl2_.size() && seen_[static_cast<size_t>(sl2_[sl2_pos_])]) {
    ++sl2_pos_;
  }
  while (sl3_pos_ < sl3_.size() && seen_[static_cast<size_t>(sl3_[sl3_pos_])]) {
    ++sl3_pos_;
  }
}

double Run::ComputeUpperBound() {
  SkipSeenSegments();
  // Any unseen segment only neighbors unpopped cells (a popped cell marks
  // every segment within eps as seen), so:
  //   mass(l) <= top(SL1) * top(SL2)   and   len(l) >= top(SL3),
  // giving UB = top(SL1) * top(SL2) / (2 eps top(SL3) + pi eps^2).
  if (Sl1Exhausted() || Sl2Exhausted() || Sl3Exhausted()) return 0.0;
  double top1 = sl1_[sl1_pos_].weight;
  int64_t top2 = maps_.NumSegmentCells(sl2_[sl2_pos_]);
  double top3 = network_.segment(sl3_[sl3_pos_]).length;
  return SegmentInterest(top1 * static_cast<double>(top2), top3,
                         query_.eps);
}

void Run::MaybeRefreshLowerBoundK() {
  if (num_seen_streets_ < query_.k) return;
  if (result_.stats.iterations < next_lbk_refresh_) return;
  constexpr int64_t kRefreshInterval = 16;
  next_lbk_refresh_ = result_.stats.iterations + kRefreshInterval;
  std::vector<double>& lbk_scratch = s_.lbk;
  lbk_scratch.clear();
  for (double best : street_best_) {
    if (best >= 0.0) lbk_scratch.push_back(best);
  }
  size_t kth = static_cast<size_t>(query_.k - 1);
  std::nth_element(lbk_scratch.begin(), lbk_scratch.begin() + kth,
                   lbk_scratch.end(), std::greater<double>());
  // LB_k is monotone over the run; keep the larger of old and new.
  lower_bound_k_ = std::max(lower_bound_k_, lbk_scratch[kth]);
}

Source Run::ChooseSource() {
  SkipSeenSegments();
  bool have1 = !Sl1Exhausted();
  bool have2 = !Sl2Exhausted();
  bool have3 = !Sl3Exhausted();
  if (!have1 && !have2 && !have3) return Source::kNone;

  auto fallback = [&]() {
    if (have1) return Source::kSl1;
    if (have3) return Source::kSl3;
    return Source::kSl2;
  };

  switch (options_.strategy) {
    case SourceListStrategy::kCellsFirst:
      return fallback();
    case SourceListStrategy::kRoundRobin: {
      // SL1 -> SL2 -> SL3 -> SL1 ... skipping exhausted lists.
      Source order[3] = {Source::kSl1, Source::kSl2, Source::kSl3};
      int start = 0;
      if (last_source_ == Source::kSl1) start = 1;
      if (last_source_ == Source::kSl2) start = 2;
      for (int i = 0; i < 3; ++i) {
        Source s = order[(start + i) % 3];
        if (s == Source::kSl1 && have1) return s;
        if (s == Source::kSl2 && have2) return s;
        if (s == Source::kSl3 && have3) return s;
      }
      return Source::kNone;
    }
    case SourceListStrategy::kAlternateCellsSegments: {
      // Alternate SL1 / SL3, balancing the number of *segments considered*
      // from each source (Section 3.2.2): one cell access brings several
      // segments into view, so segment accesses are interleaved at a 1:4
      // ratio. SL2 takes over the segment access when its top segment
      // neighbors an outsized number of cells (at least 4x the median —
      // the "few segments with a large number of neighboring cells"
      // case).
      bool segment_turn =
          have1 && (result_.stats.iterations % 5 == 4);
      if (!segment_turn && have1) return Source::kSl1;
      if (have2 && have3) {
        int64_t top2 = maps_.NumSegmentCells(sl2_[sl2_pos_]);
        SegmentId median_seg = sl2_[(sl2_pos_ + sl2_.size()) / 2];
        int64_t median = maps_.NumSegmentCells(median_seg);
        if (top2 >= 4 * std::max<int64_t>(median, 1)) return Source::kSl2;
      }
      if (have3) return Source::kSl3;
      return fallback();
    }
  }
  return fallback();
}

void Run::PopCell() {
  const GlobalInvertedIndex::Entry& entry = sl1_[sl1_pos_++];
  ++result_.stats.cells_popped;
  for (SegmentId id : maps_.CellSegments(entry.cell)) {
    UpdateInterest(id, entry.cell);
  }
}

void Run::PopSegment(Source source) {
  SegmentId id =
      source == Source::kSl2 ? sl2_[sl2_pos_++] : sl3_[sl3_pos_++];
  SOI_DCHECK(!seen_[static_cast<size_t>(id)]);
  ++result_.stats.segments_popped;
  FinalizeSegment(id);
}

Status Run::FilteringPhase() {
  for (;;) {
    // One check per iteration = per popped cell or finalized segment,
    // the cell-granularity promptness the serving path promises.
    SOI_RETURN_NOT_OK(options_.cancel.Check());
    upper_bound_ = ComputeUpperBound();
    MaybeRefreshLowerBoundK();
    if (options_.observer) {
      SoiAlgorithmOptions::FilterSnapshot snapshot;
      snapshot.upper_bound = upper_bound_;
      snapshot.lower_bound = lower_bound_k_;
      snapshot.segment_seen = &seen_;
      options_.observer(snapshot);
    }
    if (upper_bound_ <= lower_bound_k_) break;
    Source source = ChooseSource();
    if (source == Source::kNone) break;
    ++result_.stats.iterations;
    if (source == Source::kSl1) {
      PopCell();
    } else {
      PopSegment(source);
    }
    last_source_ = source;
  }
  result_.stats.final_upper_bound = upper_bound_;
  result_.stats.final_lower_bound = lower_bound_k_;
  return Status::OK();
}

Status Run::RefinementPhase() {
  // Collect the seen segments; under pruning, process them by decreasing
  // interest lower bound so the exact-score threshold rises quickly.
  std::vector<SegmentId>& pending = s_.pending;
  pending.clear();
  pending.reserve(static_cast<size_t>(result_.stats.segments_seen));
  for (SegmentId id = 0; id < network_.num_segments(); ++id) {
    if (seen_[static_cast<size_t>(id)]) pending.push_back(id);
  }

  std::vector<double>& street_exact = s_.street_exact;
  street_exact.assign(static_cast<size_t>(network_.num_streets()), -1.0);
  // The segment attaining street_exact, tracked while updating instead of
  // recovered afterwards by re-deriving the score and matching on exact
  // floating-point equality (fragile). With the pending order below, ties
  // resolve to the lowest segment id in both refinement modes.
  std::vector<SegmentId>& street_exact_segment = s_.street_exact_segment;
  street_exact_segment.assign(static_cast<size_t>(network_.num_streets()),
                              -1);
  KthBestTracker tracker(query_.k, network_.num_streets(), &s_);
  auto update_exact = [&](StreetId street, double interest, SegmentId seg) {
    double& best = street_exact[static_cast<size_t>(street)];
    if (best < 0.0 || interest > best) {
      best = interest;
      street_exact_segment[static_cast<size_t>(street)] = seg;
      tracker.Update(street, interest);
    }
  };

  if (options_.pruned_refinement) {
    ParallelSort(options_.pool, pending.begin(), pending.end(),
                 [this](SegmentId a, SegmentId b) {
                   const SegmentState& sa = states_[static_cast<size_t>(a)];
                   const SegmentState& sb = states_[static_cast<size_t>(b)];
                   double ia = SegmentInterest(sa.mass,
                                               network_.segment(a).length,
                                               query_.eps);
                   double ib = SegmentInterest(sb.mass,
                                               network_.segment(b).length,
                                               query_.eps);
                   if (ia != ib) return ia > ib;
                   return a < b;
                 });
  }

  // Optimistic interest bounds (every unvisited cell contributes its full
  // relevant-POI bound): pure reads of the post-filtering state, so they
  // are computed for all pending segments in parallel up front. Each
  // bound accumulates in the same cell order as the former inline loop.
  std::vector<double>& optimistic = s_.optimistic;
  if (options_.pruned_refinement) {
    optimistic.resize(pending.size());
    ParallelFor(
        options_.pool, 0, static_cast<int64_t>(pending.size()),
        [&](int64_t i) {
          SegmentId id = pending[static_cast<size_t>(i)];
          const SegmentState& state = states_[static_cast<size_t>(id)];
          double optimistic_mass = state.mass;
          if (state.remaining > 0) {
            Span<CellId> cells = maps_.SegmentCells(id);
            for (size_t pos = 0; pos < cells.size(); ++pos) {
              if (state.IsVisited(pos)) continue;
              optimistic_mass +=
                  cell_relevant_bound_[static_cast<size_t>(cells[pos])];
            }
          }
          optimistic[static_cast<size_t>(i)] = SegmentInterest(
              optimistic_mass, network_.segment(id).length, query_.eps);
        });
  }

  for (size_t i = 0; i < pending.size(); ++i) {
    SOI_RETURN_NOT_OK(options_.cancel.Check());
    SegmentId id = pending[i];
    const SegmentState& state = states_[static_cast<size_t>(id)];
    const NetworkSegment& segment = network_.segment(id);
    if (options_.pruned_refinement && state.remaining > 0 &&
        optimistic[i] < tracker.Kth()) {
      continue;  // Cannot reach the top-k.
    }
    if (state.remaining > 0) {
      SOI_FAULT_POINT("soi.refine.finalize");
      ++result_.stats.segments_finalized_in_refinement;
      FinalizeSegment(id);
    }
    update_exact(segment.street,
                 SegmentInterest(states_[static_cast<size_t>(id)].mass,
                                 segment.length, query_.eps),
                 id);
  }

  // Extract the top-k streets: seen streets by exact interest, padded (for
  // degenerate queries that saw fewer than k streets) with unseen streets
  // at interest 0 in ascending id order — matching RankStreets' ordering.
  std::vector<RankedStreet> ranked;
  ranked.reserve(static_cast<size_t>(network_.num_streets()));
  for (StreetId street = 0; street < network_.num_streets(); ++street) {
    double exact = street_exact[static_cast<size_t>(street)];
    RankedStreet entry;
    entry.street = street;
    entry.interest = std::max(exact, 0.0);
    entry.best_segment =
        exact > 0.0 ? street_exact_segment[static_cast<size_t>(street)]
                    : network_.street(street).segments[0];
    ranked.push_back(entry);
  }
  auto by_interest = [](const RankedStreet& a, const RankedStreet& b) {
    if (a.interest != b.interest) return a.interest > b.interest;
    return a.street < b.street;
  };
  size_t keep =
      std::min<size_t>(static_cast<size_t>(query_.k), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    by_interest);
  ranked.resize(keep);
  result_.streets = std::move(ranked);
  return Status::OK();
}

Result<SoiResult> Run::Execute() {
  // Phase timings flow to two places: the per-run SoiQueryStats fields
  // (the public per-query view, kept for Figure 4 and the tests) and the
  // cumulative registry histograms/spans (the fleet-wide view; compiled
  // out under SOI_OBSERVABILITY=OFF).
  SOI_TRACE_SPAN("soi.query");
  Stopwatch timer;
  {
    SOI_TRACE_SPAN("soi.lists");
    BuildSourceLists();
  }
  result_.stats.list_construction_seconds = timer.ElapsedSeconds();
  SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("soi.query.lists_seconds",
                                     result_.stats.list_construction_seconds,
                                     options_.query_id);

  timer.Reset();
  {
    SOI_TRACE_SPAN("soi.filter");
    SOI_RETURN_NOT_OK(FilteringPhase());
  }
  result_.stats.filtering_seconds = timer.ElapsedSeconds();
  SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("soi.query.filter_seconds",
                                     result_.stats.filtering_seconds,
                                     options_.query_id);

  timer.Reset();
  {
    SOI_TRACE_SPAN("soi.refine");
    SOI_RETURN_NOT_OK(RefinementPhase());
  }
  result_.stats.refinement_seconds = timer.ElapsedSeconds();
  SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("soi.query.refine_seconds",
                                     result_.stats.refinement_seconds,
                                     options_.query_id);

  // Work counters, folded into the registry once per query (never on the
  // per-(segment, cell) hot path).
  SOI_OBS_COUNTER_ADD("soi.query.count", 1);
  SOI_OBS_COUNTER_ADD("soi.query.iterations", result_.stats.iterations);
  SOI_OBS_COUNTER_ADD("soi.query.cells_popped",
                      result_.stats.cells_popped);
  SOI_OBS_COUNTER_ADD("soi.query.segments_popped",
                      result_.stats.segments_popped);
  SOI_OBS_COUNTER_ADD("soi.query.segments_seen",
                      result_.stats.segments_seen);
  SOI_OBS_COUNTER_ADD("soi.query.segments_finalized_in_refinement",
                      result_.stats.segments_finalized_in_refinement);
  SOI_OBS_COUNTER_ADD("soi.query.poi_distance_checks",
                      result_.stats.poi_distance_checks);
  return std::move(result_);
}

}  // namespace

SoiAlgorithm::SoiAlgorithm(const RoadNetwork& network,
                           const PoiGridIndex& grid,
                           const GlobalInvertedIndex& global_index,
                           ThreadPool* pool)
    : network_(&network),
      grid_(&grid),
      global_index_(&global_index),
      scratch_pool_(std::make_unique<SoiScratchPool>()) {
  segments_by_length_.resize(static_cast<size_t>(network.num_segments()));
  for (SegmentId id = 0; id < network.num_segments(); ++id) {
    segments_by_length_[static_cast<size_t>(id)] = id;
  }
  ParallelSort(pool, segments_by_length_.begin(), segments_by_length_.end(),
               [&network](SegmentId a, SegmentId b) {
                 double la = network.segment(a).length;
                 double lb = network.segment(b).length;
                 if (la != lb) return la < lb;
                 return a < b;
               });
}

SoiAlgorithm::~SoiAlgorithm() = default;

SoiResult SoiAlgorithm::TopK(const SoiQuery& query,
                             const EpsAugmentedMaps& maps,
                             const SoiAlgorithmOptions& options) const {
  // The legacy checked entry point: the same preconditions TryTopK
  // reports as Status are fatal here. Deliberately *not* routed through
  // SoiQuery::Validate() so pre-serving callers keep their semantics
  // (e.g. an empty keyword set is a legal degenerate query here).
  SOI_CHECK(query.k > 0) << "k must be positive";
  SOI_CHECK(query.eps > 0) << "eps must be positive";
  SOI_CHECK(maps.eps() == query.eps)
      << "EpsAugmentedMaps built for eps=" << maps.eps()
      << " but query has eps=" << query.eps;
  SOI_CHECK(grid_->geometry().bounds() == maps.geometry().bounds() &&
            grid_->geometry().cell_size() == maps.geometry().cell_size())
      << "POI grid and segment maps use different grid geometries";
  ScratchLease lease(scratch_pool_.get());
  Run run(*network_, *grid_, *global_index_, segments_by_length_, query,
          maps, options, &*lease);
  Result<SoiResult> result = run.Execute();
  SOI_CHECK(result.ok()) << "TopK aborted: " << result.status().ToString()
                         << " (use TryTopK for cancellable queries)";
  return std::move(result).ValueOrDie();
}

Result<SoiResult> SoiAlgorithm::TryTopK(
    const SoiQuery& query, const EpsAugmentedMaps& maps,
    const SoiAlgorithmOptions& options) const {
  SOI_RETURN_NOT_OK(query.Validate());
  if (maps.eps() != query.eps) {
    return Status::InvalidArgument(
        "EpsAugmentedMaps built for eps=" + FormatDouble(maps.eps()) +
        " but query has eps=" + FormatDouble(query.eps));
  }
  if (!(grid_->geometry().bounds() == maps.geometry().bounds()) ||
      grid_->geometry().cell_size() != maps.geometry().cell_size()) {
    return Status::InvalidArgument(
        "POI grid and segment maps use different grid geometries");
  }
  SOI_RETURN_NOT_OK(options.cancel.Check());
  ScratchLease lease(scratch_pool_.get());
  Run run(*network_, *grid_, *global_index_, segments_by_length_, query,
          maps, options, &*lease);
  return run.Execute();
}

}  // namespace soi
