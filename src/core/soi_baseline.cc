#include "core/soi_baseline.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/interest.h"
#include "obs/obs.h"

namespace soi {

SoiBaseline::SoiBaseline(const RoadNetwork& network, const PoiGridIndex& grid)
    : network_(&network), grid_(&grid) {}

double SoiBaseline::SegmentMass(SegmentId id, const KeywordSet& keywords,
                                const EpsAugmentedMaps& maps) const {
  const Segment& geometry = network_->segment(id).geometry;
  double eps = maps.eps();
  double mass = 0;
  for (CellId cell : maps.SegmentCells(id)) {
    grid_->ForEachRelevantInCell(cell, keywords, [&](PoiId poi) {
      const Poi& p = grid_->pois()[static_cast<size_t>(poi)];
      if (geometry.DistanceTo(p.position) <= eps) {
        mass += p.weight;
      }
    });
  }
  return mass;
}

std::vector<double> SoiBaseline::AllSegmentInterests(
    const SoiQuery& query, const EpsAugmentedMaps& maps) const {
  std::vector<double> interests(
      static_cast<size_t>(network_->num_segments()), 0.0);
  for (SegmentId id = 0; id < network_->num_segments(); ++id) {
    double mass = SegmentMass(id, query.keywords, maps);
    interests[static_cast<size_t>(id)] =
        SegmentInterest(mass, network_->segment(id).length, query.eps);
  }
  return interests;
}

SoiResult SoiBaseline::TopK(const SoiQuery& query,
                            const EpsAugmentedMaps& maps) const {
  SOI_CHECK(query.k > 0);
  SOI_CHECK(query.eps > 0);
  SOI_TRACE_SPAN("soi.baseline_query");
  SoiResult result;
  Stopwatch timer;
  std::vector<double> interests = AllSegmentInterests(query, maps);
  result.streets = RankStreets(*network_, interests, query.k);
  result.stats.filtering_seconds = timer.ElapsedSeconds();
  SOI_OBS_COUNTER_ADD("soi.baseline.query_count", 1);
  SOI_OBS_HISTOGRAM_OBSERVE("soi.baseline.query_seconds",
                            result.stats.filtering_seconds);
  return result;
}

std::vector<RankedStreet> RankStreets(
    const RoadNetwork& network, const std::vector<double>& segment_interests,
    int32_t k) {
  SOI_CHECK(segment_interests.size() ==
            static_cast<size_t>(network.num_segments()));
  std::vector<RankedStreet> ranked;
  ranked.reserve(static_cast<size_t>(network.num_streets()));
  for (StreetId street = 0; street < network.num_streets(); ++street) {
    RankedStreet entry;
    entry.street = street;
    for (SegmentId seg : network.street(street).segments) {
      double interest = segment_interests[static_cast<size_t>(seg)];
      if (entry.best_segment < 0 || interest > entry.interest) {
        entry.interest = interest;
        entry.best_segment = seg;
      }
    }
    ranked.push_back(entry);
  }
  auto by_interest = [](const RankedStreet& a, const RankedStreet& b) {
    if (a.interest != b.interest) return a.interest > b.interest;
    return a.street < b.street;
  };
  size_t keep = std::min<size_t>(static_cast<size_t>(k), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    by_interest);
  ranked.resize(keep);
  return ranked;
}

}  // namespace soi
