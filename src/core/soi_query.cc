#include "core/soi_query.h"

#include <cmath>
#include <string>

#include "common/string_util.h"

namespace soi {

Status SoiQuery::Validate() const {
  if (!std::isfinite(eps) || eps <= 0.0) {
    return Status::InvalidArgument("query eps must be a finite positive "
                                   "number, got " +
                                   FormatDouble(eps));
  }
  if (k <= 0) {
    return Status::InvalidArgument("query k must be positive, got " +
                                   std::to_string(k));
  }
  if (keywords.empty()) {
    return Status::InvalidArgument("query keyword set Psi must not be empty");
  }
  return Status::OK();
}

}  // namespace soi
