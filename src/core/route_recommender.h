#ifndef SOI_CORE_ROUTE_RECOMMENDER_H_
#define SOI_CORE_ROUTE_RECOMMENDER_H_

#include <vector>

#include "core/soi_query.h"
#include "network/road_network.h"
#include "network/shortest_path.h"

namespace soi {

/// A leg of a walking tour: the shortest path connecting the exit of one
/// visited street to the entrance of the next.
struct RouteLeg {
  StreetId from_street = -1;
  StreetId to_street = -1;
  NetworkPath path;
};

/// A walking tour through a set of Streets of Interest.
struct RecommendedRoute {
  /// Streets in visiting order.
  std::vector<StreetId> street_order;
  /// Connecting legs; legs[i] joins street_order[i] to street_order[i+1].
  std::vector<RouteLeg> legs;
  /// Total length of the visited streets themselves.
  double street_length = 0.0;
  /// Total length of the connecting legs.
  double connecting_length = 0.0;
  /// Input streets unreachable from the tour's component, skipped.
  std::vector<StreetId> unreachable;

  double TotalLength() const { return street_length + connecting_length; }
};

/// Plans walking tours through discovered Streets of Interest — the
/// paper's stated future-work extension ("provide route recommendations
/// based on the discovered streets of interest").
///
/// The tour starts at the highest-ranked street and greedily appends the
/// nearest (by network walking distance) unvisited street, traversing
/// each street end-to-end and connecting streets by shortest paths.
/// Streets in a different connected component of the network are reported
/// in `unreachable` rather than silently dropped.
class RouteRecommender {
 public:
  RouteRecommender(const RoadNetwork& network,
                   const ShortestPathEngine& engine);

  /// Plans a tour through the ranked streets (e.g. a k-SOI result).
  /// Requires a non-empty input; duplicate street ids are visited once.
  RecommendedRoute PlanTour(const std::vector<RankedStreet>& streets) const;

 private:
  // The two path endpoints of a street (first segment's `from`, last
  // segment's `to`).
  std::pair<VertexId, VertexId> StreetEndpoints(StreetId street) const;

  const RoadNetwork* network_;
  const ShortestPathEngine* engine_;
};

}  // namespace soi

#endif  // SOI_CORE_ROUTE_RECOMMENDER_H_
