#ifndef SOI_CORE_INTEREST_H_
#define SOI_CORE_INTEREST_H_

#include <cstdint>

#include "geometry/segment.h"
#include "objects/poi.h"
#include "text/keyword_set.h"

namespace soi {

/// Size of the area within distance eps around a segment of length `length`:
/// 2 * eps * len + pi * eps^2 (the denominator of Definition 2).
double SegmentNeighborhoodArea(double length, double eps);

/// Interest of a segment with the given mass: mass / area (Definition 2).
/// Mass is a double so the weighted extension (POIs with importance
/// weights) shares the same code path; with unit weights it is exactly
/// the POI count. Requires eps > 0 so the area is positive; the fully
/// degenerate case (zero-length segment, eps == 0: an empty
/// neighborhood) yields 0 instead of dividing by zero.
double SegmentInterest(double mass, double length, double eps);

/// Brute-force segment mass (Definition 1 plus the weighted extension):
/// the total weight of POIs within distance eps of `segment` carrying at
/// least one query keyword. O(|P|); the test oracle against which the
/// indexed computations are validated.
double BruteForceSegmentMass(const Segment& segment,
                             const std::vector<Poi>& pois,
                             const KeywordSet& query, double eps);

}  // namespace soi

#endif  // SOI_CORE_INTEREST_H_
