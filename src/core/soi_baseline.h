#ifndef SOI_CORE_SOI_BASELINE_H_
#define SOI_CORE_SOI_BASELINE_H_

#include <vector>

#include "core/soi_query.h"
#include "grid/poi_grid_index.h"
#include "grid/segment_cell_index.h"
#include "network/road_network.h"

namespace soi {

/// The BL baseline of Section 5.2.1: uses only the spatial grid index to
/// compute the exact interest of *every* segment, then determines the
/// k-SOIs. No filter-and-refinement; serves both as the performance
/// baseline of Figure 4 and as the correctness oracle for SoiAlgorithm.
class SoiBaseline {
 public:
  SoiBaseline(const RoadNetwork& network, const PoiGridIndex& grid);

  /// Evaluates the query. `maps` must be the eps augmentation for
  /// query.eps over the same network/grid.
  SoiResult TopK(const SoiQuery& query, const EpsAugmentedMaps& maps) const;

  /// Exact (weighted) mass of one segment (Definition 1 and its weighted
  /// extension), computed via the grid.
  double SegmentMass(SegmentId id, const KeywordSet& keywords,
                     const EpsAugmentedMaps& maps) const;

  /// Exact interest of every segment, indexed by segment id.
  std::vector<double> AllSegmentInterests(const SoiQuery& query,
                                          const EpsAugmentedMaps& maps) const;

 private:
  const RoadNetwork* network_;
  const PoiGridIndex* grid_;
};

/// Ranks all streets given exact per-segment interests: decreasing street
/// interest (Definition 3), ties by ascending street id; truncated to k.
/// Shared by SoiBaseline and tests.
std::vector<RankedStreet> RankStreets(
    const RoadNetwork& network, const std::vector<double>& segment_interests,
    int32_t k);

}  // namespace soi

#endif  // SOI_CORE_SOI_BASELINE_H_
