#ifndef SOI_CORE_SOI_QUERY_H_
#define SOI_CORE_SOI_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "network/road_network.h"
#include "text/keyword_set.h"

namespace soi {

/// A k-SOI query q = <Psi, k, eps> (Problem 1): find the k streets with the
/// highest interest for the keyword set Psi, where a POI counts toward a
/// segment when it lies within distance eps.
struct SoiQuery {
  KeywordSet keywords;
  int32_t k = 10;
  double eps = 0.0005;

  /// Admission validation of the serving path (DESIGN.md "Failure
  /// model"): kInvalidArgument for a NaN/inf/non-positive eps, k <= 0,
  /// or an empty keyword set. Rejecting NaN here matters doubly: a NaN
  /// eps can never match itself, so it would defeat the engine's
  /// eps-keyed cache (every lookup a miss that inserts a new entry).
  [[nodiscard]] Status Validate() const;
};

/// One street of the k-SOI answer.
struct RankedStreet {
  StreetId street = -1;
  /// int(s | Psi, eps): the street's interest (Definition 3).
  double interest = 0.0;
  /// The segment attaining the street's interest.
  SegmentId best_segment = -1;
};

/// Instrumentation counters and per-phase timings of one k-SOI evaluation.
/// The three phase timings are the stacked bars of Figure 4.
struct SoiQueryStats {
  // Phase timings, seconds.
  double list_construction_seconds = 0.0;
  double filtering_seconds = 0.0;
  double refinement_seconds = 0.0;

  double TotalSeconds() const {
    return list_construction_seconds + filtering_seconds +
           refinement_seconds;
  }

  // Work counters.
  int64_t iterations = 0;
  int64_t cells_popped = 0;
  int64_t segments_popped = 0;
  int64_t segments_seen = 0;
  int64_t segments_finalized_in_refinement = 0;
  int64_t poi_distance_checks = 0;

  // Bounds at termination of the filtering phase.
  double final_upper_bound = 0.0;
  double final_lower_bound = 0.0;
};

/// Result of a k-SOI evaluation: the answer streets ordered by decreasing
/// interest (ties by ascending street id), plus run statistics.
struct SoiResult {
  std::vector<RankedStreet> streets;
  SoiQueryStats stats;
};

}  // namespace soi

#endif  // SOI_CORE_SOI_QUERY_H_
