#ifndef SOI_OBS_JSON_EXPORT_H_
#define SOI_OBS_JSON_EXPORT_H_

#include <string>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace soi {
namespace obs {

/// Writes `snapshot` as one JSON object value into `json` (which must be
/// positioned where a value is expected — after Key(), inside an array,
/// or at the root):
///
///   {
///     "counters": {"soi.cache.hits": 12, ...},
///     "gauges": {"soi.pool.queue_depth": 0, ...},
///     "histograms": {
///       "soi.query.filter_seconds": {
///         "count": 288, "sum": 0.12, "mean": ..., "p50": ..., "p99": ...,
///         "buckets": [{"le": 1e-06, "count": 0}, ...]   // cumulative
///       }, ...
///     }
///   }
///
/// Zero-count histograms are exported without the "buckets" array, and
/// empty sections are emitted as empty objects, so the document shape is
/// stable across build modes (an SOI_OBSERVABILITY=OFF build exports
/// {"counters": {}, "gauges": {}, "histograms": {}}).
void WriteMetricsJson(const MetricsSnapshot& snapshot, JsonWriter* json);

/// WriteMetricsJson of a snapshot as a standalone pretty-printed string.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace soi

#endif  // SOI_OBS_JSON_EXPORT_H_
