#include "obs/dump.h"

#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "analysis/lock_graph.h"
#include "common/signal_watch.h"
#include "obs/json_export.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace soi {
namespace obs {

void WriteQueryRecordJson(const QueryRecord& record, JsonWriter* json) {
  json->BeginObject();
  json->KeyValue("query_id", record.query_id);
  json->KeyValue("psi_size", record.psi_size);
  json->KeyValue("k", record.k);
  json->KeyValue("eps", record.eps);
  json->Key("keyword_ids");
  json->BeginArray();
  for (int32_t id : record.keyword_ids) json->Int(id);
  json->EndArray();
  json->KeyValue("total_seconds", record.total_seconds);
  json->KeyValue("lists_seconds", record.lists_seconds);
  json->KeyValue("filter_seconds", record.filter_seconds);
  json->KeyValue("refine_seconds", record.refine_seconds);
  json->KeyValue("iterations", record.iterations);
  json->KeyValue("cells_popped", record.cells_popped);
  json->KeyValue("segments_popped", record.segments_popped);
  json->KeyValue("segments_seen", record.segments_seen);
  json->KeyValue("segments_finalized", record.segments_finalized);
  json->KeyValue("poi_distance_checks", record.poi_distance_checks);
  json->KeyValue("cache_hit", record.cache_hit);
  json->KeyValue("coalesced", record.coalesced);
  json->KeyValue("ingest_epoch", record.ingest_epoch);
  json->KeyValue("status", StatusCodeToString(record.status));
  json->EndObject();
}

void DumpState(JsonWriter* json) {
  json->BeginObject();
  json->KeyValue("version", int64_t{1});
  json->KeyValue("observability_enabled", kEnabled);

  json->Key("metrics");
  WriteMetricsJson(Registry::Global().Snapshot(), json);

  json->Key("flight_recorder");
  json->BeginObject();
  FlightRecorder::Snapshot flights = FlightRecorder::Global().Snap();
  json->KeyValue("last_query_id", flights.last_query_id);
  json->KeyValue("total_recorded", flights.total_recorded);
  json->KeyValue("dropped", flights.dropped);
  json->Key("recent");
  json->BeginArray();
  for (const QueryRecord& record : flights.recent) {
    WriteQueryRecordJson(record, json);
  }
  json->EndArray();
  json->Key("slowest");
  json->BeginArray();
  for (const QueryRecord& record : flights.slowest) {
    WriteQueryRecordJson(record, json);
  }
  json->EndArray();
  json->EndObject();

  // The lock-order graph (analysis/lock_graph.h). Empty with the
  // detector compiled out (the default); under the `deadlock` preset it
  // carries every named mutex, every held->acquired edge observed, and
  // any discipline violations — so a SIGUSR1 state dump from a wedged
  // soid shows which lock orders the process has actually exercised.
  json->Key("lock_graph");
  json->BeginObject();
  json->KeyValue("enabled", lock_graph::kEnabled);
  lock_graph::GraphSnapshot graph = lock_graph::LockGraph::Global().Snapshot();
  json->Key("nodes");
  json->BeginArray();
  for (const lock_graph::NodeSnapshot& node : graph.nodes) {
    json->BeginObject();
    json->KeyValue("name", node.name);
    json->KeyValue("rank", int64_t{node.rank});
    json->EndObject();
  }
  json->EndArray();
  json->Key("edges");
  json->BeginArray();
  for (const lock_graph::EdgeSnapshot& edge : graph.edges) {
    json->BeginObject();
    json->KeyValue("from", edge.from);
    json->KeyValue("to", edge.to);
    json->KeyValue("context", edge.context);
    json->EndObject();
  }
  json->EndArray();
  json->Key("violations");
  json->BeginArray();
  for (const lock_graph::Violation& violation : graph.violations) {
    json->BeginObject();
    json->KeyValue("kind", lock_graph::ViolationKindName(violation.kind));
    json->KeyValue("summary", violation.summary);
    json->Key("edges");
    json->BeginArray();
    for (const std::string& edge : violation.edges) json->String(edge);
    json->EndArray();
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();

  json->EndObject();
}

std::string DumpStateJson() {
  std::ostringstream out;
  JsonWriter json(&out);
  DumpState(&json);
  return out.str();
}

Status WriteStateFile(const std::string& path) {
  std::ofstream file(path);
  if (!file.good()) {
    return Status::IOError("cannot write state file " + path);
  }
  JsonWriter json(&file);
  DumpState(&json);
  file << "\n";
  file.flush();
  if (!json.done() || !file.good()) {
    return Status::IOError("failed writing state file " + path);
  }
  return Status::OK();
}

#if defined(__unix__) || defined(__APPLE__)

Status InstallSignalDump(const std::string& path) {
  // All mask manipulation lives in common/signal_watch.cc so this hook
  // and soid's SIGTERM drain watcher compose in one process instead of
  // clobbering each other's setup; WatchSignal rejects a second SIGUSR1
  // installation with kAlreadyExists.
  return WatchSignal(SIGUSR1, [path] {
    // Best-effort by design: a failed dump (disk full, unlinkable
    // path) must never take down the serving process.
    (void)WriteStateFile(path);
  });
}

#else  // !(__unix__ || __APPLE__)

Status InstallSignalDump(const std::string& path) {
  (void)path;
  return Status::Internal(
      "SIGUSR1 dump hook requires a POSIX signal interface");
}

#endif

}  // namespace obs
}  // namespace soi
