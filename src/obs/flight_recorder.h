#ifndef SOI_OBS_FLIGHT_RECORDER_H_
#define SOI_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace soi {
namespace obs {

/// One completed serving-path query: identity, outcome, wall/phase
/// timings, and per-query work counters, with a process-monotone id.
///
/// The record is replayable: <keyword_ids, k, eps> reconstructs the exact
/// SoiQuery (keyword ids are sorted/deduplicated, so the identity is
/// byte-exact — the same key batch coalescing uses), and the timings plus
/// counters explain where the evaluation spent its time. Latency
/// histogram exemplars (Histogram::Observe's exemplar_query_id) point at
/// these ids, so a p99 bucket links back to the query that landed there.
struct QueryRecord {
  /// Assigned by FlightRecorder::NextQueryId() (1, 2, ...); 0 = unset.
  uint64_t query_id = 0;

  // Query identity <Psi, k, eps>.
  int32_t psi_size = 0;
  int32_t k = 0;
  double eps = 0.0;
  /// The sorted, deduplicated keyword ids of Psi (KeywordId is int32_t;
  /// kept as plain ints so obs stays independent of src/text headers).
  std::vector<int32_t> keyword_ids;

  // Wall/phase timings, seconds. total_seconds is the engine-observed
  // wall time (admission to result); the three phases are the
  // SoiQueryStats breakdown and sum to slightly less (cache lookup,
  // scratch lease, bookkeeping).
  double total_seconds = 0.0;
  double lists_seconds = 0.0;
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;

  // Per-query work counters (SoiQueryStats deltas; zero on failure).
  int64_t iterations = 0;
  int64_t cells_popped = 0;
  int64_t segments_popped = 0;
  int64_t segments_seen = 0;
  int64_t segments_finalized = 0;
  int64_t poi_distance_checks = 0;

  /// True when the eps-cache lookup resolved without a build (fast-path
  /// or in-flight-entry hit).
  bool cache_hit = false;
  /// True for a batch duplicate served by copying its leader's result
  /// (soi.engine.batch_coalesced); such records carry the leader's phase
  /// timings but zero total_seconds of their own.
  bool coalesced = false;

  /// Ingest epoch the query was pinned to (0 when the engine serves the
  /// static indexes — no epoch source configured).
  uint64_t ingest_epoch = 0;

  /// kOk on success; kInvalidArgument / kResourceExhausted (shed) /
  /// kDeadlineExceeded / kCancelled / kInternal mirror the TryRun
  /// failure taxonomy (DESIGN.md "Failure model").
  StatusCode status = StatusCode::kOk;
};

/// Retains the most recent queries plus the slowest ones seen, for live
/// introspection (obs::DumpState) and post-hoc slow-query analysis.
///
/// Discipline matches TraceRecorder: appends go to one of kNumShards
/// ring buffers keyed by the caller's stable thread slot
/// (internal_metrics::ThreadShard()), each guarded by its own mutex —
/// uncontended except against a concurrent Snap(), so an append is one
/// short critical section per query (~100ns against multi-ms queries).
/// The top-M slowest reservoir admits behind a relaxed atomic floor:
/// once full, queries faster than the current M-th slowest skip its
/// mutex entirely.
///
/// Always armed when observability is compiled in; the SOI_OBS_FLIGHT_*
/// macros in obs.h compile callers out under SOI_OBSERVABILITY=OFF. The
/// class itself compiles unconditionally with an identical layout in
/// both modes (obs compile-out contract, tests/obs_compile_out_test.cc).
///
/// Thread-safe.
class FlightRecorder {
 public:
  /// Ring slots per shard (kNumShards rings) and reservoir size.
  static constexpr size_t kDefaultRecentPerShard = 256;
  static constexpr size_t kDefaultSlowestCapacity = 32;

  explicit FlightRecorder(size_t recent_per_shard = kDefaultRecentPerShard,
                          size_t slowest_capacity = kDefaultSlowestCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder QueryEngine records to (via the
  /// SOI_OBS_FLIGHT_* macros in obs.h).
  static FlightRecorder& Global();

  /// The next process-monotone query id (1, 2, ...). Relaxed fetch_add;
  /// ids stay unique and monotone across Reset().
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Highest id handed out so far (0 before the first query).
  uint64_t last_query_id() const {
    return next_query_id_.load(std::memory_order_relaxed);
  }

  /// Appends one completed query. When the caller's shard ring is full
  /// its oldest record is overwritten (counted in Snapshot::dropped).
  void Record(const QueryRecord& record);

  /// A consistent point-in-time view: each shard ring and the reservoir
  /// are copied under their own locks, so every record is complete
  /// (never a half-written struct) and the per-shard sequences are
  /// gap-free suffixes of what was recorded. Appends concurrent with the
  /// snapshot land in it or in the next one, never torn.
  struct Snapshot {
    /// The retained recent records, ascending query_id.
    std::vector<QueryRecord> recent;
    /// Top-M by total_seconds, descending (ties: ascending query_id).
    std::vector<QueryRecord> slowest;
    /// Records ever appended / overwritten by ring wrap-around.
    int64_t total_recorded = 0;
    int64_t dropped = 0;
    /// Highest query id handed out at snapshot time.
    uint64_t last_query_id = 0;

    /// The record with `query_id` (searching recent, then slowest), or
    /// nullptr — e.g. a histogram exemplar id resolves through this.
    const QueryRecord* Find(uint64_t query_id) const;
  };
  Snapshot Snap() const;

  /// Clears the rings and the reservoir (capacities kept; query ids keep
  /// rising). For tests and between-bench-run isolation, like
  /// Registry::Reset: quiesce recording threads first.
  void Reset();

  size_t recent_capacity() const { return recent_per_shard_ * kNumShards; }
  size_t slowest_capacity() const { return slowest_capacity_; }

 private:
  struct alignas(64) Shard {
    mutable Mutex mutex{"obs.FlightRecorder.ring", lock_graph::kRankLeaf};
    /// Ring storage; grows to recent_per_shard_ then wraps.
    std::vector<QueryRecord> ring SOI_GUARDED_BY(mutex);
    size_t next SOI_GUARDED_BY(mutex) = 0;  // next write position
    int64_t total SOI_GUARDED_BY(mutex) = 0;
    int64_t dropped SOI_GUARDED_BY(mutex) = 0;
  };

  size_t recent_per_shard_;
  size_t slowest_capacity_;
  Shard shards_[kNumShards];

  std::atomic<uint64_t> next_query_id_{0};

  /// Reservoir admission gate: the current M-th slowest total_seconds
  /// once the reservoir is full, -1.0 (admit everything) before. A
  /// stale read only costs one extra mutex acquisition — admission is
  /// re-checked under the lock.
  std::atomic<double> slowest_floor_{-1.0};
  mutable Mutex slowest_mutex_{"obs.FlightRecorder.slowest",
                               lock_graph::kRankLeaf};
  /// Min-heap on total_seconds (front = evictee).
  std::vector<QueryRecord> slowest_ SOI_GUARDED_BY(slowest_mutex_);
};

}  // namespace obs
}  // namespace soi

#endif  // SOI_OBS_FLIGHT_RECORDER_H_
